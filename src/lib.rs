//! # counting-at-large — Distributed Hash Sketches
//!
//! Facade crate for the reproduction of *Counting at Large: Efficient
//! Cardinality Estimation in Internet-Scale Data Networks* (Ntarmos,
//! Triantafillou & Weikum, ICDE 2006).
//!
//! This crate re-exports the workspace's public API so examples and
//! integration tests can depend on a single crate:
//!
//! * [`sketch`] — hash sketches (PCSA, LogLog, super-LogLog, HyperLogLog)
//!   plus the hashing substrate (MD4, SplitMix64).
//! * [`dht`] — a deterministic Chord-like DHT simulator with exact
//!   hop/byte cost accounting.
//! * [`net`] — a deterministic discrete-event network simulator (latency
//!   models, fault injection, per-message telemetry) that DHS operations
//!   run over via the `Transport` trait.
//! * [`dhs`] — Distributed Hash Sketches: the paper's contribution
//!   (interval mapping, insertion, the Alg. 1 counting procedure,
//!   soft-state maintenance, multi-metric counting).
//! * [`obs`] — unified observability: metrics registry, hierarchical
//!   spans on the virtual clock, and the per-interval load monitor that
//!   turns the paper's load-balance claim into a live metric.
//! * [`histogram`] — equi-width histograms over DHS, selectivity
//!   estimation and join-order optimization (paper §4.3/§5).
//! * [`baselines`] — the related-work counting protocols the paper
//!   argues against (single-node counters, gossip, tree aggregation,
//!   sampling), implemented for quantitative comparison.
//! * [`shard`] — the sharded multi-tenant sketch store: (tenant, metric)
//!   keys, deterministic shard routing with cross-shard flush batches,
//!   tiered compressed registers, and memory-budget eviction with
//!   cold-tier spill.
//! * [`workload`] — Zipf-distributed relations and multiset generators
//!   matching the paper's evaluation setup.
//! * [`traj`] — deterministic ablation harness (grid/LHS factor sweeps
//!   with declared KPI tolerances) and the append-only perf-trajectory
//!   registry that gates KPI regressions against committed baselines.

pub use dhs_baselines as baselines;
pub use dhs_core as dhs;
pub use dhs_dht as dht;
pub use dhs_histogram as histogram;
pub use dhs_net as net;
pub use dhs_obs as obs;
pub use dhs_shard as shard;
pub use dhs_sketch as sketch;
pub use dhs_traj as traj;
pub use dhs_workload as workload;

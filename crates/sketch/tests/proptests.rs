//! Property-based tests for the sketch crate's core invariants.

use dhs_sketch::{
    rho, rho_capped, CardinalityEstimator, HyperLogLog, ItemHasher, LogLog, Md4, Md4Hasher, Pcsa,
    SplitMix64, SuperLogLog,
};
use proptest::prelude::*;

proptest! {
    /// ρ really is the least-significant-one position.
    #[test]
    fn rho_reconstructs_value_shape(y in 1u64..) {
        let r = rho(y);
        prop_assert!(r < 64);
        prop_assert_eq!(y & ((1u64 << r).wrapping_sub(1)), 0, "low bits below rho are zero");
        prop_assert_eq!((y >> r) & 1, 1, "bit at rho is one");
    }

    /// rho_capped never exceeds its width and agrees with rho below it.
    #[test]
    fn rho_capped_bounds(y in any::<u64>(), width in 1u32..=64) {
        let r = rho_capped(y, width);
        prop_assert!(r <= width);
        if y != 0 && rho(y) < width {
            prop_assert_eq!(r, rho(y));
        }
    }

    /// MD4 streaming equals one-shot for arbitrary data and chunkings.
    #[test]
    fn md4_streaming_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..97,
    ) {
        let oneshot = Md4::digest(&data);
        let mut hasher = Md4::new();
        for piece in data.chunks(chunk) {
            hasher.update(piece);
        }
        prop_assert_eq!(hasher.finalize(), oneshot);
    }

    /// Hashers are deterministic and length-sensitive.
    #[test]
    fn hashers_deterministic(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let sm = SplitMix64::default();
        prop_assert_eq!(sm.hash_bytes(&data), sm.hash_bytes(&data));
        let md4 = Md4Hasher;
        prop_assert_eq!(md4.hash_bytes(&data), md4.hash_bytes(&data));
    }

    /// Insertion order never matters for any sketch.
    #[test]
    fn insertion_order_irrelevant(mut items in prop::collection::vec(any::<u64>(), 0..300)) {
        let forward = {
            let mut s = Pcsa::new(32).unwrap();
            for &x in &items {
                s.insert_hash(x);
            }
            s
        };
        items.reverse();
        let backward = {
            let mut s = Pcsa::new(32).unwrap();
            for &x in &items {
                s.insert_hash(x);
            }
            s
        };
        prop_assert_eq!(forward, backward);
    }

    /// Estimates are monotone under stream extension (supersets can only
    /// raise register values, never lower the estimate) for the LogLog
    /// family without truncation; with truncation/HLL the estimate is at
    /// least not degraded below the subset by more than numeric noise.
    #[test]
    fn loglog_estimate_monotone(
        base in prop::collection::vec(any::<u64>(), 1..200),
        extra in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut small = LogLog::new(32).unwrap();
        for &x in &base {
            small.insert_hash(x);
        }
        let mut big = small.clone();
        for &x in &extra {
            big.insert_hash(x);
        }
        prop_assert!(big.estimate() >= small.estimate() - 1e-9);
    }

    /// Every sketch family reports is_empty exactly when nothing was
    /// inserted.
    #[test]
    fn emptiness_is_exact(items in prop::collection::vec(any::<u64>(), 0..20)) {
        macro_rules! check {
            ($s:expr) => {{
                let mut s = $s;
                prop_assert!(s.is_empty());
                for &x in &items {
                    s.insert_hash(x);
                }
                prop_assert_eq!(s.is_empty(), items.is_empty());
            }};
        }
        check!(Pcsa::new(16).unwrap());
        check!(LogLog::new(16).unwrap());
        check!(SuperLogLog::new(16).unwrap());
        check!(HyperLogLog::new(16).unwrap());
    }

    /// Merging an empty sketch is the identity.
    #[test]
    fn merge_with_empty_is_identity(items in prop::collection::vec(any::<u64>(), 0..200)) {
        let mut s = SuperLogLog::new(64).unwrap();
        for &x in &items {
            s.insert_hash(x);
        }
        let before = s.clone();
        let empty = SuperLogLog::new(64).unwrap();
        s.merge(&empty).unwrap();
        prop_assert_eq!(s, before);
    }

    /// HyperLogLog linear counting: for tiny exact-distinct streams the
    /// estimate is close to the true distinct count.
    #[test]
    fn hll_small_range_accuracy(distinct in 1u64..30) {
        let hasher = SplitMix64::default();
        let mut s = HyperLogLog::new(1024).unwrap();
        for i in 0..distinct {
            s.insert_hash(hasher.hash_u64(i));
            s.insert_hash(hasher.hash_u64(i));
        }
        let err = (s.estimate() - distinct as f64).abs();
        prop_assert!(err <= (distinct as f64 * 0.3).max(2.0), "est {} vs {distinct}", s.estimate());
    }
}

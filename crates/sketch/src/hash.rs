//! Item-hashing substrate.
//!
//! Every hash-sketch algorithm assumes a pseudo-uniform hash
//! `h: D → [0, 2^L)`. DHTs already provide one (node/item IDs *are*
//! pseudo-uniform L-bit values), which is the observation the DHS paper
//! builds on. This module defines the [`ItemHasher`] abstraction and three
//! implementations:
//!
//! * [`Md4Hasher`] — the paper's choice (RFC 1320 MD4, truncated to 64
//!   bits). Slowest, strongest mixing.
//! * [`SplitMix64`] — Steele/Lea/Flajolet-quality 64-bit finalizer; the
//!   default for simulation speed.
//! * [`FnvHasher`] — FNV-1a; included as a deliberately weaker mixer for
//!   robustness experiments (super-LogLog claims to tolerate weaker hash
//!   functions than PCSA).

use crate::md4::Md4;

/// A deterministic, stateless map from items to pseudo-uniform `u64`s.
///
/// Implementations must be pure functions: the same input always yields the
/// same output, with no interior state. This is what lets every node of a
/// distributed system agree on item placement without coordination.
pub trait ItemHasher {
    /// Hash an arbitrary byte string.
    fn hash_bytes(&self, data: &[u8]) -> u64;

    /// Hash a `u64` item (convenience; must equal hashing its LE bytes).
    fn hash_u64(&self, item: u64) -> u64 {
        self.hash_bytes(&item.to_le_bytes())
    }

    /// Hash a string item.
    fn hash_str(&self, item: &str) -> u64 {
        self.hash_bytes(item.as_bytes())
    }
}

/// MD4-based hasher: the digest's first 8 bytes, little-endian.
///
/// This is the identifier scheme of the paper's evaluation (§5.1: "Node and
/// item IDs are 64 bits, created using MD4").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Md4Hasher;

impl ItemHasher for Md4Hasher {
    fn hash_bytes(&self, data: &[u8]) -> u64 {
        Md4::digest_u64(data)
    }
}

/// SplitMix64-style mixing hasher with an optional seed.
///
/// For `u64` inputs it applies the SplitMix64 finalizer directly; for byte
/// strings it folds 8-byte words through the finalizer. Passes practical
/// uniformity tests and is an order of magnitude faster than MD4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitMix64 {
    seed: u64,
}

impl SplitMix64 {
    /// A hasher whose outputs are decorrelated from the default by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        SplitMix64 { seed }
    }

    /// The SplitMix64 finalizer (Stafford's Mix13 variant).
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl ItemHasher for SplitMix64 {
    fn hash_bytes(&self, data: &[u8]) -> u64 {
        let mut acc = Self::mix(self.seed ^ 0x5bf0_3635_d1c2_03a9);
        for chunk in data.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = Self::mix(acc ^ u64::from_le_bytes(word));
        }
        // Fold in the length so prefixes don't collide with padded inputs.
        Self::mix(acc ^ (data.len() as u64))
    }

    fn hash_u64(&self, item: u64) -> u64 {
        Self::mix(item ^ Self::mix(self.seed ^ 0x5bf0_3635_d1c2_03a9) ^ 8)
    }
}

/// FNV-1a, 64-bit.
///
/// Deliberately weak diffusion in the high bits for sequential integer
/// inputs; kept as a stress-test hasher for the estimators' hash-quality
/// sensitivity experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnvHasher;

impl ItemHasher for FnvHasher {
    fn hash_bytes(&self, data: &[u8]) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut acc = OFFSET;
        for &byte in data {
            acc ^= u64::from(byte);
            acc = acc.wrapping_mul(PRIME);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_determinism<H: ItemHasher>(h: &H) {
        assert_eq!(h.hash_u64(42), h.hash_u64(42));
        assert_eq!(h.hash_bytes(b"hello"), h.hash_bytes(b"hello"));
        assert_eq!(h.hash_str("hello"), h.hash_bytes(b"hello"));
    }

    #[test]
    fn all_hashers_deterministic() {
        check_determinism(&Md4Hasher);
        check_determinism(&SplitMix64::default());
        check_determinism(&SplitMix64::with_seed(7));
        check_determinism(&FnvHasher);
    }

    #[test]
    fn hash_u64_consistent_with_bytes_for_md4() {
        // The default trait impl promise: hash_u64(x) == hash_bytes(LE(x)).
        let h = Md4Hasher;
        assert_eq!(h.hash_u64(123), h.hash_bytes(&123u64.to_le_bytes()));
    }

    #[test]
    fn seeds_decorrelate_splitmix() {
        let a = SplitMix64::with_seed(1);
        let b = SplitMix64::with_seed(2);
        let same = (0..1000u64)
            .filter(|&i| a.hash_u64(i) == b.hash_u64(i))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_bytes_length_sensitivity() {
        let h = SplitMix64::default();
        // A prefix must not collide with its zero-padded extension.
        assert_ne!(h.hash_bytes(b"abc"), h.hash_bytes(b"abc\0"));
        assert_ne!(h.hash_bytes(b""), h.hash_bytes(b"\0"));
    }

    /// Chi-squared-style bucket balance test for each hasher: hash 64k
    /// consecutive integers into 256 buckets using the low byte, expect
    /// each bucket within 25% of the mean.
    fn bucket_balance<H: ItemHasher>(h: &H, label: &str) {
        let n = 1u64 << 16;
        let mut buckets = [0u32; 256];
        for i in 0..n {
            buckets[(h.hash_u64(i) & 0xFF) as usize] += 1;
        }
        let mean = (n / 256) as f64;
        for (b, &c) in buckets.iter().enumerate() {
            assert!(
                (f64::from(c) - mean).abs() / mean < 0.25,
                "{label}: bucket {b} count {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn md4_bucket_balance() {
        bucket_balance(&Md4Hasher, "md4");
    }

    #[test]
    fn splitmix_bucket_balance() {
        bucket_balance(&SplitMix64::default(), "splitmix64");
    }

    #[test]
    fn high_bits_balance_too() {
        // DHS partitions the ID space by *high* bits, so the top byte must
        // be uniform as well.
        let h = SplitMix64::default();
        let n = 1u64 << 16;
        let mut buckets = [0u32; 256];
        for i in 0..n {
            buckets[(h.hash_u64(i) >> 56) as usize] += 1;
        }
        let mean = (n / 256) as f64;
        for &c in &buckets {
            assert!((f64::from(c) - mean).abs() / mean < 0.25);
        }
    }
}

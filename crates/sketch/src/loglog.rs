//! LogLog and super-LogLog counting (Durand & Flajolet, *Loglog Counting
//! of Large Cardinalities*, ESA 2003).
//!
//! Insertion is identical to PCSA's; storage is not: instead of a bitmap,
//! each bucket keeps only the **maximum** (1-based) rank observed —
//! `O(log log n)` bits per bucket. The plain LogLog estimate is
//!
//! ```text
//! E(n) = α_m · m · 2^{(1/m)·Σ M⟨i⟩}
//! ```
//!
//! super-LogLog adds the *truncation rule*: keep only the
//! `m₀ = ⌊θ₀·m⌋` smallest register values (`θ₀ = 0.7`), which discards the
//! heavy upper tail of the max-rank distribution and reduces the standard
//! error from `1.30/√m` to `1.05/√m` (paper eq. 2):
//!
//! ```text
//! E(n) = α̃_m · m₀ · 2^{(1/m₀)·Σ* M⟨i⟩}
//! ```

use crate::alpha::{alpha_loglog, alpha_superloglog, truncated_count, truncated_raw_estimate};
use crate::estimator::{validate_buckets, CardinalityEstimator, MergeError, SketchConfigError};
use crate::registers::MaxRegisters;
use crate::rho::rho;

pub use crate::alpha::THETA_0;

/// The plain-LogLog estimate from raw register values (max 1-based ranks,
/// 0 = empty bucket). `regs.len()` must be a power of two ≥ 2.
///
/// Shared by [`LogLog::estimate`] and the distributed (DHS) counting path,
/// which reconstructs registers from DHT probes.
pub fn loglog_estimate_from_registers(regs: &[u8]) -> f64 {
    let m = regs.len();
    assert!(m >= 2 && m.is_power_of_two());
    let sum: f64 = regs.iter().map(|&r| f64::from(r)).sum();
    alpha_loglog(m) * m as f64 * 2f64.powf(sum / m as f64)
}

/// The super-LogLog (truncated) estimate from raw register values.
/// `regs.len()` must be a power of two ≥ 2.
///
/// Shared by [`SuperLogLog::estimate`] and the distributed (DHS) counting
/// path.
pub fn superloglog_estimate_from_registers(regs: &[u8]) -> f64 {
    let m = regs.len();
    assert!(m >= 2 && m.is_power_of_two());
    let mut r = MaxRegisters::new(m);
    for (i, &v) in regs.iter().enumerate() {
        r.observe(i, v);
    }
    alpha_superloglog(m) * truncated_raw_estimate(&r)
}

/// Shared register core of the LogLog family.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LogLogCore {
    regs: MaxRegisters,
    bucket_bits: u32,
}

impl LogLogCore {
    fn new(m: usize) -> Result<Self, SketchConfigError> {
        let bucket_bits = validate_buckets(m)?;
        Ok(LogLogCore {
            regs: MaxRegisters::new(m),
            bucket_bits,
        })
    }

    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn insert_hash(&mut self, hash: u64) {
        let m = self.regs.len() as u64;
        // dhs-lint: allow(lossy_cast) — masked by m − 1 (m ≤ 2^16), fits.
        let bucket = (hash & (m - 1)) as usize;
        // 1-based rank of the remaining bits; ρ(0) = 64 saturates to 64+1,
        // clamped into u8 range (255 ≫ any feasible rank).
        // dhs-lint: allow(lossy_cast) — clamped to 255, fits u8.
        let rank = (rho(hash >> self.bucket_bits) + 1).min(255) as u8;
        self.regs.observe(bucket, rank);
    }

    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.regs.len() != other.regs.len() {
            return Err(MergeError {
                reason: format!("m mismatch: {} vs {}", self.regs.len(), other.regs.len()),
            });
        }
        self.regs.union_in_place(&other.regs);
        Ok(())
    }
}

/// Plain LogLog sketch with `m` max-rank registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLog {
    core: LogLogCore,
}

impl LogLog {
    /// Create a LogLog sketch with `m` registers (power of two, ≥ 2).
    pub fn new(m: usize) -> Result<Self, SketchConfigError> {
        Ok(LogLog {
            core: LogLogCore::new(m)?,
        })
    }

    /// Register value (max 1-based rank) of bucket `i`.
    pub fn register(&self, i: usize) -> u8 {
        self.core.regs.get(i)
    }

    /// Record a rank observation directly (the DHS reconstruction path).
    pub fn observe(&mut self, i: usize, rank: u8) {
        self.core.regs.observe(i, rank);
    }
}

impl CardinalityEstimator for LogLog {
    fn buckets(&self) -> usize {
        self.core.regs.len()
    }

    fn insert_hash(&mut self, hash: u64) {
        self.core.insert_hash(hash);
    }

    fn estimate(&self) -> f64 {
        let regs: Vec<u8> = self.core.regs.iter().collect();
        loglog_estimate_from_registers(&regs)
    }

    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.core.merge(&other.core)
    }

    fn is_empty(&self) -> bool {
        self.core.regs.all_zero()
    }
}

/// super-LogLog sketch: LogLog registers plus the truncation rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperLogLog {
    core: LogLogCore,
}

impl SuperLogLog {
    /// Create a super-LogLog sketch with `m` registers (power of two, ≥ 2).
    pub fn new(m: usize) -> Result<Self, SketchConfigError> {
        Ok(SuperLogLog {
            core: LogLogCore::new(m)?,
        })
    }

    /// Register value (max 1-based rank) of bucket `i`.
    pub fn register(&self, i: usize) -> u8 {
        self.core.regs.get(i)
    }

    /// Record a rank observation directly (the DHS reconstruction path).
    pub fn observe(&mut self, i: usize, rank: u8) {
        self.core.regs.observe(i, rank);
    }

    /// Number of registers kept by the truncation rule (`m₀`).
    pub fn truncated_buckets(&self) -> usize {
        truncated_count(self.buckets())
    }
}

impl CardinalityEstimator for SuperLogLog {
    fn buckets(&self) -> usize {
        self.core.regs.len()
    }

    fn insert_hash(&mut self, hash: u64) {
        self.core.insert_hash(hash);
    }

    fn estimate(&self) -> f64 {
        alpha_superloglog(self.buckets()) * truncated_raw_estimate(&self.core.regs)
    }

    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.core.merge(&other.core)
    }

    fn is_empty(&self) -> bool {
        self.core.regs.all_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{ItemHasher, SplitMix64};

    fn fill<E: CardinalityEstimator>(sketch: &mut E, n: u64, seed: u64) {
        let hasher = SplitMix64::with_seed(seed);
        for i in 0..n {
            sketch.insert_hash(hasher.hash_u64(i));
        }
    }

    #[test]
    fn loglog_accuracy_within_three_sigma() {
        // std error ≈ 1.30/√m; m = 256 ⇒ ~8.1%, 3σ ≈ 24%.
        for (seed, n) in [(1u64, 20_000u64), (2, 100_000), (3, 500_000)] {
            let mut sketch = LogLog::new(256).unwrap();
            fill(&mut sketch, n, seed);
            let err = (sketch.estimate() - n as f64).abs() / n as f64;
            assert!(err < 0.24, "n={n} err={err}");
        }
    }

    #[test]
    fn superloglog_accuracy_within_three_sigma() {
        // std error ≈ 1.05/√m; m = 256 ⇒ ~6.6%, 3σ ≈ 20%.
        for (seed, n) in [(1u64, 20_000u64), (2, 100_000), (3, 500_000)] {
            let mut sketch = SuperLogLog::new(256).unwrap();
            fill(&mut sketch, n, seed);
            let err = (sketch.estimate() - n as f64).abs() / n as f64;
            assert!(err < 0.20, "n={n} err={err}");
        }
    }

    #[test]
    fn superloglog_is_unbiased_on_average() {
        // Average relative signed error across many seeds should be near 0
        // (the α̃_m calibration's whole purpose).
        let n = 50_000u64;
        let trials = 20;
        let mut mean_rel = 0.0;
        for seed in 0..trials {
            let mut sketch = SuperLogLog::new(128).unwrap();
            fill(&mut sketch, n, 1000 + seed);
            mean_rel += (sketch.estimate() - n as f64) / n as f64;
        }
        mean_rel /= trials as f64;
        // 1.05/√(m·trials) ≈ 2.1%; allow 3x.
        assert!(mean_rel.abs() < 0.065, "mean signed error {mean_rel}");
    }

    #[test]
    fn duplicate_insensitive() {
        let hasher = SplitMix64::default();
        let mut once = SuperLogLog::new(64).unwrap();
        let mut many = SuperLogLog::new(64).unwrap();
        for i in 0..10_000u64 {
            let h = hasher.hash_u64(i);
            once.insert_hash(h);
            for _ in 0..5 {
                many.insert_hash(h);
            }
        }
        assert_eq!(once, many);
    }

    #[test]
    fn merge_equals_union() {
        let hasher = SplitMix64::default();
        let mut a = SuperLogLog::new(64).unwrap();
        let mut b = SuperLogLog::new(64).unwrap();
        let mut union = SuperLogLog::new(64).unwrap();
        for i in 0..30_000u64 {
            let h = hasher.hash_u64(i);
            if i < 20_000 {
                a.insert_hash(h);
            }
            if i >= 10_000 {
                b.insert_hash(h);
            }
            union.insert_hash(h);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, union);
    }

    #[test]
    fn merge_rejects_mismatched_m() {
        let mut a = LogLog::new(64).unwrap();
        let b = LogLog::new(128).unwrap();
        assert!(a.merge(&b).is_err());
        let mut a = SuperLogLog::new(64).unwrap();
        let b = SuperLogLog::new(32).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn truncation_keeps_seventy_percent() {
        let s = SuperLogLog::new(512).unwrap();
        assert_eq!(s.truncated_buckets(), 358);
    }

    #[test]
    fn truncation_discards_outliers() {
        // Register outliers (a huge max rank in one bucket) should barely
        // move super-LogLog but visibly move plain LogLog.
        let n = 50_000u64;
        let mut ll = LogLog::new(64).unwrap();
        let mut sll = SuperLogLog::new(64).unwrap();
        fill(&mut ll, n, 7);
        fill(&mut sll, n, 7);
        let base_ll = ll.estimate();
        let base_sll = sll.estimate();
        // Poison one bucket with a rank-40 observation (~2^40 "items").
        ll.core.regs.observe(0, 40);
        sll.observe(0, 40);
        let moved_ll = (ll.estimate() - base_ll) / base_ll;
        let moved_sll = (sll.estimate() - base_sll).abs() / base_sll;
        assert!(moved_ll > 0.2, "LogLog should inflate: {moved_ll}");
        assert!(moved_sll < 0.05, "super-LogLog should shrug: {moved_sll}");
    }

    #[test]
    fn observe_reconstruction_matches_insertion() {
        let mut direct = SuperLogLog::new(32).unwrap();
        fill(&mut direct, 10_000, 0);
        let mut rebuilt = SuperLogLog::new(32).unwrap();
        for i in 0..32 {
            let r = direct.register(i);
            if r > 0 {
                rebuilt.observe(i, r);
            }
        }
        assert_eq!(direct, rebuilt);
    }

    #[test]
    fn empty_sketches() {
        let ll = LogLog::new(16).unwrap();
        assert!(ll.is_empty());
        // All-zero registers ⇒ E = α_m·m — small, and must not panic.
        assert!(ll.estimate() < 16.0);
        let sll = SuperLogLog::new(16).unwrap();
        assert!(sll.is_empty());
        assert!(sll.estimate() < 16.0);
    }

    #[test]
    fn invalid_m_rejected() {
        assert!(LogLog::new(0).is_err());
        assert!(LogLog::new(3).is_err());
        assert!(SuperLogLog::new(100).is_err());
    }
}

//! MD4 message digest (RFC 1320), implemented from scratch.
//!
//! The DHS paper's evaluation creates node and item identifiers with MD4,
//! "selected due to its speed on 32-bit CPUs". MD4 is cryptographically
//! broken, but hash sketches only need *pseudo-uniformity*, which MD4
//! provides in abundance; we reimplement it here (rather than pulling a
//! crypto crate) because the paper treats the hash as part of the system.
//!
//! The implementation is the straightforward three-round compression from
//! the RFC, with incremental (streaming) input via [`Md4::update`].
//!
//! ```
//! use dhs_sketch::Md4;
//! assert_eq!(
//!     Md4::hex_digest(b"abc"),
//!     "a448017aaf21d8525fc10ae87aa6729d",
//! );
//! ```

const A0: u32 = 0x6745_2301;
const B0: u32 = 0xefcd_ab89;
const C0: u32 = 0x98ba_dcfe;
const D0: u32 = 0x1032_5476;

#[inline]
fn f(x: u32, y: u32, z: u32) -> u32 {
    (x & y) | (!x & z)
}

#[inline]
fn g(x: u32, y: u32, z: u32) -> u32 {
    (x & y) | (x & z) | (y & z)
}

#[inline]
fn h(x: u32, y: u32, z: u32) -> u32 {
    x ^ y ^ z
}

/// Streaming MD4 hasher.
///
/// Feed bytes with [`update`](Md4::update), then call
/// [`finalize`](Md4::finalize) for the 16-byte digest. For one-shot use,
/// [`Md4::digest`] and [`Md4::hex_digest`] are provided.
#[derive(Debug, Clone)]
pub struct Md4 {
    state: [u32; 4],
    /// Bytes processed so far (for the length-in-bits trailer).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md4 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md4 {
    /// Create a fresh hasher in the RFC 1320 initial state.
    pub fn new() -> Self {
        Md4 {
            state: [A0, B0, C0, D0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Apply padding and return the 16-byte digest, consuming the hasher.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, then zeros until 56 mod 64, then 8-byte LE length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // `update` would also count these 8 bytes into `len`, but `len` is
        // no longer read after this point, so feed the trailer directly.
        let mut trailer = [0u8; 8];
        trailer.copy_from_slice(&bit_len.to_le_bytes());
        self.update(&trailer);
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 16] {
        let mut hasher = Md4::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// One-shot digest of `data`, as a lowercase hex string.
    pub fn hex_digest(data: &[u8]) -> String {
        let digest = Self::digest(data);
        let mut s = String::with_capacity(32);
        for byte in digest {
            use std::fmt::Write as _;
            let _ = write!(s, "{byte:02x}");
        }
        s
    }

    /// One-shot digest truncated to the first 8 bytes as a little-endian
    /// `u64` — the form DHS uses for 64-bit identifiers.
    pub fn digest_u64(data: &[u8]) -> u64 {
        let digest = Self::digest(data);
        // dhs-lint: allow(panic_hygiene) — invariant: the slice length is fixed at 8 above.
        u64::from_le_bytes(digest[..8].try_into().expect("8-byte slice"))
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut x = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            // dhs-lint: allow(panic_hygiene) — invariant: chunks_exact(4) yields 4-byte chunks.
            x[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;

        // Round 1.
        const S1: [u32; 4] = [3, 7, 11, 19];
        for i in 0..16 {
            let step = |a: u32, b: u32, c: u32, d: u32, k: usize, s: u32| {
                a.wrapping_add(f(b, c, d)).wrapping_add(x[k]).rotate_left(s)
            };
            match i % 4 {
                0 => a = step(a, b, c, d, i, S1[0]),
                1 => d = step(d, a, b, c, i, S1[1]),
                2 => c = step(c, d, a, b, i, S1[2]),
                _ => b = step(b, c, d, a, i, S1[3]),
            }
        }

        // Round 2.
        const S2: [u32; 4] = [3, 5, 9, 13];
        const K2: [usize; 16] = [0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15];
        for (i, &k) in K2.iter().enumerate() {
            let step = |a: u32, b: u32, c: u32, d: u32, s: u32| {
                a.wrapping_add(g(b, c, d))
                    .wrapping_add(x[k])
                    .wrapping_add(0x5a82_7999)
                    .rotate_left(s)
            };
            match i % 4 {
                0 => a = step(a, b, c, d, S2[0]),
                1 => d = step(d, a, b, c, S2[1]),
                2 => c = step(c, d, a, b, S2[2]),
                _ => b = step(b, c, d, a, S2[3]),
            }
        }

        // Round 3.
        const S3: [u32; 4] = [3, 9, 11, 15];
        const K3: [usize; 16] = [0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15];
        for (i, &k) in K3.iter().enumerate() {
            let step = |a: u32, b: u32, c: u32, d: u32, s: u32| {
                a.wrapping_add(h(b, c, d))
                    .wrapping_add(x[k])
                    .wrapping_add(0x6ed9_eba1)
                    .rotate_left(s)
            };
            match i % 4 {
                0 => a = step(a, b, c, d, S3[0]),
                1 => d = step(d, a, b, c, S3[1]),
                2 => c = step(c, d, a, b, S3[2]),
                _ => b = step(b, c, d, a, S3[3]),
            }
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full RFC 1320 appendix test suite.
    #[test]
    fn rfc1320_test_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
            (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
            (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
            (b"message digest", "d9130a8164549fe818874806e1c7014b"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "d79e1c308aa5bbcdeea8ed63df412da9",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "043f8582f241db351ce627e153e7f0e4",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "e33b4ddc9c38f2199c3e7b164fcc0536",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(
                Md4::hex_digest(input),
                expected,
                "MD4({:?})",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let oneshot = Md4::digest(&data);
        // Feed in awkward chunk sizes that straddle block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 127, 997] {
            let mut hasher = Md4::new();
            for piece in data.chunks(chunk) {
                hasher.update(piece);
            }
            assert_eq!(hasher.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 56-byte padding boundary must all differ and
        // round-trip deterministically.
        let mut digests = Vec::new();
        for len in 50..70 {
            let data = vec![0xABu8; len];
            let d1 = Md4::digest(&data);
            let d2 = Md4::digest(&data);
            assert_eq!(d1, d2);
            digests.push(d1);
        }
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), 20, "no collisions across lengths");
    }

    #[test]
    fn digest_u64_is_le_prefix() {
        let d = Md4::digest(b"abc");
        let want = u64::from_le_bytes(d[..8].try_into().unwrap());
        assert_eq!(Md4::digest_u64(b"abc"), want);
    }

    #[test]
    fn digest_u64_looks_uniform() {
        // Crude uniformity check: average of 4k hashed values should be
        // near the middle of the u64 range (within 5%).
        let n = 4096u64;
        let mean = (0..n)
            .map(|i| Md4::digest_u64(&i.to_le_bytes()) as f64 / n as f64)
            .sum::<f64>();
        let mid = (u64::MAX as f64) / 2.0;
        assert!(
            (mean - mid).abs() / mid < 0.05,
            "mean {mean:e} vs mid {mid:e}"
        );
    }
}

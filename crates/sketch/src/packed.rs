//! Bit-packed max-rank registers.
//!
//! A `u8` per register wastes space: 64-bit hashes never produce ranks
//! above 64, so 6 bits suffice (and the paper's whole point about
//! LogLog-family sketches is their `O(log log n)` bits per register).
//! [`PackedRegisters`] stores `m` registers at `BITS_PER_REGISTER` bits
//! each — the representation a production node would gossip or persist —
//! and converts losslessly to/from the byte-per-register form used by
//! the estimator code.

use crate::registers::MaxRegisters;

/// Bits per packed register: ranks of 64-bit hashes fit in 6 bits
/// (values 0–64 need 7… but DHS ranks are capped at `k − log2(m) < 64`,
/// and the LogLog register convention stores rank+1 ≤ 64, so 6 bits hold
/// every value up to 63; 64 is clamped, losing nothing measurable).
pub const BITS_PER_REGISTER: u32 = 6;

/// Maximum value a packed register can hold.
pub const MAX_PACKED: u8 = (1 << BITS_PER_REGISTER) - 1;

/// `m` max-rank registers at 6 bits each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRegisters {
    words: Vec<u64>,
    len: usize,
}

impl PackedRegisters {
    /// Create `m` zeroed packed registers.
    #[allow(clippy::cast_possible_truncation)]
    pub fn new(m: usize) -> Self {
        let total_bits = m as u64 * u64::from(BITS_PER_REGISTER);
        PackedRegisters {
            // dhs-lint: allow(lossy_cast) — a register count, far below
            // usize::MAX on any supported target.
            words: vec![0; total_bits.div_ceil(64) as usize],
            len: m,
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `m == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory footprint of the register payload in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Read register `i`.
    #[allow(clippy::cast_possible_truncation)]
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len);
        let bit = i as u64 * u64::from(BITS_PER_REGISTER);
        // dhs-lint: allow(lossy_cast) — div/mod by 64 bound both values.
        let (word, offset) = ((bit / 64) as usize, (bit % 64) as u32);
        let lo = self.words[word] >> offset;
        let value = if offset + BITS_PER_REGISTER <= 64 {
            lo
        } else {
            lo | (self.words[word + 1] << (64 - offset))
        };
        // dhs-lint: allow(lossy_cast) — masked to MAX_PACKED, fits u8.
        (value & u64::from(MAX_PACKED)) as u8
    }

    /// Set register `i` to `value` (clamped to the packed maximum).
    pub fn set(&mut self, i: usize, value: u8) {
        assert!(i < self.len);
        let value = u64::from(value.min(MAX_PACKED));
        let bit = i as u64 * u64::from(BITS_PER_REGISTER);
        // dhs-lint: allow(lossy_cast) — div/mod by 64 bound both values.
        let (word, offset) = ((bit / 64) as usize, (bit % 64) as u32);
        let mask = u64::from(MAX_PACKED);
        self.words[word] &= !(mask << offset);
        self.words[word] |= value << offset;
        if offset + BITS_PER_REGISTER > 64 {
            let spill = BITS_PER_REGISTER - (64 - offset);
            let spill_mask = (1u64 << spill) - 1;
            self.words[word + 1] &= !spill_mask;
            self.words[word + 1] |= value >> (64 - offset);
        }
    }

    /// Record a rank observation (keeps the max), like
    /// [`MaxRegisters::observe`].
    pub fn observe(&mut self, i: usize, rank: u8) {
        if rank.min(MAX_PACKED) > self.get(i) {
            self.set(i, rank);
        }
    }

    /// Unpack into the byte-per-register form the estimators consume.
    pub fn unpack(&self) -> MaxRegisters {
        let mut regs = MaxRegisters::new(self.len);
        for i in 0..self.len {
            regs.observe(i, self.get(i));
        }
        regs
    }

    /// Pack from byte-per-register form (values clamp at the packed max).
    pub fn pack(regs: &MaxRegisters) -> Self {
        let mut packed = Self::new(regs.len());
        for (i, v) in regs.iter().enumerate() {
            packed.set(i, v);
        }
        packed
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test data has known ranges
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn get_set_roundtrip_all_positions() {
        let m = 100;
        let mut p = PackedRegisters::new(m);
        for i in 0..m {
            p.set(i, (i % 64) as u8);
        }
        for i in 0..m {
            assert_eq!(p.get(i), (i % 64) as u8, "register {i}");
        }
    }

    #[test]
    fn values_clamp_at_packed_max() {
        let mut p = PackedRegisters::new(4);
        p.set(0, 255);
        assert_eq!(p.get(0), MAX_PACKED);
        p.observe(1, 200);
        assert_eq!(p.get(1), MAX_PACKED);
    }

    #[test]
    fn observe_keeps_max() {
        let mut p = PackedRegisters::new(2);
        p.observe(0, 5);
        p.observe(0, 3);
        assert_eq!(p.get(0), 5);
        p.observe(0, 9);
        assert_eq!(p.get(0), 9);
    }

    #[test]
    fn pack_unpack_is_lossless_for_in_range_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut regs = MaxRegisters::new(512);
        for i in 0..512 {
            regs.observe(i, rng.gen_range(0..=MAX_PACKED));
        }
        let packed = PackedRegisters::pack(&regs);
        assert_eq!(packed.unpack(), regs);
    }

    #[test]
    fn payload_is_three_quarters_smaller() {
        let p = PackedRegisters::new(1024);
        // 1024 × 6 bits = 768 bytes vs 1024 unpacked.
        assert_eq!(p.payload_bytes(), 768);
    }

    #[test]
    fn neighbors_do_not_clobber() {
        // Straddling word boundaries: setting one register must not
        // disturb its neighbors, for every alignment.
        for target in 0..64usize {
            let mut p = PackedRegisters::new(64);
            for i in 0..64 {
                p.set(i, 0b10_1010);
            }
            p.set(target, 0b01_0101);
            for i in 0..64 {
                let want = if i == target { 0b01_0101 } else { 0b10_1010 };
                assert_eq!(p.get(i), want, "target {target}, register {i}");
            }
        }
    }

    #[test]
    fn estimate_from_packed_matches_unpacked() {
        use crate::hash::{ItemHasher, SplitMix64};
        use crate::CardinalityEstimator;
        let hasher = SplitMix64::default();
        let mut sketch = crate::SuperLogLog::new(128).unwrap();
        for i in 0..50_000u64 {
            sketch.insert_hash(hasher.hash_u64(i));
        }
        let regs: Vec<u8> = (0..128).map(|i| sketch.register(i)).collect();
        let mut mr = MaxRegisters::new(128);
        for (i, &v) in regs.iter().enumerate() {
            mr.observe(i, v);
        }
        let packed = PackedRegisters::pack(&mr);
        let unpacked: Vec<u8> = (0..128).map(|i| packed.get(i)).collect();
        assert_eq!(
            crate::superloglog_estimate_from_registers(&unpacked),
            sketch.estimate()
        );
    }
}

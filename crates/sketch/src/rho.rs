//! Bit-rank helpers.
//!
//! The hash-sketch literature (and the DHS paper) uses the function
//! `ρ(y)`: the position of the least-significant 1-bit in the binary
//! representation of `y`, with positions counted from 0. The paper defines
//! `ρ(0) = L` (the bit width), i.e. the rank saturates when no 1-bit exists.
//!
//! For a pseudo-uniform `y`, `P(ρ(y) = k) = 2^{-k-1}` — the geometric
//! distribution that makes hash sketches tick (paper eq. 1).

/// Position of the least-significant 1-bit of `y` (0-based).
///
/// Returns 64 for `y == 0` (the saturated value for a 64-bit word, matching
/// the paper's convention `ρ(0) = L`).
///
/// ```
/// use dhs_sketch::rho;
/// assert_eq!(rho(0b1), 0);
/// assert_eq!(rho(0b1010_0000), 5);
/// assert_eq!(rho(0), 64);
/// ```
#[inline]
pub fn rho(y: u64) -> u32 {
    y.trailing_zeros()
}

/// `ρ(y)` restricted to a `width`-bit value: returns
/// `min(rho(y), width)`.
///
/// DHS works with `k`-bit keys (`k ≤ L`); an all-zero `k`-bit key has rank
/// `k`, not 64. `width` must be ≤ 64.
///
/// ```
/// use dhs_sketch::rho_capped;
/// assert_eq!(rho_capped(0, 24), 24);
/// assert_eq!(rho_capped(0b100, 24), 2);
/// ```
#[inline]
pub fn rho_capped(y: u64, width: u32) -> u32 {
    debug_assert!(width <= 64);
    rho(y).min(width)
}

/// Keep only the `k` low-order bits of `y` (`lsb_k` in the paper).
///
/// `k` must be ≤ 64; `k == 64` returns `y` unchanged.
#[inline]
pub fn lsb(y: u64, k: u32) -> u64 {
    debug_assert!(k <= 64);
    if k == 64 {
        y
    } else {
        y & ((1u64 << k) - 1)
    }
}

/// The value of bit `k` of `y` (0 or 1), bit 0 being least significant.
#[inline]
pub fn bit(y: u64, k: u32) -> u64 {
    debug_assert!(k < 64);
    (y >> k) & 1
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test data has known ranges
mod tests {
    use super::*;

    #[test]
    fn rho_of_powers_of_two() {
        for k in 0..64u32 {
            assert_eq!(rho(1u64 << k), k);
        }
    }

    #[test]
    fn rho_ignores_higher_bits() {
        assert_eq!(rho(0b1011_0100), 2);
        assert_eq!(rho(u64::MAX), 0);
        assert_eq!(rho(u64::MAX << 17), 17);
    }

    #[test]
    fn rho_zero_saturates() {
        assert_eq!(rho(0), 64);
        assert_eq!(rho_capped(0, 24), 24);
        assert_eq!(rho_capped(0, 64), 64);
    }

    #[test]
    fn rho_capped_caps_only_at_width() {
        assert_eq!(rho_capped(1 << 30, 24), 24);
        assert_eq!(rho_capped(1 << 23, 24), 23);
        assert_eq!(rho_capped(1 << 5, 24), 5);
    }

    #[test]
    fn lsb_masks() {
        assert_eq!(lsb(0xFFFF_FFFF_FFFF_FFFF, 8), 0xFF);
        assert_eq!(lsb(0x1234_5678_9ABC_DEF0, 64), 0x1234_5678_9ABC_DEF0);
        assert_eq!(lsb(0b1111, 0), 0);
    }

    #[test]
    fn bit_extracts() {
        let y = 0b1010_0110u64;
        let expected = [0, 1, 1, 0, 0, 1, 0, 1];
        for (k, &e) in expected.iter().enumerate() {
            assert_eq!(bit(y, k as u32), e, "bit {k}");
        }
    }

    #[test]
    fn rho_distribution_is_geometric() {
        // Over all 16-bit values, exactly 2^{15-k} values have rho == k.
        let mut counts = [0u32; 17];
        for y in 0..(1u64 << 16) {
            counts[rho_capped(y, 16) as usize] += 1;
        }
        for (k, &count) in counts.iter().enumerate().take(16) {
            assert_eq!(count, 1 << (15 - k), "rank {k}");
        }
        assert_eq!(counts[16], 1); // only y == 0
    }
}

//! Register storage shared by the sketch families.
//!
//! * [`BitmapArray`] — one `u64` bitmap per bucket (PCSA stores *which*
//!   ranks were observed).
//! * [`MaxRegisters`] — one `u8` per bucket holding the *maximum* observed
//!   rank (LogLog / super-LogLog / HyperLogLog only need the max).
//!
//! Both support the union operation that makes sketches mergeable.

/// An array of `m` bitmaps, each at most 64 bits wide.
///
/// Bit `r` of bitmap `i` is set iff some inserted item selected bucket `i`
/// and had rank `r` (with `r < width`; higher ranks are recorded in the
/// last usable bit position's stead only if `saturate` semantics are chosen
/// by the caller — PCSA simply drops ranks ≥ width, which is harmless
/// because the estimator never reads past the first 0-bit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapArray {
    maps: Vec<u64>,
    width: u32,
}

impl BitmapArray {
    /// Create `m` zeroed bitmaps of `width` bits each (`1 ..= 64`).
    pub fn new(m: usize, width: u32) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        BitmapArray {
            maps: vec![0; m],
            width,
        }
    }

    /// Number of bitmaps.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True when there are no bitmaps (never the case for a valid sketch).
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Bitmap width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Set bit `rank` of bitmap `i`; ranks ≥ width are ignored.
    #[inline]
    pub fn set(&mut self, i: usize, rank: u32) {
        if rank < self.width {
            self.maps[i] |= 1u64 << rank;
        }
    }

    /// Whether bit `rank` of bitmap `i` is set.
    #[inline]
    pub fn get(&self, i: usize, rank: u32) -> bool {
        rank < self.width && (self.maps[i] >> rank) & 1 == 1
    }

    /// Raw bitmap `i`.
    #[inline]
    pub fn raw(&self, i: usize) -> u64 {
        self.maps[i]
    }

    /// Position of the lowest 0-bit of bitmap `i` (PCSA's `M⟨i⟩`), capped
    /// at the width.
    #[inline]
    pub fn lowest_zero(&self, i: usize) -> u32 {
        (self.maps[i].trailing_ones()).min(self.width)
    }

    /// Position of the highest 1-bit of bitmap `i`, or `None` if empty.
    #[inline]
    pub fn highest_one(&self, i: usize) -> Option<u32> {
        let v = self.maps[i];
        if v == 0 {
            None
        } else {
            Some(63 - v.leading_zeros())
        }
    }

    /// OR every bitmap of `other` into `self`. Panics if shapes differ
    /// (callers validate first and surface a `MergeError`).
    pub fn union_in_place(&mut self, other: &Self) {
        assert_eq!(self.maps.len(), other.maps.len());
        assert_eq!(self.width, other.width);
        for (a, b) in self.maps.iter_mut().zip(&other.maps) {
            *a |= b;
        }
    }

    /// True iff every bitmap is zero.
    pub fn all_zero(&self) -> bool {
        self.maps.iter().all(|&v| v == 0)
    }
}

/// An array of `m` max-rank registers.
///
/// Register `i` holds the maximum *1-based* rank observed for bucket `i`
/// (`0` means the bucket never received an item) — the `M^{(i)}` of
/// Durand–Flajolet and of HyperLogLog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxRegisters {
    regs: Vec<u8>,
}

impl MaxRegisters {
    /// Create `m` zeroed registers.
    pub fn new(m: usize) -> Self {
        MaxRegisters { regs: vec![0; m] }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when there are no registers.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Record a 1-based rank for bucket `i` (keeps the max).
    #[inline]
    pub fn observe(&mut self, i: usize, rank: u8) {
        if rank > self.regs[i] {
            self.regs[i] = rank;
        }
    }

    /// Current value of register `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        self.regs[i]
    }

    /// Iterate over register values.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.regs.iter().copied()
    }

    /// Element-wise max of `other` into `self`.
    pub fn union_in_place(&mut self, other: &Self) {
        assert_eq!(self.regs.len(), other.regs.len());
        for (a, &b) in self.regs.iter_mut().zip(&other.regs) {
            *a = (*a).max(b);
        }
    }

    /// Number of still-zero registers (HyperLogLog's `V`).
    pub fn zero_count(&self) -> usize {
        self.regs.iter().filter(|&&r| r == 0).count()
    }

    /// True iff every register is zero.
    pub fn all_zero(&self) -> bool {
        self.regs.iter().all(|&r| r == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_roundtrip() {
        let mut b = BitmapArray::new(4, 24);
        b.set(0, 0);
        b.set(0, 5);
        b.set(3, 23);
        assert!(b.get(0, 0));
        assert!(b.get(0, 5));
        assert!(!b.get(0, 1));
        assert!(b.get(3, 23));
        assert!(!b.get(1, 0));
    }

    #[test]
    fn bitmap_ignores_out_of_width_ranks() {
        let mut b = BitmapArray::new(1, 8);
        b.set(0, 8);
        b.set(0, 63);
        assert!(b.all_zero());
        assert!(!b.get(0, 8));
    }

    #[test]
    fn lowest_zero_semantics() {
        let mut b = BitmapArray::new(1, 16);
        assert_eq!(b.lowest_zero(0), 0);
        b.set(0, 0);
        b.set(0, 1);
        b.set(0, 3);
        assert_eq!(b.lowest_zero(0), 2);
        for r in 0..16 {
            b.set(0, r);
        }
        assert_eq!(b.lowest_zero(0), 16, "full bitmap caps at width");
    }

    #[test]
    fn highest_one_semantics() {
        let mut b = BitmapArray::new(2, 24);
        assert_eq!(b.highest_one(0), None);
        b.set(0, 3);
        b.set(0, 11);
        assert_eq!(b.highest_one(0), Some(11));
        assert_eq!(b.highest_one(1), None);
    }

    #[test]
    fn bitmap_union_is_or() {
        let mut a = BitmapArray::new(2, 24);
        let mut b = BitmapArray::new(2, 24);
        a.set(0, 1);
        b.set(0, 2);
        b.set(1, 7);
        a.union_in_place(&b);
        assert!(a.get(0, 1) && a.get(0, 2) && a.get(1, 7));
    }

    #[test]
    fn registers_keep_max() {
        let mut r = MaxRegisters::new(2);
        r.observe(0, 3);
        r.observe(0, 2);
        assert_eq!(r.get(0), 3);
        r.observe(0, 9);
        assert_eq!(r.get(0), 9);
        assert_eq!(r.get(1), 0);
    }

    #[test]
    fn register_union_is_elementwise_max() {
        let mut a = MaxRegisters::new(3);
        let mut b = MaxRegisters::new(3);
        a.observe(0, 5);
        b.observe(0, 3);
        b.observe(2, 8);
        a.union_in_place(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 8);
    }

    #[test]
    fn zero_count_tracks_empties() {
        let mut r = MaxRegisters::new(4);
        assert_eq!(r.zero_count(), 4);
        r.observe(1, 1);
        r.observe(3, 2);
        assert_eq!(r.zero_count(), 2);
        assert!(!r.all_zero());
    }
}

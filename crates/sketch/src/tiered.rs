//! Tiered (compressed) max-rank register storage.
//!
//! A store holding millions of sketches (one per user/bucket metric, the
//! paper's §4.2 histogram use) cannot afford a byte per register: most
//! metrics are small, so most registers are zero. [`TieredRegisters`]
//! keeps one logical `m`-register max-rank sketch in whichever of three
//! representations is cheapest for its current fill, promoting as
//! registers fill (the HyperLogLogLog-style compression lever of
//! Karppa & Pagh, PAPERS.md):
//!
//! * **Sparse** — a sorted `(index, rank)` entry list. An empty sketch
//!   costs nothing; a sketch with `e` nonzero registers costs
//!   `e · 4` bytes. The tier of the long tail.
//! * **Packed** — 6 bits per register ([`PackedRegisters`]), `~0.75·m`
//!   bytes regardless of fill. Entered when the sparse list would cost
//!   more than packing everything.
//! * **Dense** — one byte per register ([`MaxRegisters`]), entered when
//!   nearly every register is nonzero: at that point the sketch is
//!   clearly hot, the 33% size premium over packed is bounded, and reads
//!   and writes become single byte accesses.
//!
//! All three tiers describe the same logical register array; conversions
//! are lossless (ranks are clamped to [`MAX_PACKED`] *on observation*,
//! in every tier, so no promotion or demotion can change a value — see
//! [`TieredRegisters::observe`]). Promotion points are pure functions of
//! the observation stream, which keeps any store built on this type
//! deterministic.

use crate::packed::{PackedRegisters, MAX_PACKED};
use crate::registers::MaxRegisters;
use crate::wire::DecodeError;

/// Magic byte of the tiered wire format (`0xD5` is the fixed-layout
/// sketch format in [`crate::wire`]).
pub const TIERED_MAGIC: u8 = 0xD6;

/// Header bytes of the tiered wire format (magic, tier tag, u32 `m`).
pub const TIERED_HEADER: usize = 6;

/// Bytes of the 6-bit packed register stream for `m` registers.
fn packed_stream_bytes(m: usize) -> usize {
    (m * 6).div_ceil(8)
}

/// Which representation a [`TieredRegisters`] currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Sorted `(index, rank)` entry list.
    Sparse,
    /// 6-bit packed registers.
    Packed,
    /// Byte-per-register.
    Dense,
}

/// Bytes one sparse entry occupies (a `(u16, u8)` pair, padded).
pub const SPARSE_ENTRY_BYTES: usize = std::mem::size_of::<(u16, u8)>();

/// Dense promotion point: promote packed → dense when more than
/// `DENSE_FILL_NUM / DENSE_FILL_DEN` of the registers are nonzero.
pub const DENSE_FILL_NUM: usize = 7;
/// See [`DENSE_FILL_NUM`].
pub const DENSE_FILL_DEN: usize = 8;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    Sparse(Vec<(u16, u8)>),
    Packed(PackedRegisters),
    Dense(MaxRegisters),
}

/// One logical array of `m` max-rank registers, stored in the cheapest
/// of the three tiers for its current fill. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieredRegisters {
    len: usize,
    nonzero: usize,
    repr: Repr,
}

impl TieredRegisters {
    /// An empty (all-zero) sketch of `m` registers, in the sparse tier.
    ///
    /// `m` must fit the sparse index width (`m ≤ 65536`, the same bound
    /// the DHS vector id carries on the wire).
    pub fn new(m: usize) -> Self {
        assert!(m <= 1 << 16, "m {m} exceeds the u16 index space");
        TieredRegisters {
            len: m,
            nonzero: 0,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// Number of logical registers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `m == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nonzero registers.
    pub fn nonzero(&self) -> usize {
        self.nonzero
    }

    /// The current representation tier.
    pub fn tier(&self) -> Tier {
        match self.repr {
            Repr::Sparse(_) => Tier::Sparse,
            Repr::Packed(_) => Tier::Packed,
            Repr::Dense(_) => Tier::Dense,
        }
    }

    /// Bytes the register payload occupies in the current tier (the
    /// quantity a memory-budgeted store accounts and evicts against).
    pub fn payload_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sparse(entries) => entries.len() * SPARSE_ENTRY_BYTES,
            Repr::Packed(p) => p.payload_bytes(),
            Repr::Dense(d) => d.len(),
        }
    }

    /// Current value of register `i` (0 = never observed).
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len, "register {i} out of range");
        match &self.repr {
            #[allow(clippy::cast_possible_truncation)]
            // dhs-lint: allow(lossy_cast) — `i < self.len ≤ 65536` checked above.
            Repr::Sparse(entries) => match entries.binary_search_by_key(&(i as u16), |e| e.0) {
                Ok(pos) => entries[pos].1,
                Err(_) => 0,
            },
            Repr::Packed(p) => p.get(i),
            Repr::Dense(d) => d.get(i),
        }
    }

    /// Record a (1-based) rank observation for register `i`, keeping the
    /// max. Ranks clamp at [`MAX_PACKED`] in **every** tier, so the value
    /// stored is independent of the representation and promotions are
    /// lossless. Returns the tier promoted *into*, if this observation
    /// triggered one.
    pub fn observe(&mut self, i: usize, rank: u8) -> Option<Tier> {
        assert!(i < self.len, "register {i} out of range");
        let rank = rank.min(MAX_PACKED);
        if rank == 0 {
            return None;
        }
        let grew = match &mut self.repr {
            #[allow(clippy::cast_possible_truncation)]
            // dhs-lint: allow(lossy_cast) — `i < self.len ≤ 65536` checked above.
            Repr::Sparse(entries) => match entries.binary_search_by_key(&(i as u16), |e| e.0) {
                Ok(pos) => {
                    if rank > entries[pos].1 {
                        entries[pos].1 = rank;
                    }
                    false
                }
                Err(pos) => {
                    // dhs-lint: allow(lossy_cast) — `i < self.len ≤ 65536`.
                    entries.insert(pos, (i as u16, rank));
                    true
                }
            },
            Repr::Packed(p) => {
                let grew = p.get(i) == 0;
                p.observe(i, rank);
                grew
            }
            Repr::Dense(d) => {
                let grew = d.get(i) == 0;
                d.observe(i, rank);
                grew
            }
        };
        if grew {
            self.nonzero += 1;
        }
        self.maybe_promote()
    }

    /// Promote when the current tier stopped being the right one:
    /// sparse → packed once the entry list costs at least as much as
    /// packing all `m` registers, packed → dense once register fill
    /// crosses [`DENSE_FILL_NUM`]/[`DENSE_FILL_DEN`].
    fn maybe_promote(&mut self) -> Option<Tier> {
        match &self.repr {
            Repr::Sparse(entries) => {
                let packed_cost = PackedRegisters::new(self.len).payload_bytes();
                if entries.len() * SPARSE_ENTRY_BYTES >= packed_cost && packed_cost > 0 {
                    let mut packed = PackedRegisters::new(self.len);
                    for &(idx, rank) in entries {
                        packed.set(usize::from(idx), rank);
                    }
                    self.repr = Repr::Packed(packed);
                    return Some(Tier::Packed);
                }
                None
            }
            Repr::Packed(p) => {
                if self.nonzero * DENSE_FILL_DEN >= self.len * DENSE_FILL_NUM {
                    self.repr = Repr::Dense(p.unpack());
                    return Some(Tier::Dense);
                }
                None
            }
            Repr::Dense(_) => None,
        }
    }

    /// Re-encode into the smallest tier for the current fill (sparse if
    /// the entry list is strictly cheaper than packing, else packed).
    /// Lossless; used before spilling to a cold tier or wire-encoding.
    /// Returns the tier chosen.
    pub fn compress(&mut self) -> Tier {
        let packed_cost = PackedRegisters::new(self.len).payload_bytes();
        if self.nonzero * SPARSE_ENTRY_BYTES < packed_cost {
            if self.tier() != Tier::Sparse {
                let mut entries = Vec::with_capacity(self.nonzero);
                for i in 0..self.len {
                    let v = self.get(i);
                    if v > 0 {
                        #[allow(clippy::cast_possible_truncation)]
                        // dhs-lint: allow(lossy_cast) — i < len ≤ 65536.
                        entries.push((i as u16, v));
                    }
                }
                self.repr = Repr::Sparse(entries);
            }
            Tier::Sparse
        } else {
            if self.tier() != Tier::Packed {
                let mut packed = PackedRegisters::new(self.len);
                for i in 0..self.len {
                    let v = self.get(i);
                    if v > 0 {
                        packed.set(i, v);
                    }
                }
                self.repr = Repr::Packed(packed);
            }
            Tier::Packed
        }
    }

    /// The register values as a byte-per-register vector — the form the
    /// estimator functions
    /// ([`crate::superloglog_estimate_from_registers`],
    /// [`crate::hyperloglog_estimate_from_registers`]) consume.
    pub fn register_vec(&self) -> Vec<u8> {
        match &self.repr {
            Repr::Sparse(entries) => {
                let mut out = vec![0u8; self.len];
                for &(idx, rank) in entries {
                    out[usize::from(idx)] = rank;
                }
                out
            }
            Repr::Packed(p) => (0..self.len).map(|i| p.get(i)).collect(),
            Repr::Dense(d) => d.iter().collect(),
        }
    }

    /// Unpack into [`MaxRegisters`] (the estimator-side form).
    pub fn unpack(&self) -> MaxRegisters {
        let mut regs = MaxRegisters::new(self.len);
        for (i, v) in self.register_vec().into_iter().enumerate() {
            if v > 0 {
                regs.observe(i, v);
            }
        }
        regs
    }

    /// Element-wise max of `other` into `self` (sketch union). Panics if
    /// lengths differ (callers validate shapes first, as with
    /// [`MaxRegisters::union_in_place`]). Returns the last promotion the
    /// merge triggered, if any.
    pub fn union_in_place(&mut self, other: &Self) -> Option<Tier> {
        assert_eq!(self.len, other.len);
        let mut promoted = None;
        match &other.repr {
            Repr::Sparse(entries) => {
                for &(idx, rank) in entries {
                    promoted = self.observe(usize::from(idx), rank).or(promoted);
                }
            }
            _ => {
                for i in 0..other.len {
                    let v = other.get(i);
                    if v > 0 {
                        promoted = self.observe(i, v).or(promoted);
                    }
                }
            }
        }
        promoted
    }

    /// Exact wire size of the current representation (header + payload).
    pub fn wire_size(&self) -> usize {
        TIERED_HEADER
            + match &self.repr {
                Repr::Sparse(entries) => 4 + entries.len() * 3,
                Repr::Packed(_) => packed_stream_bytes(self.len),
                Repr::Dense(_) => self.len,
            }
    }

    /// Encode to the tiered wire format (magic `0xD6`):
    ///
    /// ```text
    /// byte 0      magic 0xD6
    /// byte 1      tier (1 = sparse, 2 = packed, 3 = dense)
    /// bytes 2..6  m as u32 LE
    /// payload     sparse: u32 LE entry count, then count × (u16 LE index,
    ///             u8 rank), indexes strictly increasing;
    ///             packed: ⌈6m/8⌉ bytes, register i at bit offset 6·i;
    ///             dense:  m × u8 registers
    /// ```
    ///
    /// The encoding preserves the tier, so a spilled-and-recovered sketch
    /// is byte-for-byte the struct that was spilled.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        out.push(TIERED_MAGIC);
        out.push(match self.repr {
            Repr::Sparse(_) => 1,
            Repr::Packed(_) => 2,
            Repr::Dense(_) => 3,
        });
        #[allow(clippy::cast_possible_truncation)]
        // dhs-lint: allow(lossy_cast) — m ≤ 65536 by construction.
        out.extend_from_slice(&(self.len as u32).to_le_bytes());
        match &self.repr {
            Repr::Sparse(entries) => {
                #[allow(clippy::cast_possible_truncation)]
                // dhs-lint: allow(lossy_cast) — entries.len() ≤ m ≤ 65536.
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for &(idx, rank) in entries {
                    out.extend_from_slice(&idx.to_le_bytes());
                    out.push(rank);
                }
            }
            Repr::Packed(p) => {
                // Re-derive the 6-bit stream from register values so the
                // encoding is independent of the in-memory word layout.
                let mut acc = 0u32;
                let mut bits = 0u32;
                for i in 0..self.len {
                    acc |= u32::from(p.get(i)) << bits;
                    bits += 6;
                    while bits >= 8 {
                        #[allow(clippy::cast_possible_truncation)]
                        // dhs-lint: allow(lossy_cast) — masked to one byte.
                        out.push((acc & 0xFF) as u8);
                        acc >>= 8;
                        bits -= 8;
                    }
                }
                if bits > 0 {
                    #[allow(clippy::cast_possible_truncation)]
                    // dhs-lint: allow(lossy_cast) — masked to one byte.
                    out.push((acc & 0xFF) as u8);
                }
            }
            Repr::Dense(d) => out.extend(d.iter()),
        }
        out
    }

    /// Decode the tiered wire format, validating the header, entry order,
    /// rank range, and payload length. The decoded value reproduces the
    /// encoded tier exactly.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < TIERED_HEADER {
            return Err(DecodeError::TooShort);
        }
        if bytes[0] != TIERED_MAGIC {
            return Err(DecodeError::BadMagic(bytes[0]));
        }
        let tier = bytes[1];
        let m_raw = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
        if m_raw > 1 << 16 {
            return Err(DecodeError::InvalidParams);
        }
        // dhs-lint: allow(lossy_cast) — m_raw ≤ 65536 checked above.
        let m = m_raw as usize;
        let payload = &bytes[TIERED_HEADER..];
        let (repr, nonzero) = match tier {
            1 => {
                if payload.len() < 4 {
                    return Err(DecodeError::TooShort);
                }
                let count = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
                // dhs-lint: allow(lossy_cast) — u32 → usize, lossless here.
                let count = count as usize;
                let body = &payload[4..];
                if body.len() != count * 3 {
                    return Err(DecodeError::LengthMismatch {
                        expected: count * 3,
                        found: body.len(),
                    });
                }
                let mut entries = Vec::with_capacity(count);
                let mut prev: Option<u16> = None;
                for chunk in body.chunks_exact(3) {
                    let idx = u16::from_le_bytes([chunk[0], chunk[1]]);
                    let rank = chunk[2];
                    let in_order = prev.is_none_or(|p| idx > p);
                    if usize::from(idx) >= m || rank == 0 || rank > MAX_PACKED || !in_order {
                        return Err(DecodeError::InvalidParams);
                    }
                    prev = Some(idx);
                    entries.push((idx, rank));
                }
                let nz = entries.len();
                (Repr::Sparse(entries), nz)
            }
            2 => {
                let expected = packed_stream_bytes(m);
                if payload.len() != expected {
                    return Err(DecodeError::LengthMismatch {
                        expected,
                        found: payload.len(),
                    });
                }
                let mut packed = PackedRegisters::new(m);
                let mut nz = 0usize;
                let mut acc = 0u32;
                let mut bits = 0u32;
                let mut next = payload.iter();
                for i in 0..m {
                    while bits < 6 {
                        // Length check above guarantees enough bytes.
                        let b = next.next().copied().unwrap_or(0);
                        acc |= u32::from(b) << bits;
                        bits += 8;
                    }
                    #[allow(clippy::cast_possible_truncation)]
                    // dhs-lint: allow(lossy_cast) — masked to 6 bits.
                    let v = (acc & 0x3F) as u8;
                    acc >>= 6;
                    bits -= 6;
                    if v > 0 {
                        packed.set(i, v);
                        nz += 1;
                    }
                }
                (Repr::Packed(packed), nz)
            }
            3 => {
                if payload.len() != m {
                    return Err(DecodeError::LengthMismatch {
                        expected: m,
                        found: payload.len(),
                    });
                }
                let mut dense = MaxRegisters::new(m);
                let mut nz = 0usize;
                for (i, &v) in payload.iter().enumerate() {
                    if v > MAX_PACKED {
                        return Err(DecodeError::InvalidParams);
                    }
                    if v > 0 {
                        dense.observe(i, v);
                        nz += 1;
                    }
                }
                (Repr::Dense(dense), nz)
            }
            t => return Err(DecodeError::UnknownKind(t)),
        };
        Ok(TieredRegisters {
            len: m,
            nonzero,
            repr,
        })
    }

    /// Iterate the nonzero registers as `(index, rank)` pairs in index
    /// order, without materializing a dense vector.
    pub fn iter_nonzero(&self) -> Box<dyn Iterator<Item = (usize, u8)> + '_> {
        match &self.repr {
            Repr::Sparse(entries) => {
                Box::new(entries.iter().map(|&(idx, rank)| (usize::from(idx), rank)))
            }
            Repr::Packed(p) => Box::new((0..self.len).filter_map(|i| match p.get(i) {
                0 => None,
                v => Some((i, v)),
            })),
            Repr::Dense(d) => Box::new(d.iter().enumerate().filter_map(|(i, v)| match v {
                0 => None,
                v => Some((i, v)),
            })),
        }
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test data has known ranges
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference model: a plain dense register array with the same
    /// clamping rule.
    fn reference(m: usize, stream: &[(usize, u8)]) -> MaxRegisters {
        let mut regs = MaxRegisters::new(m);
        for &(i, rank) in stream {
            regs.observe(i, rank.min(MAX_PACKED));
        }
        regs
    }

    #[test]
    fn starts_sparse_and_empty() {
        let t = TieredRegisters::new(64);
        assert_eq!(t.tier(), Tier::Sparse);
        assert_eq!(t.payload_bytes(), 0);
        assert_eq!(t.nonzero(), 0);
        assert_eq!(t.register_vec(), vec![0u8; 64]);
    }

    #[test]
    fn matches_reference_through_all_tiers() {
        let m = 128;
        let mut rng = StdRng::seed_from_u64(7);
        let stream: Vec<(usize, u8)> = (0..2_000)
            .map(|_| (rng.gen_range(0..m), rng.gen_range(0..70u32) as u8))
            .collect();
        let mut tiered = TieredRegisters::new(m);
        for &(i, rank) in &stream {
            tiered.observe(i, rank);
        }
        // Dense by now (every register hit with high probability).
        assert_eq!(tiered.tier(), Tier::Dense);
        let reference = reference(m, &stream);
        for i in 0..m {
            assert_eq!(tiered.get(i), reference.get(i), "register {i}");
        }
        assert_eq!(tiered.unpack(), reference);
    }

    #[test]
    fn promotion_points_are_exact() {
        let m = 64; // packed payload = 48 bytes → promote at 12 entries
        let mut t = TieredRegisters::new(m);
        let packed_cost = PackedRegisters::new(m).payload_bytes();
        let promote_at = packed_cost / SPARSE_ENTRY_BYTES;
        for e in 0..promote_at {
            let promoted = t.observe(e, 1);
            if e + 1 < promote_at {
                assert_eq!(promoted, None, "early promotion at entry {e}");
                assert_eq!(t.tier(), Tier::Sparse);
            } else {
                assert_eq!(promoted, Some(Tier::Packed));
            }
        }
        assert_eq!(t.tier(), Tier::Packed);
        // Fill to 7/8 of m → dense.
        let mut promoted = None;
        for i in 0..m {
            promoted = t.observe(i, 2).or(promoted);
        }
        assert_eq!(promoted, Some(Tier::Dense));
        assert_eq!(t.tier(), Tier::Dense);
        assert_eq!(t.payload_bytes(), m);
    }

    #[test]
    fn ranks_clamp_identically_in_every_tier() {
        // The clamp happens on observation, so a value can never change
        // across a promotion.
        let mut t = TieredRegisters::new(16);
        t.observe(3, 200);
        assert_eq!(t.get(3), MAX_PACKED);
        for i in 0..16 {
            t.observe(i, 255);
        }
        assert_eq!(t.tier(), Tier::Dense);
        assert_eq!(t.get(3), MAX_PACKED);
        assert_eq!(t.get(15), MAX_PACKED);
    }

    #[test]
    fn compress_picks_smallest_lossless() {
        let m = 256;
        let mut t = TieredRegisters::new(m);
        for i in 0..m {
            t.observe(i, 3);
        }
        assert_eq!(t.tier(), Tier::Dense);
        let before = t.register_vec();
        let tier = t.compress();
        assert_eq!(tier, Tier::Packed, "full sketch packs");
        assert_eq!(t.register_vec(), before);

        let mut small = TieredRegisters::new(m);
        small.observe(7, 9);
        // Force it dense, then compress back down.
        for i in 0..m {
            small.observe(i, 1);
        }
        // Rebuild a genuinely sparse sketch via union into a fresh one.
        let mut sparse = TieredRegisters::new(m);
        sparse.observe(7, 9);
        sparse.observe(100, 2);
        let before = sparse.register_vec();
        assert_eq!(sparse.compress(), Tier::Sparse);
        assert_eq!(sparse.register_vec(), before);
    }

    #[test]
    fn union_matches_elementwise_max() {
        let m = 64;
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = TieredRegisters::new(m);
        let mut b = TieredRegisters::new(m);
        let mut ra = MaxRegisters::new(m);
        let mut rb = MaxRegisters::new(m);
        for _ in 0..300 {
            let (i, v) = (rng.gen_range(0..m), rng.gen_range(1..60u32) as u8);
            a.observe(i, v);
            ra.observe(i, v);
            let (i, v) = (rng.gen_range(0..m), rng.gen_range(1..60u32) as u8);
            b.observe(i, v);
            rb.observe(i, v);
        }
        a.union_in_place(&b);
        ra.union_in_place(&rb);
        assert_eq!(a.unpack(), ra);
    }

    #[test]
    fn iter_nonzero_is_sorted_and_complete() {
        let mut t = TieredRegisters::new(32);
        t.observe(9, 4);
        t.observe(2, 7);
        t.observe(30, 1);
        let got: Vec<(usize, u8)> = t.iter_nonzero().collect();
        assert_eq!(got, vec![(2, 7), (9, 4), (30, 1)]);
        assert_eq!(t.nonzero(), 3);
    }

    #[test]
    fn wire_roundtrip_every_tier() {
        let m = 64;
        let mut t = TieredRegisters::new(m);
        t.observe(5, 3);
        t.observe(40, 9);
        // Fill plans that land each tier: 2 entries (sparse), a quarter
        // of the registers (packed), all of them (dense).
        for (expected_tier, fill_to) in [(Tier::Sparse, 16), (Tier::Packed, m), (Tier::Dense, m)] {
            assert_eq!(t.tier(), expected_tier);
            let bytes = t.to_wire();
            assert_eq!(bytes.len(), t.wire_size());
            let back = TieredRegisters::from_wire(&bytes).unwrap();
            assert_eq!(back, t, "tier {expected_tier:?}");
            assert_eq!(back.tier(), expected_tier);
            for i in 0..fill_to {
                t.observe(i, 2);
            }
        }
    }

    #[test]
    fn wire_rejects_malformed_input() {
        let t = TieredRegisters::new(16);
        assert_eq!(TieredRegisters::from_wire(&[]), Err(DecodeError::TooShort));
        assert_eq!(
            TieredRegisters::from_wire(&[0xD5, 1, 16, 0, 0, 0, 0, 0, 0, 0]),
            Err(DecodeError::BadMagic(0xD5))
        );
        let mut bytes = t.to_wire();
        bytes[1] = 7;
        assert_eq!(
            TieredRegisters::from_wire(&bytes),
            Err(DecodeError::UnknownKind(7))
        );
        // Out-of-order sparse entries are rejected.
        let mut two = TieredRegisters::new(16);
        two.observe(3, 1);
        two.observe(9, 2);
        let mut bytes = two.to_wire();
        bytes[TIERED_HEADER + 4..].rotate_left(3);
        assert_eq!(
            TieredRegisters::from_wire(&bytes),
            Err(DecodeError::InvalidParams)
        );
        // Truncated packed payload.
        let mut packed = TieredRegisters::new(64);
        for i in 0..16 {
            packed.observe(i, 1);
        }
        assert_eq!(packed.tier(), Tier::Packed);
        let mut bytes = packed.to_wire();
        bytes.pop();
        assert!(matches!(
            TieredRegisters::from_wire(&bytes),
            Err(DecodeError::LengthMismatch { .. })
        ));
        // Dense rank above the packed clamp is rejected.
        let mut dense = TieredRegisters::new(16);
        for i in 0..16 {
            dense.observe(i, 5);
        }
        assert_eq!(dense.tier(), Tier::Dense);
        let mut bytes = dense.to_wire();
        bytes[TIERED_HEADER] = 64;
        assert_eq!(
            TieredRegisters::from_wire(&bytes),
            Err(DecodeError::InvalidParams)
        );
    }

    #[test]
    fn estimate_from_tiered_matches_superloglog() {
        use crate::hash::{ItemHasher, SplitMix64};
        use crate::CardinalityEstimator;
        let m = 128;
        let hasher = SplitMix64::default();
        let mut sll = crate::SuperLogLog::new(m).unwrap();
        let mut tiered = TieredRegisters::new(m);
        for i in 0..40_000u64 {
            let h = hasher.hash_u64(i);
            sll.insert_hash(h);
            let bucket = (h & (m as u64 - 1)) as usize;
            let rank = (crate::rho(h >> m.trailing_zeros()) + 1).min(255) as u8;
            tiered.observe(bucket, rank);
        }
        // Ranks above MAX_PACKED need ~2^63 items to occur; at this scale
        // the tiered registers are bit-equal to the u8 sketch.
        assert_eq!(
            crate::superloglog_estimate_from_registers(&tiered.register_vec()),
            sll.estimate()
        );
    }
}

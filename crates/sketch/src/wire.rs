//! Compact wire encoding for sketches.
//!
//! Distributed protocols ship sketches around (the tree and gossip
//! baselines merge them; a DHS node could snapshot one). This module
//! gives every sketch family a versioned, self-describing byte encoding
//! with exact sizes, so message-size accounting can use real numbers
//! instead of estimates.
//!
//! Format (little-endian):
//!
//! ```text
//! byte 0     magic 0xD5
//! byte 1     kind (1 = PCSA, 2 = LogLog, 3 = super-LogLog, 4 = HLL)
//! byte 2     log2(m)
//! byte 3     PCSA: bitmap width; others: 0
//! bytes 4..  payload: PCSA m×u64 bitmaps; others m×u8 registers
//! ```
//!
//! Tiered (compressed) registers use a second format under magic `0xD6`
//! whose payload depends on the representation tier — see
//! [`crate::tiered::TieredRegisters::to_wire`]. Both formats share this
//! module's [`DecodeError`].

use crate::estimator::CardinalityEstimator;
use crate::hyperloglog::HyperLogLog;
use crate::loglog::{LogLog, SuperLogLog};
use crate::pcsa::Pcsa;

const MAGIC: u8 = 0xD5;

/// Errors decoding a wire-encoded sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the 4-byte header.
    TooShort,
    /// Wrong magic byte.
    BadMagic(u8),
    /// Unknown sketch kind tag.
    UnknownKind(u8),
    /// Kind tag does not match the requested sketch type.
    KindMismatch {
        /// Tag found in the header.
        found: u8,
        /// Tag the caller expected.
        expected: u8,
    },
    /// Payload length does not match the header's `m`.
    LengthMismatch {
        /// Bytes expected from the header.
        expected: usize,
        /// Bytes present.
        found: usize,
    },
    /// Header parameters fail sketch validation.
    InvalidParams,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "input shorter than header"),
            DecodeError::BadMagic(b) => write!(f, "bad magic byte {b:#x}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown sketch kind {k}"),
            DecodeError::KindMismatch { found, expected } => {
                write!(f, "kind {found} where {expected} expected")
            }
            DecodeError::LengthMismatch { expected, found } => {
                write!(f, "payload length {found}, expected {expected}")
            }
            DecodeError::InvalidParams => write!(f, "invalid sketch parameters"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[allow(clippy::cast_possible_truncation)]
fn header(kind: u8, m: usize, width: u8) -> [u8; 4] {
    // dhs-lint: allow(lossy_cast) — trailing_zeros of a u64 is ≤ 64.
    [MAGIC, kind, m.trailing_zeros() as u8, width]
}

fn check_header(bytes: &[u8], expected_kind: u8) -> Result<(usize, u8), DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::TooShort);
    }
    if bytes[0] != MAGIC {
        return Err(DecodeError::BadMagic(bytes[0]));
    }
    let kind = bytes[1];
    if !(1..=4).contains(&kind) {
        return Err(DecodeError::UnknownKind(kind));
    }
    if kind != expected_kind {
        return Err(DecodeError::KindMismatch {
            found: kind,
            expected: expected_kind,
        });
    }
    if bytes[2] > 32 {
        return Err(DecodeError::InvalidParams);
    }
    Ok((1usize << bytes[2], bytes[3]))
}

/// Encode/decode support for a sketch family.
pub trait WireSketch: Sized {
    /// Serialize to the compact wire format.
    fn to_bytes(&self) -> Vec<u8>;
    /// Deserialize, validating the header.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError>;
    /// The exact encoded size for `m` buckets (for cost models).
    fn encoded_size(m: usize) -> usize;
}

impl WireSketch for Pcsa {
    #[allow(clippy::cast_possible_truncation)]
    fn to_bytes(&self) -> Vec<u8> {
        let m = self.buckets();
        let mut out = Vec::with_capacity(Self::encoded_size(m));
        // dhs-lint: allow(lossy_cast) — register width is 4 or 8 bits.
        out.extend_from_slice(&header(1, m, self.width() as u8));
        for i in 0..m {
            // Reconstruct the raw bitmap from bit queries (the BitmapArray
            // is private; 64 probes per bucket is fine off the hot path).
            let mut raw = 0u64;
            for r in 0..self.width() {
                if self.bit(i, r) {
                    raw |= 1 << r;
                }
            }
            out.extend_from_slice(&raw.to_le_bytes());
        }
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (m, width) = check_header(bytes, 1)?;
        let payload = &bytes[4..];
        if payload.len() != m * 8 {
            return Err(DecodeError::LengthMismatch {
                expected: m * 8,
                found: payload.len(),
            });
        }
        let mut sketch =
            Pcsa::with_width(m, u32::from(width)).map_err(|_| DecodeError::InvalidParams)?;
        for (i, chunk) in payload.chunks_exact(8).enumerate() {
            // dhs-lint: allow(panic_hygiene) — invariant: chunks_exact(8) yields 8-byte chunks.
            let raw = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            for r in 0..u32::from(width) {
                if (raw >> r) & 1 == 1 {
                    sketch.set_bit(i, r);
                }
            }
        }
        Ok(sketch)
    }

    fn encoded_size(m: usize) -> usize {
        4 + m * 8
    }
}

macro_rules! impl_register_wire {
    ($ty:ty, $kind:expr, $new:path, $register:ident, $observe:ident) => {
        impl WireSketch for $ty {
            fn to_bytes(&self) -> Vec<u8> {
                let m = self.buckets();
                let mut out = Vec::with_capacity(Self::encoded_size(m));
                out.extend_from_slice(&header($kind, m, 0));
                for i in 0..m {
                    out.push(self.$register(i));
                }
                out
            }

            fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
                let (m, _) = check_header(bytes, $kind)?;
                let payload = &bytes[4..];
                if payload.len() != m {
                    return Err(DecodeError::LengthMismatch {
                        expected: m,
                        found: payload.len(),
                    });
                }
                let mut sketch = $new(m).map_err(|_| DecodeError::InvalidParams)?;
                for (i, &r) in payload.iter().enumerate() {
                    if r > 0 {
                        sketch.$observe(i, r);
                    }
                }
                Ok(sketch)
            }

            fn encoded_size(m: usize) -> usize {
                4 + m
            }
        }
    };
}

impl_register_wire!(LogLog, 2, LogLog::new, register, observe);
impl_register_wire!(SuperLogLog, 3, SuperLogLog::new, register, observe);
impl_register_wire!(HyperLogLog, 4, HyperLogLog::new, register, observe);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{ItemHasher, SplitMix64};

    fn fill<E: CardinalityEstimator>(sketch: &mut E, n: u64) {
        let hasher = SplitMix64::default();
        for i in 0..n {
            sketch.insert_hash(hasher.hash_u64(i));
        }
    }

    #[test]
    fn roundtrip_all_kinds() {
        let mut pcsa = Pcsa::with_width(64, 32).unwrap();
        fill(&mut pcsa, 10_000);
        assert_eq!(Pcsa::from_bytes(&pcsa.to_bytes()).unwrap(), pcsa);

        let mut ll = LogLog::new(64).unwrap();
        fill(&mut ll, 10_000);
        assert_eq!(LogLog::from_bytes(&ll.to_bytes()).unwrap(), ll);

        let mut sll = SuperLogLog::new(128).unwrap();
        fill(&mut sll, 10_000);
        assert_eq!(SuperLogLog::from_bytes(&sll.to_bytes()).unwrap(), sll);

        let mut hll = HyperLogLog::new(32).unwrap();
        fill(&mut hll, 10_000);
        assert_eq!(HyperLogLog::from_bytes(&hll.to_bytes()).unwrap(), hll);
    }

    #[test]
    fn encoded_sizes_are_exact() {
        let mut sll = SuperLogLog::new(512).unwrap();
        fill(&mut sll, 100);
        assert_eq!(sll.to_bytes().len(), SuperLogLog::encoded_size(512));
        assert_eq!(SuperLogLog::encoded_size(512), 4 + 512);
        let pcsa = Pcsa::new(64).unwrap();
        assert_eq!(pcsa.to_bytes().len(), Pcsa::encoded_size(64));
    }

    #[test]
    fn header_validation() {
        assert_eq!(SuperLogLog::from_bytes(&[]), Err(DecodeError::TooShort));
        assert_eq!(
            SuperLogLog::from_bytes(&[0x00, 3, 4, 0]),
            Err(DecodeError::BadMagic(0))
        );
        assert_eq!(
            SuperLogLog::from_bytes(&[MAGIC, 9, 4, 0]),
            Err(DecodeError::UnknownKind(9))
        );
        // A LogLog blob fed to SuperLogLog is rejected.
        let ll = LogLog::new(16).unwrap();
        assert!(matches!(
            SuperLogLog::from_bytes(&ll.to_bytes()),
            Err(DecodeError::KindMismatch { .. })
        ));
        // Truncated payload.
        let sll = SuperLogLog::new(16).unwrap();
        let mut bytes = sll.to_bytes();
        bytes.pop();
        assert!(matches!(
            SuperLogLog::from_bytes(&bytes),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn decoded_sketch_estimates_identically() {
        let mut sll = SuperLogLog::new(256).unwrap();
        fill(&mut sll, 50_000);
        let decoded = SuperLogLog::from_bytes(&sll.to_bytes()).unwrap();
        assert_eq!(decoded.estimate(), sll.estimate());
    }

    #[test]
    fn errors_display() {
        let e = DecodeError::LengthMismatch {
            expected: 16,
            found: 3,
        };
        assert!(e.to_string().contains("16"));
        assert!(DecodeError::TooShort.to_string().contains("short"));
    }
}

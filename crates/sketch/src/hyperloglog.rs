//! HyperLogLog (Flajolet, Fusy, Gandouet & Meunier, AOFA 2007).
//!
//! The successor of super-LogLog, included as the "future work" extension
//! of the paper's estimator lineup: same registers as LogLog, but the
//! estimate uses the *harmonic* mean, which tames the max-rank outliers
//! without a truncation rule, for a standard error of `1.04/√m`:
//!
//! ```text
//! E(n) = α^HLL_m · m² · ( Σ_i 2^{−M⟨i⟩} )^{−1}
//! ```
//!
//! with the usual small-range (linear counting) correction. Because we
//! consume 64-bit hashes, the 32-bit large-range correction of the original
//! paper is unnecessary and deliberately omitted.

use crate::alpha::alpha_hyperloglog;
use crate::estimator::{validate_buckets, CardinalityEstimator, MergeError, SketchConfigError};
use crate::registers::MaxRegisters;
use crate::rho::rho;

/// The HyperLogLog estimate from raw register values (max 1-based ranks,
/// 0 = empty bucket), including the small-range linear-counting
/// correction. `regs.len()` must be a power of two ≥ 16.
///
/// Shared by [`HyperLogLog::estimate`] and the distributed (DHS) counting
/// path, which reconstructs registers from DHT probes.
pub fn hyperloglog_estimate_from_registers(regs: &[u8]) -> f64 {
    let m = regs.len();
    assert!(m >= 16 && m.is_power_of_two());
    let mf = m as f64;
    let inv_sum: f64 = regs.iter().map(|&r| 2f64.powi(-i32::from(r))).sum();
    let raw = alpha_hyperloglog(m) * mf * mf / inv_sum;
    if raw <= 2.5 * mf {
        let zeros = regs.iter().filter(|&&r| r == 0).count();
        if zeros > 0 {
            return mf * (mf / zeros as f64).ln();
        }
    }
    raw
}

/// A HyperLogLog sketch with `m` registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    regs: MaxRegisters,
    bucket_bits: u32,
}

impl HyperLogLog {
    /// Create a HyperLogLog sketch with `m` registers (power of two, ≥ 16
    /// for the published α constants to apply).
    pub fn new(m: usize) -> Result<Self, SketchConfigError> {
        let bucket_bits = validate_buckets(m)?;
        if m < 16 {
            return Err(SketchConfigError::BucketsOutOfRange(m));
        }
        Ok(HyperLogLog {
            regs: MaxRegisters::new(m),
            bucket_bits,
        })
    }

    /// Register value (max 1-based rank) of bucket `i`.
    pub fn register(&self, i: usize) -> u8 {
        self.regs.get(i)
    }

    /// Record a rank observation directly (distributed-reconstruction path).
    pub fn observe(&mut self, i: usize, rank: u8) {
        self.regs.observe(i, rank);
    }
}

impl CardinalityEstimator for HyperLogLog {
    fn buckets(&self) -> usize {
        self.regs.len()
    }

    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn insert_hash(&mut self, hash: u64) {
        let m = self.regs.len() as u64;
        // dhs-lint: allow(lossy_cast) — masked by m − 1 (m ≤ 2^16), fits.
        let bucket = (hash & (m - 1)) as usize;
        // dhs-lint: allow(lossy_cast) — clamped to 255, fits u8.
        let rank = (rho(hash >> self.bucket_bits) + 1).min(255) as u8;
        self.regs.observe(bucket, rank);
    }

    fn estimate(&self) -> f64 {
        let regs: Vec<u8> = self.regs.iter().collect();
        hyperloglog_estimate_from_registers(&regs)
    }

    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.buckets() != other.buckets() {
            return Err(MergeError {
                reason: format!("m mismatch: {} vs {}", self.buckets(), other.buckets()),
            });
        }
        self.regs.union_in_place(&other.regs);
        Ok(())
    }

    fn is_empty(&self) -> bool {
        self.regs.all_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{ItemHasher, SplitMix64};

    fn filled(m: usize, n: u64, seed: u64) -> HyperLogLog {
        let hasher = SplitMix64::with_seed(seed);
        let mut sketch = HyperLogLog::new(m).unwrap();
        for i in 0..n {
            sketch.insert_hash(hasher.hash_u64(i));
        }
        sketch
    }

    #[test]
    fn empty_estimates_zero() {
        let sketch = HyperLogLog::new(64).unwrap();
        assert!(sketch.is_empty());
        assert_eq!(sketch.estimate(), 0.0); // linear counting with V = m
    }

    #[test]
    fn small_range_linear_counting() {
        // For n ≪ m the linear-counting path should be nearly exact.
        for n in [1u64, 5, 20, 50] {
            let sketch = filled(1024, n, 3);
            let err = (sketch.estimate() - n as f64).abs();
            assert!(
                err <= (n as f64 * 0.25).max(2.0),
                "n={n} est={}",
                sketch.estimate()
            );
        }
    }

    #[test]
    fn accuracy_within_three_sigma() {
        // std error ≈ 1.04/√m; m = 256 ⇒ ~6.5%, 3σ ≈ 20%.
        for (seed, n) in [(1u64, 20_000u64), (2, 200_000), (3, 1_000_000)] {
            let sketch = filled(256, n, seed);
            let err = (sketch.estimate() - n as f64).abs() / n as f64;
            assert!(err < 0.20, "n={n} err={err}");
        }
    }

    #[test]
    fn duplicate_insensitive_and_mergeable() {
        let hasher = SplitMix64::default();
        let mut a = HyperLogLog::new(64).unwrap();
        let mut b = HyperLogLog::new(64).unwrap();
        let mut union = HyperLogLog::new(64).unwrap();
        for i in 0..20_000u64 {
            let h = hasher.hash_u64(i);
            a.insert_hash(h);
            a.insert_hash(h);
            if i % 2 == 0 {
                b.insert_hash(h);
            }
            union.insert_hash(h);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, union);
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = HyperLogLog::new(64).unwrap();
        let b = HyperLogLog::new(128).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn m_below_sixteen_rejected() {
        assert!(HyperLogLog::new(8).is_err());
        assert!(HyperLogLog::new(16).is_ok());
    }
}

//! # dhs-sketch — hash sketches for duplicate-insensitive cardinality estimation
//!
//! This crate implements, from scratch, the probabilistic counting
//! ("hash sketch") estimators used by the DHS paper (*Counting at Large:
//! Efficient Cardinality Estimation in Internet-Scale Data Networks*,
//! ICDE 2006):
//!
//! * [`Pcsa`] — Probabilistic Counting with Stochastic Averaging
//!   (Flajolet & Martin, 1985). Keeps `m` bitmaps; estimates from the
//!   position of the leftmost 0-bit of each bitmap.
//! * [`LogLog`] / [`SuperLogLog`] — Durand & Flajolet, 2003. Keeps `m`
//!   small "max rank" registers; super-LogLog adds the truncation rule
//!   (keep the `⌊θ₀·m⌋` smallest registers, `θ₀ = 0.7`).
//! * [`HyperLogLog`] — Flajolet, Fusy, Gandouet & Meunier, 2007. Included
//!   as the natural extension of the paper's line of work.
//!
//! All estimators share the same insertion rule, which is also the rule DHS
//! distributes across a DHT: given a pseudo-uniform hash `h` of an item and
//! a sketch with `m = 2^c` buckets,
//!
//! * the bucket index is `h mod m` (the low `c` bits), and
//! * the recorded rank is `ρ(h div m)`, the position of the
//!   least-significant 1-bit of the remaining bits.
//!
//! Because insertion only ever ORs a bit / maxes a register, sketches are
//! *duplicate-insensitive* (inserting the same item twice is a no-op) and
//! *mergeable* (the sketch of a union is the bitwise OR / element-wise max
//! of the sketches).
//!
//! The crate also provides the hashing substrate: an [`ItemHasher`]
//! abstraction with [`Md4Hasher`] (RFC 1320 MD4 — the hash the paper's
//! evaluation uses, implemented here from first principles) and the fast
//! [`SplitMix64`] finalizer, plus the Lanczos Γ function needed to compute
//! the LogLog bias-correction constant `α_m` exactly.
//!
//! ## Quick example
//!
//! ```
//! use dhs_sketch::{CardinalityEstimator, SuperLogLog, ItemHasher, SplitMix64};
//!
//! let hasher = SplitMix64::default();
//! let mut sketch = SuperLogLog::new(256).unwrap();
//! for i in 0..50_000u64 {
//!     sketch.insert_hash(hasher.hash_u64(i));
//!     sketch.insert_hash(hasher.hash_u64(i)); // duplicates are free
//! }
//! let est = sketch.estimate();
//! assert!((est - 50_000.0).abs() / 50_000.0 < 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod estimator;
pub mod gamma;
pub mod hash;
pub mod hyperloglog;
pub mod loglog;
pub mod md4;
pub mod packed;
pub mod pcsa;
pub mod registers;
pub mod rho;
pub mod tiered;
pub mod wire;

pub use estimator::{CardinalityEstimator, MergeError, SketchConfigError};
pub use hash::{FnvHasher, ItemHasher, Md4Hasher, SplitMix64};
pub use hyperloglog::{hyperloglog_estimate_from_registers, HyperLogLog};
pub use loglog::{
    loglog_estimate_from_registers, superloglog_estimate_from_registers, LogLog, SuperLogLog,
    THETA_0,
};
pub use md4::Md4;
pub use packed::PackedRegisters;
pub use pcsa::{pcsa_estimate_from_first_zeros, Pcsa, PCSA_PHI};
pub use rho::{rho, rho_capped};
pub use tiered::{Tier, TieredRegisters};
pub use wire::{DecodeError, WireSketch};

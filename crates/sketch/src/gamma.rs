//! The Γ function via the Lanczos approximation.
//!
//! Needed to compute the LogLog bias-correction constant
//! `α_m = (Γ(−1/m) · (1 − 2^{1/m}) / ln 2)^{−m}` (Durand & Flajolet 2003)
//! exactly, instead of hard-coding a handful of published values.

use std::f64::consts::PI;

/// Lanczos g = 7, n = 9 coefficients (Godfrey's values); accurate to
/// ~15 significant digits over the real line.
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)] // published Lanczos coefficients, verbatim
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Γ(x) for real `x` (poles at non-positive integers return `f64::NAN`).
///
/// ```
/// use dhs_sketch::gamma::gamma;
/// assert!((gamma(5.0) - 24.0).abs() < 1e-9); // Γ(5) = 4!
/// assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
/// ```
pub fn gamma(x: f64) -> f64 {
    if x <= 0.0 && x == x.floor() {
        return f64::NAN; // pole
    }
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx). Since
        // x < 0.5 here, 1 − x ≥ 0.5 lands directly in the Lanczos
        // branch — one reflection, no recursion.
        PI / ((PI * x).sin() * lanczos(1.0 - x))
    } else {
        lanczos(x)
    }
}

/// The Lanczos series itself, valid for `x ≥ 0.5`.
fn lanczos(x: f64) -> f64 {
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    (2.0 * PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_factorials() {
        let mut fact = 1.0;
        for n in 1..15u32 {
            assert!((gamma(f64::from(n)) - fact).abs() / fact < 1e-12, "Γ({n})");
            fact *= f64::from(n);
        }
    }

    #[test]
    fn half_integers() {
        let sqrt_pi = PI.sqrt();
        assert!((gamma(0.5) - sqrt_pi).abs() < 1e-12);
        assert!((gamma(1.5) - sqrt_pi / 2.0).abs() < 1e-12);
        assert!((gamma(2.5) - 3.0 * sqrt_pi / 4.0).abs() < 1e-12);
    }

    #[test]
    fn reflection_negative_arguments() {
        // Γ(−0.5) = −2√π.
        assert!((gamma(-0.5) + 2.0 * PI.sqrt()).abs() < 1e-10);
        // Γ(−1.5) = 4√π/3.
        assert!((gamma(-1.5) - 4.0 * PI.sqrt() / 3.0).abs() < 1e-10);
    }

    #[test]
    fn poles_are_nan() {
        assert!(gamma(0.0).is_nan());
        assert!(gamma(-1.0).is_nan());
        assert!(gamma(-7.0).is_nan());
    }

    #[test]
    fn reflection_branch_terminates_without_recursion() {
        // dhs-flow `recursion-bound` flagged `gamma` calling itself in
        // the reflection branch. The depth was bounded (1 − x ≥ 0.5
        // re-enters the Lanczos branch), but invisible to analysis and
        // fragile under edits — so the Lanczos series now lives in a
        // non-recursive helper and both branches call it. This pins the
        // reflection branch's values against the recurrence
        // Γ(x) = Γ(x + 1) / x, which only exercises the x ≥ 0.5 path
        // on the right-hand side.
        for &x in &[0.49, 0.25, 0.1, 1e-3, -0.3, -2.7] {
            let direct = gamma(x);
            let via_recurrence = gamma(x + 1.0) / x;
            assert!(
                (direct - via_recurrence).abs() / via_recurrence.abs() < 1e-9,
                "x = {x}: {direct} vs {via_recurrence}"
            );
        }
    }

    #[test]
    fn recurrence_holds_near_zero() {
        // Γ(x+1) = x Γ(x), exercised at the small negative arguments the
        // α_m computation uses (x = −1/m).
        for m in [16.0f64, 64.0, 512.0, 4096.0] {
            let x = -1.0 / m;
            let lhs = gamma(x + 1.0);
            let rhs = x * gamma(x);
            assert!((lhs - rhs).abs() / lhs.abs() < 1e-10, "m = {m}");
        }
    }
}

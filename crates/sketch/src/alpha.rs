//! Bias-correction constants for the LogLog estimator family.
//!
//! * [`alpha_loglog`] computes the exact Durand–Flajolet constant
//!   `α_m = (Γ(−1/m) · (1 − 2^{1/m}) / ln 2)^{−m}` via the Lanczos Γ.
//! * [`alpha_superloglog`] returns the constant `α̃_m` for the *truncated*
//!   estimator (keep the `m₀ = ⌊θ₀·m⌋` smallest registers). Durand &
//!   Flajolet give no closed form for it; following common practice (and
//!   as documented in DESIGN.md) we calibrate it once per `m` with a
//!   seeded Monte-Carlo so that the estimator is unbiased, and cache the
//!   result process-wide.
//! * [`alpha_hyperloglog`] is the standard harmonic-mean constant of
//!   Flajolet et al. 2007.

use std::collections::HashMap;
// The calibration cache below holds pure, order-independent floats; a
// process-wide lock cannot change any replayed outcome.
use std::sync::{Mutex, OnceLock}; // dhs-lint: allow(determinism)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gamma::gamma;
use crate::registers::MaxRegisters;
use crate::rho::rho;

/// `α_∞ = e^{−γ}·√2/2 ≈ 0.39701`, the large-`m` limit of `α_m`.
pub const ALPHA_INFINITY: f64 = 0.397_011_808_010_995_5;

/// The truncation ratio of super-LogLog (`θ₀` in the paper).
pub const THETA_0: f64 = 0.7;

/// Exact Durand–Flajolet LogLog constant `α_m` for `m ≥ 2`.
///
/// ```
/// use dhs_sketch::alpha::{alpha_loglog, ALPHA_INFINITY};
/// let a = alpha_loglog(1024);
/// assert!((a - ALPHA_INFINITY).abs() < 1e-3);
/// ```
pub fn alpha_loglog(m: usize) -> f64 {
    assert!(m >= 2, "LogLog needs at least 2 buckets");
    let mf = m as f64;
    let base = gamma(-1.0 / mf) * (1.0 - 2f64.powf(1.0 / mf)) / std::f64::consts::LN_2;
    base.powf(-mf)
}

/// HyperLogLog's harmonic-mean constant `α^HLL_m`.
pub fn alpha_hyperloglog(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// Truncated-estimator constant `α̃_m` for super-LogLog with `θ₀ = 0.7`.
///
/// Calibrated once per `m` (seeded, deterministic) so that
/// `E[α̃_m · m₀ · 2^{mean of the m₀ smallest registers}] = n` in the
/// asymptotic regime `n ≫ m`, then cached.
pub fn alpha_superloglog(m: usize) -> f64 {
    // dhs-lint: allow(determinism) — the lock guards pure calibration floats.
    static CACHE: OnceLock<Mutex<HashMap<usize, f64>>> = OnceLock::new();
    // dhs-lint: allow(determinism) — same cache; contents are order-free.
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // A poisoned lock only means another thread panicked mid-insert; the
    // cached values themselves are plain floats, so recover the guard.
    if let Some(&a) = cache.lock().unwrap_or_else(|p| p.into_inner()).get(&m) {
        return a;
    }
    let a = calibrate_alpha_superloglog(m, 0x005e_eda1_1ce5);
    cache.lock().unwrap_or_else(|p| p.into_inner()).insert(m, a);
    a
}

/// Number of registers kept by the truncation rule.
#[allow(clippy::cast_possible_truncation)]
pub fn truncated_count(m: usize) -> usize {
    // dhs-lint: allow(lossy_cast) — float→int: a truncation index ≤ m.
    (((m as f64) * THETA_0).floor() as usize).max(1)
}

/// The raw (un-normalized) truncated estimate `m₀ · 2^{mean of the m₀
/// smallest registers}` used both by the estimator and the calibration.
pub(crate) fn truncated_raw_estimate(regs: &MaxRegisters) -> f64 {
    let m = regs.len();
    let m0 = truncated_count(m);
    let mut values: Vec<u8> = regs.iter().collect();
    values.sort_unstable();
    let sum: f64 = values[..m0].iter().map(|&v| f64::from(v)).sum();
    (m0 as f64) * 2f64.powf(sum / m0 as f64)
}

/// Monte-Carlo calibration of `α̃_m`: simulate the sketch on `n` uniform
/// hashes for several trials and several `n`, and return `n / E[raw]`.
#[allow(clippy::cast_possible_truncation)]
// dhs-flow: allow(rng-plumbing) — the calibration owns a stream seeded
// from (seed, m) by construction: results are cached process-wide, so a
// caller-supplied RNG would make the cache contents call-order-dependent.
fn calibrate_alpha_superloglog(m: usize, seed: u64) -> f64 {
    let c = m.trailing_zeros();
    assert!(m.is_power_of_two(), "m must be a power of two");
    let mut rng = StdRng::seed_from_u64(seed ^ (m as u64));
    // Calibrate in the asymptotic regime n/m ∈ {64, 128}, 12 trials each.
    let mut ratios = Vec::new();
    for n_per_bucket in [64usize, 128] {
        let n = n_per_bucket * m;
        for _ in 0..12 {
            let mut regs = MaxRegisters::new(m);
            for _ in 0..n {
                let h: u64 = rng.gen();
                // dhs-lint: allow(lossy_cast) — masked by m − 1, fits usize.
                let bucket = (h & (m as u64 - 1)) as usize;
                // dhs-lint: allow(lossy_cast) — clamped to 64, fits u8.
                let rank = (rho(h >> c).min(63) + 1) as u8;
                regs.observe(bucket, rank);
            }
            ratios.push(truncated_raw_estimate(&regs) / n as f64);
        }
    }
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    1.0 / mean_ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_converges_to_limit() {
        // Durand–Flajolet: α_m → 0.39701… from below rather quickly.
        let a64 = alpha_loglog(64);
        let a1024 = alpha_loglog(1024);
        let a65536 = alpha_loglog(65_536);
        assert!((a65536 - ALPHA_INFINITY).abs() < 1e-4, "{a65536}");
        assert!((a1024 - ALPHA_INFINITY).abs() < 1e-3, "{a1024}");
        assert!((a64 - ALPHA_INFINITY).abs() < 0.01, "{a64}");
    }

    #[test]
    fn alpha_monotone_tail() {
        // In the practically relevant range, α_m varies smoothly.
        let mut prev = alpha_loglog(16);
        for c in 5..14 {
            let a = alpha_loglog(1 << c);
            assert!((a - prev).abs() < 0.02);
            prev = a;
        }
    }

    #[test]
    fn hll_alpha_known_values() {
        assert!((alpha_hyperloglog(16) - 0.673).abs() < 1e-12);
        assert!((alpha_hyperloglog(64) - 0.709).abs() < 1e-12);
        let a = alpha_hyperloglog(4096);
        assert!((0.70..0.73).contains(&a));
    }

    #[test]
    fn truncated_count_floors() {
        assert_eq!(truncated_count(10), 7);
        assert_eq!(truncated_count(512), 358); // ⌊0.7·512⌋ = 358
        assert_eq!(truncated_count(1), 1);
    }

    #[test]
    fn alpha_tilde_cached_and_plausible() {
        let a1 = alpha_superloglog(64);
        let a2 = alpha_superloglog(64);
        assert_eq!(a1, a2, "cache must return identical values");
        // The truncated constant is smaller than 1 and larger than α_∞/2;
        // empirically it sits around 0.4–0.9 for moderate m.
        assert!((0.2..1.5).contains(&a1), "α̃_64 = {a1}");
    }

    #[test]
    fn calibration_is_seed_deterministic() {
        let a = calibrate_alpha_superloglog(32, 42);
        let b = calibrate_alpha_superloglog(32, 42);
        assert_eq!(a, b);
    }
}

//! PCSA — Probabilistic Counting with Stochastic Averaging
//! (Flajolet & Martin, *Probabilistic Counting Algorithms for Data Base
//! Applications*, JCSS 1985).
//!
//! The sketch keeps `m` bitmaps of `width` bits. Each inserted hash `h`
//! selects bitmap `h mod m` and sets bit `ρ(h div m)` of it. The estimate
//! reads, per bitmap, the position `M⟨i⟩` of the lowest 0-bit, and returns
//!
//! ```text
//! E(n) = (1/φ) · m · 2^{(1/m)·Σ M⟨i⟩},   φ = 0.77351           (paper eq. 4)
//! ```
//!
//! with the residual multiplicative bias `1 + 0.31/m` divided out (the
//! paper quotes bias `1 + 0.31/m` and standard error `0.78/√m`).

use crate::estimator::{validate_buckets, CardinalityEstimator, MergeError, SketchConfigError};
use crate::registers::BitmapArray;
use crate::rho::rho;

/// Flajolet–Martin's magic constant `φ`.
pub const PCSA_PHI: f64 = 0.77351;

/// The PCSA estimate from per-bitmap lowest-zero positions `M⟨i⟩`,
/// including the `1 + 0.31/m` bias division.
///
/// Shared by [`Pcsa::estimate`] and the distributed (DHS) counting path,
/// which concludes the `M⟨i⟩` values from DHT probes.
pub fn pcsa_estimate_from_first_zeros(first_zeros: &[u32]) -> f64 {
    let m = first_zeros.len();
    assert!(m >= 1 && m.is_power_of_two());
    let mf = m as f64;
    let sum: f64 = first_zeros.iter().map(|&v| f64::from(v)).sum();
    mf / PCSA_PHI * 2f64.powf(sum / mf) / (1.0 + 0.31 / mf)
}

/// A PCSA sketch with `m` bitmaps of `width` bits each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcsa {
    bitmaps: BitmapArray,
    /// log2(m), cached for insertion.
    bucket_bits: u32,
}

impl Pcsa {
    /// Default bitmap width: enough for any 64-bit hash rank.
    pub const DEFAULT_WIDTH: u32 = 64;

    /// Create a PCSA sketch with `m` bitmaps (power of two) of 64 bits.
    pub fn new(m: usize) -> Result<Self, SketchConfigError> {
        Self::with_width(m, Self::DEFAULT_WIDTH)
    }

    /// Create a PCSA sketch with `m` bitmaps of `width` bits each.
    ///
    /// `width` bounds the countable cardinality at roughly `m · 2^width`;
    /// the paper's guidance (its eq. 3) is
    /// `width ≥ log2(n_max/m) + 3`.
    pub fn with_width(m: usize, width: u32) -> Result<Self, SketchConfigError> {
        let bucket_bits = validate_buckets(m)?;
        if width == 0 || width > 64 {
            return Err(SketchConfigError::BitmapWidthOutOfRange(width));
        }
        Ok(Pcsa {
            bitmaps: BitmapArray::new(m, width),
            bucket_bits,
        })
    }

    /// Bitmap width in bits.
    pub fn width(&self) -> u32 {
        self.bitmaps.width()
    }

    /// `M⟨i⟩`: position of the lowest 0-bit of bitmap `i`.
    pub fn lowest_zero(&self, i: usize) -> u32 {
        self.bitmaps.lowest_zero(i)
    }

    /// Whether bit `rank` of bitmap `i` is set (used by tests comparing
    /// against the distributed implementation).
    pub fn bit(&self, i: usize, rank: u32) -> bool {
        self.bitmaps.get(i, rank)
    }

    /// Set a bit directly. This is the primitive DHS distributes: a remote
    /// reader reconstructing a sketch from DHT probes calls this.
    pub fn set_bit(&mut self, i: usize, rank: u32) {
        self.bitmaps.set(i, rank);
    }

    /// The estimate *without* the `1 + 0.31/m` bias division (the raw
    /// FM formula), exposed for calibration experiments.
    pub fn estimate_uncorrected(&self) -> f64 {
        let m = self.buckets() as f64;
        let sum: f64 = (0..self.buckets())
            .map(|i| f64::from(self.bitmaps.lowest_zero(i)))
            .sum();
        m / PCSA_PHI * 2f64.powf(sum / m)
    }
}

impl CardinalityEstimator for Pcsa {
    fn buckets(&self) -> usize {
        self.bitmaps.len()
    }

    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn insert_hash(&mut self, hash: u64) {
        let m = self.bitmaps.len() as u64;
        // dhs-lint: allow(lossy_cast) — masked by m − 1 (m ≤ 2^16), fits.
        let bucket = (hash & (m - 1)) as usize;
        let rank = rho(hash >> self.bucket_bits);
        self.bitmaps.set(bucket, rank);
    }

    fn estimate(&self) -> f64 {
        let first_zeros: Vec<u32> = (0..self.buckets())
            .map(|i| self.bitmaps.lowest_zero(i))
            .collect();
        pcsa_estimate_from_first_zeros(&first_zeros)
    }

    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.buckets() != other.buckets() || self.width() != other.width() {
            return Err(MergeError {
                reason: format!(
                    "shape mismatch: {}x{} vs {}x{}",
                    self.buckets(),
                    self.width(),
                    other.buckets(),
                    other.width()
                ),
            });
        }
        self.bitmaps.union_in_place(&other.bitmaps);
        Ok(())
    }

    fn is_empty(&self) -> bool {
        self.bitmaps.all_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{ItemHasher, SplitMix64};

    fn filled(m: usize, n: u64, seed: u64) -> Pcsa {
        let hasher = SplitMix64::with_seed(seed);
        let mut sketch = Pcsa::new(m).unwrap();
        for i in 0..n {
            sketch.insert_hash(hasher.hash_u64(i));
        }
        sketch
    }

    #[test]
    fn empty_estimates_small() {
        let sketch = Pcsa::new(64).unwrap();
        assert!(sketch.is_empty());
        // All M = 0 ⇒ E = m/φ / (1+0.31/m) ≈ 82.3 for m = 64; PCSA is known
        // to be inaccurate for n ≲ m — we only require it not to blow up.
        assert!(sketch.estimate() < 100.0);
    }

    #[test]
    fn accuracy_within_three_sigma() {
        // std error ≈ 0.78/√m; for m = 256 that is ~4.9%, 3σ ≈ 14.6%.
        for (seed, n) in [(1u64, 10_000u64), (2, 100_000), (3, 400_000)] {
            let sketch = filled(256, n, seed);
            let err = (sketch.estimate() - n as f64).abs() / n as f64;
            assert!(err < 0.15, "n={n} err={err}");
        }
    }

    #[test]
    fn duplicate_insensitive() {
        let hasher = SplitMix64::default();
        let mut once = Pcsa::new(64).unwrap();
        let mut thrice = Pcsa::new(64).unwrap();
        for i in 0..5_000u64 {
            let h = hasher.hash_u64(i);
            once.insert_hash(h);
            for _ in 0..3 {
                thrice.insert_hash(h);
            }
        }
        assert_eq!(once, thrice);
    }

    #[test]
    fn merge_equals_union() {
        let hasher = SplitMix64::default();
        let mut left = Pcsa::new(128).unwrap();
        let mut right = Pcsa::new(128).unwrap();
        let mut both = Pcsa::new(128).unwrap();
        for i in 0..20_000u64 {
            let h = hasher.hash_u64(i);
            if i % 2 == 0 {
                left.insert_hash(h);
            }
            if i % 3 == 0 {
                right.insert_hash(h);
            }
            if i % 2 == 0 || i % 3 == 0 {
                both.insert_hash(h);
            }
        }
        left.merge(&right).unwrap();
        assert_eq!(left, both);
    }

    #[test]
    fn merge_shape_mismatch_errors() {
        let mut a = Pcsa::new(64).unwrap();
        let b = Pcsa::new(128).unwrap();
        assert!(a.merge(&b).is_err());
        let c = Pcsa::with_width(64, 24).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn narrow_width_saturates_gracefully() {
        // A 4-bit-wide PCSA cannot represent large counts, but it must not
        // panic and must cap at roughly m·2^width/φ.
        let hasher = SplitMix64::default();
        let mut sketch = Pcsa::with_width(16, 4).unwrap();
        for i in 0..100_000u64 {
            sketch.insert_hash(hasher.hash_u64(i));
        }
        let cap = 16.0 / PCSA_PHI * 2f64.powi(4);
        assert!(sketch.estimate() <= cap + 1.0);
    }

    #[test]
    fn set_bit_reconstruction_matches_insertion() {
        // Rebuilding a sketch from observed (bucket, rank) bits must yield
        // the same estimate — this is exactly what DHS counting does.
        let hasher = SplitMix64::default();
        let mut direct = Pcsa::new(32).unwrap();
        for i in 0..10_000u64 {
            direct.insert_hash(hasher.hash_u64(i));
        }
        let mut rebuilt = Pcsa::new(32).unwrap();
        for i in 0..32 {
            for r in 0..64 {
                if direct.bit(i, r) {
                    rebuilt.set_bit(i, r);
                }
            }
        }
        assert_eq!(direct, rebuilt);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Pcsa::new(0).is_err());
        assert!(Pcsa::new(48).is_err());
        assert!(Pcsa::with_width(64, 0).is_err());
        assert!(Pcsa::with_width(64, 65).is_err());
    }
}

//! The common estimator interface shared by all sketch families.

use std::error::Error;
use std::fmt;

/// Errors constructing a sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchConfigError {
    /// The number of buckets must be a power of two (stochastic averaging
    /// selects the bucket from the low bits of the hash).
    BucketsNotPowerOfTwo(usize),
    /// The number of buckets must be ≥ 1 and leave at least one hash bit
    /// for the rank (so `m ≤ 2^63`).
    BucketsOutOfRange(usize),
    /// PCSA bitmap width must be in `1..=64`.
    BitmapWidthOutOfRange(u32),
}

impl fmt::Display for SketchConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchConfigError::BucketsNotPowerOfTwo(m) => {
                write!(f, "bucket count {m} is not a power of two")
            }
            SketchConfigError::BucketsOutOfRange(m) => {
                write!(f, "bucket count {m} out of range (1..=2^32)")
            }
            SketchConfigError::BitmapWidthOutOfRange(bits) => {
                write!(f, "bitmap width {bits} out of range (1..=64)")
            }
        }
    }
}

impl Error for SketchConfigError {}

/// Error merging two sketches with incompatible shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Human-readable description of the mismatch.
    pub reason: String,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot merge sketches: {}", self.reason)
    }
}

impl Error for MergeError {}

/// A duplicate-insensitive cardinality estimator over pre-hashed items.
///
/// Implementations are *mergeable*: merging the sketches of two multisets
/// yields exactly the sketch of their union, which is what makes them
/// distributable (DHS stores the sketch bits across a DHT; the tree and
/// gossip baselines merge partial sketches).
pub trait CardinalityEstimator {
    /// Number of buckets (`m` in the literature). Always a power of two.
    fn buckets(&self) -> usize;

    /// Record one (pre-hashed) item. Idempotent for equal hashes.
    fn insert_hash(&mut self, hash: u64);

    /// Estimate the number of distinct items inserted so far.
    fn estimate(&self) -> f64;

    /// Merge `other` into `self`, so that `self` becomes the sketch of the
    /// union of both input multisets.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;

    /// True if no item has ever been inserted.
    fn is_empty(&self) -> bool;
}

/// Validate a bucket count: power of two within `1..=2^32`.
pub(crate) fn validate_buckets(m: usize) -> Result<u32, SketchConfigError> {
    if m == 0 || m > (1usize << 32) {
        return Err(SketchConfigError::BucketsOutOfRange(m));
    }
    if !m.is_power_of_two() {
        return Err(SketchConfigError::BucketsNotPowerOfTwo(m));
    }
    Ok(m.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_powers_of_two() {
        for c in 0..20u32 {
            assert_eq!(validate_buckets(1usize << c), Ok(c));
        }
    }

    #[test]
    fn validate_rejects_non_powers() {
        assert!(matches!(
            validate_buckets(3),
            Err(SketchConfigError::BucketsNotPowerOfTwo(3))
        ));
        assert!(matches!(
            validate_buckets(0),
            Err(SketchConfigError::BucketsOutOfRange(0))
        ));
        assert!(matches!(
            validate_buckets(1000),
            Err(SketchConfigError::BucketsNotPowerOfTwo(1000))
        ));
    }

    #[test]
    fn errors_display() {
        let e = SketchConfigError::BucketsNotPowerOfTwo(5);
        assert!(e.to_string().contains('5'));
        let e = MergeError {
            reason: "m mismatch".into(),
        };
        assert!(e.to_string().contains("m mismatch"));
    }
}

//! Criterion micro-benchmarks for the DHS protocol: insertion, counting
//! and histogram reconstruction end-to-end (simulated time, real work).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dhs_core::{Dhs, DhsConfig, EstimatorKind};
use dhs_dht::cost::CostLedger;
use dhs_dht::ring::{Ring, RingConfig};
use dhs_histogram::{BucketSpec, DhsHistogram};
use dhs_sketch::{ItemHasher, SplitMix64};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn populated(m: usize, n: u64) -> (Dhs, Ring, StdRng) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut ring = Ring::build(1024, RingConfig::default(), &mut rng);
    let dhs = Dhs::new(DhsConfig {
        m,
        k: 28,
        ..DhsConfig::default()
    })
    .unwrap();
    let hasher = SplitMix64::default();
    let keys: Vec<u64> = (0..n).map(|i| hasher.hash_u64(i)).collect();
    let origins = ring.alive_ids().to_vec();
    let mut ledger = CostLedger::new();
    for (chunk, &origin) in keys.chunks(1024).zip(origins.iter().cycle()) {
        dhs.bulk_insert(&mut ring, 1, chunk, origin, &mut rng, &mut ledger);
    }
    (dhs, ring, rng)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("dhs_insert");
    group.throughput(Throughput::Elements(1));
    let mut rng = StdRng::seed_from_u64(3);
    let mut ring = Ring::build(1024, RingConfig::default(), &mut rng);
    let dhs = Dhs::new(DhsConfig::default()).unwrap();
    let hasher = SplitMix64::default();
    let origins = ring.alive_ids().to_vec();
    group.bench_function("per_item/1024_nodes", |b| {
        let mut i = 0u64;
        let mut ledger = CostLedger::new();
        b.iter(|| {
            i = i.wrapping_add(1);
            let origin = origins[(i % origins.len() as u64) as usize];
            dhs.insert(
                &mut ring,
                1,
                hasher.hash_u64(black_box(i)),
                origin,
                &mut rng,
                &mut ledger,
            )
        });
    });
    group.finish();
}

fn bench_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("dhs_count");
    group.sample_size(20);
    for (m, estimator) in [
        (512usize, EstimatorKind::SuperLogLog),
        (512, EstimatorKind::Pcsa),
    ] {
        let (_, ring, mut rng) = populated(m, 500_000);
        let dhs = Dhs::new(DhsConfig {
            m,
            k: 28,
            estimator,
            ..DhsConfig::default()
        })
        .unwrap();
        group.bench_function(BenchmarkId::new(format!("{estimator}"), m), |b| {
            b.iter(|| {
                let origin = ring.random_alive(&mut rng);
                let mut ledger = CostLedger::new();
                black_box(dhs.count(&ring, 1, origin, &mut rng, &mut ledger))
            })
        });
    }
    group.finish();
}

fn bench_histogram_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("dhs_histogram");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let mut ring = Ring::build(1024, RingConfig::default(), &mut rng);
    let dhs = Dhs::new(DhsConfig {
        m: 128,
        k: 28,
        ..DhsConfig::default()
    })
    .unwrap();
    let hasher = SplitMix64::default();
    let spec = BucketSpec::new(0, 9_999, 100, 1_000);
    // 200k tuples with uniform values.
    use rand::Rng;
    for i in 0..200_000u64 {
        let value = rng.gen_range(0..10_000u32);
        let bucket = spec.bucket_of(value).unwrap();
        let origin = ring.random_alive(&mut rng);
        dhs.insert(
            &mut ring,
            spec.metric_of(bucket),
            hasher.hash_u64(i),
            origin,
            &mut rng,
            &mut CostLedger::new(),
        );
    }
    group.bench_function("reconstruct_100_buckets", |b| {
        b.iter(|| {
            let origin = ring.random_alive(&mut rng);
            let mut ledger = CostLedger::new();
            black_box(DhsHistogram::reconstruct(
                &dhs,
                &ring,
                spec,
                origin,
                &mut rng,
                &mut ledger,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_count,
    bench_histogram_reconstruct
);
criterion_main!(benches);

//! Criterion micro-benchmarks for the sketch substrate: hashing and
//! per-item sketch update/estimate throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dhs_sketch::{
    CardinalityEstimator, HyperLogLog, ItemHasher, Md4Hasher, Pcsa, SplitMix64, SuperLogLog,
};

fn bench_hashers(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    group.throughput(Throughput::Elements(1));
    group.bench_function("splitmix64_u64", |b| {
        let h = SplitMix64::default();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(h.hash_u64(i))
        });
    });
    group.bench_function("md4_u64", |b| {
        let h = Md4Hasher;
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(h.hash_u64(i))
        });
    });
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_insert");
    group.throughput(Throughput::Elements(1));
    for m in [64usize, 512, 4096] {
        group.bench_with_input(BenchmarkId::new("pcsa", m), &m, |b, &m| {
            let mut s = Pcsa::new(m).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
                s.insert_hash(black_box(i));
            });
        });
        group.bench_with_input(BenchmarkId::new("superloglog", m), &m, |b, &m| {
            let mut s = SuperLogLog::new(m).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
                s.insert_hash(black_box(i));
            });
        });
        group.bench_with_input(BenchmarkId::new("hyperloglog", m), &m, |b, &m| {
            let mut s = HyperLogLog::new(m).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
                s.insert_hash(black_box(i));
            });
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_estimate");
    let hasher = SplitMix64::default();
    for m in [512usize] {
        let mut pcsa = Pcsa::new(m).unwrap();
        let mut sll = SuperLogLog::new(m).unwrap();
        let mut hll = HyperLogLog::new(m).unwrap();
        for i in 0..200_000u64 {
            let h = hasher.hash_u64(i);
            pcsa.insert_hash(h);
            sll.insert_hash(h);
            hll.insert_hash(h);
        }
        group.bench_function(BenchmarkId::new("pcsa", m), |b| {
            b.iter(|| black_box(pcsa.estimate()))
        });
        group.bench_function(BenchmarkId::new("superloglog", m), |b| {
            b.iter(|| black_box(sll.estimate()))
        });
        group.bench_function(BenchmarkId::new("hyperloglog", m), |b| {
            b.iter(|| black_box(hll.estimate()))
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let hasher = SplitMix64::default();
    let mut a = SuperLogLog::new(1024).unwrap();
    let mut b_sketch = SuperLogLog::new(1024).unwrap();
    for i in 0..100_000u64 {
        a.insert_hash(hasher.hash_u64(i));
        b_sketch.insert_hash(hasher.hash_u64(i + 50_000));
    }
    c.bench_function("sketch_merge/superloglog_1024", |bench| {
        bench.iter(|| {
            let mut x = a.clone();
            x.merge(black_box(&b_sketch)).unwrap();
            black_box(x)
        })
    });
}

criterion_group!(
    benches,
    bench_hashers,
    bench_insert,
    bench_estimate,
    bench_merge
);
criterion_main!(benches);

//! Criterion micro-benchmarks for the DHT substrate: overlay
//! construction and routing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dhs_dht::cost::CostLedger;
use dhs_dht::ring::{Ring, RingConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_build");
    for n in [1024usize, 10240] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(Ring::build(n, RingConfig::default(), &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    for n in [1024usize, 10240] {
        let mut rng = StdRng::seed_from_u64(7);
        let ring = Ring::build(n, RingConfig::default(), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let from = ring.random_alive(&mut rng);
                let key: u64 = rng.gen();
                let mut ledger = CostLedger::new();
                black_box(ring.route(from, key, &mut ledger))
            })
        });
    }
    group.finish();
}

fn bench_successor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let ring = Ring::build(10240, RingConfig::default(), &mut rng);
    c.bench_function("successor/10240", |b| {
        b.iter(|| {
            let key: u64 = rng.gen();
            black_box(ring.successor(key))
        })
    });
}

criterion_group!(benches, bench_build, bench_route, bench_successor);
criterion_main!(benches);

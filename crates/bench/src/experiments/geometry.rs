//! G1 — the "DHT-agnostic" claim, measured: identical DHS code and
//! workload over Chord (successor ownership, finger routing) and
//! Kademlia (XOR ownership, prefix routing).

use dhs_core::{Dhs, DhsConfig, EstimatorKind, Summary};
use dhs_dht::cost::CostLedger;
use dhs_dht::kademlia::Kademlia;
use dhs_dht::overlay::Overlay;
use dhs_workload::relation::{Relation, PAPER_RELATIONS};

use crate::env::{item_hasher, ExpConfig};
use crate::table::{f, Table};

fn populate<O: Overlay>(dhs: &Dhs, overlay: &mut O, rel: &Relation, rng: &mut rand::rngs::StdRng) {
    use dhs_sketch::ItemHasher;
    let hasher = item_hasher();
    let keys: Vec<u64> = rel.tuples.iter().map(|t| hasher.hash_u64(t.id)).collect();
    for chunk in keys.chunks(1024) {
        let origin = overlay.any_node(rng);
        dhs.bulk_insert(overlay, 1, chunk, origin, rng, &mut CostLedger::new());
    }
}

fn measure<O: Overlay>(
    dhs: &Dhs,
    overlay: &O,
    actual: u64,
    trials: usize,
    rng: &mut rand::rngs::StdRng,
) -> (f64, f64, f64, f64) {
    let mut err = Summary::new();
    let mut hops = Summary::new();
    let mut probes = Summary::new();
    let mut bytes = Summary::new();
    for _ in 0..trials {
        let origin = overlay.any_node(rng);
        let mut ledger = CostLedger::new();
        let result = dhs.count(overlay, 1, origin, rng, &mut ledger);
        err.add(result.relative_error(actual).abs());
        hops.add(result.stats.hops as f64);
        probes.add(result.stats.probes as f64);
        bytes.add(result.stats.bytes as f64);
    }
    (err.mean(), hops.mean(), probes.mean(), bytes.mean())
}

/// Run G1: error/cost of both estimators on both overlay geometries.
pub fn geometry(exp: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "G1 DHT-agnosticism — same DHS (m = {}), same workload, two geometries \
         ({} nodes, scale {})\n\n",
        exp.m.min(256),
        exp.nodes,
        exp.scale
    ));
    let mut table = Table::new(&[
        "overlay",
        "estimator",
        "err (%)",
        "hops",
        "probes",
        "BW (kB)",
    ]);
    for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
        let dhs = Dhs::new(DhsConfig {
            m: exp.m.min(256),
            estimator,
            ..exp.dhs_config()
        })
        .expect("valid config");
        for geometry in ["chord", "kademlia"] {
            let mut rng = exp.rng(0x61);
            let rel = Relation::generate(&PAPER_RELATIONS[1], exp.scale, 2, &mut rng);
            let actual = rel.len() as u64;
            let (err, hops, probes, bytes) = if geometry == "chord" {
                let mut overlay = exp.build_ring(&mut rng);
                populate(&dhs, &mut overlay, &rel, &mut rng);
                measure(&dhs, &overlay, actual, exp.trials, &mut rng)
            } else {
                let mut overlay =
                    Kademlia::build(exp.nodes, dhs_dht::ring::RingConfig::default(), &mut rng);
                populate(&dhs, &mut overlay, &rel, &mut rng);
                measure(&dhs, &overlay, actual, exp.trials, &mut rng)
            };
            table.row(vec![
                geometry.to_string(),
                estimator.to_string(),
                f(err * 100.0, 1),
                f(hops, 0),
                f(probes, 0),
                f(bytes / 1024.0, 1),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper claim (§1): \"the proposed design is DHT-agnostic\". Same code, same\n\
         workload; ownership and routing differ, estimator accuracy should not.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_report_covers_both_overlays() {
        let exp = ExpConfig {
            nodes: 64,
            scale: 0.001,
            m: 32,
            k: 20,
            trials: 2,
            ..ExpConfig::default()
        };
        let report = geometry(&exp);
        assert!(report.contains("chord"));
        assert!(report.contains("kademlia"));
    }
}

//! N4 — the `dhs-shard` subsystem: a million tenant-scoped sketches in
//! one process, on tiered registers, under a memory budget.
//!
//! The paper's §4.2 histogram construction puts one sketch behind every
//! (user, bucket) pair; at Internet scale that is millions of concurrent
//! metrics, most nearly empty (Zipf tails) and a few dense. This
//! experiment drives the multi-tenant workload through the sharded store
//! and measures what the tiered register arena buys:
//!
//! * **compression** — mean payload bytes per resident sketch vs the
//!   dense `m`-byte baseline, plus the tier census the Zipf mix settles
//!   into (sparse tails, packed middle, dense head);
//! * **throughput** — sustained inserts per second, total and per shard;
//! * **transparency** — the 8-shard store's registers and estimates must
//!   be byte-identical to a single-shard store fed the same stream;
//! * **eviction determinism** — under a budget of half the unbudgeted
//!   peak, two same-seed runs must produce equal eviction digests, and a
//!   lossless cold tier must leave every estimate bit-identical to the
//!   unbudgeted run.
//!
//! `DHS_SHARD_METRICS` overrides the metric count so CI can run the same
//! code paths at a fraction of the scale; the default derives from
//! `--scale` (0.1 ⇒ the paper-scale 10⁶-metric run).

use std::time::Instant;

use dhs_obs::{Fnv1a, NoopRecorder};
use dhs_shard::{MemoryColdTier, ShardConfig, ShardStats, ShardedStore, SketchKey, SLOT_OVERHEAD};
use dhs_sketch::{ItemHasher, SplitMix64};
use dhs_workload::TenantWorkload;

use crate::env::ExpConfig;
use crate::table::{f, Table};

/// Shards in the store under test.
const SHARDS: usize = 8;
/// Registers per sketch (64 keeps a million sketches in memory while the
/// dense baseline — one byte per register — is still meaningfully large).
const M: usize = 64;

/// The workload shape for `metrics` total metrics (clamped to ≥ 64).
/// Metrics land on tenants 1 000 at a time. (Shared with N6, which
/// saturates the same workload through the threaded driver.)
pub(crate) fn shard_workload_sized(metrics: u64) -> TenantWorkload {
    let goal = metrics.max(64);
    let (tenants, metrics_per_tenant) = if goal >= 1_000 {
        ((goal / 1_000).min(1 << 16) as u32, 1_000u32)
    } else {
        (1u32, goal as u32)
    };
    let total = u64::from(tenants) * u64::from(metrics_per_tenant);
    TenantWorkload {
        tenants,
        metrics_per_tenant,
        theta: 0.7,
        extra_updates: 3 * total,
    }
}

/// The default workload: `DHS_SHARD_METRICS` (env) pins the metric
/// count; otherwise `scale × 10⁷`, so the default `--scale 0.1` is the
/// full 10⁶-metric run. An explicit `metrics` (from an ablation plan
/// parameter) takes precedence over both.
#[allow(clippy::cast_possible_truncation)]
fn shard_workload(exp: &ExpConfig, metrics: Option<u64>) -> TenantWorkload {
    let goal = metrics
        .or_else(|| {
            std::env::var("DHS_SHARD_METRICS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
        })
        .unwrap_or_else(|| (exp.scale * 1e7).round() as u64);
    shard_workload_sized(goal)
}

/// One pass of the workload through a store (any budget/cold-tier
/// configuration), with wall-clock timing.
// dhs-flow: allow(entropy-taint) — wall-clock timing is the measurement itself; only derived throughput numbers are reported
fn run_stream<C: dhs_shard::ColdTier>(
    w: &TenantWorkload,
    exp: &ExpConfig,
    mut store: ShardedStore<C>,
) -> (ShardedStore<C>, f64) {
    let hasher = SplitMix64::default();
    let mut rec = NoopRecorder;
    let start = Instant::now();
    w.visit(&mut exp.rng(0x5AAD_0002), |u| {
        store.observe_item(
            SketchKey::new(u.tenant, u.metric),
            hasher.hash_u64(u.item),
            &mut rec,
        );
    });
    let wall_s = start.elapsed().as_secs_f64();
    (store, wall_s)
}

/// Aggregates over per-shard stats.
struct Totals {
    resident: u64,
    bytes: u64,
    peak_bytes: u64,
    inserts: u64,
    evictions: u64,
    spilled_bytes: u64,
    recoveries: u64,
    promotions_packed: u64,
    promotions_dense: u64,
}

fn totals(stats: &[ShardStats]) -> Totals {
    let mut t = Totals {
        resident: 0,
        bytes: 0,
        peak_bytes: 0,
        inserts: 0,
        evictions: 0,
        spilled_bytes: 0,
        recoveries: 0,
        promotions_packed: 0,
        promotions_dense: 0,
    };
    for s in stats {
        t.resident += s.resident as u64;
        t.bytes += s.bytes;
        t.peak_bytes += s.peak_bytes;
        t.inserts += s.inserts;
        t.evictions += s.evictions;
        t.spilled_bytes += s.spilled_bytes;
        t.recoveries += s.recoveries;
        t.promotions_packed += s.promotions_packed;
        t.promotions_dense += s.promotions_dense;
    }
    t
}

/// Everything both the table view and the JSON view report.
struct ShardReport {
    workload: TenantWorkload,
    sharded_stats: Vec<ShardStats>,
    wall_s: f64,
    /// Registers and estimates identical to a single-shard store.
    transparent: bool,
    /// FNV over every (key, estimate-bits) pair of the sharded store.
    estimate_digest: u64,
    /// Budget used in the eviction phase (bytes, per shard).
    budget: u64,
    evict_stats: Vec<ShardStats>,
    evict_digest: u64,
    /// Two same-seed budgeted runs evicted identically.
    evict_deterministic: bool,
    /// Budgeted + lossless cold tier estimates == unbudgeted estimates.
    spill_lossless: bool,
    /// Deterministic fingerprint of the whole run (no wall-clock).
    state_digest: u64,
}

/// Run every phase once; both output formats render from this. `metrics`
/// (when given, e.g. from an ablation-plan factor) overrides the
/// workload size ahead of `DHS_SHARD_METRICS` and `--scale`.
// dhs-flow: allow(entropy-taint) — aggregates run_stream wall-clock timings; the report is a measurement harness
fn run_report(exp: &ExpConfig, metrics: Option<u64>) -> ShardReport {
    let w = shard_workload(exp, metrics);
    let mut rec = NoopRecorder;

    // Phase A: the sharded store, unlimited budget.
    let (mut sharded, wall_s) = run_stream(
        &w,
        exp,
        ShardedStore::new(ShardConfig::new(SHARDS, M)).expect("valid config"),
    );
    let sharded_stats = sharded.stats();

    // Phase B: single-shard reference — sharding must be placement only.
    let (mut single, _) = run_stream(
        &w,
        exp,
        ShardedStore::new(ShardConfig::new(1, M)).expect("valid config"),
    );
    let mut transparent = true;
    let mut est_digest = Fnv1a::new();
    for tenant in 0..w.tenants {
        for metric in 0..w.metrics_per_tenant {
            let key = SketchKey::new(tenant as u16, metric as u16);
            transparent &= sharded.register_vec(key) == single.register_vec(key);
            let a = sharded.estimate(key, &mut rec);
            let b = single.estimate(key, &mut rec);
            transparent &= a.map(f64::to_bits) == b.map(f64::to_bits);
            est_digest.update(&key.packed().to_le_bytes());
            est_digest.update(&a.map_or(0, f64::to_bits).to_le_bytes());
        }
    }
    drop(single);

    // Phase C: budget = half the unbudgeted per-shard peak, lossless
    // cold tier. Run twice: digests must match; estimates must equal the
    // unbudgeted store's bit-for-bit (spill + recover is invisible).
    let peak_per_shard = sharded_stats
        .iter()
        .map(|s| s.peak_bytes)
        .max()
        .unwrap_or(0);
    let budget = (peak_per_shard / 2).max(4 * SLOT_OVERHEAD);
    let cfg = ShardConfig::new(SHARDS, M).with_budget(budget);
    let (mut budgeted_a, _) = run_stream(
        &w,
        exp,
        ShardedStore::with_cold_tier(cfg, MemoryColdTier::new()).unwrap(),
    );
    let (budgeted_b, _) = run_stream(
        &w,
        exp,
        ShardedStore::with_cold_tier(cfg, MemoryColdTier::new()).unwrap(),
    );
    let evict_deterministic = budgeted_a.eviction_digest() == budgeted_b.eviction_digest()
        && budgeted_a.stats() == budgeted_b.stats();
    drop(budgeted_b);
    let mut spill_lossless = true;
    for tenant in 0..w.tenants {
        for metric in 0..w.metrics_per_tenant {
            let key = SketchKey::new(tenant as u16, metric as u16);
            let a = sharded.estimate(key, &mut rec).map(f64::to_bits);
            let b = budgeted_a.estimate(key, &mut rec).map(f64::to_bits);
            spill_lossless &= a == b;
        }
    }
    let evict_stats = budgeted_a.stats();
    let evict_digest = budgeted_a.eviction_digest();

    // A wall-clock-free fingerprint check.sh compares across two runs.
    let mut state = Fnv1a::new();
    for s in &sharded_stats {
        state.update(&(s.resident as u64).to_le_bytes());
        state.update(&s.bytes.to_le_bytes());
        state.update(&s.peak_bytes.to_le_bytes());
        state.update(&s.inserts.to_le_bytes());
        state.update(&s.promotions_packed.to_le_bytes());
        state.update(&s.promotions_dense.to_le_bytes());
    }
    state.update(&est_digest.finish().to_le_bytes());
    state.update(&evict_digest.to_le_bytes());

    ShardReport {
        workload: w,
        sharded_stats,
        wall_s,
        transparent,
        estimate_digest: est_digest.finish(),
        budget,
        evict_stats,
        evict_digest,
        evict_deterministic,
        spill_lossless,
        state_digest: state.finish(),
    }
}

/// N4's deterministic KPIs as `ablation.shard.*` metrics for the
/// dhs-traj harness: resident/insert/eviction/recovery totals as
/// counters and gauges, the fractional payload-bytes-per-sketch as a
/// fixed-point milli-unit gauge, and the three equivalence verdicts as
/// 0/1 gauges. Throughput (wall-clock) is deliberately absent.
#[allow(clippy::cast_possible_truncation)]
pub fn shard_kpi_metrics(exp: &ExpConfig, metrics: Option<u64>) -> dhs_obs::MetricsRegistry {
    use dhs_obs::names;
    let r = run_report(exp, metrics);
    let t = totals(&r.sharded_stats);
    let te = totals(&r.evict_stats);
    let milli = |x: f64| (x.max(0.0) * 1000.0).round() as u64;
    let mut m = dhs_obs::MetricsRegistry::new();
    m.gauge_set(names::ABL_SHARD_RESIDENT, t.resident);
    m.gauge_set(
        names::ABL_SHARD_PAYLOAD_BYTES,
        milli(payload_per_sketch(&t)),
    );
    m.incr(names::ABL_SHARD_INSERTS, t.inserts);
    m.incr(names::ABL_SHARD_EVICTIONS, te.evictions);
    m.incr(names::ABL_SHARD_RECOVERIES, te.recoveries);
    m.gauge_set(names::ABL_SHARD_TRANSPARENT, u64::from(r.transparent));
    m.gauge_set(names::ABL_SHARD_SPILL_LOSSLESS, u64::from(r.spill_lossless));
    m.gauge_set(
        names::ABL_SHARD_EVICT_DETERMINISTIC,
        u64::from(r.evict_deterministic),
    );
    m
}

/// Mean payload (register) bytes per resident sketch: accounted bytes
/// minus the fixed per-slot overhead, over the resident count.
fn payload_per_sketch(t: &Totals) -> f64 {
    if t.resident == 0 {
        return 0.0;
    }
    (t.bytes - t.resident * SLOT_OVERHEAD) as f64 / t.resident as f64
}

/// N4 — sharded multi-tenant store: compression, throughput, and
/// transparency/eviction equivalence checks.
pub fn shard(exp: &ExpConfig) -> String {
    let r = run_report(exp, None);
    let w = &r.workload;
    let t = totals(&r.sharded_stats);
    let te = totals(&r.evict_stats);
    let mut out = String::new();
    out.push_str(&format!(
        "N4 dhs-shard — {} metrics ({} tenants × {}), {} updates, {} shards, m = {}\n\
         tiered registers: sparse → packed (6-bit) → dense; budgeted phase evicts to a \
         lossless cold tier at half the unbudgeted peak\n\n",
        w.total_metrics(),
        w.tenants,
        w.metrics_per_tenant,
        w.total_updates(),
        SHARDS,
        M,
    ));

    let mut table = Table::new(&[
        "shard",
        "resident",
        "KB",
        "peak KB",
        "inserts",
        "→packed",
        "→dense",
        "ins/s",
    ]);
    for (i, s) in r.sharded_stats.iter().enumerate() {
        table.row(vec![
            i.to_string(),
            s.resident.to_string(),
            f(s.bytes as f64 / 1024.0, 1),
            f(s.peak_bytes as f64 / 1024.0, 1),
            s.inserts.to_string(),
            s.promotions_packed.to_string(),
            s.promotions_dense.to_string(),
            f(s.inserts as f64 / r.wall_s.max(1e-9), 0),
        ]);
    }
    out.push_str(&format!("per shard (unbudgeted):\n{}\n", table.render()));

    // No evictions in the unbudgeted phase, so promotion counters are an
    // exact tier census: each sketch promotes at most once per tier.
    let dense = t.promotions_dense;
    let packed = t.promotions_packed - dense;
    let sparse = t.resident - t.promotions_packed;
    out.push_str(&format!(
        "tier census: {sparse} sparse, {packed} packed, {dense} dense of {} resident\n\
         memory: {:.1} payload B/sketch vs {M} B dense baseline ({:.1}% of dense), \
         {:.2} MB total (peak {:.2} MB incl. {}-B slot overhead)\n\
         throughput: {:.0} inserts/s total, {:.0} per shard ({:.2} s wall)\n\n",
        t.resident,
        payload_per_sketch(&t),
        100.0 * payload_per_sketch(&t) / M as f64,
        t.bytes as f64 / (1024.0 * 1024.0),
        t.peak_bytes as f64 / (1024.0 * 1024.0),
        SLOT_OVERHEAD,
        t.inserts as f64 / r.wall_s.max(1e-9),
        t.inserts as f64 / r.wall_s.max(1e-9) / SHARDS as f64,
        r.wall_s,
    ));

    out.push_str(&format!(
        "budgeted ({} B/shard, lossless cold tier): {} evictions, {:.2} MB spilled, \
         {} recoveries, eviction digest {:#018x}\n\n",
        r.budget,
        te.evictions,
        te.spilled_bytes as f64 / (1024.0 * 1024.0),
        te.recoveries,
        r.evict_digest,
    ));

    out.push_str(&format!(
        "acceptance: payload bytes/sketch below the {M}-B dense baseline: {}\n\
         acceptance: sharded registers + estimates == single-shard (bit-identical): {}\n\
         acceptance: two budgeted runs evict identically (digest + stats): {}\n\
         acceptance: budgeted + lossless cold tier estimates == unbudgeted: {}\n",
        if payload_per_sketch(&t) < M as f64 {
            "PASS"
        } else {
            "FAIL"
        },
        if r.transparent { "PASS" } else { "FAIL" },
        if r.evict_deterministic {
            "PASS"
        } else {
            "FAIL"
        },
        if r.spill_lossless { "PASS" } else { "FAIL" },
    ));
    out
}

/// The `repro bench-shard` payload: headline memory/throughput numbers as
/// a JSON object (written to `BENCH_shard.json` so future PRs can diff;
/// `state_digest` is wall-clock-free, so two same-seed runs emit files
/// that differ only in timing fields).
pub fn shard_bench_json(exp: &ExpConfig) -> String {
    let r = run_report(exp, None);
    let w = &r.workload;
    let t = totals(&r.sharded_stats);
    let te = totals(&r.evict_stats);
    let per_shard: Vec<String> = r
        .sharded_stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "    {{\"shard\": {i}, \"resident\": {}, \"bytes\": {}, \"peak_bytes\": {}, \
                 \"inserts\": {}, \"inserts_per_s\": {:.0}}}",
                s.resident,
                s.bytes,
                s.peak_bytes,
                s.inserts,
                s.inserts as f64 / r.wall_s.max(1e-9),
            )
        })
        .collect();
    let dense = t.promotions_dense;
    let packed = t.promotions_packed - dense;
    let sparse = t.resident - t.promotions_packed;
    let config_digest = crate::provenance::config_digest(&[
        ("experiment", "n4-shard".to_string()),
        ("metrics", w.total_metrics().to_string()),
        ("tenants", w.tenants.to_string()),
        ("metrics_per_tenant", w.metrics_per_tenant.to_string()),
        ("updates", w.total_updates().to_string()),
        ("shards", SHARDS.to_string()),
        ("m", M.to_string()),
        ("theta", w.theta.to_string()),
        ("seed", exp.seed.to_string()),
    ]);
    format!(
        "{{\n  \"experiment\": \"dhs-shard N4 (multi-tenant tiered store)\",\n  \
         \"config\": {{\n    \"metrics\": {},\n    \"tenants\": {},\n    \
         \"metrics_per_tenant\": {},\n    \"updates\": {},\n    \"shards\": {SHARDS},\n    \
         \"m\": {M},\n    \"theta\": {},\n    \"seed\": {}\n  }},\n  \
         \"provenance\": {},\n  \
         \"memory\": {{\n    \"resident_sketches\": {},\n    \
         \"payload_bytes_per_sketch\": {:.2},\n    \"dense_baseline_bytes_per_sketch\": {M},\n    \
         \"payload_vs_dense_pct\": {:.1},\n    \"total_bytes\": {},\n    \
         \"peak_bytes\": {},\n    \"slot_overhead_bytes\": {SLOT_OVERHEAD},\n    \
         \"tier_census\": {{\"sparse\": {sparse}, \"packed\": {packed}, \"dense\": {dense}}}\n  }},\n  \
         \"throughput\": {{\n    \"wall_s\": {:.3},\n    \"inserts_per_s\": {:.0},\n    \
         \"per_shard_inserts_per_s\": {:.0}\n  }},\n  \
         \"per_shard\": [\n{}\n  ],\n  \
         \"eviction\": {{\n    \"budget_bytes_per_shard\": {},\n    \"evictions\": {},\n    \
         \"spilled_bytes\": {},\n    \"recoveries\": {},\n    \
         \"digest\": \"{:#018x}\",\n    \"two_runs_identical\": {}\n  }},\n  \
         \"sharded_equals_single_shard\": {},\n  \
         \"lossless_spill_preserves_estimates\": {},\n  \
         \"estimate_digest\": \"{:#018x}\",\n  \"state_digest\": \"{:#018x}\"\n}}\n",
        w.total_metrics(),
        w.tenants,
        w.metrics_per_tenant,
        w.total_updates(),
        w.theta,
        exp.seed,
        crate::provenance::provenance_json(exp.seed, &config_digest),
        t.resident,
        payload_per_sketch(&t),
        100.0 * payload_per_sketch(&t) / M as f64,
        t.bytes,
        t.peak_bytes,
        r.wall_s,
        t.inserts as f64 / r.wall_s.max(1e-9),
        t.inserts as f64 / r.wall_s.max(1e-9) / SHARDS as f64,
        per_shard.join(",\n"),
        r.budget,
        te.evictions,
        te.spilled_bytes,
        te.recoveries,
        r.evict_digest,
        r.evict_deterministic,
        r.transparent,
        r.spill_lossless,
        r.estimate_digest,
        r.state_digest,
    )
}

//! E4 — §5.2 "Accuracy": estimation error vs bitmap count.
//!
//! Paper text: with 64–2048 bitmaps accuracy is good (~2.9% PCSA, ~5%
//! sLL on average); beyond 4096 bitmaps both degrade because `lim = 5`
//! probes no longer find the (per-bitmap much sparser) set bits — sLL
//! degrades gracefully (~15% at 4096) while PCSA collapses (~44%),
//! because sLL probes the (denser) high-order bits first.

use dhs_core::{Dhs, DhsConfig, EstimatorKind, Summary};
use dhs_dht::cost::CostLedger;

use crate::env::{populate_relations, relation_metric, ExpConfig};
use crate::table::{f, Table};

/// Run E4: mean |error| vs m for both estimators, fixed lim = 5.
pub fn accuracy(exp: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E4 accuracy vs bitmap count — {} nodes, scale {}, lim = 5, {} trials\n\n",
        exp.nodes, exp.scale, exp.trials
    ));
    let mut table = Table::new(&[
        "m",
        "err sLL (%)",
        "err PCSA (%)",
        "err HLL (%)",
        "theory sLL (%)",
        "theory PCSA (%)",
    ]);
    for m in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let m_exp = ExpConfig { m, ..*exp };
        let insert_dhs = Dhs::new(m_exp.dhs_config()).expect("valid config");
        let populated = populate_relations(&insert_dhs, &m_exp, &mut m_exp.rng(0xE4));
        let mut errs = Vec::new();
        for estimator in [
            EstimatorKind::SuperLogLog,
            EstimatorKind::Pcsa,
            EstimatorKind::HyperLogLog,
        ] {
            let dhs = Dhs::new(DhsConfig {
                estimator,
                ..m_exp.dhs_config()
            })
            .expect("valid config");
            let mut rng = m_exp.rng(0xE4_00 + m as u64);
            let mut err = Summary::new();
            for _ in 0..m_exp.trials {
                for (i, &actual) in populated.actual.iter().enumerate() {
                    let origin = populated.ring.random_alive(&mut rng);
                    let mut ledger = CostLedger::new();
                    let result = dhs.count(
                        &populated.ring,
                        relation_metric(i),
                        origin,
                        &mut rng,
                        &mut ledger,
                    );
                    err.add(result.relative_error(actual).abs());
                }
            }
            errs.push(err.mean());
        }
        // The estimators' intrinsic standard errors, for reference: the
        // *excess* over these is the distributed-operation error.
        let sll_theory = 1.05 / (m as f64).sqrt();
        let pcsa_theory = 0.78 / (m as f64).sqrt();
        table.row(vec![
            m.to_string(),
            f(errs[0] * 100.0, 1),
            f(errs[1] * 100.0, 1),
            f(errs[2] * 100.0, 1),
            f(sll_theory * 100.0, 1),
            f(pcsa_theory * 100.0, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper: good accuracy (<= ~5%) up to 2048 bitmaps; degradation past 4096\n\
         (lim=5 cannot find sparse bits: sLL ~15%, PCSA ~44% at 4096).\n\
         HLL is our extension (not in the paper): same scan as sLL, harmonic mean.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_report_covers_all_m() {
        let exp = ExpConfig {
            nodes: 64,
            scale: 0.0005,
            k: 24,
            trials: 1,
            ..ExpConfig::default()
        };
        let report = accuracy(&exp);
        for m in ["64", "512", "4096"] {
            assert!(report.contains(m));
        }
    }
}

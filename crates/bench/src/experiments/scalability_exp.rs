//! E3 — §5.2 "Scalability" (the figure the paper omits for space).
//!
//! Paper text: average counting hop-count grows from 109/97 (sLL/PCSA)
//! at 1024 nodes to ~112/103 at 10240 nodes — logarithmic in N.

use dhs_core::{Dhs, DhsConfig, EstimatorKind, Summary};
use dhs_dht::cost::CostLedger;
use dhs_workload::relation::{Relation, PAPER_RELATIONS};

use crate::env::{bulk_insert_relation, item_hasher, ExpConfig};
use crate::table::{f, Table};

/// Run E3: counting hops vs overlay size, for both estimators.
///
/// Uses the largest relation (T) only — the regime (items ≥ m·N) is what
/// matters, not the relation mix.
pub fn scalability(exp: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E3 scalability — counting hops vs overlay size (m = {}, scale {})\n\n",
        exp.m, exp.scale
    ));
    let mut table = Table::new(&[
        "nodes",
        "hops sLL",
        "hops PCSA",
        "lookup hops/probe walk sLL",
    ]);
    for nodes in [1024usize, 2048, 4096, 8192, 10240] {
        let n_exp = ExpConfig { nodes, ..*exp };
        let mut rng = n_exp.rng(0xE3 + nodes as u64);
        let insert_dhs = Dhs::new(n_exp.dhs_config()).expect("valid config");
        let mut ring = n_exp.build_ring(&mut rng);
        let rel = Relation::generate(&PAPER_RELATIONS[3], n_exp.scale, 4, &mut rng);
        let hasher = item_hasher();
        let mut ledger = CostLedger::new();
        bulk_insert_relation(
            &insert_dhs,
            &mut ring,
            &rel,
            1,
            &hasher,
            &mut rng,
            &mut ledger,
        );

        let mut row = vec![nodes.to_string()];
        let mut split = String::new();
        for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
            let dhs = Dhs::new(DhsConfig {
                estimator,
                ..n_exp.dhs_config()
            })
            .expect("valid config");
            let mut hops = Summary::new();
            let mut lookups = Summary::new();
            let mut probes = Summary::new();
            for _ in 0..n_exp.trials {
                let origin = ring.random_alive(&mut rng);
                let mut ledger = CostLedger::new();
                let result = dhs.count(&ring, 1, origin, &mut rng, &mut ledger);
                hops.add(result.stats.hops as f64);
                lookups.add(result.stats.lookups as f64);
                probes.add(result.stats.probes as f64);
            }
            row.push(f(hops.mean(), 0));
            if estimator == EstimatorKind::SuperLogLog {
                split = format!(
                    "{} lookups / {} probes",
                    f(lookups.mean(), 0),
                    f(probes.mean(), 0)
                );
            }
        }
        row.push(split);
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str("\npaper: 109/97 hops @1024 nodes -> ~112/103 @10240 (logarithmic growth)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_report_has_five_sizes() {
        // Tiny smoke configuration: small relation, few trials.
        let exp = ExpConfig {
            scale: 0.00005,
            m: 16,
            k: 20,
            trials: 1,
            ..ExpConfig::default()
        };
        let report = scalability(&exp);
        for n in ["1024", "2048", "4096", "8192", "10240"] {
            assert!(report.contains(n), "missing size {n}");
        }
    }
}

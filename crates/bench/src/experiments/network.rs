//! N1 — counting over a faulty network (`dhs-net`).
//!
//! The paper evaluates DHS on a simulated Chord ring but treats message
//! delivery as instantaneous and reliable; §4.1 only *analyzes* what a
//! failed probe costs. This experiment closes that gap: insertion and
//! Alg. 1 counting run over [`dhs_net::SimTransport`] with seeded
//! latency, message loss, node crashes and partitions, and we measure
//! what the network does to the estimate.
//!
//! Two tables:
//!
//! * **Loss sweep** — 0/5/10/20% per-leg loss, with and without the
//!   retry policy. The acceptance bar is the paper's own std-error bound
//!   for super-LogLog (1.05/√m, §2): with retries, a lossy-but-connected
//!   network at ≤ 10% loss must stay within 2× that bound.
//! * **Fault scenarios** — a healthy population counted through node
//!   crashes, a ring partition, and duplication + reordering jitter.

use dhs_core::transport::Transport;
use dhs_core::{Dhs, DhsConfig, RetryPolicy, Summary};
use dhs_dht::cost::CostLedger;
use dhs_dht::ring::Ring;
use dhs_net::fault::{CrashWindow, FaultPlane, Partition};
use dhs_net::latency::LatencyModel;
use dhs_net::sim::{SimConfig, SimTransport};
use dhs_net::wire::MessageSizes;
use dhs_sketch::ItemHasher;
use dhs_workload::relation::{Relation, PAPER_RELATIONS};
use rand::Rng;

use crate::env::{item_hasher, ExpConfig};
use crate::table::{f, Table};

/// Latency model shared by every scenario: 5–50 ticks per hop.
fn latency() -> LatencyModel {
    LatencyModel::Uniform { lo: 5, hi: 50 }
}

fn sim_config(seed: u64, faults: FaultPlane, retry: RetryPolicy) -> SimConfig {
    SimConfig {
        seed,
        latency: latency(),
        faults,
        retry,
        ..SimConfig::default()
    }
}

/// The retry policy used by the "retries on" rows: up to 4 attempts,
/// exponential backoff 50 → 400 ticks. A failed *lookup* skips its whole
/// interval (the §4.1 error mode), so the per-exchange failure rate has
/// to be driven well below 1/intervals for the estimate to hold.
fn retries_on() -> RetryPolicy {
    RetryPolicy::new(4, 50, 400)
}

/// Ship `rel` into the DHS over `net`, tuples pre-assigned to random
/// origin nodes (the grouped §3.2 update round, like the direct-path
/// experiments — but every store crosses the simulated network).
fn populate_via(
    dhs: &Dhs,
    ring: &mut Ring,
    net: &mut SimTransport,
    rel: &Relation,
    rng: &mut impl rand::Rng,
    ledger: &mut CostLedger,
) {
    let hasher = item_hasher();
    let node_count = ring.len_alive();
    let ids: Vec<u64> = ring.alive_ids().to_vec();
    let mut batches: Vec<Vec<u64>> = vec![Vec::new(); node_count];
    for t in &rel.tuples {
        let owner = rng.gen_range(0..node_count);
        batches[owner].push(hasher.hash_u64(t.id));
    }
    for (owner, batch) in batches.into_iter().enumerate() {
        if !batch.is_empty() {
            dhs.bulk_insert_via(ring, net, 1, &batch, ids[owner], rng, ledger);
        }
    }
}

struct CountRow {
    err_pct: f64,
    drops_per_op: f64,
    mean_latency: f64,
    vtime_per_op: f64,
    kb_per_op: f64,
}

/// Count `trials` times over fresh transports with `faults`, against a
/// populated system.
#[allow(clippy::too_many_arguments)]
fn count_over(
    dhs: &Dhs,
    ring: &Ring,
    actual: u64,
    exp: &ExpConfig,
    stream: u64,
    faults: &FaultPlane,
    retry: RetryPolicy,
    rng: &mut rand::rngs::StdRng,
) -> CountRow {
    let mut err = Summary::new();
    let mut drops = Summary::new();
    let mut lat = Summary::new();
    let mut vtime = Summary::new();
    let mut kb = Summary::new();
    for trial in 0..exp.trials {
        let mut net = SimTransport::new(sim_config(
            exp.seed ^ stream ^ (trial as u64).wrapping_mul(0xBEEF),
            faults.clone(),
            retry,
        ));
        let origin = ring.random_alive(rng);
        let mut ledger = CostLedger::new();
        let result = dhs.count_via(ring, &mut net, 1, origin, rng, &mut ledger);
        err.add(result.relative_error(actual).abs());
        drops.add(ledger.dropped_messages() as f64);
        vtime.add(net.now() as f64);
        kb.add(ledger.bytes() as f64 / 1024.0);
        let t = net.into_telemetry();
        lat.add(t.mean_latency());
    }
    CountRow {
        err_pct: err.mean() * 100.0,
        drops_per_op: drops.mean(),
        mean_latency: lat.mean(),
        vtime_per_op: vtime.mean(),
        kb_per_op: kb.mean(),
    }
}

/// N1 — DHS-sLL accuracy and cost over a faulty network.
// dhs-flow: allow(rng-plumbing) — fault-pattern RNG is seeded from ExpConfig tags; reproducibility comes from the config, not a plumbed handle
pub fn network(exp: &ExpConfig) -> String {
    let cfg = DhsConfig {
        estimator: dhs_core::EstimatorKind::SuperLogLog,
        ..exp.dhs_config()
    };
    let sizes = MessageSizes::for_config(&cfg);
    let bound_pct = 2.0 * 1.05 / (exp.m as f64).sqrt() * 100.0;
    let mut out = String::new();
    out.push_str(&format!(
        "N1 counting over a faulty network — DHS-sLL, m = {}, {} nodes, \
         relation Q (scale {}), {} trials/row\n\
         latency U(5,50) ticks/hop, timeout 400, retries = 4 attempts \
         backoff 50..400\n\n",
        exp.m, exp.nodes, exp.scale, exp.trials
    ));

    // ---- Table 1: loss sweep, insertion AND counting over the lossy net.
    let mut table = Table::new(&[
        "loss (%)",
        "retries",
        "err sLL (%)",
        "2x bound (%)",
        "drops/count",
        "lat (ticks)",
        "vtime/count",
        "KB/count",
    ]);
    let mut within_bound_at_10 = true;
    for &loss in &[0.0f64, 0.05, 0.10, 0.20] {
        for &with_retry in &[false, true] {
            let retry = if with_retry {
                retries_on()
            } else {
                RetryPolicy::none()
            };
            let stream = 0x4E31 ^ ((((loss * 100.0) as u64) << 8) | u64::from(with_retry));
            let mut rng = exp.rng(stream);
            let dhs = Dhs::new(cfg).expect("valid config");
            let mut ring = exp.build_ring(&mut rng);
            let rel = Relation::generate(&PAPER_RELATIONS[0], exp.scale, 4, &mut rng);
            let faults = if loss > 0.0 {
                FaultPlane::lossy(loss)
            } else {
                FaultPlane::none()
            };
            let mut insert_net =
                SimTransport::new(sim_config(exp.seed ^ stream, faults.clone(), retry));
            let mut insert_ledger = CostLedger::new();
            populate_via(
                &dhs,
                &mut ring,
                &mut insert_net,
                &rel,
                &mut rng,
                &mut insert_ledger,
            );
            let row = count_over(
                &dhs,
                &ring,
                rel.len() as u64,
                exp,
                stream,
                &faults,
                retry,
                &mut rng,
            );
            if loss <= 0.10 && with_retry && row.err_pct > bound_pct {
                within_bound_at_10 = false;
            }
            table.row(vec![
                f(loss * 100.0, 0),
                (if with_retry { "on" } else { "off" }).to_string(),
                f(row.err_pct, 1),
                f(bound_pct, 1),
                f(row.drops_per_op, 1),
                f(row.mean_latency, 1),
                f(row.vtime_per_op, 0),
                f(row.kb_per_op, 1),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nacceptance: err(sLL) <= 2 * 1.05/sqrt(m) = {:.1}% at loss <= 10% with retries: {}\n",
        bound_pct,
        if within_bound_at_10 { "PASS" } else { "FAIL" }
    ));

    // ---- Table 2: fault scenarios against a healthy population.
    out.push_str("\nfault scenarios (healthy insertion, faulty counting, retries on):\n\n");
    let mut rng = exp.rng(0xFA017);
    let dhs = Dhs::new(cfg).expect("valid config");
    let mut ring = exp.build_ring(&mut rng);
    let rel = Relation::generate(&PAPER_RELATIONS[0], exp.scale, 4, &mut rng);
    let mut healthy = SimTransport::new(sim_config(
        exp.seed ^ 0xFA017,
        FaultPlane::none(),
        RetryPolicy::none(),
    ));
    let mut insert_ledger = CostLedger::new();
    populate_via(
        &dhs,
        &mut ring,
        &mut healthy,
        &rel,
        &mut rng,
        &mut insert_ledger,
    );
    let actual = rel.len() as u64;

    let crash_fraction = |frac: f64, rng: &mut rand::rngs::StdRng| -> FaultPlane {
        let ids = ring.alive_ids();
        let n = ((ids.len() as f64) * frac).round() as usize;
        let mut plane = FaultPlane::none();
        let mut pool: Vec<u64> = ids.to_vec();
        for _ in 0..n {
            let i = rng.gen_range(0..pool.len());
            plane.crashes.push(CrashWindow {
                node: pool.swap_remove(i),
                from: 0,
                until: u64::MAX,
            });
        }
        plane
    };
    let scenarios: Vec<(&str, FaultPlane)> = vec![
        ("crash 5% of nodes", crash_fraction(0.05, &mut rng)),
        ("crash 20% of nodes", crash_fraction(0.20, &mut rng)),
        (
            "partition half the ID space",
            FaultPlane {
                partitions: vec![Partition {
                    from: 0,
                    until: u64::MAX,
                    lo: 0,
                    hi: u64::MAX / 2,
                }],
                ..FaultPlane::none()
            },
        ),
        (
            "10% duplication + jitter 30",
            FaultPlane {
                duplication: 0.10,
                reorder_jitter: 30,
                ..FaultPlane::none()
            },
        ),
    ];
    let mut table = Table::new(&[
        "scenario",
        "err sLL (%)",
        "drops/count",
        "lat (ticks)",
        "vtime/count",
        "KB/count",
    ]);
    for (i, (name, faults)) in scenarios.iter().enumerate() {
        let row = count_over(
            &dhs,
            &ring,
            actual,
            exp,
            0xFA018 + i as u64,
            faults,
            retries_on(),
            &mut rng,
        );
        table.row(vec![
            (*name).to_string(),
            f(row.err_pct, 1),
            f(row.drops_per_op, 1),
            f(row.mean_latency, 1),
            f(row.vtime_per_op, 0),
            f(row.kb_per_op, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nbandwidth baseline: a full sLL sketch snapshot is {} bytes and a \
         probe reply {} bytes; the KB/count above is what Alg. 1 pays so \
         that no single node ever has to hold (or ship) the sketch.\n",
        sizes.sketch_snapshot,
        sizes.probe_reply(&cfg, 1)
    ));
    out
}

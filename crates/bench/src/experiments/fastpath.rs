//! N3 — the `dhs-fast` layers: elision cache, route cache, batched
//! stores, and hinted counting.
//!
//! The DHS sketch structure makes most hot-path work provably redundant:
//! re-inserting an already-stored tuple only refreshes a timestamp that
//! the current TTL epoch does not need refreshed, repeated lookups
//! re-resolve ownership ranges the origin already learned, per-rank store
//! messages to the same owner could share one envelope, and the top of
//! the downward counting scan probes intervals a prior estimate proves
//! empty. This experiment stacks the four layers one at a time on Zipf
//! and uniform insert workloads and measures what each saves — while
//! checking the non-negotiable: the distinct stored-tuple set and the
//! (exhaustive-probe) estimate must be **identical** with every cache on
//! or off, and same-seed hinted and full counts must return
//! byte-identical registers and estimates.

use std::collections::BTreeSet;
use std::time::Instant;

use dhs_core::{Dhs, DhsConfig, EpochCache, ScanHint};
use dhs_dht::cost::CostLedger;
use dhs_dht::ring::{Ring, RingConfig};
use dhs_dht::route_cache::CachedOverlay;
use dhs_sketch::ItemHasher;
use dhs_workload::zipf::Zipf;
use rand::rngs::StdRng;
use rand::Rng;

use crate::env::{item_hasher, ExpConfig};
use crate::table::{f, Table};

const METRIC: u32 = 1;
/// TTL epochs the insert stream spans (epoch boundaries roll the cache).
const EPOCHS: usize = 3;
/// Items an origin buffers before a bulk flush in the batched layer.
const FLUSH: usize = 256;

/// The four stacked configurations under test.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Baseline,
    Elide,
    ElideRoute,
    ElideRouteBatch,
}

impl Mode {
    const ALL: [Mode; 4] = [
        Mode::Baseline,
        Mode::Elide,
        Mode::ElideRoute,
        Mode::ElideRouteBatch,
    ];

    fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Elide => "+elision",
            Mode::ElideRoute => "+route cache",
            Mode::ElideRouteBatch => "+batching",
        }
    }
}

struct LayerOut {
    messages: u64,
    hops: u64,
    kb: f64,
    wall_s: f64,
    elide_hit_pct: f64,
    route_hit_pct: f64,
    ring: Ring,
}

/// Overlay size used by this experiment (capped so the exhaustive-probe
/// equivalence counts stay cheap; the savings are node-count agnostic).
fn nodes(exp: &ExpConfig) -> usize {
    exp.nodes.min(256)
}

/// Run one layer over `accesses` from a single origin. Every layer gets
/// an identically-seeded ring and insert RNG; only the caches differ.
// dhs-flow: allow(entropy-taint) — wall-clock timing is the measurement itself; only derived throughput numbers are reported
fn run_layer(dhs: &Dhs, exp: &ExpConfig, accesses: &[u64], mode: Mode) -> LayerOut {
    let mut ring_rng = exp.rng(0xFA57_0001);
    let base_ring = Ring::build(nodes(exp), RingConfig::default(), &mut ring_rng);
    let origin = base_ring.alive_ids()[0];
    let mut rng = exp.rng(0xFA57_0002);
    let mut ledger = CostLedger::new();
    let mut cache = EpochCache::new(dhs.config());
    let chunk_len = accesses.len().div_ceil(EPOCHS);
    let start = Instant::now();

    let (ring, route) = match mode {
        Mode::Baseline => {
            let mut ring = base_ring;
            for &key in accesses {
                dhs.insert(&mut ring, METRIC, key, origin, &mut rng, &mut ledger);
            }
            (ring, None)
        }
        Mode::Elide => {
            let mut ring = base_ring;
            for (epoch, chunk) in accesses.chunks(chunk_len).enumerate() {
                if epoch > 0 {
                    cache.roll_epoch();
                }
                for &key in chunk {
                    dhs.insert_cached(
                        &mut ring,
                        &mut cache,
                        METRIC,
                        key,
                        origin,
                        &mut rng,
                        &mut ledger,
                    );
                }
            }
            (ring, None)
        }
        Mode::ElideRoute => {
            let mut overlay = CachedOverlay::new(base_ring);
            for (epoch, chunk) in accesses.chunks(chunk_len).enumerate() {
                if epoch > 0 {
                    cache.roll_epoch();
                }
                for &key in chunk {
                    dhs.insert_cached(
                        &mut overlay,
                        &mut cache,
                        METRIC,
                        key,
                        origin,
                        &mut rng,
                        &mut ledger,
                    );
                }
            }
            let stats = overlay.cache_stats();
            (overlay.into_parts().0, Some(stats))
        }
        Mode::ElideRouteBatch => {
            let mut overlay = CachedOverlay::new(base_ring);
            for (epoch, chunk) in accesses.chunks(chunk_len).enumerate() {
                if epoch > 0 {
                    cache.roll_epoch();
                }
                for flush in chunk.chunks(FLUSH) {
                    dhs.bulk_insert_cached(
                        &mut overlay,
                        &mut cache,
                        METRIC,
                        flush,
                        origin,
                        &mut rng,
                        &mut ledger,
                    );
                }
            }
            let stats = overlay.cache_stats();
            (overlay.into_parts().0, Some(stats))
        }
    };

    let probes = cache.hits() + cache.misses();
    let route_hit_pct = route
        .map(|s| 100.0 * s.hits as f64 / (s.hits + s.misses).max(1) as f64)
        .unwrap_or(0.0);
    LayerOut {
        messages: ledger.messages(),
        hops: ledger.hops(),
        kb: ledger.bytes() as f64 / 1024.0,
        wall_s: start.elapsed().as_secs_f64(),
        elide_hit_pct: if probes == 0 {
            0.0
        } else {
            100.0 * cache.hits() as f64 / probes as f64
        },
        route_hit_pct,
        ring,
    }
}

/// The distinct live stored tuples (app keys) across all alive nodes —
/// the state every layer must agree on exactly.
fn stored_set(ring: &Ring) -> BTreeSet<u64> {
    let now = ring.now();
    let mut set = BTreeSet::new();
    for &node in ring.alive_ids() {
        if let Some(store) = ring.store_of(node) {
            for (app_key, rec) in store.iter() {
                if rec.expires_at > now {
                    set.insert(app_key);
                }
            }
        }
    }
    set
}

/// Exhaustive-probe estimate (lim = node count ⇒ nothing can be missed):
/// a pure function of the distinct stored set, so cache-on and cache-off
/// rings must yield bit-equal results.
fn exhaustive_estimate(dhs: &Dhs, exp: &ExpConfig, ring: &Ring) -> f64 {
    let exhaustive = Dhs::new(DhsConfig {
        lim: nodes(exp) as u32,
        ..*dhs.config()
    })
    .expect("valid config");
    let mut count_rng = exp.rng(0xFA57_00C0);
    let origin = ring.alive_ids()[0];
    exhaustive
        .count(ring, METRIC, origin, &mut count_rng, &mut CostLedger::new())
        .estimate
}

// dhs-flow: allow(rng-plumbing) — access-trace RNG is seeded from an ExpConfig tag; traces are reproducible by construction
fn zipf_accesses(exp: &ExpConfig, domain: usize, len: usize) -> Vec<u64> {
    let zipf = Zipf::new(domain, 0.7);
    let hasher = item_hasher();
    let mut rng = exp.rng(0xFA57_0021);
    (0..len)
        .map(|_| hasher.hash_u64(zipf.sample(&mut rng) as u64))
        .collect()
}

// dhs-flow: allow(rng-plumbing) — access-trace RNG is seeded from an ExpConfig tag; traces are reproducible by construction
fn uniform_accesses(exp: &ExpConfig, domain: usize, len: usize) -> Vec<u64> {
    let hasher = item_hasher();
    let mut rng = exp.rng(0xFA57_0022);
    (0..len)
        .map(|_| hasher.hash_u64(rng.gen_range(1..=domain) as u64))
        .collect()
}

struct HintRow {
    scanned_full: f64,
    scanned_hinted: f64,
    skipped: f64,
    probes_full: f64,
    probes_hinted: f64,
    kb_full: f64,
    kb_hinted: f64,
    identical: bool,
}

/// Same-seed full vs hinted counts over `trials` probe streams; the hint
/// is warmed by each trial's full-scan estimate.
fn hint_comparison(dhs: &Dhs, exp: &ExpConfig, ring: &Ring) -> HintRow {
    let origin = ring.alive_ids()[0];
    let mut row = HintRow {
        scanned_full: 0.0,
        scanned_hinted: 0.0,
        skipped: 0.0,
        probes_full: 0.0,
        probes_hinted: 0.0,
        kb_full: 0.0,
        kb_hinted: 0.0,
        identical: true,
    };
    let mut hint = ScanHint::new();
    for trial in 0..exp.trials.max(1) {
        let stream = 0xFA57_0C00 + trial as u64;
        let mut rng_full: StdRng = exp.rng(stream);
        let mut l_full = CostLedger::new();
        let full = dhs.count(ring, METRIC, origin, &mut rng_full, &mut l_full);
        hint.record(METRIC, full.estimate);
        let mut rng_hint: StdRng = exp.rng(stream);
        let mut l_hint = CostLedger::new();
        let hinted = dhs.count_hinted(ring, &mut hint, METRIC, origin, &mut rng_hint, &mut l_hint);
        row.identical &= full.registers == hinted.registers
            && full.estimate.to_bits() == hinted.estimate.to_bits();
        row.scanned_full += f64::from(full.stats.intervals_scanned);
        row.scanned_hinted += f64::from(hinted.stats.intervals_scanned);
        row.skipped += f64::from(hinted.stats.intervals_skipped);
        row.probes_full += full.stats.probes as f64;
        row.probes_hinted += hinted.stats.probes as f64;
        row.kb_full += l_full.bytes() as f64 / 1024.0;
        row.kb_hinted += l_hint.bytes() as f64 / 1024.0;
    }
    let n = exp.trials.max(1) as f64;
    row.scanned_full /= n;
    row.scanned_hinted /= n;
    row.skipped /= n;
    row.probes_full /= n;
    row.probes_hinted /= n;
    row.kb_full /= n;
    row.kb_hinted /= n;
    row
}

fn reduction_pct(base: u64, opt: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (base as f64 - opt as f64) / base as f64
    }
}

/// N3 — message/hop/byte reductions of the dhs-fast layers, with exact
/// equivalence checks.
pub fn fastpath(exp: &ExpConfig) -> String {
    let dhs = Dhs::new(exp.dhs_config()).expect("valid config");
    let domain = ((exp.scale * 100_000.0).round() as usize).max(1_000);
    let len = 4 * domain;
    let mut out = String::new();
    out.push_str(&format!(
        "N3 dhs-fast layers — {} nodes, m = {}, k = {}, {} accesses over {} \
         distinct items, {} epochs, flush = {}\n\
         layers stack: +elision = epoch cache, +route cache = LRU key→owner, \
         +batching = one store message per owner per flush\n\n",
        nodes(exp),
        exp.m,
        exp.k,
        len,
        domain,
        EPOCHS,
        FLUSH
    ));

    let mut zipf_pass = false;
    let mut equivalence = true;
    for (wname, accesses) in [
        ("Zipf(0.7)", zipf_accesses(exp, domain, len)),
        ("uniform", uniform_accesses(exp, domain, len)),
    ] {
        let layers: Vec<(Mode, LayerOut)> = Mode::ALL
            .iter()
            .map(|&mode| (mode, run_layer(&dhs, exp, &accesses, mode)))
            .collect();
        let base = &layers[0].1;
        let base_set = stored_set(&base.ring);
        let base_est = exhaustive_estimate(&dhs, exp, &base.ring);

        let mut table = Table::new(&[
            "layer",
            "messages",
            "msg red (%)",
            "hops",
            "hop red (%)",
            "KB",
            "elide hit (%)",
            "route hit (%)",
            "state+est",
        ]);
        for (mode, layer) in &layers {
            let same_state = stored_set(&layer.ring) == base_set;
            let same_est =
                exhaustive_estimate(&dhs, exp, &layer.ring).to_bits() == base_est.to_bits();
            equivalence &= same_state && same_est;
            if wname == "Zipf(0.7)" && *mode == Mode::ElideRouteBatch {
                zipf_pass = reduction_pct(base.messages, layer.messages) >= 25.0;
            }
            table.row(vec![
                mode.name().to_string(),
                layer.messages.to_string(),
                f(reduction_pct(base.messages, layer.messages), 1),
                layer.hops.to_string(),
                f(reduction_pct(base.hops, layer.hops), 1),
                f(layer.kb, 1),
                f(layer.elide_hit_pct, 1),
                f(layer.route_hit_pct, 1),
                (if same_state && same_est {
                    "same"
                } else {
                    "DIFF"
                })
                .to_string(),
            ]);
        }
        out.push_str(&format!("workload {wname}:\n{}\n", table.render()));
    }

    // Hinted counting over the populated Zipf baseline state.
    let zipf = zipf_accesses(exp, domain, len);
    let populated = run_layer(&dhs, exp, &zipf, Mode::Baseline);
    let hint = hint_comparison(&dhs, exp, &populated.ring);
    let mut table = Table::new(&["scan", "intervals", "skipped", "probes", "KB", "registers"]);
    table.row(vec![
        "full".to_string(),
        f(hint.scanned_full, 1),
        f(0.0, 1),
        f(hint.probes_full, 1),
        f(hint.kb_full, 1),
        "-".to_string(),
    ]);
    table.row(vec![
        "hinted".to_string(),
        f(hint.scanned_hinted, 1),
        f(hint.skipped, 1),
        f(hint.probes_hinted, 1),
        f(hint.kb_hinted, 1),
        (if hint.identical { "identical" } else { "DIFF" }).to_string(),
    ]);
    out.push_str(&format!(
        "hinted counting (same-seed full vs hinted, {} trials, mean):\n{}\n",
        exp.trials.max(1),
        table.render()
    ));
    equivalence &= hint.identical;

    out.push_str(&format!(
        "acceptance: Zipf total-message reduction >= 25% with all layers: {}\n\
         acceptance: stored tuples + estimates byte-identical across all \
         layers and hinted scans: {}\n",
        if zipf_pass { "PASS" } else { "FAIL" },
        if equivalence { "PASS" } else { "FAIL" }
    ));
    out
}

/// Everything both the BENCH JSON view and the ablation KPI view need
/// from one N3 measurement: the baseline and fully-stacked layers on the
/// Zipf workload, the same-seed hinted-count comparison, and the
/// equivalence verdict.
struct FastpathMeasurement {
    len: usize,
    domain: usize,
    base: LayerOut,
    opt: LayerOut,
    hint: HintRow,
    equivalent: bool,
}

/// Run the N3 headline measurement once.
fn measure_fastpath(exp: &ExpConfig) -> FastpathMeasurement {
    let dhs = Dhs::new(exp.dhs_config()).expect("valid config");
    let domain = ((exp.scale * 100_000.0).round() as usize).max(1_000);
    let len = 4 * domain;
    let accesses = zipf_accesses(exp, domain, len);
    let base = run_layer(&dhs, exp, &accesses, Mode::Baseline);
    let opt = run_layer(&dhs, exp, &accesses, Mode::ElideRouteBatch);
    let hint = hint_comparison(&dhs, exp, &base.ring);
    let equivalent = hint.identical
        && stored_set(&base.ring) == stored_set(&opt.ring)
        && exhaustive_estimate(&dhs, exp, &base.ring).to_bits()
            == exhaustive_estimate(&dhs, exp, &opt.ring).to_bits();
    FastpathMeasurement {
        len,
        domain,
        base,
        opt,
        hint,
        equivalent,
    }
}

fn fastpath_config_digest(exp: &ExpConfig, mm: &FastpathMeasurement) -> String {
    crate::provenance::config_digest(&[
        ("experiment", "n3-fastpath".to_string()),
        ("nodes", nodes(exp).to_string()),
        ("m", exp.m.to_string()),
        ("k", exp.k.to_string()),
        ("accesses", mm.len.to_string()),
        ("distinct", mm.domain.to_string()),
        ("epochs", EPOCHS.to_string()),
        ("trials", exp.trials.to_string()),
        ("seed", exp.seed.to_string()),
    ])
}

/// N3's deterministic KPIs as `ablation.*` metrics for the dhs-traj
/// harness: counter totals for messages/hops/accesses and fixed-point
/// milli-unit gauges for the fractional per-count measurements. No
/// wall-clock quantity is recorded, so two same-seed runs produce
/// digest-identical registries.
#[allow(clippy::cast_possible_truncation)]
pub fn fastpath_kpi_metrics(exp: &ExpConfig) -> dhs_obs::MetricsRegistry {
    use dhs_obs::names;
    let mm = measure_fastpath(exp);
    let milli = |x: f64| (x.max(0.0) * 1000.0).round() as u64;
    let mut m = dhs_obs::MetricsRegistry::new();
    m.incr(names::ABL_MESSAGES_BASELINE, mm.base.messages);
    m.incr(names::ABL_MESSAGES_OPTIMIZED, mm.opt.messages);
    m.incr(names::ABL_HOPS_BASELINE, mm.base.hops);
    m.incr(names::ABL_HOPS_OPTIMIZED, mm.opt.hops);
    m.incr(names::ABL_ACCESSES, mm.len as u64);
    m.incr(names::ABL_EPOCHS, EPOCHS as u64);
    m.gauge_set(names::ABL_COUNT_BYTES_FULL, milli(mm.hint.kb_full * 1024.0));
    m.gauge_set(
        names::ABL_COUNT_BYTES_HINTED,
        milli(mm.hint.kb_hinted * 1024.0),
    );
    m.gauge_set(names::ABL_INTERVALS_FULL, milli(mm.hint.scanned_full));
    m.gauge_set(names::ABL_INTERVALS_HINTED, milli(mm.hint.scanned_hinted));
    m.gauge_set(names::ABL_EQUIVALENT, u64::from(mm.equivalent));
    m
}

/// The `repro bench` payload: headline baseline/optimized numbers as a
/// JSON object (written to `BENCH_dhs.json` so future PRs can diff).
pub fn fastpath_bench_json(exp: &ExpConfig) -> String {
    let mm = measure_fastpath(exp);
    let len = mm.len;

    let side = |layer: &LayerOut, scanned: f64, kb_count: f64| {
        format!(
            "{{\n    \"hops_per_insert\": {:.4},\n    \"messages_per_epoch\": {:.1},\n    \
             \"bytes_per_count\": {:.1},\n    \"intervals_scanned\": {:.1},\n    \
             \"wall_clock_s\": {:.4}\n  }}",
            layer.hops as f64 / len as f64,
            layer.messages as f64 / EPOCHS as f64,
            kb_count * 1024.0,
            scanned,
            layer.wall_s
        )
    };
    format!(
        "{{\n  \"experiment\": \"dhs-fast N3 (Zipf 0.7)\",\n  \"config\": {{\n    \
         \"nodes\": {},\n    \"m\": {},\n    \"k\": {},\n    \"accesses\": {},\n    \
         \"distinct\": {},\n    \"epochs\": {},\n    \"seed\": {}\n  }},\n  \
         \"provenance\": {},\n  \
         \"baseline\": {},\n  \"optimized\": {},\n  \
         \"message_reduction_pct\": {:.1},\n  \"hop_reduction_pct\": {:.1},\n  \
         \"estimates_identical\": {}\n}}\n",
        nodes(exp),
        exp.m,
        exp.k,
        len,
        mm.domain,
        EPOCHS,
        exp.seed,
        crate::provenance::provenance_json(exp.seed, &fastpath_config_digest(exp, &mm)),
        side(&mm.base, mm.hint.scanned_full, mm.hint.kb_full),
        side(&mm.opt, mm.hint.scanned_hinted, mm.hint.kb_hinted),
        reduction_pct(mm.base.messages, mm.opt.messages),
        reduction_pct(mm.base.hops, mm.opt.hops),
        mm.equivalent
    )
}

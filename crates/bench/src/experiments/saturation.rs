//! N6 — the `dhs-par` threaded driver: inserts/sec saturation across
//! worker counts.
//!
//! The driver's determinism contract (state and metric digests identical
//! at any thread count — see DESIGN.md §dhs-par) means the *work* of a
//! saturation sweep is fixed; only its distribution across workers
//! varies. This experiment drives the N4 multi-tenant workload through
//! `dhs_par::run_saturation` at 1/2/4/8 workers and reports two views of
//! throughput, clearly labeled:
//!
//! * **measured** — wall-clock inserts/sec of each run on this machine.
//!   On a single-core CI box the threaded runs measure *slower* than
//!   W = 1 (the threads time-slice one core and pay queue overhead);
//!   these numbers are honest but machine-bound.
//! * **simulated-parallel** — the driver's virtual-tick accounting: each
//!   worker tallies one tick per update applied and per key digested,
//!   the fan-in merge tallies its own ticks, and speedup is the serial
//!   critical path over the parallel one. The headline "aggregate
//!   inserts/sec at W workers" is the measured W = 1 rate × the virtual
//!   speedup — what the same partition achieves with W real cores,
//!   because workers share no state until the deterministic fan-in.
//!
//! `DHS_SAT_METRICS` overrides the metric count the same way
//! `DHS_SHARD_METRICS` does for N4; the default derives from `--scale`
//! (0.1 ⇒ the paper-scale 10⁶-metric workload).

use std::time::Instant;

use dhs_obs::MetricsRegistry;
use dhs_par::{run_saturation, SatConfig, SatReport};
use dhs_workload::TenantWorkload;

use crate::env::ExpConfig;
use crate::table::{f, Table};

/// The thread counts the sweep visits.
const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// RNG stream label for the workload item stream (distinct from N4's so
/// the two experiments draw independent streams from one master seed).
const STREAM: u64 = 0x5AAD_0006;

/// The N6 workload: `DHS_SAT_METRICS` (env) pins the metric count;
/// otherwise `scale × 10⁷`. An explicit `metrics` (from an ablation-plan
/// parameter) takes precedence over both.
#[allow(clippy::cast_possible_truncation)]
fn sat_workload(exp: &ExpConfig, metrics: Option<u64>) -> TenantWorkload {
    let goal = metrics
        .or_else(|| {
            std::env::var("DHS_SAT_METRICS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
        })
        .unwrap_or_else(|| (exp.scale * 1e7).round() as u64);
    super::shard_exp::shard_workload_sized(goal)
}

/// One timed driver run at `threads` workers.
// dhs-flow: allow(entropy-taint) — wall-clock timing is the measurement itself; only derived throughput numbers are reported
fn run_once(exp: &ExpConfig, w: &TenantWorkload, threads: usize) -> (SatReport, f64) {
    let cfg = SatConfig::new(threads, exp.seed);
    let start = Instant::now();
    let report =
        run_saturation(&cfg, w, &mut exp.rng(STREAM)).expect("saturation driver must not fail");
    (report, start.elapsed().as_secs_f64())
}

/// N6's deterministic KPIs as `ablation.sat.*` metrics for the dhs-traj
/// harness: the insert total as a counter, thread count and the three
/// derived ratios as (fixed-point milli) gauges, and the digest-
/// invariance verdict — state *and* metric digests at `threads` workers
/// equal to the 1-worker run's — as a 0/1 gauge. Wall-clock throughput
/// is deliberately absent: registry rows must be machine-independent.
#[allow(clippy::cast_possible_truncation)]
pub fn saturation_kpi_metrics(
    exp: &ExpConfig,
    threads: usize,
    metrics: Option<u64>,
) -> MetricsRegistry {
    use dhs_obs::names;
    let w = sat_workload(exp, metrics);
    let cfg = SatConfig::new(threads, exp.seed);
    let report =
        run_saturation(&cfg, &w, &mut exp.rng(STREAM)).expect("saturation driver must not fail");
    let invariant = if threads == 1 {
        true
    } else {
        let base = run_saturation(&SatConfig::new(1, exp.seed), &w, &mut exp.rng(STREAM))
            .expect("saturation driver must not fail");
        base.state_digest == report.state_digest && base.metrics_digest() == report.metrics_digest()
    };
    let milli = |x: f64| (x.max(0.0) * 1000.0).round() as u64;
    let mut m = MetricsRegistry::new();
    m.incr(names::ABL_SAT_INSERTS, report.items);
    m.gauge_set(names::ABL_SAT_THREADS, report.threads as u64);
    m.gauge_set(names::ABL_SAT_SPEEDUP, milli(report.speedup()));
    m.gauge_set(
        names::ABL_SAT_EFFICIENCY_PCT,
        milli(report.efficiency_pct()),
    );
    m.gauge_set(
        names::ABL_SAT_MERGE_OVERHEAD_PCT,
        milli(report.merge_overhead_pct()),
    );
    m.gauge_set(names::ABL_SAT_DIGEST_INVARIANT, u64::from(invariant));
    m
}

/// Everything both output formats report about one sweep.
struct SweepReport {
    workload: TenantWorkload,
    /// `(report, wall_s)` per thread count, in [`SWEEP`] order.
    runs: Vec<(SatReport, f64)>,
    /// State and metric digests identical across every thread count.
    digests_invariant: bool,
}

/// Run the full thread sweep once.
// dhs-flow: allow(entropy-taint) — aggregates run_once wall-clock timings; the sweep is a measurement harness
fn run_sweep(exp: &ExpConfig, metrics: Option<u64>) -> SweepReport {
    let workload = sat_workload(exp, metrics);
    let runs: Vec<(SatReport, f64)> = SWEEP
        .iter()
        .map(|&threads| run_once(exp, &workload, threads))
        .collect();
    let (base, _) = &runs[0];
    let digests_invariant = runs.iter().all(|(r, _)| {
        r.state_digest == base.state_digest && r.metrics_digest() == base.metrics_digest()
    });
    SweepReport {
        workload,
        runs,
        digests_invariant,
    }
}

/// N6 — threaded-driver saturation sweep: measured and
/// simulated-parallel inserts/sec at 1/2/4/8 workers.
pub fn saturation(exp: &ExpConfig) -> String {
    let s = run_sweep(exp, None);
    let w = &s.workload;
    let base_rate = {
        let (r, wall) = &s.runs[0];
        r.items as f64 / wall.max(1e-9)
    };
    let mut out = String::new();
    out.push_str(&format!(
        "N6 dhs-par — {} metrics ({} tenants × {}), {} updates through the \
         threaded sharded driver\n\
         measured = wall clock on this machine; simulated-parallel = measured \
         W=1 rate × virtual-tick speedup (workers share no state until the \
         deterministic fan-in)\n\n",
        w.total_metrics(),
        w.tenants,
        w.metrics_per_tenant,
        w.total_updates(),
    ));
    let mut table = Table::new(&[
        "threads",
        "items",
        "chunks",
        "wall s",
        "measured ins/s",
        "speedup",
        "eff %",
        "merge %",
        "sim-par ins/s",
    ]);
    for (r, wall) in &s.runs {
        table.row(vec![
            r.threads.to_string(),
            r.items.to_string(),
            r.chunks.to_string(),
            f(*wall, 2),
            f(r.items as f64 / wall.max(1e-9), 0),
            f(r.speedup(), 2),
            f(r.efficiency_pct(), 1),
            f(r.merge_overhead_pct(), 2),
            f(base_rate * r.speedup(), 0),
        ]);
    }
    out.push_str(&table.render());
    let (base, _) = &s.runs[0];
    let speedup4 = s
        .runs
        .iter()
        .find(|(r, _)| r.threads == 4)
        .map_or(0.0, |(r, _)| r.speedup());
    out.push_str(&format!(
        "\nstate digest {:#018x}, metric digest {:#018x} (each identical at \
         every thread count: {})\n\n\
         acceptance: simulated-parallel aggregate at 4 workers ≥ 3× the W=1 \
         rate ({:.2}×): {}\n\
         acceptance: state + metric digests invariant across thread counts: {}\n",
        base.state_digest,
        base.metrics_digest(),
        s.digests_invariant,
        speedup4,
        if speedup4 >= 3.0 { "PASS" } else { "FAIL" },
        if s.digests_invariant { "PASS" } else { "FAIL" },
    ));
    out
}

/// The `repro bench-sat` payload: the saturation sweep as a JSON object
/// (written to `BENCH_sat.json` so future PRs can diff). Both throughput
/// views are emitted under explicit names; `state_digest` and the
/// per-run virtual-tick fields are wall-clock-free, so two same-seed
/// runs emit files that differ only in timing fields.
pub fn saturation_bench_json(exp: &ExpConfig) -> String {
    let s = run_sweep(exp, None);
    let w = &s.workload;
    let base_rate = {
        let (r, wall) = &s.runs[0];
        r.items as f64 / wall.max(1e-9)
    };
    let cfg = SatConfig::new(1, exp.seed);
    let per_run: Vec<String> = s
        .runs
        .iter()
        .map(|(r, wall)| {
            format!(
                "    {{\"threads\": {}, \"items\": {}, \"chunks\": {}, \
                 \"wall_s\": {:.3}, \"measured_inserts_per_s\": {:.0}, \
                 \"serial_ticks\": {}, \"parallel_ticks\": {}, \
                 \"merge_ticks\": {}, \"virtual_speedup\": {:.4}, \
                 \"efficiency_pct\": {:.2}, \"merge_overhead_pct\": {:.3}, \
                 \"simulated_parallel_inserts_per_s\": {:.0}}}",
                r.threads,
                r.items,
                r.chunks,
                wall,
                r.items as f64 / wall.max(1e-9),
                r.serial_ticks,
                r.parallel_ticks,
                r.merge_ticks,
                r.speedup(),
                r.efficiency_pct(),
                r.merge_overhead_pct(),
                base_rate * r.speedup(),
            )
        })
        .collect();
    let speedup4 = s
        .runs
        .iter()
        .find(|(r, _)| r.threads == 4)
        .map_or(0.0, |(r, _)| r.speedup());
    let (base, _) = &s.runs[0];
    let config_digest = crate::provenance::config_digest(&[
        ("experiment", "n6-saturation".to_string()),
        ("metrics", w.total_metrics().to_string()),
        ("tenants", w.tenants.to_string()),
        ("metrics_per_tenant", w.metrics_per_tenant.to_string()),
        ("updates", w.total_updates().to_string()),
        ("shards", cfg.shards.to_string()),
        ("m", cfg.m.to_string()),
        ("chunk", cfg.chunk.to_string()),
        ("theta", w.theta.to_string()),
        ("seed", exp.seed.to_string()),
    ]);
    format!(
        "{{\n  \"experiment\": \"dhs-par N6 (threaded driver saturation)\",\n  \
         \"methodology\": \"simulated-parallel: virtual-tick speedup over the \
         measured single-worker wall rate; measured rates are also emitted \
         per run\",\n  \
         \"config\": {{\n    \"metrics\": {},\n    \"tenants\": {},\n    \
         \"metrics_per_tenant\": {},\n    \"updates\": {},\n    \
         \"shards\": {},\n    \"m\": {},\n    \"chunk\": {},\n    \
         \"theta\": {},\n    \"seed\": {}\n  }},\n  \
         \"provenance\": {},\n  \
         \"runs\": [\n{}\n  ],\n  \
         \"headline\": {{\n    \"measured_w1_inserts_per_s\": {:.0},\n    \
         \"virtual_speedup_at_4\": {:.4},\n    \
         \"aggregate_inserts_per_s_at_4\": {:.0},\n    \
         \"speedup_at_4_at_least_3x\": {}\n  }},\n  \
         \"digests_invariant_across_threads\": {},\n  \
         \"metric_digest\": \"{:#018x}\",\n  \"state_digest\": \"{:#018x}\"\n}}\n",
        w.total_metrics(),
        w.tenants,
        w.metrics_per_tenant,
        w.total_updates(),
        cfg.shards,
        cfg.m,
        cfg.chunk,
        w.theta,
        exp.seed,
        crate::provenance::provenance_json(exp.seed, &config_digest),
        per_run.join(",\n"),
        base_rate,
        speedup4,
        base_rate * speedup4,
        speedup4 >= 3.0,
        s.digests_invariant,
        base.metrics_digest(),
        base.state_digest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.0001, // 1 000 metrics
            ..ExpConfig::default()
        }
    }

    /// The KPI registry is deterministic and carries the invariance flag.
    #[test]
    fn kpi_metrics_are_deterministic_and_invariant() {
        use dhs_obs::names;
        let exp = tiny();
        let a = saturation_kpi_metrics(&exp, 4, Some(1_000));
        let b = saturation_kpi_metrics(&exp, 4, Some(1_000));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.gauge(names::ABL_SAT_DIGEST_INVARIANT), Some(1));
        assert_eq!(a.gauge(names::ABL_SAT_THREADS), Some(4));
        assert!(a.counter(names::ABL_SAT_INSERTS) > 0);
        // Virtual speedup at 4 workers beats 2× even at this tiny scale.
        assert!(a.gauge(names::ABL_SAT_SPEEDUP).unwrap_or(0) > 2_000);
    }

    /// The BENCH JSON and the table agree on the acceptance verdicts.
    #[test]
    fn bench_json_reports_invariant_digests() {
        let exp = tiny();
        let json = saturation_bench_json(&exp);
        assert!(json.contains("\"digests_invariant_across_threads\": true"));
        assert!(json.contains("\"speedup_at_4_at_least_3x\": true"));
    }
}

//! Ablations A1–A4 — the design choices DESIGN.md calls out.

use dhs_core::retry::hit_probability;
use dhs_core::{maintenance, Dhs, DhsConfig, EstimatorKind, Summary};
use dhs_dht::cost::CostLedger;
use dhs_sketch::ItemHasher;
use dhs_workload::relation::{Relation, PAPER_RELATIONS};

use crate::env::{bulk_insert_relation, item_hasher, ExpConfig};
use crate::table::{f, Table};

/// Build a single-relation system (relation T scaled) with `cfg`.
fn populate_single(
    cfg: DhsConfig,
    exp: &ExpConfig,
    stream: u64,
) -> (Dhs, dhs_dht::ring::Ring, u64, rand::rngs::StdRng) {
    let mut rng = exp.rng(stream);
    let dhs = Dhs::new(cfg).expect("valid config");
    let mut ring = exp.build_ring(&mut rng);
    let rel = Relation::generate(&PAPER_RELATIONS[3], exp.scale, 4, &mut rng);
    let hasher = item_hasher();
    let mut ledger = CostLedger::new();
    bulk_insert_relation(&dhs, &mut ring, &rel, 1, &hasher, &mut rng, &mut ledger);
    (dhs, ring, rel.len() as u64, rng)
}

fn mean_abs_error(
    dhs: &Dhs,
    ring: &dhs_dht::ring::Ring,
    actual: u64,
    trials: usize,
    rng: &mut rand::rngs::StdRng,
) -> (f64, f64) {
    let mut err = Summary::new();
    let mut probes = Summary::new();
    for _ in 0..trials {
        let origin = ring.random_alive(rng);
        let mut ledger = CostLedger::new();
        let result = dhs.count(ring, 1, origin, rng, &mut ledger);
        err.add(result.relative_error(actual).abs());
        probes.add(result.stats.probes as f64);
    }
    (err.mean(), probes.mean())
}

/// A1 — error and probe count vs `lim` (validating the §4.1 analysis).
///
/// Run in a deliberately sparse regime (small scale) where `lim` matters.
pub fn ablation_lim(exp: &ExpConfig) -> String {
    // Sparse: n ≈ m·N/8 so single probes miss often.
    let sparse = ExpConfig {
        scale: (exp.scale / 8.0).max(0.001),
        ..*exp
    };
    let mut out = String::new();
    out.push_str(&format!(
        "A1 retry-limit ablation — sparse regime (scale {}), m = {}, {} nodes\n\n",
        sparse.scale, sparse.m, sparse.nodes
    ));
    let mut table = Table::new(&[
        "lim",
        "err sLL (%)",
        "err PCSA (%)",
        "probes sLL",
        "eq6 p(hit)",
    ]);
    for lim in [1u32, 2, 3, 5, 8, 12] {
        let mut row = vec![lim.to_string()];
        let mut probes_cell = String::new();
        for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
            let cfg = DhsConfig {
                lim,
                estimator,
                ..sparse.dhs_config()
            };
            let (dhs, ring, actual, mut rng) = populate_single(cfg, &sparse, 0xA1);
            let (err, probes) = mean_abs_error(&dhs, &ring, actual, sparse.trials, &mut rng);
            row.push(f(err * 100.0, 1));
            if estimator == EstimatorKind::SuperLogLog {
                probes_cell = f(probes, 0);
            }
        }
        row.push(probes_cell);
        // Predicted hit probability at the busiest bit (rank 0): half the
        // items over half the nodes.
        let items0 = (PAPER_RELATIONS[3].scaled_tuples(sparse.scale)) / 2;
        let nodes0 = (sparse.nodes / 2) as u64;
        row.push(f(hit_probability(lim, items0, nodes0, sparse.m, 1), 3));
        table.row(row);
    }
    // The adaptive (two-phase, eq. 6-sized) strategy as a reference row.
    {
        let mut row = vec!["adaptive".to_string()];
        let mut probes_cell = String::new();
        for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
            let cfg = DhsConfig {
                estimator,
                ..sparse.dhs_config()
            };
            let (dhs, ring, actual, mut rng) = populate_single(cfg, &sparse, 0xA1);
            let mut err = Summary::new();
            let mut probes = Summary::new();
            for _ in 0..sparse.trials {
                let origin = ring.random_alive(&mut rng);
                let mut ledger = CostLedger::new();
                let result = dhs.count_adaptive(&ring, 1, origin, 0.99, &mut rng, &mut ledger);
                err.add(result.relative_error(actual).abs());
                probes.add(result.stats.probes as f64);
            }
            row.push(f(err.mean() * 100.0, 1));
            if estimator == EstimatorKind::SuperLogLog {
                probes_cell = f(probes.mean(), 0);
            }
        }
        row.push(probes_cell);
        row.push("-".to_string());
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nexpected: error falls and probes rise with lim; eq. 6 predicts the knee.\n\
         'adaptive' = two-phase count_adaptive (coarse pass, then eq. 6-sized pass).\n",
    );
    out
}

/// A5 — finger-table staleness under churn (substrate-level; the Chord
/// maintenance protocol the paper's converged-overlay evaluation takes
/// for granted).
// dhs-flow: allow(rng-plumbing) — churn schedule RNG is seeded from ExpConfig tags; reproducibility comes from the config, not a plumbed handle
pub fn ablation_churn(exp: &ExpConfig) -> String {
    use dhs_dht::fingers::{FingerTables, RouteOutcome};
    let nodes = exp.nodes.min(1024);
    let mut out = String::new();
    out.push_str(&format!(
        "A5 finger staleness under churn — {nodes} nodes, tables built once,\n         then churn (fail + join) without re-stabilizing\n\n"
    ));
    let mut table = Table::new(&[
        "churn (%)",
        "correct (%)",
        "misdelivered (%)",
        "failed (%)",
        "hops vs converged",
        "repair hops/node",
    ]);
    for churn_pct in [0u32, 5, 10, 20, 40] {
        let mut rng = exp.rng(0xA5 + u64::from(churn_pct));
        let mut ring = ExpConfig { nodes, ..*exp }.build_ring(&mut rng);
        let mut tables = FingerTables::build(&ring);
        // Churn: fail churn%/2 of the nodes and join churn%/2 new ones.
        let frac = f64::from(churn_pct) / 200.0;
        ring.fail_random(frac, &mut rng);
        use rand::Rng as _;
        let joins = (nodes as f64 * frac) as usize;
        for _ in 0..joins {
            loop {
                let id: u64 = rng.gen();
                if ring.store_of(id).is_none() {
                    ring.join(id);
                    break;
                }
            }
        }
        // New joiners get fresh tables (Chord join does), old nodes stay stale.
        let mut join_ledger = CostLedger::new();
        tables.admit_joined(&ring, &mut join_ledger);

        let trials = 400;
        let (mut ok, mut mis, mut failed) = (0u32, 0u32, 0u32);
        let mut stale_hops = 0u64;
        let mut ideal_hops = 0u64;
        for _ in 0..trials {
            let from = ring.random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut l1 = CostLedger::new();
            match tables.route(&ring, from, key, &mut l1) {
                RouteOutcome::Delivered(_) => ok += 1,
                RouteOutcome::Misdelivered { .. } => mis += 1,
                RouteOutcome::Failed => failed += 1,
            }
            stale_hops += l1.hops();
            let mut l2 = CostLedger::new();
            ring.route(from, key, &mut l2);
            ideal_hops += l2.hops();
        }
        // Cost of full repair.
        let mut repair = CostLedger::new();
        let mut repair_tables = tables.clone();
        repair_tables.stabilize_fraction(&ring, 1.0, &mut rng, &mut repair);
        table.row(vec![
            churn_pct.to_string(),
            f(f64::from(ok) / f64::from(trials) * 100.0, 1),
            f(f64::from(mis) / f64::from(trials) * 100.0, 1),
            f(f64::from(failed) / f64::from(trials) * 100.0, 1),
            format!(
                "{} / {}",
                f(stale_hops as f64 / f64::from(trials), 1),
                f(ideal_hops as f64 / f64::from(trials), 1)
            ),
            f(repair.hops() as f64 / ring.len_alive() as f64, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nexpected: successor lists keep lookups succeeding; joins cause misdelivery\n         until stabilization; dead fingers inflate hop counts. This bounds how far the\n         paper's converged-overlay assumption stretches under real churn.\n",
    );
    out
}

/// A6 — DHS under *continuous* churn: every epoch, 3% of the nodes
/// crash (fail-stop, data lost) and as many fresh nodes join; one column
/// runs the §3.5 anti-entropy replica repair each epoch, the other runs
/// nothing. The paper promises "probabilistic guarantees … in the
/// presence of dynamics and failures" — this measures what maintenance
/// that requires.
// dhs-flow: allow(rng-plumbing) — failure/repair RNG is seeded from ExpConfig tags; reproducibility comes from the config, not a plumbed handle
pub fn ablation_dynamics(exp: &ExpConfig) -> String {
    use dhs_core::maintenance::repair_replicas;
    let mut out = String::new();
    let sparse = ExpConfig {
        scale: exp.scale / 4.0,
        ..*exp
    };
    out.push_str(&format!(
        "A6 continuous churn — 8%/epoch crash + join, m = {}, R = 2, {} nodes, scale {}\n\n",
        sparse.m.min(256),
        sparse.nodes,
        sparse.scale
    ));
    let mut table = Table::new(&[
        "epoch",
        "err no-repair (%)",
        "err repaired (%)",
        "copies pushed",
        "repair kB",
    ]);
    let cfg = DhsConfig {
        m: sparse.m.min(256),
        replication: 2,
        ..sparse.dhs_config()
    };
    let (dhs, ring0, actual, _) = populate_single(cfg, &sparse, 0xA6);
    let mut plain = ring0.clone();
    let mut repaired = ring0;
    let mut repair_total = CostLedger::new();
    for epoch in 1..=8u32 {
        let mut rng = exp.rng(0xA6_00 + u64::from(epoch));
        // The same churn events hit both variants.
        use rand::Rng as _;
        let n_before = plain.len_alive();
        let churn = (n_before as f64 * 0.08) as usize;
        for _ in 0..churn {
            let victim = plain.random_alive(&mut rng);
            if plain.len_alive() > 1 && repaired.is_alive(victim) {
                plain.fail_node(victim);
                repaired.fail_node(victim);
            }
            let id: u64 = rng.gen();
            if plain.store_of(id).is_none() {
                plain.join(id);
                repaired.join(id);
            }
        }
        let pushed = repair_replicas(&dhs, &mut repaired, &mut repair_total);

        let (err_plain, _) = mean_abs_error(&dhs, &plain, actual, 4, &mut rng);
        let (err_rep, _) = mean_abs_error(&dhs, &repaired, actual, 4, &mut rng);
        table.row(vec![
            epoch.to_string(),
            f(err_plain * 100.0, 1),
            f(err_rep * 100.0, 1),
            pushed.to_string(),
            f(repair_total.bytes() as f64 / 1024.0, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nexpected: without maintenance, each epoch's crashes permanently lose bits and\n\
         the estimate decays; per-epoch replica repair holds the error flat for a\n\
         bounded bandwidth cost (the cumulative column).\n",
    );
    out
}

/// A2 — estimation error vs node-failure probability and replication.
///
/// Averaged over independent failure patterns: the decisive high-rank
/// bits live in tiny ID-space intervals owned by very few nodes (the
/// paper's §3.5 points exactly at them), so a single pattern gives a
/// binary outcome — the curve only emerges across patterns.
pub fn ablation_failures(exp: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "A2 failures/replication ablation — m = {}, {} nodes, scale {} \
         (mean over 12 failure patterns)\n\n",
        exp.m, exp.nodes, exp.scale
    ));
    let mut table = Table::new(&["p_f", "err R=1 (%)", "err R=2 (%)", "err R=4 (%)"]);
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for replication in [1u32, 2, 4] {
        let cfg = DhsConfig {
            replication,
            ..exp.dhs_config()
        };
        let (dhs, ring, actual, _) = populate_single(cfg, exp, 0xA2 + u64::from(replication));
        let mut column = Vec::new();
        for pf in [0.0f64, 0.05, 0.10, 0.20, 0.30] {
            let mut total = 0.0;
            let patterns = 12u64;
            for round in 0..patterns {
                let mut round_rng = exp.rng(0xA2_0000 + round);
                let mut failed_ring = ring.clone();
                if pf > 0.0 {
                    failed_ring.fail_random(pf, &mut round_rng);
                }
                let (err, _) = mean_abs_error(&dhs, &failed_ring, actual, 3, &mut round_rng);
                total += err;
            }
            column.push(total / 12.0);
        }
        columns.push(column);
    }
    for (i, pf) in [0.0f64, 0.05, 0.10, 0.20, 0.30].iter().enumerate() {
        table.row(vec![
            f(*pf, 2),
            f(columns[0][i] * 100.0, 1),
            f(columns[1][i] * 100.0, 1),
            f(columns[2][i] * 100.0, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nexpected: error grows with p_f; replication flattens the curve (§3.5).\n");
    out
}

/// A3 — the bit-shift (`b`) fault-tolerance alternative of §3.5.
pub fn ablation_bitshift(exp: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "A3 bit-shift ablation — m = {}, {} nodes, scale {}, p_f = 0.10, R = 1\n\n",
        exp.m, exp.nodes, exp.scale
    ));
    let mut table = Table::new(&[
        "b",
        "tuples stored",
        "err p_f=0 (%)",
        "mean err p_f=0.1 (%)",
        "worst-pattern err (%)",
    ]);
    for b in [0u32, 2, 4] {
        let cfg = DhsConfig {
            bit_shift: b,
            ..exp.dhs_config()
        };
        let (dhs, ring, actual, mut rng) = populate_single(cfg, exp, 0xA3 + u64::from(b));
        let stored = ring.total_live_bytes() / u64::from(dhs.config().tuple_bytes);
        let (err0, _) = mean_abs_error(&dhs, &ring, actual, exp.trials, &mut rng);
        // Mean and worst over independent failure patterns: without the
        // shift, the highest bits of *every* vector share a handful of
        // owner nodes, so one unlucky pattern is catastrophic; the shift
        // de-correlates them (see A2's rationale for pattern averaging).
        let mut total = 0.0;
        let mut worst: f64 = 0.0;
        let patterns = 16u64;
        for round in 0..patterns {
            let mut round_rng = exp.rng(0xA3_0000 + round);
            let mut failed_ring = ring.clone();
            failed_ring.fail_random(0.10, &mut round_rng);
            let (err, _) = mean_abs_error(&dhs, &failed_ring, actual, 3, &mut round_rng);
            total += err;
            worst = worst.max(err);
        }
        let err1 = total / patterns as f64;
        table.row(vec![
            b.to_string(),
            stored.to_string(),
            f(err0 * 100.0, 1),
            f(err1 * 100.0, 1),
            f(worst * 100.0, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nexpected: larger b stores fewer tuples (bits < b implied — cheaper\n\
         maintenance) and spreads the decisive high bits over more owner nodes,\n\
         cutting the catastrophic worst-pattern loss; the mean error under uniform\n\
         failures is roughly unchanged (the per-holder death probability is the\n\
         same — the shift de-correlates losses rather than preventing them).\n",
    );
    out
}

/// A4 — the TTL / maintenance-cost trade-off of §3.3.
pub fn ablation_ttl(exp: &ExpConfig) -> String {
    let mut out = String::new();
    let items_total = 10_000u64;
    let items_kept = 2_000u64;
    let refresh_period = 50u64;
    let horizon = 400u64;
    out.push_str(&format!(
        "A4 TTL ablation — {items_total} items shrink to {items_kept}; refresh every \
         {refresh_period}, horizon {horizon}\n\n"
    ));
    let mut table = Table::new(&[
        "ttl",
        "estimate @horizon",
        "staleness err (%)",
        "refresh kB total",
    ]);
    let hasher = item_hasher();
    for ttl in [50u64, 100, 200, 400] {
        let cfg = DhsConfig {
            ttl,
            m: exp.m.min(64),
            ..exp.dhs_config()
        };
        let mut rng = exp.rng(0xA4 + ttl);
        let dhs = Dhs::new(cfg).expect("valid config");
        let mut ring = ExpConfig {
            nodes: exp.nodes.min(256),
            ..*exp
        }
        .build_ring(&mut rng);
        let origin = ring.alive_ids()[0];
        let all: Vec<u64> = (0..items_total).map(|i| hasher.hash_u64(i)).collect();
        let kept: Vec<u64> = all[..items_kept as usize].to_vec();
        let mut insert_ledger = CostLedger::new();
        dhs.bulk_insert(&mut ring, 1, &all, origin, &mut rng, &mut insert_ledger);

        let mut refresh_ledger = CostLedger::new();
        let mut elapsed = 0;
        while elapsed < horizon {
            ring.advance_time(refresh_period);
            elapsed += refresh_period;
            maintenance::refresh_round(
                &dhs,
                &mut ring,
                1,
                &kept,
                origin,
                &mut rng,
                &mut refresh_ledger,
            );
            ring.sweep_all();
        }
        let mut count_ledger = CostLedger::new();
        let est = dhs
            .count(&ring, 1, origin, &mut rng, &mut count_ledger)
            .estimate;
        let err = (est - items_kept as f64).abs() / items_kept as f64;
        table.row(vec![
            ttl.to_string(),
            f(est, 0),
            f(err * 100.0, 1),
            f(refresh_ledger.bytes() as f64 / 1024.0, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nexpected: short TTLs track the shrunken set (low staleness error); long TTLs\n\
         keep dead items alive past the horizon. Refresh bandwidth is per-period, so\n\
         the trade-off is staleness vs maintenance rate (§3.3).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            nodes: 64,
            scale: 0.001,
            m: 32,
            k: 20,
            trials: 2,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn ablation_ttl_smoke() {
        let report = ablation_ttl(&tiny());
        assert!(report.contains("staleness"));
        assert!(report.contains("400"));
    }

    #[test]
    fn ablation_bitshift_smoke() {
        let report = ablation_bitshift(&tiny());
        // Larger b must store fewer tuples.
        assert!(report.contains("tuples stored"));
    }
}

//! B1 — the related-work comparison, quantifying §1's taxonomy.
//!
//! One duplicated multiset (every item exists on 3 nodes), one question
//! ("how many distinct items?"), seven protocols. Columns map to the
//! paper's six constraints: error → accuracy/duplicate-insensitivity,
//! query hops/bytes → efficiency, max visits & gini → load balance,
//! update messages → scalability of maintenance.

use dhs_baselines::assignment::ItemAssignment;
use dhs_baselines::{gossip, partitioned, sampling, single_node, tree};
use dhs_core::{Dhs, DhsConfig, EstimatorKind};
use dhs_dht::cost::CostLedger;
use dhs_sketch::ItemHasher;
use dhs_workload::multiset::DuplicatedMultiset;

use crate::env::{item_hasher, ExpConfig};
use crate::table::{f, pct, Table};

/// Run B1: all protocols against one duplicated multiset.
pub fn baselines(exp: &ExpConfig) -> String {
    let mut rng = exp.rng(0xB1);
    let ring = exp.build_ring(&mut rng);
    // 200k distinct items, 3 copies each, shuffled over the nodes.
    let distinct = (200_000.0 * (exp.scale / 0.1).max(0.01)) as u64;
    let ms = DuplicatedMultiset::uniform_copies(distinct, 3, &mut rng);
    let assignment = ItemAssignment::uniform(&ring, &ms.items, &mut rng);
    let actual = assignment.distinct_items() as f64;
    let hasher = item_hasher();

    let mut out = String::new();
    out.push_str(&format!(
        "B1 baseline comparison — {} nodes, {} distinct items x3 copies\n\n",
        exp.nodes, distinct
    ));
    let mut table = Table::new(&[
        "protocol",
        "estimate",
        "err",
        "query hops",
        "query kB",
        "update msgs",
        "max visits",
        "gini",
        "dup-safe",
    ]);

    // DHS (both estimators): updates = every node bulk-inserts its items.
    let m = exp.m.min(256);
    for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
        let dhs = Dhs::new(DhsConfig {
            m,
            estimator,
            ..exp.dhs_config()
        })
        .expect("valid config");
        let mut ring = ring.clone();
        let mut update_ledger = CostLedger::new();
        for &node in ring.alive_ids().to_vec().iter() {
            let keys: Vec<u64> = assignment
                .items_of(node)
                .iter()
                .map(|&i| hasher.hash_u64(i))
                .collect();
            if !keys.is_empty() {
                dhs.bulk_insert(&mut ring, 1, &keys, node, &mut rng, &mut update_ledger);
            }
        }
        let mut query_ledger = CostLedger::new();
        let origin = ring.random_alive(&mut rng);
        let result = dhs.count(&ring, 1, origin, &mut rng, &mut query_ledger);
        let mut combined = update_ledger.clone();
        combined.absorb(&query_ledger);
        let load = combined.load_summary();
        table.row(vec![
            format!("DHS-{estimator}"),
            f(result.estimate, 0),
            pct((result.estimate - actual).abs() / actual),
            query_ledger.hops().to_string(),
            f(query_ledger.bytes() as f64 / 1024.0, 1),
            update_ledger.messages().to_string(),
            load.max.to_string(),
            f(load.gini, 2),
            "yes".into(),
        ]);
    }

    // One-node-per-counter (naive + exact-set).
    for (label, mode, safe) in [
        ("single-node sum", single_node::CounterMode::NaiveSum, "no"),
        (
            "single-node set",
            single_node::CounterMode::ExactSet,
            "yes*",
        ),
    ] {
        let mut ledger = CostLedger::new();
        let outc = single_node::run(&ring, &assignment, 1, mode, &mut ledger);
        let load = ledger.load_summary();
        table.row(vec![
            label.into(),
            f(outc.estimate, 0),
            pct((outc.estimate - actual).abs() / actual),
            "~5".into(), // one lookup
            "0.1".into(),
            (ledger.messages() - 1).to_string(),
            load.max.to_string(),
            f(load.gini, 2),
            safe.into(),
        ]);
    }

    // Hash-partitioned counters (P = 16).
    {
        let mut ledger = CostLedger::new();
        let outc = partitioned::run(&ring, &assignment, 1, 16, &mut ledger);
        let load = ledger.load_summary();
        table.row(vec![
            "partitioned P=16".into(),
            f(outc.estimate, 0),
            pct((outc.estimate - actual).abs() / actual),
            outc.query_hops.to_string(),
            "0.3".into(),
            (ledger.messages() - 16).to_string(),
            load.max.to_string(),
            f(load.gini, 2),
            "yes*".into(),
        ]);
    }

    // Gossip: push-sum and sketch gossip.
    {
        let mut ledger = CostLedger::new();
        let trace = gossip::push_sum(&ring, &assignment, 20, &mut rng, &mut ledger);
        let est = *trace.estimates_per_round.last().unwrap();
        let load = ledger.load_summary();
        table.row(vec![
            "gossip push-sum".into(),
            f(est, 0),
            pct((est - actual).abs() / actual),
            ledger.hops().to_string(),
            f(trace.bytes as f64 / 1024.0, 1),
            "0".into(),
            load.max.to_string(),
            f(load.gini, 2),
            "no".into(),
        ]);
    }
    {
        let mut ledger = CostLedger::new();
        let trace = gossip::sketch_gossip(&ring, &assignment, m, 12, &mut rng, &mut ledger);
        let est = *trace.estimates_per_round.last().unwrap();
        let load = ledger.load_summary();
        table.row(vec![
            "gossip sketches".into(),
            f(est, 0),
            pct((est - actual).abs() / actual),
            ledger.hops().to_string(),
            f(trace.bytes as f64 / 1024.0, 1),
            "0".into(),
            load.max.to_string(),
            f(load.gini, 2),
            "yes".into(),
        ]);
    }

    // Tree aggregation.
    {
        let mut ledger = CostLedger::new();
        let root = ring.random_alive(&mut rng);
        let outc = tree::aggregate(&ring, &assignment, root, m, 16, &mut rng, &mut ledger);
        let load = ledger.load_summary();
        table.row(vec![
            "tree convergecast".into(),
            f(outc.estimate, 0),
            pct((outc.estimate - actual).abs() / actual),
            ledger.hops().to_string(),
            f(ledger.bytes() as f64 / 1024.0, 1),
            "0".into(),
            load.max.to_string(),
            f(load.gini, 2),
            "yes".into(),
        ]);
    }

    // Sampling at two budgets.
    for s in [32usize, 256] {
        let mut ledger = CostLedger::new();
        let origin = ring.random_alive(&mut rng);
        let outc = sampling::estimate_total(&ring, &assignment, origin, s, &mut rng, &mut ledger);
        let load = ledger.load_summary();
        table.row(vec![
            format!("sampling s={s}"),
            f(outc.estimate, 0),
            pct((outc.estimate - actual).abs() / actual),
            ledger.hops().to_string(),
            f(ledger.bytes() as f64 / 1024.0, 1),
            "0".into(),
            load.max.to_string(),
            f(load.gini, 2),
            "no".into(),
        ]);
    }

    out.push_str(&table.render());
    out.push_str(&format!("\nactual distinct items: {actual}\n"));
    out.push_str(
        "notes: 'update msgs' is the one-time cost of making the structure queryable\n\
         (gossip/tree/sampling query local state directly but pay per query instead);\n\
         single-node set is duplicate-safe only by storing every item id on one node.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_report_lists_all_protocols() {
        let exp = ExpConfig {
            nodes: 64,
            scale: 0.01,
            m: 64,
            k: 20,
            trials: 1,
            ..ExpConfig::default()
        };
        let report = baselines(&exp);
        for proto in [
            "DHS-sLL",
            "DHS-PCSA",
            "single-node sum",
            "single-node set",
            "gossip push-sum",
            "gossip sketches",
            "tree convergecast",
            "sampling s=32",
        ] {
            assert!(report.contains(proto), "missing {proto}");
        }
    }
}

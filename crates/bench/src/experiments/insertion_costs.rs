//! E1 — §5.2 "Insertions and Maintenance".
//!
//! Paper-reported values (1024 nodes, m = 512, 4 relations):
//! ~3.4 hops and ~27 bytes per insertion/update; per-node storage of
//! ~384 kB per relation (with 100 histogram buckets) and ~1.5 MB total.

use dhs_core::Dhs;
use dhs_dht::cost::CostLedger;
use dhs_sketch::ItemHasher;
use dhs_workload::relation::generate_paper_relations;

use crate::env::{item_hasher, ExpConfig};
use crate::table::{f, Table};

/// Run E1: per-item insertions (the paper inserts "one at a time") over a
/// sample of each relation, then report per-insertion and storage costs.
pub fn insertion(exp: &ExpConfig) -> String {
    let mut rng = exp.rng(0xE1);
    let dhs = Dhs::new(exp.dhs_config()).expect("valid config");
    let mut ring = exp.build_ring(&mut rng);
    let hasher = item_hasher();
    let relations = generate_paper_relations(exp.scale, &mut rng);

    let mut out = String::new();
    out.push_str(&format!(
        "E1 insertion costs — {} nodes, m = {}, k = {}, scale = {}\n\n",
        exp.nodes, exp.m, exp.k, exp.scale
    ));

    let mut table = Table::new(&[
        "relation",
        "tuples",
        "hops/insert",
        "bytes/insert",
        "store B/node (mean)",
        "store gini",
    ]);
    for (i, rel) in relations.iter().enumerate() {
        let bytes_before = ring.total_live_bytes();
        let mut ledger = CostLedger::new();
        for t in &rel.tuples {
            let origin = ring.random_alive(&mut rng);
            dhs.insert(
                &mut ring,
                1 + i as u32,
                hasher.hash_u64(t.id),
                origin,
                &mut rng,
                &mut ledger,
            );
        }
        let n = rel.len() as f64;
        let summary = ring.storage_summary();
        table.row(vec![
            rel.spec.name.to_string(),
            rel.len().to_string(),
            f(ledger.hops() as f64 / n, 2),
            f(ledger.bytes() as f64 / n, 1),
            f(
                (ring.total_live_bytes() - bytes_before) as f64 / exp.nodes as f64,
                1,
            ),
            f(summary.gini, 3),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\ntotal stored: {:.1} kB across {} nodes (mean {:.1} B/node)\n",
        ring.total_live_bytes() as f64 / 1024.0,
        exp.nodes,
        ring.total_live_bytes() as f64 / exp.nodes as f64,
    ));
    out.push_str("paper: ~3.4 hops, ~27 bytes per insertion (8-byte tuples x O(log N) hops);\n");
    out.push_str("       storage grows with m and #metrics, balanced across nodes (low gini).\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_report_contains_all_relations() {
        let exp = ExpConfig {
            nodes: 64,
            scale: 0.0002,
            m: 16,
            k: 20,
            ..ExpConfig::default()
        };
        let report = insertion(&exp);
        for name in ["Q", "R", "S", "T"] {
            assert!(report.contains(name), "missing relation {name}");
        }
        assert!(report.contains("hops/insert"));
    }
}

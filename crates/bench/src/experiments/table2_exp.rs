//! E2 — Table 2: "Counting costs (sLL/PCSA)".
//!
//! Paper values (1024 nodes, 4 relations of 10–80M tuples, lim = 5):
//!
//! ```text
//! m     nodes visited  hops       BW (kBytes)  error (%)
//! 128   68 / 65        86 / 69    11.0 / 8.8   5.0 / 5.8
//! 256   73 / 69        92 / 77    11.8 / 9.6   3.5 / 4.3
//! 512   81 / 80        120 / 114  15.4 / 15.9  1.8 / 2.7
//! 1024  96 / 91        139 / 128  17.8 / 16.0  1.1 / 7.5
//! ```
//!
//! (cells are sLL / PCSA).

use dhs_core::{Dhs, DhsConfig, EstimatorKind, Summary};
use dhs_dht::cost::CostLedger;

use crate::env::{populate_relations, relation_metric, ExpConfig};
use crate::table::{f, Table};

/// Per-estimator aggregates for one bitmap count.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingCosts {
    /// Mean nodes probed per estimation.
    pub nodes_visited: f64,
    /// Mean hops per estimation.
    pub hops: f64,
    /// Mean bandwidth per estimation (bytes).
    pub bytes: f64,
    /// Mean absolute relative error (over relations × trials).
    pub error: f64,
}

/// Measure counting cost and accuracy for one (m, estimator) pair on an
/// already-populated system.
pub fn measure_counting(
    dhs: &Dhs,
    populated: &crate::env::Populated,
    exp: &ExpConfig,
    stream: u64,
) -> CountingCosts {
    let mut rng = exp.rng(stream);
    let mut nodes = Summary::new();
    let mut hops = Summary::new();
    let mut bytes = Summary::new();
    let mut error = Summary::new();
    for _ in 0..exp.trials {
        for (i, &actual) in populated.actual.iter().enumerate() {
            let origin = populated.ring.random_alive(&mut rng);
            let mut ledger = CostLedger::new();
            let result = dhs.count(
                &populated.ring,
                relation_metric(i),
                origin,
                &mut rng,
                &mut ledger,
            );
            nodes.add(result.stats.probes as f64);
            hops.add(result.stats.hops as f64);
            bytes.add(result.stats.bytes as f64);
            error.add(result.relative_error(actual).abs());
        }
    }
    CountingCosts {
        nodes_visited: nodes.mean(),
        hops: hops.mean(),
        bytes: bytes.mean(),
        error: error.mean(),
    }
}

/// Run E2 across `m ∈ {128, 256, 512, 1024}` for both estimators.
pub fn table2(exp: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E2 / Table 2 — counting costs (sLL/PCSA), {} nodes, scale {}, {} trials\n\n",
        exp.nodes, exp.scale, exp.trials
    ));
    let mut table = Table::new(&["m", "nodes visited", "hops", "BW (kB)", "error (%)"]);
    for m in [128usize, 256, 512, 1024] {
        let m_exp = ExpConfig { m, ..*exp };
        // Insertion is estimator-independent: populate once per m.
        let insert_dhs = Dhs::new(m_exp.dhs_config()).expect("valid config");
        let populated = populate_relations(&insert_dhs, &m_exp, &mut m_exp.rng(0xE2));

        let mut cells: Vec<CountingCosts> = Vec::new();
        for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
            let dhs = Dhs::new(DhsConfig {
                estimator,
                ..m_exp.dhs_config()
            })
            .expect("valid config");
            cells.push(measure_counting(
                &dhs,
                &populated,
                &m_exp,
                0xE2_00 + m as u64,
            ));
        }
        let (sll, pcsa) = (cells[0], cells[1]);
        table.row(vec![
            m.to_string(),
            format!("{} / {}", f(sll.nodes_visited, 0), f(pcsa.nodes_visited, 0)),
            format!("{} / {}", f(sll.hops, 0), f(pcsa.hops, 0)),
            format!(
                "{} / {}",
                f(sll.bytes / 1024.0, 1),
                f(pcsa.bytes / 1024.0, 1)
            ),
            format!("{} / {}", f(sll.error * 100.0, 1), f(pcsa.error * 100.0, 1)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper (sLL/PCSA): m=512 -> 81/80 nodes, 120/114 hops, 15.4/15.9 kB, 1.8/2.7 %\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::populate_relations;

    #[test]
    fn measure_counting_produces_sane_aggregates() {
        let exp = ExpConfig {
            nodes: 64,
            scale: 0.001,
            m: 32,
            k: 20,
            trials: 2,
            ..ExpConfig::default()
        };
        let dhs = Dhs::new(exp.dhs_config()).unwrap();
        let populated = populate_relations(&dhs, &exp, &mut exp.rng(7));
        let costs = measure_counting(&dhs, &populated, &exp, 1);
        assert!(costs.nodes_visited >= 1.0);
        assert!(costs.hops >= 1.0);
        assert!(costs.bytes > 0.0);
        assert!(costs.error < 1.0, "error {}", costs.error);
    }
}

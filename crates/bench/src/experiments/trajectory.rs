//! N5 — the dhs-traj ablation harness wired to the workspace benches.
//!
//! This module is the bridge between `dhs-traj`'s abstract plans and the
//! concrete N3/N4 measurements: a [`BenchRunner`] that applies a job's
//! parameters onto the CLI's [`ExpConfig`] and returns the measurement's
//! `ablation.*` metric registry, plus the four committed plans —
//! `n3-fastpath` and `n4-shard` (the full BENCH configurations, run by
//! `scripts/bench.sh` and appended to `registry/traj.csv`) and their
//! `smoke-*` counterparts (minutes-to-milliseconds scaled, run twice by
//! `scripts/check.sh` for the byte-identity and KPI-gate checks).
//!
//! The m = 512 job of `n3-fastpath` and the metrics = 10⁶ job of
//! `n4-shard` are exactly the configurations behind the committed
//! `BENCH_dhs.json` / `BENCH_shard.json`, so the registry rows and the
//! BENCH files are two views of one measurement.

use dhs_obs::{MetricsRegistry, Observer};
use dhs_traj::{
    registry_query, run_ablation, AblationPlan, FactorValue, JobParams, JobRunner, KpiSource,
    Registry, Tolerance,
};

use crate::env::ExpConfig;
use crate::provenance;

/// Which bench measurement a plan drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerKind {
    /// N3 — the dhs-fast layer stack (`fastpath_kpi_metrics`).
    Fastpath,
    /// N4 — the sharded multi-tenant store (`shard_kpi_metrics`).
    Shard,
    /// N6 — the threaded saturation driver (`saturation_kpi_metrics`).
    Saturation,
}

/// [`JobRunner`] adapter: overlays a job's parameters onto a base
/// [`ExpConfig`] (the CLI's), pins the master seed, and runs the bench
/// measurement for [`RunnerKind`].
pub struct BenchRunner {
    /// CLI-level configuration the job parameters overlay.
    pub base: ExpConfig,
    /// Which measurement to run.
    pub kind: RunnerKind,
}

/// Overlay recognized job parameters (`m`, `k`, `nodes`, `trials`,
/// `scale`) onto `base`; the master seed always wins over the CLI seed
/// so every job of a run shares common random numbers.
#[allow(clippy::cast_possible_truncation)]
fn apply(base: &ExpConfig, params: &JobParams, seed: u64) -> ExpConfig {
    let mut e = *base;
    e.seed = seed;
    let int = |name: &str| params.get(name).and_then(|v| v.as_i64());
    if let Some(v) = int("m") {
        e.m = v.max(1) as usize;
    }
    if let Some(v) = int("k") {
        e.k = v.clamp(1, 64) as u32;
    }
    if let Some(v) = int("nodes") {
        e.nodes = v.max(1) as usize;
    }
    if let Some(v) = int("trials") {
        e.trials = v.max(1) as usize;
    }
    if let Some(v) = params.get("scale") {
        e.scale = v.as_f64().max(0.0);
    }
    e
}

impl JobRunner for BenchRunner {
    // dhs-flow: allow(entropy-taint) — dispatches into timed KPI harnesses (fastpath/saturation); timing is the job's deliverable
    #[allow(clippy::cast_possible_truncation)]
    fn run(&mut self, params: &JobParams, seed: u64) -> Result<MetricsRegistry, String> {
        let exp = apply(&self.base, params, seed);
        match self.kind {
            RunnerKind::Fastpath => Ok(super::fastpath::fastpath_kpi_metrics(&exp)),
            RunnerKind::Shard => {
                let metrics = params
                    .get("metrics")
                    .and_then(|v| v.as_i64())
                    .map(|v| v.max(64) as u64);
                Ok(super::shard_exp::shard_kpi_metrics(&exp, metrics))
            }
            RunnerKind::Saturation => {
                let metrics = params
                    .get("metrics")
                    .and_then(|v| v.as_i64())
                    .map(|v| v.max(64) as u64);
                let threads = params
                    .get("threads")
                    .and_then(|v| v.as_i64())
                    .map_or(1, |v| v.clamp(1, 64) as usize);
                Ok(super::saturation::saturation_kpi_metrics(
                    &exp, threads, metrics,
                ))
            }
        }
    }
}

/// Exact-match gate: the measurements are deterministic, so any drift vs
/// the committed baseline is a real change (abs 1e-9 absorbs only float
/// re-association noise).
fn tight() -> Tolerance {
    Tolerance::default().with_rel(0.0)
}

/// A 0/1 invariant that must be exactly 1.
fn flag() -> Tolerance {
    tight().with_min(1.0).with_max(1.0).with_abs(0.0)
}

/// Attach the N3 KPI set to `plan`. `min_reduction` is the acceptance
/// floor on both reduction percentages (the full config clears 90; the
/// smoke config is given more room).
fn with_fastpath_kpis(plan: AblationPlan, min_reduction: f64) -> AblationPlan {
    use dhs_obs::names as n;
    plan.kpi(
        "hops_per_insert",
        KpiSource::PerUnit {
            num: n::ABL_HOPS_BASELINE.to_string(),
            den: n::ABL_ACCESSES.to_string(),
        },
        tight().with_min(0.5).with_max(64.0),
    )
    .kpi(
        "messages_per_epoch_baseline",
        KpiSource::PerUnit {
            num: n::ABL_MESSAGES_BASELINE.to_string(),
            den: n::ABL_EPOCHS.to_string(),
        },
        tight().with_min(1.0),
    )
    .kpi(
        "messages_per_epoch_optimized",
        KpiSource::PerUnit {
            num: n::ABL_MESSAGES_OPTIMIZED.to_string(),
            den: n::ABL_EPOCHS.to_string(),
        },
        tight().with_min(1.0),
    )
    .kpi(
        "message_reduction_pct",
        KpiSource::ReductionPct {
            base: n::ABL_MESSAGES_BASELINE.to_string(),
            opt: n::ABL_MESSAGES_OPTIMIZED.to_string(),
        },
        tight().with_min(min_reduction).with_max(100.0),
    )
    .kpi(
        "hop_reduction_pct",
        KpiSource::ReductionPct {
            base: n::ABL_HOPS_BASELINE.to_string(),
            opt: n::ABL_HOPS_OPTIMIZED.to_string(),
        },
        tight().with_min(min_reduction).with_max(100.0),
    )
    .kpi(
        "bytes_per_count_hinted",
        KpiSource::ScaledGauge {
            name: n::ABL_COUNT_BYTES_HINTED.to_string(),
            scale: 1000.0,
        },
        tight().with_min(1.0),
    )
    .kpi(
        "intervals_hinted",
        KpiSource::ScaledGauge {
            name: n::ABL_INTERVALS_HINTED.to_string(),
            scale: 1000.0,
        },
        tight().with_min(1.0),
    )
    .kpi(
        "equivalent",
        KpiSource::Gauge(n::ABL_EQUIVALENT.to_string()),
        flag(),
    )
}

/// Attach the N4 KPI set to `plan`.
fn with_shard_kpis(plan: AblationPlan) -> AblationPlan {
    use dhs_obs::names as n;
    plan.kpi(
        "payload_bytes_per_sketch",
        KpiSource::ScaledGauge {
            name: n::ABL_SHARD_PAYLOAD_BYTES.to_string(),
            scale: 1000.0,
        },
        tight().with_min(0.1).with_max(64.0),
    )
    .kpi(
        "resident",
        KpiSource::Gauge(n::ABL_SHARD_RESIDENT.to_string()),
        tight().with_min(1.0),
    )
    .kpi(
        "inserts",
        KpiSource::Counter(n::ABL_SHARD_INSERTS.to_string()),
        tight().with_min(1.0),
    )
    .kpi(
        "evictions",
        KpiSource::Counter(n::ABL_SHARD_EVICTIONS.to_string()),
        tight(),
    )
    .kpi(
        "recoveries",
        KpiSource::Counter(n::ABL_SHARD_RECOVERIES.to_string()),
        tight(),
    )
    .kpi(
        "transparent",
        KpiSource::Gauge(n::ABL_SHARD_TRANSPARENT.to_string()),
        flag(),
    )
    .kpi(
        "spill_lossless",
        KpiSource::Gauge(n::ABL_SHARD_SPILL_LOSSLESS.to_string()),
        flag(),
    )
    .kpi(
        "evict_deterministic",
        KpiSource::Gauge(n::ABL_SHARD_EVICT_DETERMINISTIC.to_string()),
        flag(),
    )
}

/// Attach the N6 KPI set to `plan`. `min_efficiency` is the acceptance
/// floor on per-thread efficiency (the sweep's worst thread count must
/// clear it; W = 1 is exactly 100).
fn with_saturation_kpis(plan: AblationPlan, min_efficiency: f64) -> AblationPlan {
    use dhs_obs::names as n;
    plan.kpi(
        "inserts",
        KpiSource::Counter(n::ABL_SAT_INSERTS.to_string()),
        tight().with_min(1.0),
    )
    .kpi(
        "threads",
        KpiSource::Gauge(n::ABL_SAT_THREADS.to_string()),
        tight().with_min(1.0).with_max(64.0),
    )
    .kpi(
        "virtual_speedup",
        KpiSource::ScaledGauge {
            name: n::ABL_SAT_SPEEDUP.to_string(),
            scale: 1000.0,
        },
        tight().with_min(1.0).with_max(64.0),
    )
    .kpi(
        "efficiency_pct",
        KpiSource::ScaledGauge {
            name: n::ABL_SAT_EFFICIENCY_PCT.to_string(),
            scale: 1000.0,
        },
        tight().with_min(min_efficiency).with_max(100.5),
    )
    .kpi(
        "merge_overhead_pct",
        KpiSource::ScaledGauge {
            name: n::ABL_SAT_MERGE_OVERHEAD_PCT.to_string(),
            scale: 1000.0,
        },
        tight().with_max(50.0),
    )
    .kpi(
        "digest_invariant",
        KpiSource::Gauge(n::ABL_SAT_DIGEST_INVARIANT.to_string()),
        flag(),
    )
}

/// The full N3 plan: bitmap-count sweep at the BENCH configuration. The
/// m = 512 job is the committed `BENCH_dhs.json` measurement.
pub fn n3_fastpath_plan() -> AblationPlan {
    with_fastpath_kpis(
        AblationPlan::grid("n3-fastpath")
            .factor("m", vec![FactorValue::Int(256), FactorValue::Int(512)])
            .fix("k", FactorValue::Int(28))
            .fix("nodes", FactorValue::Int(256))
            .fix("scale", FactorValue::Float(0.1))
            .fix("trials", FactorValue::Int(10)),
        90.0,
    )
}

/// The full N4 plan: workload-size sweep. The metrics = 10⁶ job is the
/// committed `BENCH_shard.json` measurement.
pub fn n4_shard_plan() -> AblationPlan {
    with_shard_kpis(AblationPlan::grid("n4-shard").factor(
        "metrics",
        vec![FactorValue::Int(100_000), FactorValue::Int(1_000_000)],
    ))
}

/// The full N6 plan: thread-count sweep over the N4 million-metric
/// workload. The threads = 4 job pairs with the committed
/// `BENCH_sat.json` measurement (the JSON adds the wall-clock view the
/// registry deliberately omits).
pub fn n6_saturation_plan() -> AblationPlan {
    with_saturation_kpis(
        AblationPlan::grid("n6-saturation")
            .factor(
                "threads",
                vec![
                    FactorValue::Int(1),
                    FactorValue::Int(2),
                    FactorValue::Int(4),
                    FactorValue::Int(8),
                ],
            )
            .fix("metrics", FactorValue::Int(1_000_000)),
        70.0,
    )
}

/// CI-scale N3 plan (sub-second jobs) for check.sh's two-run and gate
/// checks.
pub fn smoke_fastpath_plan() -> AblationPlan {
    with_fastpath_kpis(
        AblationPlan::grid("smoke-fastpath")
            .factor("m", vec![FactorValue::Int(32), FactorValue::Int(64)])
            .fix("k", FactorValue::Int(20))
            .fix("nodes", FactorValue::Int(32))
            .fix("scale", FactorValue::Float(0.01))
            .fix("trials", FactorValue::Int(2)),
        50.0,
    )
}

/// CI-scale N4 plan.
pub fn smoke_shard_plan() -> AblationPlan {
    with_shard_kpis(AblationPlan::grid("smoke-shard").factor(
        "metrics",
        vec![FactorValue::Int(2_000), FactorValue::Int(8_000)],
    ))
}

/// CI-scale N6 plan. The efficiency floor is looser than the full
/// plan's: at 2 000 metrics the fixed merge ticks weigh more.
pub fn smoke_saturation_plan() -> AblationPlan {
    with_saturation_kpis(
        AblationPlan::grid("smoke-saturation")
            .factor("threads", vec![FactorValue::Int(1), FactorValue::Int(2)])
            .fix("metrics", FactorValue::Int(2_000)),
        50.0,
    )
}

/// Plan names `repro ablate` accepts (`smoke` bundles both smoke plans).
pub const PLAN_NAMES: &[&str] = &[
    "n3-fastpath",
    "n4-shard",
    "n6-saturation",
    "smoke-fastpath",
    "smoke-shard",
    "smoke-saturation",
    "smoke",
];

/// Resolve a plan name to the plans it runs (with their runner kinds).
pub fn ablation_plans(which: &str) -> Option<Vec<(AblationPlan, RunnerKind)>> {
    match which {
        "n3-fastpath" => Some(vec![(n3_fastpath_plan(), RunnerKind::Fastpath)]),
        "n4-shard" => Some(vec![(n4_shard_plan(), RunnerKind::Shard)]),
        "n6-saturation" => Some(vec![(n6_saturation_plan(), RunnerKind::Saturation)]),
        "smoke-fastpath" => Some(vec![(smoke_fastpath_plan(), RunnerKind::Fastpath)]),
        "smoke-shard" => Some(vec![(smoke_shard_plan(), RunnerKind::Shard)]),
        "smoke-saturation" => Some(vec![(smoke_saturation_plan(), RunnerKind::Saturation)]),
        "smoke" => Some(vec![
            (smoke_fastpath_plan(), RunnerKind::Fastpath),
            (smoke_shard_plan(), RunnerKind::Shard),
        ]),
        _ => None,
    }
}

/// N5 — the ablation harness exercising itself at smoke scale: run both
/// smoke plans, list every KPI verdict, and render the trajectory table
/// the registry would accumulate.
pub fn trajectory(exp: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "N5 dhs-traj — smoke ablation plans through the bench runners, \
         master seed {} (common random numbers across jobs)\n\n",
        exp.seed
    ));
    let mut reg = Registry::new();
    let mut all_pass = true;
    for (plan, kind) in ablation_plans("smoke").expect("smoke is a known plan") {
        let mut runner = BenchRunner { base: *exp, kind };
        let mut obs = Observer::new(1);
        let report = match run_ablation(
            &plan,
            exp.seed,
            &mut runner,
            &provenance::commit(),
            &provenance::tool(),
            &mut obs,
        ) {
            Ok(r) => r,
            Err(e) => {
                out.push_str(&format!("plan {}: INVALID ({e})\n", plan.name));
                all_pass = false;
                continue;
            }
        };
        all_pass &= report.all_pass();
        out.push_str(&format!(
            "plan {} (hash {}): {} jobs, {} KPI pass, {} fail — traj.job={} kpi.pass={}\n",
            plan.name,
            plan.plan_hash(),
            report.jobs.len(),
            report.kpis_passed(),
            report.failures(),
            obs.metrics.counter(dhs_obs::names::TRAJ_JOB),
            obs.metrics.counter(dhs_obs::names::TRAJ_KPI_PASS),
        ));
        reg.append_report(&report);
    }
    out.push('\n');
    out.push_str(&registry_query(&reg, None, None));
    out.push_str(&format!(
        "\nacceptance: every job of every smoke plan passes every declared KPI: {}\n",
        if all_pass { "PASS" } else { "FAIL" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pull `"name": <number>` out of a BENCH JSON string (first match).
    fn json_num(json: &str, name: &str) -> f64 {
        let pat = format!("\"{name}\": ");
        let start = json.find(&pat).expect(name) + pat.len();
        let rest = &json[start..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().expect(name)
    }

    /// The registry rows and the BENCH JSON must be two views of one
    /// measurement: extract the smoke-scale KPIs both ways and compare
    /// at the JSON's printed precision.
    #[test]
    fn kpi_metrics_agree_with_bench_json() {
        let mut exp = ExpConfig {
            nodes: 32,
            scale: 0.01,
            trials: 2,
            m: 32,
            k: 20,
            ..ExpConfig::default()
        };
        exp.seed = 42;
        let json = super::super::fastpath::fastpath_bench_json(&exp);
        let metrics = super::super::fastpath::fastpath_kpi_metrics(&exp);
        let red = dhs_traj::extract_kpi(
            &metrics,
            &KpiSource::ReductionPct {
                base: dhs_obs::names::ABL_MESSAGES_BASELINE.to_string(),
                opt: dhs_obs::names::ABL_MESSAGES_OPTIMIZED.to_string(),
            },
        )
        .unwrap();
        assert!((red - json_num(&json, "message_reduction_pct")).abs() < 0.05 + 1e-9);
        let msgs = dhs_traj::extract_kpi(
            &metrics,
            &KpiSource::PerUnit {
                num: dhs_obs::names::ABL_MESSAGES_BASELINE.to_string(),
                den: dhs_obs::names::ABL_EPOCHS.to_string(),
            },
        )
        .unwrap();
        assert!((msgs - json_num(&json, "messages_per_epoch")).abs() < 0.05 + 1e-9);
        assert_eq!(
            metrics.gauge(dhs_obs::names::ABL_EQUIVALENT),
            Some(u64::from(json.contains("\"estimates_identical\": true")))
        );
    }

    /// Every plan the CLI can name validates, expands, and hashes
    /// deterministically.
    #[test]
    fn named_plans_are_well_formed() {
        for name in PLAN_NAMES {
            for (plan, _) in ablation_plans(name).unwrap() {
                plan.validate().unwrap();
                let jobs = plan.expand(42).unwrap();
                assert!(!jobs.is_empty(), "{name} expands to no jobs");
                assert_eq!(plan.plan_hash(), plan.plan_hash());
            }
        }
        assert!(ablation_plans("nope").is_none());
    }

    /// The smoke plans really run end to end, pass their KPI envelopes,
    /// and append byte-identical registry rows across two executions —
    /// the property check.sh's two-run cmp enforces at script level.
    #[test]
    fn smoke_plans_pass_and_are_byte_stable() {
        let run = || {
            let mut out = String::new();
            for (plan, kind) in ablation_plans("smoke").unwrap() {
                let mut runner = BenchRunner {
                    base: ExpConfig::default(),
                    kind,
                };
                let report = run_ablation(
                    &plan,
                    7,
                    &mut runner,
                    "test",
                    "t",
                    &mut dhs_obs::NoopRecorder,
                )
                .unwrap();
                assert!(
                    report.all_pass(),
                    "{} failed: {}",
                    plan.name,
                    report.to_json()
                );
                out.push_str(&Registry::append_csv(&report));
            }
            out
        };
        assert_eq!(run(), run());
    }
}

//! The experiments, one module per paper artifact (see crate docs).

mod ablations;
mod accuracy;
mod baselines_cmp;
mod fastpath;
mod geometry;
mod hist;
mod insertion_costs;
mod load_balance;
mod network;
mod queryopt;
mod saturation;
mod scalability_exp;
mod shard_exp;
mod table2_exp;
mod trajectory;

pub use ablations::{
    ablation_bitshift, ablation_churn, ablation_dynamics, ablation_failures, ablation_lim,
    ablation_ttl,
};
pub use accuracy::accuracy;
pub use baselines_cmp::baselines;
pub use fastpath::{fastpath, fastpath_bench_json};
pub use geometry::geometry;
pub use hist::{hist_accuracy, table3};
pub use insertion_costs::insertion;
pub use load_balance::load_balance;
pub use network::network;
pub use queryopt::queryopt;
pub use saturation::{saturation, saturation_bench_json};
pub use scalability_exp::scalability;
pub use shard_exp::{shard, shard_bench_json};
pub use table2_exp::table2;
pub use trajectory::{
    ablation_plans, n3_fastpath_plan, n4_shard_plan, n6_saturation_plan, smoke_fastpath_plan,
    smoke_saturation_plan, smoke_shard_plan, trajectory, BenchRunner, RunnerKind, PLAN_NAMES,
};

//! E7 — §5.2 "Histograms and Query Processing".
//!
//! The paper's case study cites FREddies/PIER ([17]): 256 nodes, four
//! relations of 256 000 tuples each (100 per node); for a three-way join
//! the optimal strategy ships 47 MB vs 71 MB for FREddies — while
//! reconstructing the DHS histograms that *find* the optimal plan costs
//! ~1 MB. FREddies itself is unavailable, so (per DESIGN.md) we rebuild
//! the setting with our own shipped-bytes hash-join cost model and
//! compare the histogram-informed optimal plan against the naive
//! (query-order) and worst plans.

use dhs_core::{Dhs, DhsConfig, EstimatorKind};
use dhs_dht::cost::CostLedger;
use dhs_histogram::executor::DistributedRelation;
use dhs_histogram::optimizer::Optimizer;
use dhs_histogram::query::{exact_join_frequencies, JoinQuery};
use dhs_histogram::{BucketSpec, DhsHistogram, ExactHistogram};
use dhs_workload::relation::{Relation, RelationSpec};

use crate::env::{bulk_insert_histogram, item_hasher, ExpConfig};
use crate::table::{f, Table};

const TUPLE_BYTES: u64 = 1024; // the paper's 1 kB tuples
const DOMAIN: usize = 10_000;
const BUCKETS: u32 = 100;

/// The four-relation catalog: equal sizes (the [17] setting) but
/// different value skews, so join order genuinely matters.
fn catalog_specs() -> [RelationSpec; 4] {
    [
        RelationSpec {
            name: "A(uniform)",
            paper_tuples: 256_000,
            domain: DOMAIN,
            theta: 0.0,
        },
        RelationSpec {
            name: "B(z0.7)",
            paper_tuples: 256_000,
            domain: DOMAIN,
            theta: 0.7,
        },
        RelationSpec {
            name: "C(z1.0)",
            paper_tuples: 256_000,
            domain: DOMAIN,
            theta: 1.0,
        },
        RelationSpec {
            name: "D(z1.2)",
            paper_tuples: 256_000,
            domain: DOMAIN,
            theta: 1.2,
        },
    ]
}

/// Exact shipped bytes of a left-deep order, computed from true value
/// frequencies (the "what actually happens" cost).
fn exact_cost(order: &[usize], freqs: &[Vec<u64>]) -> f64 {
    let mut acc = freqs[order[0]].clone();
    let mut acc_size: f64 = acc.iter().map(|&x| x as f64).sum();
    let mut cost = 0.0;
    for &next in &order[1..] {
        let right_size: f64 = freqs[next].iter().map(|&x| x as f64).sum();
        cost += (acc_size + right_size) * TUPLE_BYTES as f64;
        acc = exact_join_frequencies(&acc, &freqs[next]);
        acc_size = acc.iter().map(|&x| x as f64).sum();
    }
    cost
}

/// Run E7 at the paper's 256-node scale (relation scale from `exp`).
pub fn queryopt(exp: &ExpConfig) -> String {
    let mut exp = *exp;
    exp.nodes = 256;
    let mut rng = exp.rng(0xE7);
    let dhs = Dhs::new(DhsConfig {
        m: exp.m.min(256),
        estimator: EstimatorKind::SuperLogLog,
        ..exp.dhs_config()
    })
    .expect("valid config");
    let mut ring = exp.build_ring(&mut rng);
    let hasher = item_hasher();

    // Materialize the catalog and its DHS histograms.
    let relations: Vec<Relation> = catalog_specs()
        .iter()
        .enumerate()
        .map(|(i, s)| Relation::generate(s, exp.scale, 10 + i as u8, &mut rng))
        .collect();
    let mut specs = Vec::new();
    let mut build_ledger = CostLedger::new();
    for (i, rel) in relations.iter().enumerate() {
        let spec = BucketSpec::new(0, (DOMAIN - 1) as u32, BUCKETS, 5000 + 128 * i as u32);
        bulk_insert_histogram(
            &dhs,
            &mut ring,
            rel,
            spec,
            &hasher,
            &mut rng,
            &mut build_ledger,
        );
        specs.push(spec);
    }

    // Reconstruct all four histograms (what a query optimizer node does).
    let origin = ring.alive_ids()[0];
    let mut reconstruct_ledger = CostLedger::new();
    let estimated: Vec<Vec<f64>> = specs
        .iter()
        .map(|spec| {
            DhsHistogram::reconstruct(
                &dhs,
                &ring,
                *spec,
                origin,
                &mut rng,
                &mut reconstruct_ledger,
            )
            .estimates
        })
        .collect();
    let freqs: Vec<Vec<u64>> = relations.iter().map(Relation::value_frequencies).collect();
    let exact_hists: Vec<Vec<f64>> = relations
        .iter()
        .zip(&specs)
        .map(|(rel, spec)| ExactHistogram::build(rel, *spec).as_f64())
        .collect();

    let spec0 = specs[0];
    let est_opt = Optimizer::new(spec0, estimated, TUPLE_BYTES);
    let true_opt = Optimizer::new(spec0, exact_hists, TUPLE_BYTES);

    let mut out = String::new();
    out.push_str(&format!(
        "E7 query optimization — 256 nodes, 4 relations x {} tuples, 100-bucket histograms\n\n",
        relations[0].len()
    ));
    let mb = |x: f64| x / (1024.0 * 1024.0);

    let mut table = Table::new(&["query", "plan", "order", "est MB", "actual MB"]);
    for rels in [vec![1usize, 2, 3], vec![0, 1, 2, 3]] {
        let label = format!("{}-way", rels.len());
        let query = JoinQuery::chain(rels.clone());
        let chosen = est_opt.optimize(&query);
        // "Naive" = no statistics: join in reverse catalog order (most
        // skewed relations first), as a statistics-free executor might.
        let naive_order: Vec<usize> = rels.iter().rev().copied().collect();
        let naive = est_opt.cost_of_order(&naive_order);
        let worst = true_opt.pessimize(&query);
        for (name, order) in [
            ("DHS-optimal", chosen.order.clone()),
            ("naive", naive.order.clone()),
            ("worst", worst.order.clone()),
        ] {
            table.row(vec![
                label.clone(),
                name.to_string(),
                format!("{order:?}"),
                f(mb(est_opt.cost_of_order(&order).est_cost_bytes), 1),
                f(mb(exact_cost(&order, &freqs)), 1),
            ]);
        }
    }
    out.push_str(&table.render());

    // Ground the cost model: actually execute the chosen plan's *first*
    // join on the overlay (tuples routed, owners join locally) and
    // compare ledger-measured bytes against the model. (Full chains are
    // not materializable: three multiplied Zipf heads yield ~10^10 result
    // tuples — which is exactly why optimizers work with cost models.)
    {
        let chosen = est_opt.optimize(&JoinQuery::chain(vec![1, 2, 3]));
        let (l, r) = (chosen.order[0], chosen.order[1]);
        let dl = DistributedRelation::scatter(&relations[l], &ring, &mut rng);
        let dr = DistributedRelation::scatter(&relations[r], &ring, &mut rng);
        let mut exec_ledger = CostLedger::new();
        let joined =
            dhs_histogram::executor::hash_join(&ring, &dl, &dr, TUPLE_BYTES, &mut exec_ledger);
        let expected_size = dhs_histogram::query::exact_join_size(&freqs[l], &freqs[r]);
        let model_per_hop = (relations[l].len() + relations[r].len()) as f64 * TUPLE_BYTES as f64;
        out.push_str(&format!(
            "\nexecuted first join of the chosen plan ({l} x {r}): {} result tuples \
             (algebra: {expected_size}),\n{:.1} MB shipped vs model {:.1} MB x ~{:.1} hops = {:.1} MB\n",
            joined.len(),
            mb(exec_ledger.bytes() as f64),
            mb(model_per_hop),
            0.5 * (256f64).log2(),
            mb(model_per_hop * 0.5 * (256f64).log2()),
        ));
    }

    out.push_str(&format!(
        "histogram build cost: {:.2} MB total; reconstruction (4 histograms): {:.2} MB, {} hops\n",
        mb(build_ledger.bytes() as f64),
        mb(reconstruct_ledger.bytes() as f64),
        reconstruct_ledger.hops(),
    ));
    out.push_str(
        "paper shape: optimal plan ships far less than naive/worst (47 vs 71 MB in [17]);\n\
         the ~1 MB histogram reconstruction that finds it is negligible next to the savings.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queryopt_optimal_beats_worst() {
        let exp = ExpConfig {
            scale: 0.02, // 5 120 tuples per relation
            m: 64,
            trials: 1,
            ..ExpConfig::default()
        };
        let report = queryopt(&exp);
        assert!(report.contains("DHS-optimal"));
        assert!(report.contains("3-way"));
        assert!(report.contains("4-way"));
    }
}

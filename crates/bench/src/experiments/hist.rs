//! E5 — Table 3: "Histogram building costs (sLL/PCSA)", and
//! E6 — §5.2 histogram accuracy.
//!
//! Paper Table 3 (100-bucket equi-width histograms, 1024 nodes):
//!
//! ```text
//! m     nodes visited  hops       BW (MBytes)
//! 128   69 / 67        89 / 72    1.1 / 0.9
//! 256   73 / 70        94 / 80    1.2 / 1.0
//! 512   79 / 81        118 / 108  1.5 / 1.4
//! 1024  94 / 89        142 / 131  1.8 / 1.7
//! ```
//!
//! Histogram accuracy (per-cell error): ~8.6% at 64 bitmaps, ~7.7% at
//! 128, ~6.8% at 256.

use dhs_core::{Dhs, DhsConfig, EstimatorKind, Summary};
use dhs_dht::cost::CostLedger;
use dhs_histogram::{BucketSpec, DhsHistogram, ExactHistogram};
use dhs_workload::relation::{generate_paper_relations, Relation, DEFAULT_DOMAIN};

use crate::env::{bulk_insert_histogram, item_hasher, ExpConfig};
use crate::table::{f, Table};

/// Metric base for relation `i`'s histogram buckets (disjoint blocks).
fn bucket_base(i: usize, buckets: u32) -> u32 {
    1000 + i as u32 * buckets.next_power_of_two()
}

/// Populate one ring with 100-bucket histograms for all four relations.
/// `copies` models overlay-level data replication (the paper: "data are
/// usually replicated across nodes in the overlay"): each tuple is
/// recorded by `copies` independent holders, which multiplies the number
/// of nodes a given DHS bit lives on.
fn populate_histograms(
    exp: &ExpConfig,
    buckets: u32,
    copies: u32,
    stream: u64,
) -> (dhs_dht::ring::Ring, Vec<Relation>, Vec<BucketSpec>, Dhs) {
    let mut rng = exp.rng(stream);
    let dhs = Dhs::new(exp.dhs_config()).expect("valid config");
    let mut ring = exp.build_ring(&mut rng);
    let relations = generate_paper_relations(exp.scale, &mut rng);
    let hasher = item_hasher();
    let mut specs = Vec::new();
    let mut ledger = CostLedger::new();
    for (i, rel) in relations.iter().enumerate() {
        let spec = BucketSpec::new(
            0,
            (DEFAULT_DOMAIN - 1) as u32,
            buckets,
            bucket_base(i, buckets),
        );
        for _ in 0..copies {
            bulk_insert_histogram(&dhs, &mut ring, rel, spec, &hasher, &mut rng, &mut ledger);
        }
        specs.push(spec);
    }
    (ring, relations, specs, dhs)
}

/// Run E5 across `m ∈ {128, 256, 512, 1024}` for both estimators.
pub fn table3(exp: &ExpConfig) -> String {
    let buckets = 100u32;
    let mut out = String::new();
    out.push_str(&format!(
        "E5 / Table 3 — histogram reconstruction costs (sLL/PCSA), {buckets} buckets, \
         {} nodes, scale {}\n\n",
        exp.nodes, exp.scale
    ));
    let mut table = Table::new(&["m", "nodes visited", "hops", "BW (MB)"]);
    for m in [128usize, 256, 512, 1024] {
        let m_exp = ExpConfig { m, ..*exp };
        let (ring, _relations, specs, _) = populate_histograms(&m_exp, buckets, 1, 0xE5);
        let mut cells = Vec::new();
        for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
            let dhs = Dhs::new(DhsConfig {
                estimator,
                ..m_exp.dhs_config()
            })
            .expect("valid config");
            let mut rng = m_exp.rng(0xE5_00 + m as u64);
            let mut nodes = Summary::new();
            let mut hops = Summary::new();
            let mut bytes = Summary::new();
            for _ in 0..m_exp.trials.max(2) / 2 {
                for spec in &specs {
                    let origin = ring.random_alive(&mut rng);
                    let mut ledger = CostLedger::new();
                    let hist = DhsHistogram::reconstruct(
                        &dhs,
                        &ring,
                        *spec,
                        origin,
                        &mut rng,
                        &mut ledger,
                    );
                    nodes.add(hist.stats.probes as f64);
                    hops.add(hist.stats.hops as f64);
                    bytes.add(hist.stats.bytes as f64);
                }
            }
            cells.push((nodes.mean(), hops.mean(), bytes.mean()));
        }
        table.row(vec![
            m.to_string(),
            format!("{} / {}", f(cells[0].0, 0), f(cells[1].0, 0)),
            format!("{} / {}", f(cells[0].1, 0), f(cells[1].1, 0)),
            format!(
                "{} / {}",
                f(cells[0].2 / (1024.0 * 1024.0), 2),
                f(cells[1].2 / (1024.0 * 1024.0), 2)
            ),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\npaper (sLL/PCSA): m=512 -> 79/81 nodes, 118/108 hops, 1.5/1.4 MB\n");
    out.push_str("key property: hop cost tracks Table 2 (single-metric counting), not x100.\n");
    out
}

/// Run E6: mean per-cell histogram error vs bitmap count.
///
/// Reports both the unweighted per-cell error (the paper's metric — harsh
/// on the tiny Zipf-tail cells, which are sparse multisets far below the
/// §4.1 density assumption at any affordable scale) and the size-weighted
/// error (each cell weighted by its true count — what selectivity
/// estimation actually experiences), at the default `lim = 5` and at the
/// eq. 6-motivated `lim = 12`.
pub fn hist_accuracy(exp: &ExpConfig) -> String {
    let buckets = 100u32;
    let mut out = String::new();
    out.push_str(&format!(
        "E6 histogram accuracy — {buckets} buckets, {} nodes, scale {}\n\n",
        exp.nodes, exp.scale
    ));
    let mut table = Table::new(&[
        "m",
        "copies",
        "lim",
        "cell err sLL (%)",
        "cell err PCSA (%)",
        "wtd err sLL (%)",
        "wtd err PCSA (%)",
    ]);
    for (m, copies) in [
        (64usize, 1u32),
        (128, 1),
        (256, 1),
        (64, 3),
        (128, 3),
        (256, 3),
    ] {
        let m_exp = ExpConfig { m, ..*exp };
        let (ring, relations, specs, _) = populate_histograms(&m_exp, buckets, copies, 0xE6);
        for lim in [5u32, 12] {
            let mut row = vec![m.to_string(), copies.to_string(), lim.to_string()];
            let mut flat = Vec::new();
            let mut weighted = Vec::new();
            for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
                let dhs = Dhs::new(DhsConfig {
                    estimator,
                    lim,
                    ..m_exp.dhs_config()
                })
                .expect("valid config");
                let mut rng = m_exp.rng(0xE6_00 + m as u64 + u64::from(lim));
                let mut err = Summary::new();
                let mut werr = Summary::new();
                for (rel, spec) in relations.iter().zip(&specs) {
                    let exact = ExactHistogram::build(rel, *spec);
                    let origin = ring.random_alive(&mut rng);
                    let mut ledger = CostLedger::new();
                    let hist = DhsHistogram::reconstruct(
                        &dhs,
                        &ring,
                        *spec,
                        origin,
                        &mut rng,
                        &mut ledger,
                    );
                    err.add(hist.mean_cell_error(&exact.counts));
                    // Size-weighted: Σ|est−act| / Σact.
                    let abs_sum: f64 = hist
                        .estimates
                        .iter()
                        .zip(&exact.counts)
                        .map(|(e, &a)| (e - a as f64).abs())
                        .sum();
                    werr.add(abs_sum / exact.total() as f64);
                }
                flat.push(err.mean());
                weighted.push(werr.mean());
            }
            row.push(f(flat[0] * 100.0, 1));
            row.push(f(flat[1] * 100.0, 1));
            row.push(f(weighted[0] * 100.0, 1));
            row.push(f(weighted[1] * 100.0, 1));
            table.row(row);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper: ~8.6% @64, ~7.7% @128, ~6.8% @256 bitmaps (per histogram cell).\n\
         Zipf-tail cells hold only hundreds of tuples at this scale — far below the\n\
         n >= m*N density the paper's lim = 5 assumes (its eq. 6) — so the unweighted\n\
         metric is dominated by them; the weighted error reflects optimizer impact.\n\
         'copies' models overlay-level data replication (the paper's setting: \"data\n\
         are usually replicated across nodes\"), which multiplies bit-holder diversity\n\
         — with copies=3 and lim=12 the per-cell error matches the paper's figures.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            nodes: 64,
            scale: 0.0005,
            k: 24,
            trials: 2,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn bucket_bases_do_not_collide() {
        let b = 100u32;
        let bases: Vec<u32> = (0..4).map(|i| bucket_base(i, b)).collect();
        for w in bases.windows(2) {
            assert!(w[1] - w[0] >= b, "bases {w:?} overlap");
        }
    }

    #[test]
    fn hist_accuracy_smoke() {
        let report = hist_accuracy(&tiny());
        assert!(report.contains("per-cell err"));
        assert!(report.contains("256"));
    }
}

//! N2 — the paper's load-balance-by-construction claim, measured live.
//!
//! §3.1: bit `r` of a sketch is set with probability `2^{-r-1}` and its
//! ID-space interval `I_r` holds a `2^{-r-1}` fraction of the nodes, so
//! per-node access load is flat across intervals. The original repo could
//! only check this after the fact by hand-summing `CostLedger` visit maps;
//! this experiment reproduces the access-load distribution **from the
//! `dhs-obs` metrics alone**: every delivered message is bucketed by the
//! interval owning its destination ID ([`dhs_obs::LoadMonitor`]), per-node
//! skew comes from the monitor's Gini summary, and the whole scenario's
//! metrics JSONL + span digests double as a determinism self-check (two
//! same-seed runs must be byte-identical).

use dhs_core::transport::{DirectTransport, Observed};
use dhs_core::{Dhs, DhsConfig, EstimatorKind};
use dhs_dht::cost::CostLedger;
use dhs_dht::ring::{Ring, RingConfig};
use dhs_obs::{LoadStats, Observer};
use dhs_sketch::ItemHasher;

use crate::env::{item_hasher, ExpConfig};
use crate::table::{f, Table};

/// Inserted items per node — keeps the dense regime (`n ≥ m·N` is not
/// needed here; we measure *access* balance, not estimate accuracy).
const ITEMS_PER_NODE: u64 = 20;

/// Counting operations in the count phase.
const COUNTS: usize = 3;

/// Gates only fire on intervals with this many expected insert accesses…
const MIN_EXPECTED_ACCESSES: f64 = 200.0;

/// …and this many member nodes (below that, one node dominates).
const MIN_INTERVAL_NODES: u64 = 8;

struct ScaleRun {
    table: String,
    insert_jsonl: String,
    count_jsonl: String,
    insert_span_digest: u64,
    count_span_digest: u64,
    share_ok: bool,
    per_node_ok: bool,
    node_stats: LoadStats,
    count_flatness: String,
}

/// One full scenario at `nodes` overlay size: per-item insertion and a few
/// counts, everything observed through `dhs-obs`.
fn run_scale(exp: &ExpConfig, nodes: usize, stream: u64) -> ScaleRun {
    let mut rng = exp.rng(stream);
    let mut ring = Ring::build(nodes, RingConfig::default(), &mut rng);
    let cfg = DhsConfig {
        m: exp.m,
        k: exp.k,
        estimator: EstimatorKind::SuperLogLog,
        ..DhsConfig::default()
    };
    let dhs = Dhs::new(cfg).expect("valid config");
    let num_intervals = cfg.num_intervals() as usize;
    let hasher = item_hasher();
    let items = nodes as u64 * ITEMS_PER_NODE;

    // ---- Insert phase: per-item insertion (bulk insertion would collapse
    // each rank group to one message and hide the 2^{-r-1} distribution).
    let mut net = Observed::new(DirectTransport, Observer::new(num_intervals));
    let mut ledger = CostLedger::new();
    for i in 0..items {
        let origin = ring.random_alive(&mut rng);
        dhs.insert_via(
            &mut ring,
            &mut net,
            1,
            hasher.hash_u64(i),
            origin,
            &mut rng,
            &mut ledger,
        );
    }
    let (_, insert_obs) = net.into_parts();

    // ---- Count phase: a fresh observer isolates Alg. 1's access pattern.
    let mut net = Observed::new(DirectTransport, Observer::new(num_intervals));
    let mut count_ledger = CostLedger::new();
    for _ in 0..COUNTS {
        let origin = ring.random_alive(&mut rng);
        let _ = dhs.count_via(&ring, &mut net, 1, origin, &mut rng, &mut count_ledger);
    }
    let (_, count_obs) = net.into_parts();

    // ---- Per-interval report, straight from the load monitor.
    let mut population = vec![0u64; num_intervals];
    for &id in ring.alive_ids() {
        population[insert_obs.load.interval_of(id)] += 1;
    }
    let insert_loads = insert_obs.load.interval_loads();
    let count_loads = count_obs.load.interval_loads();
    let total = insert_obs.load.total();
    let global_per_node = total as f64 / nodes as f64;

    let mut table = Table::new(&[
        "interval r",
        "exp share (%)",
        "obs share (%)",
        "nodes",
        "stores",
        "stores/node",
        "count msgs",
    ]);
    let mut share_ok = true;
    let mut per_node_ok = true;
    for r in 0..num_intervals {
        let expected = insert_obs.load.expected_share(r);
        let expected_accesses = expected * total as f64;
        let observed = insert_loads[r] as f64 / total as f64;
        let per_node = if population[r] > 0 {
            insert_loads[r] as f64 / population[r] as f64
        } else {
            0.0
        };
        if expected_accesses >= MIN_EXPECTED_ACCESSES && population[r] >= MIN_INTERVAL_NODES {
            let ratio = observed / expected;
            if !(0.7..=1.3).contains(&ratio) {
                share_ok = false;
            }
            if !(global_per_node / 3.0..=global_per_node * 3.0).contains(&per_node) {
                per_node_ok = false;
            }
        }
        if expected_accesses < 0.5 && insert_loads[r] == 0 && count_loads[r] == 0 {
            continue; // tail intervals nothing ever touched
        }
        table.row(vec![
            r.to_string(),
            f(expected * 100.0, 2),
            f(observed * 100.0, 2),
            population[r].to_string(),
            insert_loads[r].to_string(),
            f(per_node, 1),
            count_loads[r].to_string(),
        ]);
    }

    // Per-node skew over the whole population (unvisited nodes count 0).
    let node_stats = insert_obs.load.node_stats(ring.alive_ids());

    // Alg. 1 probes every scanned interval a bounded number of times
    // (1 lookup + ≤ lim probes), so count traffic per interval is flat by
    // design — report the spread over the intervals it actually visited.
    let scanned: Vec<u64> = count_loads.iter().copied().filter(|&c| c > 0).collect();
    let count_flatness = if scanned.is_empty() {
        "no count traffic".to_string()
    } else {
        let s = LoadStats::from_counts(&scanned);
        format!(
            "count accesses per scanned interval: min {} max {} (bound per count: 1 lookup + lim = {} probes)",
            s.min,
            s.max,
            cfg.lim
        )
    };

    ScaleRun {
        table: table.render(),
        insert_jsonl: insert_obs.metrics.snapshot_jsonl(),
        count_jsonl: count_obs.metrics.snapshot_jsonl(),
        insert_span_digest: insert_obs.spans.digest(),
        count_span_digest: count_obs.spans.digest(),
        share_ok,
        per_node_ok,
        node_stats,
        count_flatness,
    }
}

/// Pull a counter value out of a snapshot for the headline line (the
/// snapshot is the exporter's source of truth, so read it back from there).
fn counter_from(jsonl: &str, name: &str) -> u64 {
    let needle = format!("\"name\":\"{name}\",\"value\":");
    jsonl
        .lines()
        .find_map(|l| l.split(&needle).nth(1))
        .and_then(|rest| rest.trim_end_matches('}').parse().ok())
        .unwrap_or(0)
}

/// N2 — per-interval access load from `dhs-obs` metrics alone.
pub fn load_balance(exp: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "N2 access-load balance from dhs-obs — DHS-sLL, m = {}, k = {}, \
         {} items/node inserted one by one, {} counts\n\
         every row is read from the LoadMonitor/MetricsRegistry; no ledger \
         visit maps are hand-summed\n",
        exp.m, exp.k, ITEMS_PER_NODE, COUNTS
    ));

    let mut all_ok = true;
    for &nodes in &[1_000usize, 10_000] {
        let run = run_scale(exp, nodes, 0x4E32 ^ nodes as u64);
        out.push_str(&format!(
            "\n--- N = {} nodes ({} store deliveries, {} ops) ---\n\n",
            nodes,
            counter_from(&run.insert_jsonl, "msg.store.delivered"),
            counter_from(&run.insert_jsonl, "op.insert"),
        ));
        out.push_str(&run.table);
        out.push_str(&format!(
            "\nper-node store load: mean {:.2}  max {}  max/mean {:.1}  gini {:.3}\n{}\n",
            run.node_stats.mean,
            run.node_stats.max,
            run.node_stats.max_over_mean(),
            run.node_stats.gini,
            run.count_flatness,
        ));
        out.push_str(&format!(
            "span digests: insert {:016x}  count {:016x}\n",
            run.insert_span_digest, run.count_span_digest
        ));
        if !(run.share_ok && run.per_node_ok) {
            all_ok = false;
        }
    }
    out.push_str(&format!(
        "\nacceptance: observed interval share within 30% of 2^-(r+1) and \
         per-node load within 3x of the global mean\n(intervals with >= {} \
         expected stores and >= {} nodes): {}\n",
        MIN_EXPECTED_ACCESSES,
        MIN_INTERVAL_NODES,
        if all_ok { "PASS" } else { "FAIL" }
    ));

    // ---- Determinism self-check: the whole scenario, twice, same seed.
    let a = run_scale(exp, 1_000, 0x4E32 ^ 1_000);
    let b = run_scale(exp, 1_000, 0x4E32 ^ 1_000);
    let deterministic = a.insert_jsonl == b.insert_jsonl
        && a.count_jsonl == b.count_jsonl
        && a.insert_span_digest == b.insert_span_digest
        && a.count_span_digest == b.count_span_digest;
    out.push_str(&format!(
        "determinism: two same-seed runs produce byte-identical metrics \
         JSONL + span digests: {}\n",
        if deterministic { "PASS" } else { "FAIL" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_balances_and_is_deterministic() {
        let exp = ExpConfig {
            nodes: 64,
            m: 16,
            k: 20,
            trials: 1,
            ..ExpConfig::default()
        };
        let a = run_scale(&exp, 64, 7);
        assert!(a.share_ok, "interval shares off:\n{}", a.table);
        assert!(a.per_node_ok, "per-node load off:\n{}", a.table);
        assert!(a.node_stats.mean > 0.0);
        let b = run_scale(&exp, 64, 7);
        assert_eq!(a.insert_jsonl, b.insert_jsonl);
        assert_eq!(a.insert_span_digest, b.insert_span_digest);
        assert_eq!(a.count_span_digest, b.count_span_digest);
        // The snapshot reader finds the headline counters.
        assert!(counter_from(&a.insert_jsonl, "op.insert") > 0);
        assert_eq!(
            counter_from(&a.insert_jsonl, "op.insert"),
            counter_from(&b.insert_jsonl, "op.insert")
        );
    }
}

//! Minimal aligned-column table printing for experiment output.

/// A printable table: header plus rows, rendered with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for EXPERIMENTS.md post-processing).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimals.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["m", "hops"]);
        t.row(vec!["128".into(), "86".into()]);
        t.row(vec!["1024".into(), "139".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("m"));
        assert!(lines[2].ends_with("86"));
        assert!(lines[3].ends_with("139"));
        // All rows equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.61803, 2), "1.62");
        assert_eq!(pct(0.123), "12.3%");
    }
}

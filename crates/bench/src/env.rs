//! Shared experiment environment: configuration, ring construction and
//! DHS population helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dhs_core::{Dhs, DhsConfig, MetricId};
use dhs_dht::cost::CostLedger;
use dhs_dht::ring::{Ring, RingConfig};
use dhs_sketch::{ItemHasher, SplitMix64};
use dhs_workload::relation::{generate_paper_relations, Relation};

/// Common experiment knobs (CLI-overridable).
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Overlay size (paper default 1024).
    pub nodes: usize,
    /// Relation scale factor (1.0 = paper's 10/20/40/80M tuples). The
    /// default 0.1 keeps the evaluation in the same dense regime
    /// (`n ≥ m·N`) as the paper at 1/10 the tuples.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Counting trials per configuration.
    pub trials: usize,
    /// Default bitmap count (paper default 512).
    pub m: usize,
    /// DHS key bits. The paper's §5.1 says 24, but its own eq. 3 requires
    /// `log2(m) + ⌈log2(n_max/m) + 3⌉ ≈ 27–30` bits at its relation sizes
    /// — with k = 24 the sketch registers saturate and under-estimate by
    /// 10–30% (we verified this directly). We default to 28, which
    /// satisfies eq. 3 at the default scale; use `--k 30` for scale 1.0.
    pub k: u32,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            nodes: 1024,
            scale: 0.1,
            seed: 42,
            trials: 10,
            m: 512,
            k: 28,
        }
    }
}

impl ExpConfig {
    /// A smaller, faster variant for `--quick` runs and CI.
    pub fn quick(self) -> Self {
        ExpConfig {
            scale: self.scale.min(0.02),
            trials: self.trials.min(5),
            ..self
        }
    }

    /// Deterministic RNG derived from the master seed and a label.
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Build the overlay.
    pub fn build_ring(&self, rng: &mut impl Rng) -> Ring {
        Ring::build(self.nodes, RingConfig::default(), rng)
    }

    /// A paper-default DHS config with this experiment's `m`/`k`.
    pub fn dhs_config(&self) -> DhsConfig {
        DhsConfig {
            k: self.k,
            m: self.m,
            ..DhsConfig::default()
        }
    }
}

/// A populated system: ring + ground truths for the four paper relations.
pub struct Populated {
    /// The overlay holding the DHS tuples.
    pub ring: Ring,
    /// Exact distinct-tuple count per relation (= relation size; tuple
    /// ids are unique).
    pub actual: Vec<u64>,
    /// Relation names, parallel to `actual`.
    pub names: Vec<&'static str>,
    /// Total insertion cost.
    pub insert_ledger: CostLedger,
}

/// Metric id of relation `i` in [`populate_relations`].
pub fn relation_metric(i: usize) -> MetricId {
    1 + i as MetricId
}

/// The item hasher all experiments share.
pub fn item_hasher() -> SplitMix64 {
    SplitMix64::default()
}

/// Generate the four paper relations at `exp.scale` and record each into
/// its own DHS metric, node by node via bulk insertion (each tuple is
/// first assigned to a uniformly random node, which then bulk-inserts its
/// local batch — §3.2's grouped update round).
pub fn populate_relations(dhs: &Dhs, exp: &ExpConfig, rng: &mut StdRng) -> Populated {
    let mut ring = exp.build_ring(rng);
    let relations = generate_paper_relations(exp.scale, rng);
    let mut ledger = CostLedger::new();
    let hasher = item_hasher();
    let mut actual = Vec::new();
    let mut names = Vec::new();
    for (i, rel) in relations.iter().enumerate() {
        bulk_insert_relation(
            dhs,
            &mut ring,
            rel,
            relation_metric(i),
            &hasher,
            rng,
            &mut ledger,
        );
        actual.push(rel.len() as u64);
        names.push(rel.spec.name);
    }
    Populated {
        ring,
        actual,
        names,
        insert_ledger: ledger,
    }
}

/// Assign `rel`'s tuples to random nodes and bulk-insert each node's
/// batch under `metric`.
pub fn bulk_insert_relation(
    dhs: &Dhs,
    ring: &mut Ring,
    rel: &Relation,
    metric: MetricId,
    hasher: &impl ItemHasher,
    rng: &mut impl Rng,
    ledger: &mut CostLedger,
) {
    let node_count = ring.len_alive();
    let ids: Vec<u64> = ring.alive_ids().to_vec();
    let mut batches: Vec<Vec<u64>> = vec![Vec::new(); node_count];
    for t in &rel.tuples {
        let owner = rng.gen_range(0..node_count);
        batches[owner].push(hasher.hash_u64(t.id));
    }
    for (owner, batch) in batches.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        dhs.bulk_insert(ring, metric, &batch, ids[owner], rng, ledger);
    }
}

/// Assign `rel`'s tuples to random nodes and bulk-insert each node's
/// batch into its histogram-bucket metric (the bulk variant of
/// `DhsHistogram::build`, for experiment-scale population).
pub fn bulk_insert_histogram(
    dhs: &Dhs,
    ring: &mut Ring,
    rel: &Relation,
    spec: dhs_histogram::BucketSpec,
    hasher: &impl ItemHasher,
    rng: &mut impl Rng,
    ledger: &mut CostLedger,
) {
    use std::collections::HashMap;
    let node_count = ring.len_alive();
    let ids: Vec<u64> = ring.alive_ids().to_vec();
    // (node index, metric) → batch of item keys.
    let mut batches: HashMap<(usize, MetricId), Vec<u64>> = HashMap::new();
    for t in &rel.tuples {
        let Some(bucket) = spec.bucket_of(t.value) else {
            continue;
        };
        let owner = rng.gen_range(0..node_count);
        batches
            .entry((owner, spec.metric_of(bucket)))
            .or_default()
            .push(hasher.hash_u64(t.id));
    }
    let mut keys: Vec<(usize, MetricId)> = batches.keys().copied().collect();
    keys.sort_unstable(); // deterministic insertion order
    for key in keys {
        let batch = &batches[&key];
        dhs.bulk_insert(ring, key.1, batch, ids[key.0], rng, ledger);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhs_core::EstimatorKind;

    #[test]
    fn populate_is_deterministic_and_counts_match() {
        let exp = ExpConfig {
            nodes: 64,
            scale: 0.0002,
            m: 16,
            trials: 1,
            ..ExpConfig::default()
        };
        let dhs = Dhs::new(DhsConfig {
            m: 16,
            k: 20,
            ..DhsConfig::default()
        })
        .unwrap();
        let p1 = populate_relations(&dhs, &exp, &mut exp.rng(1));
        let p2 = populate_relations(&dhs, &exp, &mut exp.rng(1));
        assert_eq!(p1.actual, p2.actual);
        assert_eq!(p1.actual, vec![2_000, 4_000, 8_000, 16_000]);
        assert_eq!(p1.names, vec!["Q", "R", "S", "T"]);
        assert_eq!(p1.insert_ledger.hops(), p2.insert_ledger.hops());
    }

    #[test]
    fn populated_system_is_countable() {
        let exp = ExpConfig {
            nodes: 64,
            scale: 0.001,
            m: 16,
            ..ExpConfig::default()
        };
        let dhs = Dhs::new(DhsConfig {
            m: 16,
            k: 20,
            estimator: EstimatorKind::SuperLogLog,
            ..DhsConfig::default()
        })
        .unwrap();
        let mut rng = exp.rng(2);
        let p = populate_relations(&dhs, &exp, &mut rng);
        let origin = p.ring.alive_ids()[0];
        // Count the largest relation (densest): 80k items over 64 nodes.
        let result = p.ring.len_alive();
        assert_eq!(result, 64);
        let mut ledger = CostLedger::new();
        let est = dhs
            .count(&p.ring, relation_metric(3), origin, &mut rng, &mut ledger)
            .estimate;
        let actual = p.actual[3] as f64;
        let err = (est - actual).abs() / actual;
        assert!(err < 0.6, "est {est} vs {actual}");
    }
}

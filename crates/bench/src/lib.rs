//! # dhs-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) plus
//! the ablations DESIGN.md calls out. The `repro` binary drives the
//! experiments; Criterion micro-benches live in `benches/`.
//!
//! Experiment ids (see DESIGN.md §3 for the full index):
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | E1 | §5.2 insertion/maintenance costs | [`experiments::insertion`] |
//! | E2 | Table 2 (counting costs) | [`experiments::table2`] |
//! | E3 | §5.2 scalability | [`experiments::scalability`] |
//! | E4 | §5.2 accuracy vs m | [`experiments::accuracy`] |
//! | E5 | Table 3 (histogram costs) | [`experiments::table3`] |
//! | E6 | §5.2 histogram accuracy | [`experiments::hist_accuracy`] |
//! | E7 | §5.2 query processing | [`experiments::queryopt`] |
//! | A1 | §4.1 retry-limit ablation | [`experiments::ablation_lim`] |
//! | A2 | §3.5 failures/replication ablation | [`experiments::ablation_failures`] |
//! | A3 | §3.5 bit-shift ablation | [`experiments::ablation_bitshift`] |
//! | A4 | §3.3 TTL/maintenance ablation | [`experiments::ablation_ttl`] |
//! | A5 | Chord finger staleness under churn | [`experiments::ablation_churn`] |
//! | A6 | continuous churn with/without replica repair | [`experiments::ablation_dynamics`] |
//! | B1 | §1 baseline comparison | [`experiments::baselines`] |
//! | G1 | §1 DHT-agnosticism (Chord vs Kademlia) | [`experiments::geometry`] |
//! | N5 | dhs-traj ablation harness + trajectory registry | [`experiments::trajectory`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod experiments;
pub mod provenance;
pub mod table;

pub use env::ExpConfig;

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--scale F] [--nodes N] [--seed S] [--trials T]
//!       [--m M] [--k K] [--quick]
//! ```
//!
//! Experiments: insertion, table2, scalability, accuracy, table3,
//! hist-accuracy, queryopt, ablation-lim, ablation-failures,
//! ablation-bitshift, ablation-ttl, baselines, saturation, all.
//!
//! Ablation-harness subcommands (see DESIGN.md §dhs-traj):
//!
//! ```text
//! repro ablate <plan>... [--gate] [--append] [--registry FILE]
//! repro traj [--plan NAME] [--kpi SUBSTR] [--registry FILE]
//! ```

use std::env;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use dhs_bench::experiments;
use dhs_bench::provenance;
use dhs_bench::ExpConfig;
use dhs_obs::Recorder as _;
use dhs_traj::{run_ablation, Registry};

type Experiment = (&'static str, fn(&ExpConfig) -> String);

const EXPERIMENTS: &[Experiment] = &[
    ("insertion", experiments::insertion),
    ("table2", experiments::table2),
    ("scalability", experiments::scalability),
    ("accuracy", experiments::accuracy),
    ("table3", experiments::table3),
    ("hist-accuracy", experiments::hist_accuracy),
    ("queryopt", experiments::queryopt),
    ("ablation-lim", experiments::ablation_lim),
    ("ablation-failures", experiments::ablation_failures),
    ("ablation-bitshift", experiments::ablation_bitshift),
    ("ablation-ttl", experiments::ablation_ttl),
    ("ablation-churn", experiments::ablation_churn),
    ("ablation-dynamics", experiments::ablation_dynamics),
    ("baselines", experiments::baselines),
    ("geometry", experiments::geometry),
    ("network", experiments::network),
    ("loadbalance", experiments::load_balance),
    ("fastpath", experiments::fastpath),
    ("shard", experiments::shard),
    ("saturation", experiments::saturation),
    ("trajectory", experiments::trajectory),
];

/// Default location of the committed perf-trajectory registry.
const DEFAULT_REGISTRY: &str = "registry/traj.csv";

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: repro <experiment|all|bench|bench-shard|bench-sat> [--scale F] [--nodes N] \
         [--seed S] [--trials T] [--m M] [--k K] [--quick] [--out FILE]\n\
         \x20      repro ablate <plan>... [--gate] [--append] [--registry FILE]\n\
         \x20      repro traj [--plan NAME] [--kpi SUBSTR] [--registry FILE]\n\
         bench: emit BENCH_dhs.json (baseline vs dhs-fast headline numbers)\n\
         bench-shard: emit BENCH_shard.json (sharded-store memory/throughput)\n\
         bench-sat: emit BENCH_sat.json (threaded-driver saturation sweep); \
         --out overrides the output path\n\
         ablate: run ablation plans, print the deterministic report JSON; \
         --gate fails on KPI drift vs the registry baseline, --append records \
         rows into the registry (default {DEFAULT_REGISTRY})\n\
         traj: render the registry as a sorted trajectory table\n\
         plans: {}\n\
         experiments: {}",
        experiments::PLAN_NAMES.join(", "),
        names.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let which = args[0].clone();
    let mut exp = ExpConfig::default();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut pos: Vec<String> = Vec::new();
    let mut registry_path = DEFAULT_REGISTRY.to_string();
    let mut append = false;
    let mut gate = false;
    let mut plan_filter: Option<String> = None;
    let mut kpi_filter: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let next = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match flag {
            "--quick" => quick = true,
            "--scale" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.scale = v,
                None => return fail("--scale needs a float"),
            },
            "--nodes" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.nodes = v,
                None => return fail("--nodes needs an integer"),
            },
            "--seed" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.seed = v,
                None => return fail("--seed needs an integer"),
            },
            "--trials" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.trials = v,
                None => return fail("--trials needs an integer"),
            },
            "--m" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.m = v,
                None => return fail("--m needs an integer"),
            },
            "--k" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.k = v,
                None => return fail("--k needs an integer"),
            },
            "--out" => match next(&mut i) {
                Some(v) => out = Some(v),
                None => return fail("--out needs a path"),
            },
            "--registry" => match next(&mut i) {
                Some(v) => registry_path = v,
                None => return fail("--registry needs a path"),
            },
            "--append" => append = true,
            "--gate" => gate = true,
            "--plan" => match next(&mut i) {
                Some(v) => plan_filter = Some(v),
                None => return fail("--plan needs a plan name"),
            },
            "--kpi" => match next(&mut i) {
                Some(v) => kpi_filter = Some(v),
                None => return fail("--kpi needs a substring"),
            },
            other if !other.starts_with("--") => pos.push(other.to_string()),
            other => return fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if quick {
        exp = exp.quick();
    }

    if which == "ablate" {
        return ablate(&exp, &pos, &registry_path, gate, append);
    }
    if which == "traj" {
        return traj(
            &registry_path,
            plan_filter.as_deref(),
            kpi_filter.as_deref(),
        );
    }

    if which == "bench" || which == "bench-shard" || which == "bench-sat" {
        let (json, default_path) = match which.as_str() {
            "bench" => (experiments::fastpath_bench_json(&exp), "BENCH_dhs.json"),
            "bench-shard" => (experiments::shard_bench_json(&exp), "BENCH_shard.json"),
            _ => (experiments::saturation_bench_json(&exp), "BENCH_sat.json"),
        };
        let path = out.as_deref().unwrap_or(default_path);
        print!("{json}");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&Experiment> = if which == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        match EXPERIMENTS.iter().find(|(n, _)| *n == which) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown experiment '{which}'\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    };

    for (name, run) in selected {
        let start = Instant::now();
        println!("=== {name} ===");
        println!("{}", run(&exp));
        println!("[{name} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{}", usage());
    ExitCode::FAILURE
}

/// `repro ablate`: run the named plans through the bench runners, print
/// each deterministic report JSON to stdout, optionally gate the KPIs
/// against the committed registry and append the new rows to it.
///
/// Exit is FAILURE if any job errors, any KPI leaves its declared
/// envelope, or (`--gate`) any KPI drifts from the registry baseline
/// beyond its tolerance. `--append` only writes when everything passed,
/// so a red run can never pollute the committed trajectory.
fn ablate(
    exp: &ExpConfig,
    pos: &[String],
    registry_path: &str,
    gate: bool,
    append: bool,
) -> ExitCode {
    if pos.is_empty() {
        return fail("ablate needs at least one plan name");
    }
    let committed = match std::fs::read_to_string(registry_path) {
        Ok(csv) => match Registry::parse(&csv) {
            Ok(reg) => Some(reg),
            Err(e) => {
                eprintln!("corrupt registry {registry_path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => None,
    };
    let commit = provenance::commit();
    let tool = provenance::tool();
    let mut ok = true;
    let mut fragments = String::new();
    for name in pos {
        let Some(plans) = experiments::ablation_plans(name) else {
            return fail(&format!(
                "unknown plan '{name}' (known: {})",
                experiments::PLAN_NAMES.join(", ")
            ));
        };
        for (plan, kind) in plans {
            let mut runner = experiments::BenchRunner { base: *exp, kind };
            let mut obs = dhs_obs::Observer::new(1);
            let report = match run_ablation(&plan, exp.seed, &mut runner, &commit, &tool, &mut obs)
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("plan {}: invalid: {e}", plan.name);
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", report.to_json());
            if !report.all_pass() {
                eprintln!(
                    "plan {}: {} of {} KPI checks failed",
                    plan.name,
                    report.failures(),
                    report.failures() + report.kpis_passed()
                );
                ok = false;
            }
            if gate {
                match &committed {
                    Some(reg) => {
                        let violations = reg.gate(&plan, &report);
                        for v in &violations {
                            obs.incr(dhs_obs::names::TRAJ_GATE_VIOLATION, 1);
                            eprintln!("GATE VIOLATION {v}");
                        }
                        if !violations.is_empty() {
                            ok = false;
                        }
                    }
                    None => {
                        eprintln!("--gate: no registry at {registry_path}, nothing to gate against")
                    }
                }
            }
            fragments.push_str(&Registry::append_csv(&report));
        }
    }
    if append {
        if !ok {
            eprintln!("not appending to {registry_path}: run had failures");
        } else if let Err(e) = append_rows(registry_path, &fragments) {
            eprintln!("could not append to {registry_path}: {e}");
            return ExitCode::FAILURE;
        } else {
            eprintln!(
                "appended {} rows to {registry_path}",
                fragments.lines().count()
            );
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Append headerless CSV rows to the registry file, creating it (with
/// header, and parent directories) on first use.
fn append_rows(path: &str, fragments: &str) -> std::io::Result<()> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let need_header = !p.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(p)?;
    if need_header {
        writeln!(f, "{}", dhs_traj::HEADER)?;
    }
    f.write_all(fragments.as_bytes())
}

/// `repro traj`: render the committed registry as the sorted trajectory
/// table, optionally filtered by exact plan name and KPI substring.
fn traj(registry_path: &str, plan: Option<&str>, kpi: Option<&str>) -> ExitCode {
    let csv = match std::fs::read_to_string(registry_path) {
        Ok(csv) => csv,
        Err(e) => {
            eprintln!("cannot read registry {registry_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Registry::parse(&csv) {
        Ok(reg) => {
            print!("{}", dhs_traj::registry_query(&reg, plan, kpi));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("corrupt registry {registry_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--scale F] [--nodes N] [--seed S] [--trials T]
//!       [--m M] [--k K] [--quick]
//! ```
//!
//! Experiments: insertion, table2, scalability, accuracy, table3,
//! hist-accuracy, queryopt, ablation-lim, ablation-failures,
//! ablation-bitshift, ablation-ttl, baselines, all.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use dhs_bench::experiments;
use dhs_bench::ExpConfig;

type Experiment = (&'static str, fn(&ExpConfig) -> String);

const EXPERIMENTS: &[Experiment] = &[
    ("insertion", experiments::insertion),
    ("table2", experiments::table2),
    ("scalability", experiments::scalability),
    ("accuracy", experiments::accuracy),
    ("table3", experiments::table3),
    ("hist-accuracy", experiments::hist_accuracy),
    ("queryopt", experiments::queryopt),
    ("ablation-lim", experiments::ablation_lim),
    ("ablation-failures", experiments::ablation_failures),
    ("ablation-bitshift", experiments::ablation_bitshift),
    ("ablation-ttl", experiments::ablation_ttl),
    ("ablation-churn", experiments::ablation_churn),
    ("ablation-dynamics", experiments::ablation_dynamics),
    ("baselines", experiments::baselines),
    ("geometry", experiments::geometry),
    ("network", experiments::network),
    ("loadbalance", experiments::load_balance),
    ("fastpath", experiments::fastpath),
    ("shard", experiments::shard),
];

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: repro <experiment|all|bench|bench-shard> [--scale F] [--nodes N] \
         [--seed S] [--trials T] [--m M] [--k K] [--quick] [--out FILE]\n\
         bench: emit BENCH_dhs.json (baseline vs dhs-fast headline numbers)\n\
         bench-shard: emit BENCH_shard.json (sharded-store memory/throughput); \
         --out overrides the output path\n\
         experiments: {}",
        names.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let which = args[0].clone();
    let mut exp = ExpConfig::default();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let next = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match flag {
            "--quick" => quick = true,
            "--scale" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.scale = v,
                None => return fail("--scale needs a float"),
            },
            "--nodes" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.nodes = v,
                None => return fail("--nodes needs an integer"),
            },
            "--seed" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.seed = v,
                None => return fail("--seed needs an integer"),
            },
            "--trials" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.trials = v,
                None => return fail("--trials needs an integer"),
            },
            "--m" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.m = v,
                None => return fail("--m needs an integer"),
            },
            "--k" => match next(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => exp.k = v,
                None => return fail("--k needs an integer"),
            },
            "--out" => match next(&mut i) {
                Some(v) => out = Some(v),
                None => return fail("--out needs a path"),
            },
            other => return fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if quick {
        exp = exp.quick();
    }

    if which == "bench" || which == "bench-shard" {
        let (json, default_path) = if which == "bench" {
            (experiments::fastpath_bench_json(&exp), "BENCH_dhs.json")
        } else {
            (experiments::shard_bench_json(&exp), "BENCH_shard.json")
        };
        let path = out.as_deref().unwrap_or(default_path);
        print!("{json}");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&Experiment> = if which == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        match EXPERIMENTS.iter().find(|(n, _)| *n == which) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown experiment '{which}'\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    };

    for (name, run) in selected {
        let start = Instant::now();
        println!("=== {name} ===");
        println!("{}", run(&exp));
        println!("[{name} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{}", usage());
    ExitCode::FAILURE
}

//! Diagnostic: decompose the DHS estimation error into (a) the sketch's
//! own error, (b) distribution error with exhaustive probing, (c) retry
//! (lim) error. Not part of the experiment suite.

use dhs_bench::env::{bulk_insert_relation, item_hasher, ExpConfig};
use dhs_core::{Dhs, DhsConfig, EstimatorKind};
use dhs_dht::cost::CostLedger;
use dhs_sketch::{CardinalityEstimator, ItemHasher};
use dhs_workload::relation::{Relation, RelationSpec};

fn main() {
    let exp = ExpConfig::default();
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let m: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);
    let mut rng = exp.rng(1);
    let spec = RelationSpec {
        name: "Q",
        paper_tuples: n,
        domain: 10_000,
        theta: 0.7,
    };
    let rel = Relation::generate(&spec, 1.0, 1, &mut rng);
    let hasher = item_hasher();

    for estimator in [EstimatorKind::SuperLogLog, EstimatorKind::Pcsa] {
        let cfg = DhsConfig {
            m,
            k: exp.k,
            estimator,
            ..DhsConfig::default()
        };
        let dhs = Dhs::new(cfg).unwrap();
        let mut ring = exp.build_ring(&mut rng);
        let mut ledger = CostLedger::new();
        bulk_insert_relation(&dhs, &mut ring, &rel, 1, &hasher, &mut rng, &mut ledger);

        // (a) local sketch from the same classify() stream.
        let local_est = match estimator {
            EstimatorKind::HyperLogLog => unreachable!("not exercised here"),
            EstimatorKind::SuperLogLog => {
                let mut s = dhs_sketch::SuperLogLog::new(m).unwrap();
                for t in &rel.tuples {
                    let (v, r) = dhs.classify(hasher.hash_u64(t.id));
                    s.observe(v as usize, r as u8 + 1);
                }
                s.estimate()
            }
            EstimatorKind::Pcsa => {
                let mut s = dhs_sketch::Pcsa::with_width(m, 64).unwrap();
                for t in &rel.tuples {
                    let (v, r) = dhs.classify(hasher.hash_u64(t.id));
                    s.set_bit(v as usize, r);
                }
                s.estimate()
            }
        };
        // Also the full-64-bit-hash local sketch (no k-bit truncation).
        let full_est = match estimator {
            EstimatorKind::HyperLogLog => unreachable!("not exercised here"),
            EstimatorKind::SuperLogLog => {
                let mut s = dhs_sketch::SuperLogLog::new(m).unwrap();
                for t in &rel.tuples {
                    s.insert_hash(hasher.hash_u64(t.id));
                }
                s.estimate()
            }
            EstimatorKind::Pcsa => {
                let mut s = dhs_sketch::Pcsa::new(m).unwrap();
                for t in &rel.tuples {
                    s.insert_hash(hasher.hash_u64(t.id));
                }
                s.estimate()
            }
        };

        // (b) exhaustive probing.
        let exhaustive = {
            let dhs = Dhs::new(DhsConfig {
                lim: exp.nodes as u32,
                ..cfg
            })
            .unwrap();
            let origin = ring.alive_ids()[0];
            dhs.count(&ring, 1, origin, &mut rng, &mut CostLedger::new())
                .estimate
        };
        // (c) lim = 5.
        let lim5 = {
            let origin = ring.alive_ids()[0];
            dhs.count(&ring, 1, origin, &mut rng, &mut CostLedger::new())
                .estimate
        };

        let err = |e: f64| (e - n as f64) / n as f64 * 100.0;
        println!(
            "{estimator}: full-hash {:.1}% | k-bit local {:.1}% | exhaustive {:.1}% | lim5 {:.1}%",
            err(full_est),
            err(local_est),
            err(exhaustive),
            err(lim5)
        );
    }
}

//! Shared provenance stamping for benchmark artifacts.
//!
//! Every committed artifact (BENCH_dhs.json, BENCH_shard.json, registry
//! rows) carries the same four-field stamp: the master seed, an FNV
//! digest of the exact configuration that produced the numbers, the VCS
//! commit (from `DHS_COMMIT` — scripts export it; `unknown` otherwise),
//! and the producing tool's version. No wall-clock timestamps: two runs
//! of the same commit stamp identical provenance.

use dhs_obs::Fnv1a;

/// The commit id to stamp: `DHS_COMMIT`, cleaned for CSV/JSON embedding,
/// or `unknown`.
pub fn commit() -> String {
    match std::env::var("DHS_COMMIT") {
        Ok(v) if !v.trim().is_empty() => v
            .trim()
            .chars()
            .map(|c| {
                if c == ',' || c == '"' || c.is_whitespace() {
                    '_'
                } else {
                    c
                }
            })
            .collect(),
        _ => "unknown".to_string(),
    }
}

/// The producing tool identifier (crate + version).
pub fn tool() -> String {
    format!("dhs-bench-{}", env!("CARGO_PKG_VERSION"))
}

/// FNV-1a digest over `key=value` configuration lines, as 16 hex digits.
/// Order matters — callers pass fields in a fixed order.
pub fn config_digest(parts: &[(&str, String)]) -> String {
    let mut h = Fnv1a::new();
    for (k, v) in parts {
        h.update(format!("{k}={v}\n").as_bytes());
    }
    format!("{:016x}", h.finish())
}

/// The shared `"provenance"` JSON object both BENCH emitters embed.
pub fn provenance_json(seed: u64, config_digest: &str) -> String {
    format!(
        "{{\"seed\": {seed}, \"config_digest\": \"{config_digest}\", \
         \"commit\": \"{}\", \"tool\": \"{}\"}}",
        commit(),
        tool()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_digest_is_stable_and_order_sensitive() {
        let a = config_digest(&[("m", "512".into()), ("k", "28".into())]);
        assert_eq!(a, config_digest(&[("m", "512".into()), ("k", "28".into())]));
        assert_ne!(a, config_digest(&[("k", "28".into()), ("m", "512".into())]));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn provenance_json_shape() {
        let p = provenance_json(42, "abcd");
        assert!(p.contains("\"seed\": 42"));
        assert!(p.contains("\"config_digest\": \"abcd\""));
        assert!(p.contains("\"tool\": \"dhs-bench-"));
    }
}

//! Named parameter sets of the paper's evaluation (§5.1).
//!
//! "We assume we have a network consisting of 1024 nodes, arranged on a
//! Chord-like DHT. Node and item IDs are 64 bits […]. DHS keys are 24 bits
//! long […]. Unless stated otherwise, DHS is using 512 bitmaps. […] The
//! value of the lim parameter was set to its default of 5 hops maximum."

/// The evaluation's default configuration, bundled so experiments and
/// examples can share one source of truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperScenario {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Identifier length in bits (`L`).
    pub id_bits: u32,
    /// DHS key/bitmap length in bits (`k`).
    pub dhs_bits: u32,
    /// Number of sketch bitmaps (`m`).
    pub bitmaps: usize,
    /// Probe retry limit per interval (`lim`).
    pub lim: u32,
    /// Histogram bucket count used in §5.
    pub histogram_buckets: usize,
    /// Relation scale factor (1.0 = paper scale).
    pub scale: f64,
}

impl Default for PaperScenario {
    fn default() -> Self {
        PaperScenario {
            nodes: 1024,
            id_bits: 64,
            dhs_bits: 24,
            bitmaps: 512,
            lim: 5,
            histogram_buckets: 100,
            scale: 0.01,
        }
    }
}

impl PaperScenario {
    /// The §5.1 configuration at full paper scale.
    pub fn paper_scale() -> Self {
        PaperScenario {
            scale: 1.0,
            ..Self::default()
        }
    }

    /// A small configuration for fast tests (64 nodes, small relations).
    pub fn test_scale() -> Self {
        PaperScenario {
            nodes: 64,
            bitmaps: 64,
            scale: 0.0005,
            ..Self::default()
        }
    }

    /// The §5 query-processing case study setting (256 nodes; the FREddies
    /// report \[17\] uses
    /// four relations of 256 000 tuples each, 100 tuples per node).
    pub fn queryopt_scale() -> Self {
        PaperScenario {
            nodes: 256,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_5_1() {
        let s = PaperScenario::default();
        assert_eq!(s.nodes, 1024);
        assert_eq!(s.id_bits, 64);
        assert_eq!(s.dhs_bits, 24);
        assert_eq!(s.bitmaps, 512);
        assert_eq!(s.lim, 5);
        assert_eq!(s.histogram_buckets, 100);
    }

    #[test]
    fn paper_scale_only_changes_scale() {
        let d = PaperScenario::default();
        let p = PaperScenario::paper_scale();
        assert_eq!(p.scale, 1.0);
        assert_eq!(p.nodes, d.nodes);
        assert_eq!(p.bitmaps, d.bitmaps);
    }
}

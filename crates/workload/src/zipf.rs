//! Zipf-distributed sampling over a finite integer domain.
//!
//! The paper's relations draw attribute values "according to a Zipf
//! distribution with θ = 0.7". We implement the textbook definition:
//! `P(X = i) ∝ 1/i^θ` for ranks `i ∈ 1..=domain`, sampled by exact
//! inverse-CDF lookup (binary search over the precomputed cumulative
//! table). Exact, deterministic given the caller's RNG, and fast enough
//! for the domain sizes histograms care about (≤ a few million values).

use rand::Rng;

/// A Zipf(θ) distribution over ranks `1..=domain`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i] = P(X ≤ i+1)`; last entry is 1.
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Build the distribution. `domain ≥ 1`; `theta ≥ 0` (θ = 0 is
    /// uniform).
    pub fn new(domain: usize, theta: f64) -> Self {
        assert!(domain >= 1, "domain must be non-empty");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be ≥ 0");
        let mut cdf = Vec::with_capacity(domain);
        let mut acc = 0.0f64;
        for i in 1..=domain {
            acc += (i as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        // Guard against floating-point round-off at the top end.
        // dhs-lint: allow(panic_hygiene) — invariant: cdf has one entry per rank and ranks >= 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf, theta }
    }

    /// Number of distinct values in the domain.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Exact probability of rank `i` (1-based).
    pub fn pmf(&self, i: usize) -> f64 {
        assert!((1..=self.domain()).contains(&i));
        if i == 1 {
            self.cdf[0]
        } else {
            self.cdf[i - 1] - self.cdf[i - 2]
        }
    }

    /// Draw one rank in `1..=domain`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf ≥ u.
        self.cdf.partition_point(|&p| p < u) + 1
    }

    /// Expected number of *distinct* ranks seen in `n` draws
    /// (`Σ_i 1 − (1−p_i)^n`) — the ground truth for distinct-count
    /// experiments that sample values rather than enumerate them.
    pub fn expected_distinct(&self, n: u64) -> f64 {
        let nf = n as f64;
        (1..=self.domain())
            .map(|i| 1.0 - (1.0 - self.pmf(i)).powf(nf))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.7);
        let total: f64 = (1..=1000).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = Zipf::new(100, 0.7);
        for i in 1..100 {
            assert!(z.pmf(i) >= z.pmf(i + 1), "rank {i}");
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 1..=10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_ratio_matches_theory() {
        // P(1)/P(2) = 2^θ.
        let theta = 0.7;
        let z = Zipf::new(1000, theta);
        let ratio = z.pmf(1) / z.pmf(2);
        assert!((ratio - 2f64.powf(theta)).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(50, 0.7);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = vec![0u32; 51];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Compare observed frequency of the head ranks to the pmf.
        for (i, &count) in counts.iter().enumerate().take(11).skip(1) {
            let observed = f64::from(count) / f64::from(n);
            let expected = z.pmf(i);
            assert!(
                (observed - expected).abs() / expected < 0.05,
                "rank {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn sample_stays_in_domain() {
        let z = Zipf::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!((1..=7).contains(&s));
        }
    }

    #[test]
    fn degenerate_single_value_domain() {
        let z = Zipf::new(1, 0.7);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 1);
        assert_eq!(z.pmf(1), 1.0);
    }

    #[test]
    fn expected_distinct_saturates() {
        let z = Zipf::new(100, 0.7);
        assert!(z.expected_distinct(0) < 1e-9);
        let e1 = z.expected_distinct(100);
        let e2 = z.expected_distinct(100_000);
        assert!(e1 < e2);
        assert!(e2 <= 100.0 + 1e-9);
        assert!(e2 > 99.0, "100k draws should see nearly all of 100 values");
    }
}

//! Multi-tenant metric workload: the 10⁶-metric stream that exercises
//! the sharded sketch store.
//!
//! The paper's §4.2 histogram use puts one sketch behind every
//! (user, bucket) pair; at Internet scale that is millions of concurrent
//! metrics with a heavily skewed popularity distribution. This module
//! generates that shape deterministically:
//!
//! * a **registration pass** touches every metric exactly once (so a run
//!   with `total_metrics() = 10⁶` really materializes 10⁶ sketches — a
//!   Zipf-only stream would leave the tail empty), then
//! * an **update pass** draws `extra_updates` metrics from a Zipf(θ)
//!   distribution over the global metric index, so head metrics grow
//!   dense registers while tail metrics stay sparse — exactly the fill
//!   mix the tiered register store is built for.
//!
//! Item keys are unique per (metric, update) pair, derived from a
//! counter, so every update is a genuinely new item (cardinality grows
//! by one per update) and ground truth is exact.

use rand::Rng;

use crate::zipf::Zipf;

/// Shape of a multi-tenant metric stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantWorkload {
    /// Number of tenants (≤ 65536).
    pub tenants: u32,
    /// Metrics per tenant (≤ 65536).
    pub metrics_per_tenant: u32,
    /// Zipf skew of metric popularity in the update pass.
    pub theta: f64,
    /// Updates drawn after the registration pass.
    pub extra_updates: u64,
}

/// One update: an item arriving at a tenant's metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantUpdate {
    /// The tenant (fits `u16`).
    pub tenant: u16,
    /// The metric within the tenant (fits `u16`).
    pub metric: u16,
    /// The item key (unique across the whole stream).
    pub item: u64,
}

impl TenantWorkload {
    /// The paper-scale default: 2¹⁰ tenants × ~2¹⁰ metrics ≈ 10⁶ metrics,
    /// θ = 0.7 (the evaluation's skew), 3 updates per metric on average.
    pub fn million_metrics() -> Self {
        TenantWorkload {
            tenants: 1_000,
            metrics_per_tenant: 1_000,
            theta: 0.7,
            extra_updates: 3_000_000,
        }
    }

    /// Total metrics across tenants.
    pub fn total_metrics(&self) -> u64 {
        u64::from(self.tenants) * u64::from(self.metrics_per_tenant)
    }

    /// Total updates the stream will emit (registration + Zipf pass).
    pub fn total_updates(&self) -> u64 {
        self.total_metrics() + self.extra_updates
    }

    /// Validate the tenant/metric dimensions fit their `u16` encodings.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 || self.tenants > 1 << 16 {
            return Err(format!("tenants {} not in 1..=65536", self.tenants));
        }
        if self.metrics_per_tenant == 0 || self.metrics_per_tenant > 1 << 16 {
            return Err(format!(
                "metrics_per_tenant {} not in 1..=65536",
                self.metrics_per_tenant
            ));
        }
        Ok(())
    }

    /// Stream every update through `f`, in deterministic order: the
    /// registration pass (global metric index ascending), then
    /// `extra_updates` Zipf draws from `rng`.
    ///
    /// The `u16` narrowings below are guaranteed by [`validate`]'s
    /// bounds, which this method asserts.
    ///
    /// [`validate`]: TenantWorkload::validate
    pub fn visit(&self, rng: &mut impl Rng, mut f: impl FnMut(TenantUpdate)) {
        assert!(self.validate().is_ok(), "invalid workload dimensions");
        let total = self.total_metrics();
        // Per-metric update counters make item keys unique stream-wide:
        // item = global_metric_index * 2^32 + seq.
        #[allow(clippy::cast_possible_truncation)]
        // dhs-lint: allow(lossy_cast) — total ≤ 2^32, fits usize.
        let mut seq = vec![0u32; total as usize];
        let emit = |global: u64, seq: &mut [u32], f: &mut dyn FnMut(TenantUpdate)| {
            #[allow(clippy::cast_possible_truncation)]
            let update = TenantUpdate {
                // dhs-lint: allow(lossy_cast) — tenant index bounded by validate().
                tenant: (global / u64::from(self.metrics_per_tenant)) as u16,
                // dhs-lint: allow(lossy_cast) — metric index bounded by validate().
                metric: (global % u64::from(self.metrics_per_tenant)) as u16,
                // dhs-lint: allow(lossy_cast) — global < total ≤ 2^32, fits usize.
                item: (global << 32) | u64::from(seq[global as usize]),
            };
            #[allow(clippy::cast_possible_truncation)]
            {
                // dhs-lint: allow(lossy_cast) — total ≤ 2^32, fits usize.
                seq[global as usize] += 1;
            }
            f(update);
        };
        for global in 0..total {
            emit(global, &mut seq, &mut f);
        }
        if self.extra_updates == 0 {
            return;
        }
        #[allow(clippy::cast_possible_truncation)]
        // dhs-lint: allow(lossy_cast) — total ≤ 2^32, fits usize.
        let zipf = Zipf::new(total as usize, self.theta);
        for _ in 0..self.extra_updates {
            let global = (zipf.sample(rng) - 1) as u64;
            emit(global, &mut seq, &mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> TenantWorkload {
        TenantWorkload {
            tenants: 4,
            metrics_per_tenant: 8,
            theta: 0.7,
            extra_updates: 500,
        }
    }

    #[test]
    fn registration_pass_covers_every_metric() {
        let w = small();
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0u64;
        w.visit(&mut StdRng::seed_from_u64(1), |u| {
            seen.insert((u.tenant, u.metric));
            count += 1;
        });
        assert_eq!(seen.len() as u64, w.total_metrics());
        assert_eq!(count, w.total_updates());
    }

    #[test]
    fn item_keys_are_unique() {
        let w = small();
        let mut items = std::collections::BTreeSet::new();
        w.visit(&mut StdRng::seed_from_u64(2), |u| {
            assert!(items.insert(u.item), "duplicate item {:#x}", u.item);
        });
    }

    #[test]
    fn stream_is_deterministic() {
        let w = small();
        let collect = |seed: u64| {
            let mut v = Vec::new();
            w.visit(&mut StdRng::seed_from_u64(seed), |u| v.push(u));
            v
        };
        assert_eq!(collect(3), collect(3));
        assert_ne!(collect(3), collect(4), "different seeds diverge");
    }

    #[test]
    fn zipf_pass_skews_to_head_metrics() {
        let w = TenantWorkload {
            tenants: 1,
            metrics_per_tenant: 1_000,
            theta: 0.9,
            extra_updates: 20_000,
        };
        let mut counts = vec![0u64; 1_000];
        w.visit(&mut StdRng::seed_from_u64(5), |u| {
            counts[usize::from(u.metric)] += 1;
        });
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[990..].iter().sum();
        assert!(
            head > 10 * tail,
            "head {head} should dwarf tail {tail} at θ = 0.9"
        );
    }

    #[test]
    fn validation_rejects_overflowing_dimensions() {
        let mut w = small();
        w.tenants = (1 << 16) + 1;
        assert!(w.validate().is_err());
        w.tenants = 0;
        assert!(w.validate().is_err());
    }

    #[test]
    fn million_metric_default_shape() {
        let w = TenantWorkload::million_metrics();
        assert_eq!(w.total_metrics(), 1_000_000);
        assert_eq!(w.total_updates(), 4_000_000);
        assert!(w.validate().is_ok());
    }
}

//! Duplicate-laden multisets.
//!
//! The paper's constraint (6) is duplicate insensitivity: sensor networks
//! report the same event from many sensors, file-sharing networks index
//! the same document at many peers. This module generates multisets with
//! a controlled number of distinct items and a duplication profile, so
//! experiments can verify that DHS (and the sketch baselines) count
//! *distinct* items while duplicate-sensitive baselines (sampling) drift.

use rand::Rng;

/// A multiset with known distinct cardinality.
#[derive(Debug, Clone)]
pub struct DuplicatedMultiset {
    /// The item stream, duplicates included, in insertion order.
    pub items: Vec<u64>,
    /// Number of distinct items in the stream.
    pub distinct: u64,
}

impl DuplicatedMultiset {
    /// `distinct` items, each appearing exactly `copies` times, shuffled.
    #[allow(clippy::cast_possible_truncation)]
    pub fn uniform_copies(distinct: u64, copies: u32, rng: &mut impl Rng) -> Self {
        assert!(copies >= 1);
        // dhs-lint: allow(lossy_cast) — a capacity hint; workloads are far
        // below usize::MAX items.
        let mut items = Vec::with_capacity((distinct * u64::from(copies)) as usize);
        for item in 0..distinct {
            for _ in 0..copies {
                items.push(item);
            }
        }
        shuffle(&mut items, rng);
        DuplicatedMultiset { items, distinct }
    }

    /// `distinct` items with Zipf-skewed copy counts: item of popularity
    /// rank `i` appears `⌈max_copies / i^θ⌉` times. Models "popular
    /// documents indexed everywhere".
    #[allow(clippy::cast_possible_truncation)]
    pub fn zipf_copies(distinct: u64, max_copies: u32, theta: f64, rng: &mut impl Rng) -> Self {
        assert!(max_copies >= 1);
        let mut items = Vec::new();
        for item in 0..distinct {
            let rank = item + 1;
            // dhs-lint: allow(lossy_cast) — float→int: ≤ max_copies, fits u32.
            let copies = ((f64::from(max_copies) / (rank as f64).powf(theta)).ceil() as u32).max(1);
            for _ in 0..copies {
                items.push(item);
            }
        }
        shuffle(&mut items, rng);
        DuplicatedMultiset { items, distinct }
    }

    /// Total stream length (with duplicates).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Duplication factor: stream length / distinct count.
    pub fn duplication_factor(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.items.len() as f64 / self.distinct as f64
        }
    }
}

/// Fisher–Yates shuffle (kept local: `rand`'s `SliceRandom` would work,
/// but an explicit implementation keeps the shuffle order stable across
/// `rand` versions for reproducibility).
fn shuffle<T>(v: &mut [T], rng: &mut impl Rng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn uniform_copies_exact_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let ms = DuplicatedMultiset::uniform_copies(100, 5, &mut rng);
        assert_eq!(ms.len(), 500);
        assert_eq!(ms.distinct, 100);
        assert_eq!(ms.duplication_factor(), 5.0);
        let distinct: HashSet<u64> = ms.items.iter().copied().collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn zipf_copies_head_is_heavier() {
        let mut rng = StdRng::seed_from_u64(2);
        let ms = DuplicatedMultiset::zipf_copies(50, 100, 1.0, &mut rng);
        let count = |x: u64| ms.items.iter().filter(|&&i| i == x).count();
        assert_eq!(count(0), 100);
        assert_eq!(count(1), 50);
        assert!(count(49) >= 1);
        let distinct: HashSet<u64> = ms.items.iter().copied().collect();
        assert_eq!(distinct.len(), 50);
    }

    #[test]
    fn shuffle_is_permutation_and_seeded() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        shuffle(&mut a, &mut StdRng::seed_from_u64(3));
        shuffle(&mut b, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn empty_multiset() {
        let mut rng = StdRng::seed_from_u64(4);
        let ms = DuplicatedMultiset::uniform_copies(0, 3, &mut rng);
        assert!(ms.is_empty());
        assert_eq!(ms.duplication_factor(), 0.0);
    }
}

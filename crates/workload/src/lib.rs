//! # dhs-workload — evaluation workloads
//!
//! Generates the data the paper's evaluation runs on (§5.1):
//!
//! * [`zipf::Zipf`] — a Zipf(θ) sampler over a finite integer domain,
//!   implemented from scratch (exact CDF inversion).
//! * [`relation`] — the four relations Q, R, S, T (10/20/40/80 million
//!   single-integer-attribute tuples at paper scale, Zipf θ = 0.7), with a
//!   configurable scale factor so tests and CI run at 1/100 scale while
//!   `--scale 1.0` reproduces the paper's sizes.
//! * [`multiset`] — duplicate-laden item streams for the
//!   duplicate-(in)sensitivity experiments.
//! * [`scenario`] — the named parameter sets of the evaluation (node
//!   counts, DHS key length, bitmap counts, …).
//! * [`tenants`] — the multi-tenant metric stream (10⁶ sketches, Zipf
//!   popularity) that drives the sharded sketch store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multiset;
pub mod relation;
pub mod scenario;
pub mod tenants;
pub mod zipf;

pub use multiset::DuplicatedMultiset;
pub use relation::{Relation, RelationSpec, Tuple, PAPER_RELATIONS};
pub use scenario::PaperScenario;
pub use tenants::{TenantUpdate, TenantWorkload};
pub use zipf::Zipf;

//! The paper's relations.
//!
//! §5.1: "The system hosts four relations — Q, R, S, and T — of size equal
//! to 10, 20, 40, and 80 GBytes respectively. We assume a tuple size of
//! 1 kByte, so that relations contain 10, 20, 40, and 80 million tuples
//! respectively. Tuples in the relations consist of a single integer
//! attribute each, receiving values according to a Zipf distribution with
//! θ = 0.7. Tuples are randomly (uniformly) assigned to nodes."
//!
//! A [`RelationSpec`] captures that description; [`Relation::generate`]
//! materializes tuples at a configurable scale factor (the experiments
//! default to 1/100 scale; `--scale 1.0` reproduces paper scale — see
//! EXPERIMENTS.md for why every reported metric is scale-robust).

use rand::Rng;

use crate::zipf::Zipf;

/// The Zipf skew used throughout the paper's evaluation.
pub const PAPER_THETA: f64 = 0.7;

/// Attribute-domain size used by our reproduction (the paper does not pin
/// one; 10 000 distinct values gives 100-bucket histograms 100 values per
/// bucket, matching its histogram setup).
pub const DEFAULT_DOMAIN: usize = 10_000;

/// Declarative description of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSpec {
    /// Relation name (e.g. "Q").
    pub name: &'static str,
    /// Tuple count at paper scale.
    pub paper_tuples: u64,
    /// Attribute domain size (values are `0..domain`).
    pub domain: usize,
    /// Zipf skew θ.
    pub theta: f64,
}

/// The paper's four relations at full scale.
pub const PAPER_RELATIONS: [RelationSpec; 4] = [
    RelationSpec {
        name: "Q",
        paper_tuples: 10_000_000,
        domain: DEFAULT_DOMAIN,
        theta: PAPER_THETA,
    },
    RelationSpec {
        name: "R",
        paper_tuples: 20_000_000,
        domain: DEFAULT_DOMAIN,
        theta: PAPER_THETA,
    },
    RelationSpec {
        name: "S",
        paper_tuples: 40_000_000,
        domain: DEFAULT_DOMAIN,
        theta: PAPER_THETA,
    },
    RelationSpec {
        name: "T",
        paper_tuples: 80_000_000,
        domain: DEFAULT_DOMAIN,
        theta: PAPER_THETA,
    },
];

/// One tuple: a globally unique identifier plus a single integer
/// attribute, exactly the paper's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple {
    /// Globally unique tuple identifier (relations never share ids).
    pub id: u64,
    /// The single integer attribute, in `0..domain`.
    pub value: u32,
}

/// A materialized relation.
#[derive(Debug, Clone)]
pub struct Relation {
    /// The spec this relation was generated from.
    pub spec: RelationSpec,
    /// The tuples.
    pub tuples: Vec<Tuple>,
}

impl RelationSpec {
    /// Tuple count after applying `scale` (at least 1).
    #[allow(clippy::cast_possible_truncation)]
    pub fn scaled_tuples(&self, scale: f64) -> u64 {
        assert!(scale > 0.0 && scale.is_finite());
        ((self.paper_tuples as f64 * scale).round() as u64).max(1)
    }
}

impl Relation {
    /// Materialize the relation at `scale` (1.0 = paper scale). Tuple ids
    /// are made globally unique by tagging the top byte with
    /// `relation_tag`, so multi-relation experiments never collide.
    #[allow(clippy::cast_possible_truncation)]
    pub fn generate(spec: &RelationSpec, scale: f64, relation_tag: u8, rng: &mut impl Rng) -> Self {
        let n = spec.scaled_tuples(scale);
        let zipf = Zipf::new(spec.domain, spec.theta);
        let tag = u64::from(relation_tag) << 56;
        let tuples = (0..n)
            .map(|i| Tuple {
                id: tag | i,
                // dhs-lint: allow(lossy_cast) — Zipf ranks are ≤ the domain size.
                value: (zipf.sample(rng) - 1) as u32,
            })
            .collect();
        Relation {
            spec: spec.clone(),
            tuples,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Exact number of tuples with `lo ≤ value < hi` (ground truth for
    /// histogram experiments).
    pub fn count_in_range(&self, lo: u32, hi: u32) -> u64 {
        self.tuples
            .iter()
            .filter(|t| (lo..hi).contains(&t.value))
            .count() as u64
    }

    /// Exact per-value frequency vector over the domain.
    pub fn value_frequencies(&self) -> Vec<u64> {
        let mut freq = vec![0u64; self.spec.domain];
        for t in &self.tuples {
            // dhs-lint: allow(lossy_cast) — u32 → usize is lossless here.
            freq[t.value as usize] += 1;
        }
        freq
    }
}

/// Generate all four paper relations at `scale`, with distinct tags.
#[allow(clippy::cast_possible_truncation)]
pub fn generate_paper_relations(scale: f64, rng: &mut impl Rng) -> Vec<Relation> {
    PAPER_RELATIONS
        .iter()
        .enumerate()
        // dhs-lint: allow(lossy_cast) — schemas hold far fewer than 256 relations.
        .map(|(i, spec)| Relation::generate(spec, scale, (i + 1) as u8, rng))
        .collect()
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test data has known ranges
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_specs_match_the_paper() {
        assert_eq!(PAPER_RELATIONS[0].paper_tuples, 10_000_000);
        assert_eq!(PAPER_RELATIONS[3].paper_tuples, 80_000_000);
        for spec in &PAPER_RELATIONS {
            assert_eq!(spec.theta, 0.7);
        }
    }

    #[test]
    fn scaling_rounds_and_floors_at_one() {
        let spec = &PAPER_RELATIONS[0];
        assert_eq!(spec.scaled_tuples(1.0), 10_000_000);
        assert_eq!(spec.scaled_tuples(0.01), 100_000);
        assert_eq!(spec.scaled_tuples(1e-9), 1);
    }

    #[test]
    fn tuple_ids_globally_unique_across_relations() {
        let mut rng = StdRng::seed_from_u64(1);
        let rels = generate_paper_relations(0.0001, &mut rng);
        let mut ids: Vec<u64> = rels
            .iter()
            .flat_map(|r| r.tuples.iter().map(|t| t.id))
            .collect();
        let total = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total);
    }

    #[test]
    fn values_zipf_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let rel = Relation::generate(&PAPER_RELATIONS[0], 0.001, 1, &mut rng);
        let freq = rel.value_frequencies();
        // Value 0 (rank 1) must be the most frequent, and visibly more
        // frequent than a mid-domain value.
        let max = *freq.iter().max().unwrap();
        assert_eq!(freq[0], max);
        assert!(freq[0] > 5 * freq[5000].max(1));
    }

    #[test]
    fn count_in_range_agrees_with_frequencies() {
        let mut rng = StdRng::seed_from_u64(3);
        let rel = Relation::generate(&PAPER_RELATIONS[1], 0.0005, 2, &mut rng);
        let freq = rel.value_frequencies();
        let lo = 100u32;
        let hi = 250u32;
        let expected: u64 = freq[lo as usize..hi as usize].iter().sum();
        assert_eq!(rel.count_in_range(lo, hi), expected);
        assert_eq!(
            rel.count_in_range(0, rel.spec.domain as u32),
            rel.len() as u64
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let a = Relation::generate(&PAPER_RELATIONS[2], 0.0001, 3, &mut r1);
        let b = Relation::generate(&PAPER_RELATIONS[2], 0.0001, 3, &mut r2);
        assert_eq!(a.tuples, b.tuples);
    }
}

#![allow(clippy::cast_possible_truncation)] // test data has known ranges
//! Property-based tests for the workload generators.

use dhs_workload::multiset::DuplicatedMultiset;
use dhs_workload::relation::{Relation, RelationSpec};
use dhs_workload::zipf::Zipf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The Zipf pmf is a valid, monotone non-increasing distribution for
    /// arbitrary domain and skew.
    #[test]
    fn zipf_pmf_valid(domain in 1usize..2_000, theta in 0.0f64..3.0) {
        let z = Zipf::new(domain, theta);
        let total: f64 = (1..=domain).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for i in 1..domain {
            prop_assert!(z.pmf(i) >= z.pmf(i + 1) - 1e-12, "rank {i}");
        }
    }

    /// Samples always land in the domain, and the sampler is
    /// seed-deterministic.
    #[test]
    fn zipf_samples_in_domain(domain in 1usize..500, theta in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(domain, theta);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let s1 = z.sample(&mut a);
            let s2 = z.sample(&mut b);
            prop_assert_eq!(s1, s2);
            prop_assert!((1..=domain).contains(&s1));
        }
    }

    /// expected_distinct is monotone in n and bounded by the domain.
    #[test]
    fn expected_distinct_monotone(domain in 1usize..300, theta in 0.0f64..2.0) {
        let z = Zipf::new(domain, theta);
        let mut prev = 0.0;
        for n in [0u64, 1, 10, 100, 10_000] {
            let e = z.expected_distinct(n);
            prop_assert!(e >= prev - 1e-9);
            prop_assert!(e <= domain as f64 + 1e-9);
            prev = e;
        }
    }

    /// Relations have unique ids, in-domain values, and exact scaled
    /// sizes.
    #[test]
    fn relation_well_formed(tuples in 1u64..20_000, domain in 1usize..500, seed in any::<u64>()) {
        let spec = RelationSpec {
            name: "X",
            paper_tuples: tuples,
            domain,
            theta: 0.7,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let rel = Relation::generate(&spec, 1.0, 5, &mut rng);
        prop_assert_eq!(rel.len() as u64, tuples);
        let mut ids: Vec<u64> = rel.tuples.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, tuples, "ids unique");
        prop_assert!(rel.tuples.iter().all(|t| (t.value as usize) < domain));
        // Frequencies are consistent with counts.
        let freq = rel.value_frequencies();
        prop_assert_eq!(freq.iter().sum::<u64>(), tuples);
        prop_assert_eq!(rel.count_in_range(0, domain as u32), tuples);
    }

    /// Multisets report exact distinct counts and stream lengths.
    #[test]
    fn multiset_invariants(distinct in 0u64..2_000, copies in 1u32..6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ms = DuplicatedMultiset::uniform_copies(distinct, copies, &mut rng);
        prop_assert_eq!(ms.distinct, distinct);
        prop_assert_eq!(ms.len() as u64, distinct * u64::from(copies));
        let mut support: Vec<u64> = ms.items.clone();
        support.sort_unstable();
        support.dedup();
        prop_assert_eq!(support.len() as u64, distinct);
    }

    /// Zipf-copies multisets cover the full support exactly once at
    /// minimum.
    #[test]
    fn zipf_multiset_support(distinct in 1u64..500, max_copies in 1u32..50, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ms = DuplicatedMultiset::zipf_copies(distinct, max_copies, 0.9, &mut rng);
        let mut support: Vec<u64> = ms.items.clone();
        support.sort_unstable();
        support.dedup();
        prop_assert_eq!(support.len() as u64, distinct);
        prop_assert!(ms.len() as u64 >= distinct);
        prop_assert!(ms.len() as u64 <= distinct * u64::from(max_copies));
    }
}

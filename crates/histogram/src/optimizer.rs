//! A Selinger-style join-order optimizer over a shipped-bytes cost model
//! (the paper's §5 "Histograms and Query Processing" case study).
//!
//! The setting mirrors PIER-class distributed query processors: a binary
//! equi-join rehashes both inputs across the overlay, so executing
//! `(…((R_{π1} ⋈ R_{π2}) ⋈ R_{π3}) …)` ships
//!
//! ```text
//! cost(π) = Σ_joins (|left input| + |right input|) · tuple_bytes
//! ```
//!
//! where intermediate sizes come from the histograms. The optimizer
//! enumerates left-deep orders (exhaustively — the paper's queries join
//! 3–4 relations) and picks the cheapest; comparing the chosen plan's
//! *actual* cost against the naive order's quantifies the benefit, and
//! comparing against the histogram-reconstruction bandwidth shows the
//! paper's punchline: the statistics cost megabytes, the savings tens.

use crate::buckets::BucketSpec;
use crate::query::{join_histogram, JoinQuery};
use dhs_core::checked_cast;

/// A left-deep join plan.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// Relation indices in execution order.
    pub order: Vec<usize>,
    /// Estimated shipped bytes.
    pub est_cost_bytes: f64,
    /// Estimated intermediate result sizes (after each join).
    pub est_intermediate_sizes: Vec<f64>,
}

/// The optimizer: a catalog of per-relation histograms over a common
/// partitioning, plus the tuple width used by the cost model.
#[derive(Debug, Clone)]
pub struct Optimizer {
    spec: BucketSpec,
    /// Per-relation bucket counts (estimated or exact).
    histograms: Vec<Vec<f64>>,
    tuple_bytes: f64,
}

impl Optimizer {
    /// Build an optimizer from per-relation histograms (all over `spec`).
    pub fn new(spec: BucketSpec, histograms: Vec<Vec<f64>>, tuple_bytes: u64) -> Self {
        for h in &histograms {
            assert_eq!(h.len(), checked_cast::<usize, _>(spec.buckets));
        }
        Optimizer {
            spec,
            histograms,
            tuple_bytes: tuple_bytes as f64,
        }
    }

    /// Cost a specific left-deep order.
    pub fn cost_of_order(&self, order: &[usize]) -> JoinPlan {
        assert!(order.len() >= 2);
        let mut acc = self.histograms[order[0]].clone();
        let mut acc_size: f64 = acc.iter().sum();
        let mut cost = 0.0;
        let mut sizes = Vec::new();
        for &next in &order[1..] {
            let right = &self.histograms[next];
            let right_size: f64 = right.iter().sum();
            cost += (acc_size + right_size) * self.tuple_bytes;
            acc = join_histogram(&self.spec, &acc, right);
            acc_size = acc.iter().sum();
            sizes.push(acc_size);
        }
        JoinPlan {
            order: order.to_vec(),
            est_cost_bytes: cost,
            est_intermediate_sizes: sizes,
        }
    }

    /// Exhaustively enumerate left-deep orders of `query` and return the
    /// cheapest plan.
    pub fn optimize(&self, query: &JoinQuery) -> JoinPlan {
        let mut best: Option<JoinPlan> = None;
        permute(&query.relations, &mut |order| {
            let plan = self.cost_of_order(order);
            if best
                .as_ref()
                .is_none_or(|b| plan.est_cost_bytes < b.est_cost_bytes)
            {
                best = Some(plan);
            }
        });
        // dhs-lint: allow(panic_hygiene) — invariant: at least one order is always scored.
        best.expect("at least one order")
    }

    /// The most expensive order — the adversarial baseline.
    pub fn pessimize(&self, query: &JoinQuery) -> JoinPlan {
        let mut worst: Option<JoinPlan> = None;
        permute(&query.relations, &mut |order| {
            let plan = self.cost_of_order(order);
            if worst
                .as_ref()
                .is_none_or(|w| plan.est_cost_bytes > w.est_cost_bytes)
            {
                worst = Some(plan);
            }
        });
        // dhs-lint: allow(panic_hygiene) — invariant: at least one order is always scored.
        worst.expect("at least one order")
    }
}

/// Heap's algorithm, calling `visit` with each permutation.
fn permute(items: &[usize], visit: &mut impl FnMut(&[usize])) {
    let mut v = items.to_vec();
    let n = v.len();
    let mut c = vec![0usize; n];
    visit(&v);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                v.swap(0, i);
            } else {
                v.swap(c[i], i);
            }
            visit(&v);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BucketSpec {
        BucketSpec::new(0, 99, 10, 0)
    }

    /// Three relations: tiny selective A, huge B, huge C. Joining A first
    /// shrinks intermediates; the optimizer must discover that.
    fn catalog() -> Optimizer {
        let mut a = vec![0.0; 10];
        a[0] = 100.0; // 100 tuples, all in bucket 0
        let b = vec![10_000.0; 10]; // 100k tuples, uniform
        let c = vec![10_000.0; 10];
        Optimizer::new(spec(), vec![a, b, c], 1024)
    }

    #[test]
    fn optimizer_picks_selective_relation_first() {
        let opt = catalog();
        let plan = opt.optimize(&JoinQuery::chain(vec![0, 1, 2]));
        // The small relation (index 0) must be in the first join.
        assert!(
            plan.order[0] == 0 || plan.order[1] == 0,
            "order {:?}",
            plan.order
        );
        let worst = opt.pessimize(&JoinQuery::chain(vec![0, 1, 2]));
        assert!(worst.est_cost_bytes > plan.est_cost_bytes);
        // B ⋈ C first produces a 10^8-tuple intermediate: the gap must be
        // dramatic.
        assert!(
            worst.est_cost_bytes / plan.est_cost_bytes > 10.0,
            "best {} vs worst {}",
            plan.est_cost_bytes,
            worst.est_cost_bytes
        );
    }

    #[test]
    fn cost_of_order_accumulates_inputs() {
        let opt = catalog();
        let plan = opt.cost_of_order(&[0, 1]);
        // One join: (100 + 100_000) × 1024 bytes.
        assert!((plan.est_cost_bytes - 100_100.0 * 1024.0).abs() < 1e-6);
        assert_eq!(plan.est_intermediate_sizes.len(), 1);
        // A ⋈ B: bucket 0 only: 100 · 10_000 / 10 = 100_000.
        assert!((plan.est_intermediate_sizes[0] - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn permute_visits_factorial_many() {
        let mut count = 0;
        permute(&[1, 2, 3, 4], &mut |_| count += 1);
        assert_eq!(count, 24);
        let mut seen = std::collections::HashSet::new();
        permute(&[1, 2, 3], &mut |p| {
            seen.insert(p.to_vec());
        });
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn two_relation_join_order_is_symmetric_in_cost() {
        let opt = catalog();
        let ab = opt.cost_of_order(&[0, 1]);
        let ba = opt.cost_of_order(&[1, 0]);
        assert!((ab.est_cost_bytes - ba.est_cost_bytes).abs() < 1e-9);
    }
}

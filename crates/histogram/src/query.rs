//! Single-attribute equi-join queries and result-size estimation.
//!
//! The paper's relations have one integer attribute; the natural multi-
//! way join is the chain `R₁ ⋈ R₂ ⋈ … ⋈ Rₙ` on that attribute. Under the
//! uniform-within-bucket model, the join of two histograms over the same
//! partitioning is, per bucket `b` of width `w`,
//!
//! ```text
//! |A ⋈ B|_b ≈ a_b · b_b / w
//! ```
//!
//! (each of the `w` candidate values matches `a_b/w` tuples of A with
//! `b_b/w` of B, summed over `w` values) — which also yields the join's
//! own histogram, so chains can be estimated by folding.

use crate::buckets::BucketSpec;
use dhs_core::checked_cast;

/// A chain equi-join over relations identified by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinQuery {
    /// Indices (into the caller's relation catalog) of the joined
    /// relations; the join predicate is attribute equality across all.
    pub relations: Vec<usize>,
}

impl JoinQuery {
    /// A chain join over `relations`.
    pub fn chain(relations: Vec<usize>) -> Self {
        assert!(relations.len() >= 2, "a join needs ≥ 2 relations");
        JoinQuery { relations }
    }
}

/// Per-bucket histogram of `A ⋈ B` under the uniform-within-bucket model.
pub fn join_histogram(spec: &BucketSpec, a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), checked_cast::<usize, _>(spec.buckets));
    assert_eq!(b.len(), checked_cast::<usize, _>(spec.buckets));
    (0..checked_cast::<usize, _>(spec.buckets))
        .map(|i| {
            let (lo, hi) = spec.range_of(checked_cast(i));
            let w = f64::from(hi - lo);
            a[i] * b[i] / w
        })
        .collect()
}

/// Estimated size of `A ⋈ B`.
pub fn join_size(spec: &BucketSpec, a: &[f64], b: &[f64]) -> f64 {
    join_histogram(spec, a, b).iter().sum()
}

/// Exact size of the equi-join of two per-value frequency vectors.
pub fn exact_join_size(freq_a: &[u64], freq_b: &[u64]) -> u64 {
    assert_eq!(freq_a.len(), freq_b.len());
    freq_a.iter().zip(freq_b).map(|(&x, &y)| x * y).sum()
}

/// Exact per-value frequency vector of an equi-join (for chaining exact
/// computations).
pub fn exact_join_frequencies(freq_a: &[u64], freq_b: &[u64]) -> Vec<u64> {
    assert_eq!(freq_a.len(), freq_b.len());
    freq_a.iter().zip(freq_b).map(|(&x, &y)| x * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_size_uniform_model() {
        let spec = BucketSpec::new(0, 99, 10, 0);
        // 100 tuples of A uniform over bucket 0 (10 values), 50 of B.
        let mut a = vec![0.0; 10];
        let mut b = vec![0.0; 10];
        a[0] = 100.0;
        b[0] = 50.0;
        // Each value: 10 A-tuples × 5 B-tuples = 50; ×10 values = 500.
        assert!((join_size(&spec, &a, &b) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn join_histogram_chains() {
        let spec = BucketSpec::new(0, 9, 2, 0); // two buckets of width 5
        let a = vec![10.0, 20.0];
        let b = vec![5.0, 5.0];
        let ab = join_histogram(&spec, &a, &b);
        assert!((ab[0] - 10.0).abs() < 1e-9);
        assert!((ab[1] - 20.0).abs() < 1e-9);
        let c = vec![5.0, 0.0];
        let abc = join_histogram(&spec, &ab, &c);
        assert!((abc[0] - 10.0).abs() < 1e-9);
        assert_eq!(abc[1], 0.0);
    }

    #[test]
    fn exact_join_matches_brute_force() {
        let fa = vec![3, 0, 2, 1];
        let fb = vec![1, 5, 2, 0];
        assert_eq!(exact_join_size(&fa, &fb), (3 + 4));
        assert_eq!(exact_join_frequencies(&fa, &fb), vec![3, 0, 4, 0]);
    }

    #[test]
    fn estimate_is_exact_for_single_value_buckets() {
        // Bucket width 1 ⇒ the uniform model is exact.
        let spec = BucketSpec::new(0, 3, 4, 0);
        let fa = vec![3u64, 0, 2, 1];
        let fb = vec![1u64, 5, 2, 0];
        let a: Vec<f64> = fa.iter().map(|&x| x as f64).collect();
        let b: Vec<f64> = fb.iter().map(|&x| x as f64).collect();
        assert!((join_size(&spec, &a, &b) - exact_join_size(&fa, &fb) as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "≥ 2 relations")]
    fn degenerate_join_rejected() {
        JoinQuery::chain(vec![0]);
    }
}

//! Histograms over DHS (§4.3).
//!
//! Building: every node records each of its tuples into the DHS metric of
//! the bucket the tuple's attribute value falls in.
//!
//! Reconstructing: one multi-dimensional counting scan recovers *all*
//! bucket cardinalities at the hop cost of a single estimation — the
//! property Table 3 measures.

use rand::Rng;

use dhs_core::{CountStats, Dhs};
use dhs_dht::cost::CostLedger;
use dhs_dht::overlay::Overlay;
use dhs_sketch::ItemHasher;
use dhs_workload::Relation;

use crate::buckets::BucketSpec;

/// A histogram reconstructed from the DHS.
#[derive(Debug, Clone, PartialEq)]
pub struct DhsHistogram {
    /// The partitioning.
    pub spec: BucketSpec,
    /// Estimated tuple count per bucket.
    pub estimates: Vec<f64>,
    /// Cost of the reconstruction scan (shared across all buckets).
    pub stats: CountStats,
}

impl DhsHistogram {
    /// Record `relation`'s tuples into the DHS, one metric per bucket.
    /// Each tuple is inserted from a uniformly random origin node
    /// (mirroring "tuples are randomly assigned to nodes"). Out-of-domain
    /// values are skipped. Returns the number of tuples recorded.
    pub fn build<O: Overlay>(
        dhs: &Dhs,
        ring: &mut O,
        relation: &Relation,
        spec: BucketSpec,
        hasher: &impl ItemHasher,
        rng: &mut impl Rng,
        ledger: &mut CostLedger,
    ) -> usize {
        let mut recorded = 0;
        for tuple in &relation.tuples {
            let Some(bucket) = spec.bucket_of(tuple.value) else {
                continue;
            };
            let metric = spec.metric_of(bucket);
            let origin = dhs_dht::overlay::random_node(ring, rng);
            dhs.insert(ring, metric, hasher.hash_u64(tuple.id), origin, rng, ledger);
            recorded += 1;
        }
        recorded
    }

    /// Reconstruct the histogram with a single multi-metric scan from
    /// node `origin`.
    pub fn reconstruct<O: Overlay>(
        dhs: &Dhs,
        ring: &O,
        spec: BucketSpec,
        origin: u64,
        rng: &mut impl Rng,
        ledger: &mut CostLedger,
    ) -> Self {
        let metrics = spec.metrics();
        let results = dhs.count_multi(ring, &metrics, origin, rng, ledger);
        let stats = results[0].stats;
        DhsHistogram {
            spec,
            estimates: results.into_iter().map(|r| r.estimate).collect(),
            stats,
        }
    }

    /// Estimated total tuples across buckets.
    pub fn total(&self) -> f64 {
        self.estimates.iter().sum()
    }

    /// Mean relative per-cell error against ground truth counts, over the
    /// cells whose true count is non-zero (the paper's "average
    /// estimation error per histogram cell").
    pub fn mean_cell_error(&self, actual: &[u64]) -> f64 {
        assert_eq!(actual.len(), self.estimates.len());
        let mut total = 0.0;
        let mut cells = 0usize;
        for (est, &act) in self.estimates.iter().zip(actual) {
            if act > 0 {
                total += (est - act as f64).abs() / act as f64;
                cells += 1;
            }
        }
        if cells == 0 {
            0.0
        } else {
            total / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactHistogram;
    use dhs_core::{DhsConfig, EstimatorKind};
    use dhs_dht::ring::{Ring, RingConfig};
    use dhs_sketch::SplitMix64;
    use dhs_workload::relation::RelationSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Dhs, Ring, Relation, BucketSpec, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let ring = Ring::build(128, RingConfig::default(), &mut rng);
        let cfg = DhsConfig {
            m: 64,
            estimator: EstimatorKind::SuperLogLog,
            ..DhsConfig::default()
        };
        let dhs = Dhs::new(cfg).unwrap();
        let spec = RelationSpec {
            name: "H",
            paper_tuples: 60_000,
            domain: 1_000,
            theta: 0.7,
        };
        let relation = Relation::generate(&spec, 1.0, 1, &mut rng);
        let buckets = BucketSpec::new(0, 999, 10, 100);
        (dhs, ring, relation, buckets, rng)
    }

    #[test]
    fn build_and_reconstruct_roundtrip() {
        let (dhs, mut ring, relation, spec, mut rng) = setup();
        let hasher = SplitMix64::default();
        let mut ledger = CostLedger::new();
        let recorded = DhsHistogram::build(
            &dhs,
            &mut ring,
            &relation,
            spec,
            &hasher,
            &mut rng,
            &mut ledger,
        );
        assert_eq!(recorded, relation.len());

        let exact = ExactHistogram::build(&relation, spec);
        let origin = ring.alive_ids()[0];
        let mut scan_ledger = CostLedger::new();
        let hist = DhsHistogram::reconstruct(&dhs, &ring, spec, origin, &mut rng, &mut scan_ledger);
        assert_eq!(hist.estimates.len(), 10);

        // The heavy Zipf head bucket must be estimated reasonably; light
        // tail buckets are sparse and noisier. Check the head 3 buckets.
        for b in 0..3 {
            let est = hist.estimates[b];
            let act = exact.counts[b] as f64;
            let err = (est - act).abs() / act;
            assert!(err < 0.6, "bucket {b}: est {est} vs {act}");
        }
        // Total within 50%.
        let terr = (hist.total() - exact.total() as f64).abs() / exact.total() as f64;
        assert!(terr < 0.5, "total err {terr}");
    }

    #[test]
    fn reconstruction_cost_matches_single_count_shape() {
        let (dhs, mut ring, relation, spec, mut rng) = setup();
        let hasher = SplitMix64::default();
        let mut ledger = CostLedger::new();
        DhsHistogram::build(
            &dhs,
            &mut ring,
            &relation,
            spec,
            &hasher,
            &mut rng,
            &mut ledger,
        );
        let origin = ring.alive_ids()[0];

        let mut hist_ledger = CostLedger::new();
        let hist = DhsHistogram::reconstruct(&dhs, &ring, spec, origin, &mut rng, &mut hist_ledger);

        let mut single_ledger = CostLedger::new();
        let single = dhs.count(
            &ring,
            spec.metric_of(0),
            origin,
            &mut rng,
            &mut single_ledger,
        );

        // Hop cost independent of bucket count (within scan-depth noise).
        let ratio = hist.stats.hops as f64 / single.stats.hops.max(1) as f64;
        assert!(ratio < 2.5, "hops ratio {ratio}");
        // Bandwidth scales with buckets instead.
        assert!(hist.stats.bytes > single.stats.bytes);
    }

    #[test]
    fn mean_cell_error_ignores_empty_cells() {
        let spec = BucketSpec::new(0, 99, 4, 0);
        let h = DhsHistogram {
            spec,
            estimates: vec![110.0, 90.0, 5.0, 0.0],
            stats: CountStats::default(),
        };
        let err = h.mean_cell_error(&[100, 100, 0, 0]);
        assert!((err - 0.1).abs() < 1e-12);
    }
}

//! Selectivity estimation from a (possibly estimated) histogram.
//!
//! This is the consumer side of the paper's query-optimization story: a
//! node that has reconstructed a histogram answers "how many tuples
//! satisfy `lo ≤ a < hi`" locally, assuming values are uniform within a
//! bucket — the classic equi-width model of Selinger-style optimizers.

use crate::buckets::BucketSpec;
use dhs_core::checked_cast;

/// A histogram view: a partitioning plus per-bucket (possibly estimated)
/// tuple counts.
#[derive(Debug, Clone, Copy)]
pub struct Selectivity<'a> {
    spec: BucketSpec,
    counts: &'a [f64],
}

impl<'a> Selectivity<'a> {
    /// Wrap a histogram. `counts.len()` must equal the bucket count.
    pub fn new(spec: BucketSpec, counts: &'a [f64]) -> Self {
        assert_eq!(counts.len(), checked_cast::<usize, _>(spec.buckets));
        Selectivity { spec, counts }
    }

    /// Estimated tuples with `lo ≤ value < hi` (uniform-within-bucket
    /// interpolation for partially covered buckets).
    pub fn range(&self, lo: u32, hi: u32) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let mut total = 0.0;
        for b in 0..self.spec.buckets {
            let (blo, bhi) = self.spec.range_of(b);
            let overlap_lo = lo.max(blo);
            let overlap_hi = hi.min(bhi);
            if overlap_hi > overlap_lo {
                let frac = f64::from(overlap_hi - overlap_lo) / f64::from(bhi - blo);
                total += self.counts[checked_cast::<usize, _>(b)] * frac;
            }
        }
        total
    }

    /// Estimated tuples with `value == v` (bucket count / bucket width).
    pub fn equal(&self, v: u32) -> f64 {
        match self.spec.bucket_of(v) {
            None => 0.0,
            Some(b) => {
                let (lo, hi) = self.spec.range_of(b);
                self.counts[checked_cast::<usize, _>(b)] / f64::from(hi - lo)
            }
        }
    }

    /// Estimated total tuples.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Estimated fraction of tuples with `lo ≤ value < hi`.
    pub fn fraction(&self, lo: u32, hi: u32) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.range(lo, hi) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(counts: &[f64]) -> Selectivity<'_> {
        // Domain [0, 99], 10 buckets of width 10.
        Selectivity::new(BucketSpec::new(0, 99, 10, 0), counts)
    }

    #[test]
    fn full_range_is_total() {
        let counts = [10.0, 20.0, 30.0, 0.0, 0.0, 5.0, 5.0, 10.0, 10.0, 10.0];
        let s = view(&counts);
        assert!((s.range(0, 100) - 100.0).abs() < 1e-9);
        assert!((s.total() - 100.0).abs() < 1e-9);
        assert!((s.fraction(0, 100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn whole_bucket_range() {
        let counts = [10.0; 10];
        let s = view(&counts);
        assert!((s.range(10, 20) - 10.0).abs() < 1e-9);
        assert!((s.range(10, 30) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn partial_bucket_interpolates() {
        let counts = [10.0; 10];
        let s = view(&counts);
        // Half of bucket 0.
        assert!((s.range(0, 5) - 5.0).abs() < 1e-9);
        // 3/10 of bucket 1 plus 2/10 of bucket 2.
        assert!((s.range(17, 22) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn equality_divides_by_width() {
        let counts = [10.0, 50.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let s = view(&counts);
        assert!((s.equal(0) - 1.0).abs() < 1e-9);
        assert!((s.equal(15) - 5.0).abs() < 1e-9);
        assert_eq!(s.equal(200), 0.0);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let counts = [10.0; 10];
        let s = view(&counts);
        assert_eq!(s.range(50, 50), 0.0);
        assert_eq!(s.range(60, 50), 0.0);
    }

    #[test]
    fn range_clamps_outside_domain() {
        let counts = [10.0; 10];
        let s = view(&counts);
        // [90, 1000) covers only bucket 9.
        assert!((s.range(90, 1000) - 10.0).abs() < 1e-9);
    }
}

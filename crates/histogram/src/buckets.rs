//! Equi-width domain partitioning (§4.3).
//!
//! "We create a partitioning of the domain `D : [a_min, a_max]` of values
//! of attribute `a` into `I` equally-sized intervals/buckets `B_i` […]
//! We then create a metric_id for each bucket."

use dhs_core::checked_cast;
use dhs_core::MetricId;

/// An equi-width partitioning of an integer attribute domain, plus the
/// base metric id its buckets map to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketSpec {
    /// Smallest attribute value (inclusive).
    pub min: u32,
    /// Largest attribute value (inclusive).
    pub max: u32,
    /// Number of buckets (`I`).
    pub buckets: u32,
    /// Metric id of bucket 0; bucket `i` uses `metric_base + i`.
    pub metric_base: MetricId,
}

impl BucketSpec {
    /// Build a spec; `min ≤ max`, `buckets ≥ 1`, and buckets may not
    /// outnumber domain values.
    pub fn new(min: u32, max: u32, buckets: u32, metric_base: MetricId) -> Self {
        assert!(min <= max, "empty domain");
        assert!(buckets >= 1);
        let domain = u64::from(max) - u64::from(min) + 1;
        assert!(
            u64::from(buckets) <= domain,
            "more buckets than domain values"
        );
        BucketSpec {
            min,
            max,
            buckets,
            metric_base,
        }
    }

    /// Width of each bucket: `⌈(a_max − a_min + 1) / I⌉` (the last bucket
    /// may be narrower when the domain does not divide evenly).
    pub fn width(&self) -> u64 {
        let domain = u64::from(self.max) - u64::from(self.min) + 1;
        domain.div_ceil(u64::from(self.buckets))
    }

    /// The bucket index of `value`, or `None` if outside the domain.
    pub fn bucket_of(&self, value: u32) -> Option<u32> {
        if value < self.min || value > self.max {
            return None;
        }
        let idx = (u64::from(value) - u64::from(self.min)) / self.width();
        Some(checked_cast::<u32, _>(idx).min(self.buckets - 1))
    }

    /// The half-open value range `[lo, hi)` of bucket `i` (clamped to the
    /// domain's end for the last bucket).
    pub fn range_of(&self, bucket: u32) -> (u32, u32) {
        assert!(bucket < self.buckets);
        let w = self.width();
        let lo = u64::from(self.min) + u64::from(bucket) * w;
        let hi = (lo + w).min(u64::from(self.max) + 1);
        // `checked_cast` here is load-bearing: with `max == u32::MAX`
        // the half-open end would silently wrap to 0 under `as`.
        (checked_cast(lo), checked_cast(hi))
    }

    /// The metric id of bucket `i`.
    pub fn metric_of(&self, bucket: u32) -> MetricId {
        assert!(bucket < self.buckets);
        self.metric_base + bucket
    }

    /// All bucket metric ids, in bucket order.
    pub fn metrics(&self) -> Vec<MetricId> {
        (0..self.buckets).map(|b| self.metric_of(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition() {
        let s = BucketSpec::new(0, 99, 10, 1000);
        assert_eq!(s.width(), 10);
        assert_eq!(s.bucket_of(0), Some(0));
        assert_eq!(s.bucket_of(9), Some(0));
        assert_eq!(s.bucket_of(10), Some(1));
        assert_eq!(s.bucket_of(99), Some(9));
        assert_eq!(s.range_of(0), (0, 10));
        assert_eq!(s.range_of(9), (90, 100));
    }

    #[test]
    fn uneven_partition_clamps_last_bucket() {
        let s = BucketSpec::new(0, 102, 10, 0); // 103 values, width 11
        assert_eq!(s.width(), 11);
        assert_eq!(s.bucket_of(102), Some(9));
        let (lo, hi) = s.range_of(9);
        assert_eq!((lo, hi), (99, 103));
    }

    #[test]
    fn out_of_domain_is_none() {
        let s = BucketSpec::new(10, 19, 2, 0);
        assert_eq!(s.bucket_of(9), None);
        assert_eq!(s.bucket_of(20), None);
        assert_eq!(s.bucket_of(10), Some(0));
        assert_eq!(s.bucket_of(19), Some(1));
    }

    #[test]
    fn ranges_tile_the_domain() {
        let s = BucketSpec::new(5, 104, 7, 0);
        let mut expected_lo = 5u32;
        for b in 0..7 {
            let (lo, hi) = s.range_of(b);
            assert_eq!(lo, expected_lo, "bucket {b}");
            assert!(hi > lo);
            expected_lo = hi;
        }
        assert_eq!(expected_lo, 105);
        // Every value maps into the bucket whose range contains it.
        for v in 5..=104u32 {
            let b = s.bucket_of(v).unwrap();
            let (lo, hi) = s.range_of(b);
            assert!((lo..hi).contains(&v), "value {v} bucket {b}");
        }
    }

    #[test]
    fn metric_ids_are_contiguous() {
        let s = BucketSpec::new(0, 99, 4, 500);
        assert_eq!(s.metrics(), vec![500, 501, 502, 503]);
        assert_eq!(s.metric_of(3), 503);
    }

    #[test]
    #[should_panic(expected = "more buckets than domain values")]
    fn too_many_buckets_panics() {
        BucketSpec::new(0, 3, 10, 0);
    }
}

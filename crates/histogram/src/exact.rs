//! Ground-truth histograms, computed locally from the raw tuples.

use dhs_core::checked_cast;
use dhs_workload::Relation;

use crate::buckets::BucketSpec;

/// An exact per-bucket tuple-count histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactHistogram {
    /// The partitioning this histogram is over.
    pub spec: BucketSpec,
    /// Exact tuple counts per bucket.
    pub counts: Vec<u64>,
}

impl ExactHistogram {
    /// Compute the exact histogram of `relation` under `spec`. Tuples
    /// with out-of-domain values are ignored.
    pub fn build(relation: &Relation, spec: BucketSpec) -> Self {
        let mut counts = vec![0u64; checked_cast::<usize, _>(spec.buckets)];
        for tuple in &relation.tuples {
            if let Some(b) = spec.bucket_of(tuple.value) {
                counts[checked_cast::<usize, _>(b)] += 1;
            }
        }
        ExactHistogram { spec, counts }
    }

    /// Total tuples across buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket counts as `f64` (for comparing against estimates).
    pub fn as_f64(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhs_workload::relation::{Relation, RelationSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relation() -> Relation {
        let spec = RelationSpec {
            name: "X",
            paper_tuples: 10_000,
            domain: 1_000,
            theta: 0.7,
        };
        let mut rng = StdRng::seed_from_u64(1);
        Relation::generate(&spec, 1.0, 1, &mut rng)
    }

    #[test]
    fn exact_histogram_sums_to_relation_size() {
        let rel = relation();
        let spec = BucketSpec::new(0, 999, 10, 0);
        let h = ExactHistogram::build(&rel, spec);
        assert_eq!(h.total(), rel.len() as u64);
        assert_eq!(h.counts.len(), 10);
    }

    #[test]
    fn exact_histogram_matches_count_in_range() {
        let rel = relation();
        let spec = BucketSpec::new(0, 999, 10, 0);
        let h = ExactHistogram::build(&rel, spec);
        for b in 0..10u32 {
            let (lo, hi) = spec.range_of(b);
            assert_eq!(h.counts[b as usize], rel.count_in_range(lo, hi));
        }
    }

    #[test]
    fn zipf_head_bucket_dominates() {
        let rel = relation();
        let spec = BucketSpec::new(0, 999, 10, 0);
        let h = ExactHistogram::build(&rel, spec);
        let max = *h.counts.iter().max().unwrap();
        assert_eq!(h.counts[0], max, "Zipf head in bucket 0");
        assert!(h.counts[0] > 3 * h.counts[9]);
    }
}

//! # dhs-histogram — histograms over DHS and query optimization (§4.3, §5)
//!
//! The paper's flagship application: build equi-width histograms over
//! relations stored in a P2P overlay by dedicating one DHS *metric* to
//! each bucket, then reconstruct the whole histogram with a single
//! multi-dimensional counting scan — the same hop cost as estimating one
//! cardinality, independent of the number of buckets, bitmaps and tuples.
//!
//! Modules:
//!
//! * [`buckets`] — equi-width domain partitioning and bucket↔metric ids.
//! * [`dhs_histogram`] — build (insert every tuple into its bucket's
//!   metric) and reconstruct (one `count_multi` scan) over a DHS.
//! * [`exact`] — ground-truth histograms computed locally.
//! * [`selectivity`] — range/equality selectivity estimation from any
//!   histogram (exact or reconstructed).
//! * [`query`] — single-attribute equi-join queries and their result-size
//!   estimation from histograms.
//! * [`optimizer`] — a Selinger-style join-order optimizer over a
//!   shipped-bytes cost model, reproducing the paper's §5 "Histograms and
//!   Query Processing" case study (PIER/FREddies setting).
//! * [`advanced`] — v-optimal, maxdiff and compressed histograms derived
//!   locally from a reconstructed equi-width histogram (the paper's
//!   footnote-5 future work).
//! * [`executor`] — a distributed hash-join *executor* that grounds the
//!   optimizer's cost model: tuples are actually routed and joined on
//!   the simulated overlay, and shipped bytes are ledger-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advanced;
pub mod buckets;
pub mod dhs_histogram;
pub mod exact;
pub mod executor;
pub mod optimizer;
pub mod query;
pub mod selectivity;

pub use advanced::VariableHistogram;
pub use buckets::BucketSpec;
pub use dhs_histogram::DhsHistogram;
pub use exact::ExactHistogram;
pub use optimizer::{JoinPlan, Optimizer};
pub use query::JoinQuery;

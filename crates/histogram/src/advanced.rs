//! Advanced histogram types — the paper's declared future work.
//!
//! Footnote 5 of §4.3: *"We are currently investigating methods to
//! construct other, more complicated types of histograms (e.g.
//! compressed, v-optimal, maxdiff, etc.)."* This module implements that
//! program on top of DHS: reconstruct a fine-grained equi-width histogram
//! with one scan (cheap — §4.2), then derive the sophisticated bucketing
//! *locally* from the reconstructed cell counts:
//!
//! * [`v_optimal`] — the classic dynamic program minimizing the total
//!   within-bucket variance (sum of squared errors against each bucket's
//!   mean), the gold standard for selectivity estimation.
//! * [`maxdiff`] — boundaries at the largest adjacent-cell differences;
//!   near-v-optimal quality at `O(cells log cells)` cost.
//! * [`compressed`] — the highest-frequency cells get singleton buckets,
//!   the remainder an equi-width partitioning; robust under heavy skew.
//!
//! All three return a [`VariableHistogram`] over the source cells'
//! domain, usable for selectivity estimation via
//! [`VariableHistogram::range`].

use crate::buckets::BucketSpec;
use dhs_core::checked_cast;

/// A variable-width histogram: `boundaries[i]..boundaries[i+1]` (in
/// attribute-value space) holds `counts[i]` tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableHistogram {
    /// Bucket boundaries, strictly increasing; `len() == counts.len()+1`.
    pub boundaries: Vec<u32>,
    /// Per-bucket tuple counts (estimated).
    pub counts: Vec<f64>,
}

impl VariableHistogram {
    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Estimated tuples with `lo ≤ value < hi` (uniform within buckets).
    pub fn range(&self, lo: u32, hi: u32) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..self.counts.len() {
            let blo = self.boundaries[i];
            let bhi = self.boundaries[i + 1];
            let olo = lo.max(blo);
            let ohi = hi.min(bhi);
            if ohi > olo {
                total += self.counts[i] * f64::from(ohi - olo) / f64::from(bhi - blo);
            }
        }
        total
    }

    /// Total estimated tuples.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Sum of squared errors of this bucketing against the source cells
    /// it was built from (the v-optimal objective).
    pub fn sse_against_cells(&self, spec: &BucketSpec, cells: &[f64]) -> f64 {
        let mut sse = 0.0;
        for b in 0..spec.buckets {
            let (lo, hi) = spec.range_of(b);
            let approx = self.range(lo, hi);
            let actual = cells[checked_cast::<usize, _>(b)];
            sse += (approx - actual).powi(2);
        }
        sse
    }
}

/// Validate inputs and return the cell boundaries of the source spec.
fn cell_edges(spec: &BucketSpec, cells: &[f64], target: usize) -> Vec<u32> {
    assert_eq!(
        cells.len(),
        checked_cast::<usize, _>(spec.buckets),
        "cells must match spec"
    );
    assert!(target >= 1, "need at least one target bucket");
    assert!(
        target <= cells.len(),
        "cannot have more buckets than source cells"
    );
    let mut edges = Vec::with_capacity(cells.len() + 1);
    for b in 0..spec.buckets {
        edges.push(spec.range_of(b).0);
    }
    edges.push(spec.range_of(spec.buckets - 1).1);
    edges
}

/// Build a histogram from chosen cell-boundary indices (sorted, including
/// 0 and cells.len()).
fn from_cut_indices(edges: &[u32], cells: &[f64], cuts: &[usize]) -> VariableHistogram {
    let mut boundaries = Vec::with_capacity(cuts.len());
    let mut counts = Vec::with_capacity(cuts.len() - 1);
    for window in cuts.windows(2) {
        let (start, end) = (window[0], window[1]);
        boundaries.push(edges[start]);
        counts.push(cells[start..end].iter().sum());
    }
    // dhs-lint: allow(panic_hygiene) — invariant: cuts is seeded non-empty before the loop.
    boundaries.push(edges[*cuts.last().expect("non-empty cuts")]);
    VariableHistogram { boundaries, counts }
}

/// V-optimal bucketing of `cells` into `target` buckets: the dynamic
/// program of Jagadish et al., minimizing the total within-bucket SSE
/// `Σ_b Σ_{i∈b} (cells[i] − mean_b)²`. `O(cells² · target)`.
pub fn v_optimal(spec: &BucketSpec, cells: &[f64], target: usize) -> VariableHistogram {
    let edges = cell_edges(spec, cells, target);
    let n = cells.len();
    // Prefix sums for O(1) segment SSE.
    let mut sum = vec![0.0f64; n + 1];
    let mut sq = vec![0.0f64; n + 1];
    for (i, &c) in cells.iter().enumerate() {
        sum[i + 1] = sum[i] + c;
        sq[i + 1] = sq[i] + c * c;
    }
    let seg_sse = |a: usize, b: usize| -> f64 {
        // SSE of cells[a..b] against their mean.
        let len = (b - a) as f64;
        let s = sum[b] - sum[a];
        (sq[b] - sq[a]) - s * s / len
    };
    // dp[j][i] = min SSE of cells[0..i] with j buckets; cut[j][i] = argmin.
    let mut dp = vec![vec![f64::INFINITY; n + 1]; target + 1];
    let mut cut = vec![vec![0usize; n + 1]; target + 1];
    dp[0][0] = 0.0;
    for j in 1..=target {
        for i in j..=n {
            for p in (j - 1)..i {
                let cand = dp[j - 1][p] + seg_sse(p, i);
                if cand < dp[j][i] {
                    dp[j][i] = cand;
                    cut[j][i] = p;
                }
            }
        }
    }
    // Recover the cuts.
    let mut cuts = vec![n];
    let mut i = n;
    for j in (1..=target).rev() {
        i = cut[j][i];
        cuts.push(i);
    }
    cuts.reverse();
    debug_assert_eq!(cuts[0], 0);
    from_cut_indices(&edges, cells, &cuts)
}

/// MaxDiff bucketing: place the `target − 1` boundaries at the largest
/// absolute differences between adjacent cells.
pub fn maxdiff(spec: &BucketSpec, cells: &[f64], target: usize) -> VariableHistogram {
    let edges = cell_edges(spec, cells, target);
    let n = cells.len();
    let mut diffs: Vec<(f64, usize)> = (1..n)
        .map(|i| ((cells[i] - cells[i - 1]).abs(), i))
        .collect();
    diffs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut cuts: Vec<usize> = diffs.iter().take(target - 1).map(|&(_, i)| i).collect();
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    from_cut_indices(&edges, cells, &cuts)
}

/// Equi-depth bucketing: boundaries chosen so each bucket holds roughly
/// the same tuple mass (the classic quantile histogram). Boundaries land
/// on source-cell edges, so deep-skew head cells may exceed the ideal
/// share when a single cell outweighs `total/target`.
pub fn equi_depth(spec: &BucketSpec, cells: &[f64], target: usize) -> VariableHistogram {
    let edges = cell_edges(spec, cells, target);
    let n = cells.len();
    let total: f64 = cells.iter().sum();
    let share = total / target as f64;
    let mut cuts = vec![0usize];
    let mut acc = 0.0;
    let mut next_quota = share;
    for (i, &c) in cells.iter().enumerate() {
        acc += c;
        // Close a bucket when the running mass passes its quota, saving
        // enough cells for the remaining buckets.
        let buckets_left = target - (cuts.len() - 1);
        let cells_left = n - (i + 1);
        if acc >= next_quota && cuts.len() < target && cells_left >= buckets_left - 1 {
            cuts.push(i + 1);
            next_quota = acc + (total - acc) / (target - (cuts.len() - 1)) as f64;
        }
    }
    // Pad out any unclosed buckets (can happen when mass concentrates at
    // the end) and close the last one.
    while cuts.len() < target {
        // dhs-lint: allow(panic_hygiene) — invariant: cuts is seeded non-empty before the loop.
        let last = *cuts.last().expect("non-empty");
        cuts.push((last + 1).min(n - (target - cuts.len())));
    }
    cuts.push(n);
    cuts.dedup();
    from_cut_indices(&edges, cells, &cuts)
}

/// Compressed bucketing: the `singletons` highest cells get their own
/// bucket each; the rest are grouped equi-width into the remaining
/// buckets. `target` counts both kinds.
pub fn compressed(
    spec: &BucketSpec,
    cells: &[f64],
    target: usize,
    singletons: usize,
) -> VariableHistogram {
    assert!(singletons < target, "need at least one group bucket");
    let edges = cell_edges(spec, cells, target);
    let n = cells.len();
    // Indices of the top `singletons` cells.
    let mut by_count: Vec<usize> = (0..n).collect();
    by_count.sort_by(|&a, &b| cells[b].total_cmp(&cells[a]).then(a.cmp(&b)));
    let mut cuts: Vec<usize> = Vec::new();
    for &i in by_count.iter().take(singletons) {
        cuts.push(i);
        cuts.push(i + 1);
    }
    // Equi-width cuts for the remaining budget.
    let groups = target - singletons;
    for g in 0..=groups {
        cuts.push(g * n / groups);
    }
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    from_cut_indices(&edges, cells, &cuts)
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test data has known ranges
mod tests {
    use super::*;

    fn spec(cells: usize) -> BucketSpec {
        BucketSpec::new(0, (cells * 10 - 1) as u32, cells as u32, 0)
    }

    /// A skewed cell sequence: a huge head, a bump, and a flat tail.
    fn skewed_cells() -> Vec<f64> {
        let mut v = vec![5.0f64; 20];
        v[0] = 1000.0;
        v[1] = 400.0;
        v[10] = 200.0;
        v
    }

    #[test]
    fn v_optimal_exactly_fits_when_buckets_equal_cells() {
        let cells = skewed_cells();
        let s = spec(cells.len());
        let h = v_optimal(&s, &cells, cells.len());
        assert_eq!(h.buckets(), cells.len());
        assert!(h.sse_against_cells(&s, &cells) < 1e-9);
    }

    #[test]
    fn v_optimal_beats_maxdiff_beats_uniform() {
        let cells = skewed_cells();
        let s = spec(cells.len());
        let target = 5;
        let vo = v_optimal(&s, &cells, target);
        let md = maxdiff(&s, &cells, target);
        // Uniform coarsening: cuts every 4 cells.
        let edges = cell_edges(&s, &cells, target);
        let uniform = from_cut_indices(&edges, &cells, &[0, 4, 8, 12, 16, 20]);
        let sse_vo = vo.sse_against_cells(&s, &cells);
        let sse_md = md.sse_against_cells(&s, &cells);
        let sse_u = uniform.sse_against_cells(&s, &cells);
        assert!(
            sse_vo <= sse_md + 1e-9,
            "v-optimal {sse_vo} vs maxdiff {sse_md}"
        );
        assert!(
            sse_md <= sse_u + 1e-9,
            "maxdiff {sse_md} vs uniform {sse_u}"
        );
        assert!(sse_vo < sse_u * 0.5, "v-optimal should clearly win");
    }

    #[test]
    fn all_variants_conserve_total() {
        let cells = skewed_cells();
        let s = spec(cells.len());
        let total: f64 = cells.iter().sum();
        for h in [
            v_optimal(&s, &cells, 4),
            maxdiff(&s, &cells, 4),
            compressed(&s, &cells, 6, 2),
        ] {
            assert!((h.total() - total).abs() < 1e-9);
            // Boundaries strictly increasing, covering the domain.
            assert_eq!(h.boundaries[0], 0);
            assert_eq!(*h.boundaries.last().unwrap(), 200);
            assert!(h.boundaries.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn equi_depth_balances_mass() {
        // Uniform cells: equi-depth == equi-width.
        let cells = vec![10.0; 20];
        let s = spec(20);
        let h = equi_depth(&s, &cells, 4);
        assert_eq!(h.buckets(), 4);
        for &c in &h.counts {
            assert!((c - 50.0).abs() < 1e-9, "counts {:?}", h.counts);
        }
        // Skewed cells: every bucket holds ≥ one cell, total conserved,
        // and no bucket is grossly starved (the head cell may overflow
        // its share — that is inherent to cell-aligned boundaries).
        let cells = skewed_cells();
        let h = equi_depth(&s, &cells, 4);
        let total: f64 = cells.iter().sum();
        assert!((h.total() - total).abs() < 1e-9);
        assert_eq!(h.buckets(), 4);
        let min = h.counts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.0, "no empty equi-depth bucket: {:?}", h.counts);
    }

    #[test]
    fn equi_depth_boundaries_are_valid() {
        let cells = skewed_cells();
        let s = spec(cells.len());
        for target in [1usize, 2, 5, 10, 20] {
            let h = equi_depth(&s, &cells, target);
            assert_eq!(h.buckets(), target, "target {target}");
            assert!(h.boundaries.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(h.boundaries[0], 0);
            assert_eq!(*h.boundaries.last().unwrap(), 200);
        }
    }

    #[test]
    fn compressed_isolates_heavy_cells() {
        let cells = skewed_cells();
        let s = spec(cells.len());
        let h = compressed(&s, &cells, 6, 2);
        // The two heaviest cells (0 and 1) must each be alone in a bucket.
        let head = h.range(0, 10);
        assert!((head - 1000.0).abs() < 1e-9, "cell 0 isolated: {head}");
        let second = h.range(10, 20);
        assert!((second - 400.0).abs() < 1e-9, "cell 1 isolated: {second}");
    }

    #[test]
    fn range_estimates_match_within_buckets() {
        let cells = skewed_cells();
        let s = spec(cells.len());
        let h = v_optimal(&s, &cells, 8);
        // Full-domain range equals the total.
        assert!((h.range(0, 200) - h.total()).abs() < 1e-9);
        // Half a uniform bucket interpolates to half its count.
        let uniform_part = h.range(150, 155);
        let full = h.range(150, 160);
        assert!((uniform_part - full / 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_bucket_degenerate() {
        let cells = skewed_cells();
        let s = spec(cells.len());
        let h = v_optimal(&s, &cells, 1);
        assert_eq!(h.buckets(), 1);
        assert!((h.total() - cells.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "more buckets than source cells")]
    fn too_many_target_buckets_panics() {
        let cells = vec![1.0; 4];
        let s = spec(4);
        v_optimal(&s, &cells, 5);
    }
}

//! A distributed hash-join executor.
//!
//! The optimizer (and the paper's §5 argument) rests on a cost model:
//! executing `A ⋈ B` on a DHT rehashes both inputs by join value. This
//! module *executes* that plan on the simulated overlay — every tuple is
//! actually routed to `successor(hash(value))`, owners build hash tables
//! and emit result tuples — so the model's "shipped bytes" can be
//! validated against a ledger-measured execution, and result sizes
//! against the exact frequency algebra.

use std::collections::HashMap;

use rand::Rng;

use dhs_core::checked_cast;
use dhs_dht::cost::CostLedger;
use dhs_dht::ring::Ring;
use dhs_sketch::{ItemHasher, SplitMix64};
use dhs_workload::relation::{Relation, Tuple};

/// A relation physically partitioned over the overlay's nodes.
#[derive(Debug, Clone, Default)]
pub struct DistributedRelation {
    /// Node → locally stored tuples.
    pub partitions: HashMap<u64, Vec<Tuple>>,
}

impl DistributedRelation {
    /// Spread `rel`'s tuples uniformly over the alive nodes.
    pub fn scatter(rel: &Relation, ring: &Ring, rng: &mut impl Rng) -> Self {
        let mut partitions: HashMap<u64, Vec<Tuple>> = HashMap::new();
        for &t in &rel.tuples {
            partitions
                .entry(ring.random_alive(rng))
                .or_default()
                .push(t);
        }
        DistributedRelation { partitions }
    }

    /// Total tuples across nodes.
    pub fn len(&self) -> usize {
        self.partitions.values().map(Vec::len).sum()
    }

    /// True when no node holds any tuple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact per-value frequency vector (for verification).
    pub fn value_frequencies(&self, domain: usize) -> Vec<u64> {
        let mut freq = vec![0u64; domain];
        for tuples in self.partitions.values() {
            for t in tuples {
                freq[checked_cast::<usize, _>(t.value)] += 1;
            }
        }
        freq
    }
}

/// Execute one distributed hash join: rehash both inputs by join value,
/// join at the hash owners, and leave the result partitioned by value
/// owner. Ships `tuple_bytes` per tuple per routing hop into `ledger`.
///
/// Result tuple ids are synthesized from the joined pair's ids.
pub fn hash_join(
    ring: &Ring,
    left: &DistributedRelation,
    right: &DistributedRelation,
    tuple_bytes: u64,
    ledger: &mut CostLedger,
) -> DistributedRelation {
    let hasher = SplitMix64::default();
    // Rehash phase: every node ships its tuples, batched per target owner
    // (one routed message per (source node, owner) pair).
    let ship = |side: &DistributedRelation, ledger: &mut CostLedger| -> HashMap<u64, Vec<Tuple>> {
        let mut at_owner: HashMap<u64, Vec<Tuple>> = HashMap::new();
        for (&source, tuples) in &side.partitions {
            let mut batches: HashMap<u64, Vec<Tuple>> = HashMap::new();
            for &t in tuples {
                let owner = ring.successor(hasher.hash_u64(u64::from(t.value)));
                batches.entry(owner).or_default().push(t);
            }
            for (owner, batch) in batches {
                if owner != source {
                    let hops_before = ledger.hops();
                    ring.route(source, owner, ledger);
                    let hops = ledger.hops() - hops_before;
                    ledger.charge_message(0);
                    ledger.charge_bytes(tuple_bytes * batch.len() as u64 * hops.max(1));
                }
                at_owner.entry(owner).or_default().extend(batch);
            }
        }
        at_owner
    };
    let left_at = ship(left, ledger);
    let right_at = ship(right, ledger);

    // Local join at every owner.
    let mut partitions: HashMap<u64, Vec<Tuple>> = HashMap::new();
    for (owner, left_tuples) in left_at {
        let Some(right_tuples) = right_at.get(&owner) else {
            continue;
        };
        // Build side: right tuples by value.
        let mut by_value: HashMap<u32, Vec<&Tuple>> = HashMap::new();
        for t in right_tuples {
            by_value.entry(t.value).or_default().push(t);
        }
        let out = partitions.entry(owner).or_default();
        for l in &left_tuples {
            if let Some(matches) = by_value.get(&l.value) {
                for r in matches {
                    out.push(Tuple {
                        id: SplitMix64::mix(l.id ^ r.id.rotate_left(32)),
                        value: l.value,
                    });
                }
            }
        }
    }
    DistributedRelation { partitions }
}

/// Execute a left-deep chain join and return the final result plus the
/// shipped bytes (from a private ledger, so callers get the execution
/// cost isolated).
pub fn execute_chain(
    ring: &Ring,
    relations: &[&DistributedRelation],
    tuple_bytes: u64,
) -> (DistributedRelation, u64) {
    assert!(relations.len() >= 2);
    let mut ledger = CostLedger::new();
    let mut acc = relations[0].clone();
    for right in &relations[1..] {
        acc = hash_join(ring, &acc, right, tuple_bytes, &mut ledger);
    }
    (acc, ledger.bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::exact_join_size;
    use dhs_dht::ring::RingConfig;
    use dhs_workload::relation::RelationSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Ring, Relation, Relation, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let ring = Ring::build(64, RingConfig::default(), &mut rng);
        let mk = |name: &'static str, n: u64, theta: f64, tag: u8, rng: &mut StdRng| {
            Relation::generate(
                &RelationSpec {
                    name,
                    paper_tuples: n,
                    domain: 200,
                    theta,
                },
                1.0,
                tag,
                rng,
            )
        };
        let a = mk("A", 3_000, 0.0, 1, &mut rng);
        let b = mk("B", 5_000, 0.9, 2, &mut rng);
        (ring, a, b, rng)
    }

    #[test]
    fn join_size_matches_frequency_algebra() {
        let (ring, a, b, mut rng) = setup();
        let da = DistributedRelation::scatter(&a, &ring, &mut rng);
        let db = DistributedRelation::scatter(&b, &ring, &mut rng);
        let mut ledger = CostLedger::new();
        let joined = hash_join(&ring, &da, &db, 1024, &mut ledger);
        let expected = exact_join_size(&a.value_frequencies(), &b.value_frequencies());
        assert_eq!(joined.len() as u64, expected);
        assert!(ledger.bytes() > 0);
    }

    #[test]
    fn join_result_frequencies_are_products() {
        let (ring, a, b, mut rng) = setup();
        let da = DistributedRelation::scatter(&a, &ring, &mut rng);
        let db = DistributedRelation::scatter(&b, &ring, &mut rng);
        let mut ledger = CostLedger::new();
        let joined = hash_join(&ring, &da, &db, 1024, &mut ledger);
        let fa = a.value_frequencies();
        let fb = b.value_frequencies();
        let fj = joined.value_frequencies(200);
        for v in 0..200 {
            assert_eq!(fj[v], fa[v] * fb[v], "value {v}");
        }
    }

    #[test]
    fn shipped_bytes_close_to_cost_model() {
        // The model says cost ≈ (|L| + |R|) · tuple_bytes · avg_hops; the
        // executed cost (batched, some tuples already local) must be the
        // same order: between 0.5× and 1.5× of model × expected hops.
        let (ring, a, b, mut rng) = setup();
        let da = DistributedRelation::scatter(&a, &ring, &mut rng);
        let db = DistributedRelation::scatter(&b, &ring, &mut rng);
        let mut ledger = CostLedger::new();
        let _ = hash_join(&ring, &da, &db, 1024, &mut ledger);
        let tuples_shipped = (a.len() + b.len()) as f64;
        let avg_hops = 0.5 * (64f64).log2(); // Chord expectation, 64 nodes
        let model = tuples_shipped * 1024.0 * avg_hops;
        let measured = ledger.bytes() as f64;
        let ratio = measured / model;
        assert!(
            (0.5..2.0).contains(&ratio),
            "measured {measured:.0} vs model {model:.0} (ratio {ratio})"
        );
    }

    #[test]
    fn chain_execution_matches_chained_algebra() {
        let (ring, a, b, mut rng) = setup();
        let c = Relation::generate(
            &RelationSpec {
                name: "C",
                paper_tuples: 1_000,
                domain: 200,
                theta: 1.2,
            },
            1.0,
            3,
            &mut rng,
        );
        let da = DistributedRelation::scatter(&a, &ring, &mut rng);
        let db = DistributedRelation::scatter(&b, &ring, &mut rng);
        let dc = DistributedRelation::scatter(&c, &ring, &mut rng);
        let (result, bytes) = execute_chain(&ring, &[&dc, &da, &db], 1024);
        let fab =
            crate::query::exact_join_frequencies(&c.value_frequencies(), &a.value_frequencies());
        let expected: u64 = fab
            .iter()
            .zip(&b.value_frequencies())
            .map(|(&x, &y)| x * y)
            .sum();
        assert_eq!(result.len() as u64, expected);
        assert!(bytes > 0);
    }

    #[test]
    fn empty_side_joins_to_empty() {
        let (ring, a, _, mut rng) = setup();
        let da = DistributedRelation::scatter(&a, &ring, &mut rng);
        let empty = DistributedRelation::default();
        let mut ledger = CostLedger::new();
        let joined = hash_join(&ring, &da, &empty, 1024, &mut ledger);
        assert!(joined.is_empty());
    }
}

#![allow(clippy::cast_possible_truncation)] // test data has known ranges
//! Property-based tests for the histogram crate.

use dhs_histogram::advanced::{maxdiff, v_optimal};
use dhs_histogram::buckets::BucketSpec;
use dhs_histogram::query::{exact_join_size, join_size};
use dhs_histogram::selectivity::Selectivity;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = BucketSpec> {
    (0u32..1000, 1u32..500, 1u32..40).prop_filter_map(
        "buckets must fit the domain",
        |(min, width, buckets)| {
            let max = min + width * buckets - 1;
            if u64::from(buckets) <= u64::from(max) - u64::from(min) + 1 {
                Some(BucketSpec::new(min, max, buckets, 0))
            } else {
                None
            }
        },
    )
}

proptest! {
    /// Every in-domain value belongs to exactly one bucket, and bucket
    /// ranges tile the domain.
    #[test]
    fn buckets_partition_domain(spec in arb_spec(), offset in 0u32..10_000) {
        let value = spec.min + offset % (spec.max - spec.min + 1);
        let b = spec.bucket_of(value).expect("in-domain");
        let (lo, hi) = spec.range_of(b);
        prop_assert!((lo..hi).contains(&value));
        // Tiling.
        let mut expected = spec.min;
        for i in 0..spec.buckets {
            let (lo, hi) = spec.range_of(i);
            prop_assert_eq!(lo, expected);
            prop_assert!(hi > lo);
            expected = hi;
        }
        prop_assert_eq!(expected, spec.max + 1);
    }

    /// Selectivity is additive over adjacent ranges and bounded by the
    /// total.
    #[test]
    fn selectivity_additive(
        counts in prop::collection::vec(0.0f64..1e6, 10),
        a in 0u32..100,
        b in 0u32..100,
        c in 0u32..100,
    ) {
        let spec = BucketSpec::new(0, 99, 10, 0);
        let sel = Selectivity::new(spec, &counts);
        let mut points = [a.min(99), b.min(99), c.min(99)];
        points.sort_unstable();
        let [x, y, z] = points;
        let split = sel.range(x, y) + sel.range(y, z);
        let whole = sel.range(x, z);
        prop_assert!((split - whole).abs() < 1e-6 * (1.0 + whole));
        prop_assert!(whole <= sel.total() + 1e-6);
    }

    /// The join-size model is symmetric and zero when either side is
    /// empty.
    #[test]
    fn join_model_symmetric(
        a in prop::collection::vec(0.0f64..1e5, 8),
        b in prop::collection::vec(0.0f64..1e5, 8),
    ) {
        let spec = BucketSpec::new(0, 79, 8, 0);
        let ab = join_size(&spec, &a, &b);
        let ba = join_size(&spec, &b, &a);
        prop_assert!((ab - ba).abs() < 1e-6 * (1.0 + ab));
        let zero = vec![0.0; 8];
        prop_assert_eq!(join_size(&spec, &a, &zero), 0.0);
    }

    /// The exact join size is an upper-bounded bilinear form.
    #[test]
    fn exact_join_bilinear(
        a in prop::collection::vec(0u64..1000, 6),
        b in prop::collection::vec(0u64..1000, 6),
    ) {
        let size = exact_join_size(&a, &b);
        let max_a = *a.iter().max().unwrap();
        let sum_b: u64 = b.iter().sum();
        prop_assert!(size <= max_a * sum_b);
    }

    /// V-optimal never loses to maxdiff on the SSE objective, for
    /// arbitrary cell sequences; both conserve the total mass.
    #[test]
    fn v_optimal_dominates_maxdiff(
        cells in prop::collection::vec(0.0f64..1e4, 4..30),
        target_frac in 0.2f64..0.9,
    ) {
        let n = cells.len();
        let target = ((n as f64 * target_frac) as usize).clamp(1, n);
        let spec = BucketSpec::new(0, (n * 10 - 1) as u32, n as u32, 0);
        let vo = v_optimal(&spec, &cells, target);
        let md = maxdiff(&spec, &cells, target);
        let total: f64 = cells.iter().sum();
        prop_assert!((vo.total() - total).abs() < 1e-6 * (1.0 + total));
        prop_assert!((md.total() - total).abs() < 1e-6 * (1.0 + total));
        let sse_vo = vo.sse_against_cells(&spec, &cells);
        let sse_md = md.sse_against_cells(&spec, &cells);
        prop_assert!(
            sse_vo <= sse_md + 1e-6 * (1.0 + sse_md),
            "v-optimal {sse_vo} vs maxdiff {sse_md}"
        );
    }

    /// Variable histograms report consistent ranges: the full-domain
    /// range equals the total.
    #[test]
    fn variable_range_consistent(cells in prop::collection::vec(0.0f64..1e4, 4..20)) {
        let n = cells.len();
        let spec = BucketSpec::new(0, (n * 10 - 1) as u32, n as u32, 0);
        let h = v_optimal(&spec, &cells, (n / 2).max(1));
        let full = h.range(0, (n * 10) as u32);
        prop_assert!((full - h.total()).abs() < 1e-6 * (1.0 + h.total()));
        prop_assert_eq!(h.range(50, 50), 0.0);
    }
}

#![allow(clippy::cast_possible_truncation)] // test data has known ranges
//! The crate's honesty invariants, end to end:
//!
//! * **Permutation transparency** — replaying completions in *any*
//!   seeded permutation yields bit-identical estimates, identical RNG
//!   draw counts, and identical metric digests versus the strictly
//!   in-order `DirectTransport` drive.
//! * **Store-order transparency** — a windowed out-of-order store run
//!   leaves the ring, the success flags, and the cost ledger exactly
//!   where the sequential run leaves them.
//! * **Thread-count transparency** — the threaded driver's state and
//!   metric digests are bit-identical at 1, 2, 4, and 8 workers, and
//!   two same-seed runs at `DHS_THREADS` workers agree completely.

use dhs_core::machine::drive_store_in_order;
use dhs_core::tuple::DhsTuple;
use dhs_core::{Dhs, DhsConfig, DirectTransport, EstimatorKind, Observed, StoreMachine};
use dhs_dht::cost::CostLedger;
use dhs_dht::ring::{Ring, RingConfig};
use dhs_obs::Observer;
use dhs_par::{drive_store_ooo, CountingRng, OooEngine, SatConfig};
use dhs_sketch::{ItemHasher, SplitMix64};
use dhs_workload::TenantWorkload;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small populated world: ring, sketch layer, and three metrics with
/// a deterministic insert history.
fn build_world(seed: u64, pcsa: bool) -> (Ring, Dhs, u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_0007);
    let mut ring = Ring::build(32, RingConfig::default(), &mut rng);
    let estimator = if pcsa {
        EstimatorKind::Pcsa
    } else {
        EstimatorKind::SuperLogLog
    };
    let dhs = Dhs::new(DhsConfig {
        m: 16,
        estimator,
        ..DhsConfig::default()
    })
    .expect("valid config");
    let hasher = SplitMix64::default();
    let origin = ring.random_alive(&mut rng);
    let mut ledger = CostLedger::new();
    for metric in 1u32..=3 {
        for item in 0..(40 * metric as u64) {
            let key = hasher.hash_u64(item ^ (u64::from(metric) << 48));
            dhs.insert(&mut ring, metric, key, origin, &mut rng, &mut ledger);
        }
    }
    (ring, dhs, origin)
}

proptest! {
    /// Any seeded completion permutation produces bit-identical
    /// estimates, equal draw counts, and an equal metric digest versus
    /// the sequential in-order baseline.
    #[test]
    fn ooo_scan_matches_in_order(
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
        pcsa in any::<bool>(),
    ) {
        let (ring, dhs, origin) = build_world(seed, pcsa);
        // The queued operations: three single-metric counts plus one
        // multi-metric count, each with its own seeded RNG.
        let ops: Vec<Vec<u32>> = vec![vec![1], vec![2], vec![3], vec![1, 2, 3]];

        // Baseline: strict sequential in-order drive.
        let mut base_transport = Observed::new(DirectTransport, Observer::new(1));
        let mut baseline = Vec::new();
        for (i, metrics) in ops.iter().enumerate() {
            let mut rng = CountingRng::new(StdRng::seed_from_u64(seed ^ i as u64));
            let mut ledger = CostLedger::new();
            let results = dhs.count_multi_via(
                &ring, &mut base_transport, metrics, origin, &mut rng, &mut ledger,
            );
            baseline.push((results, rng.draws()));
        }

        // Out-of-order replay under a seeded permutation.
        let mut ooo_transport = Observed::new(DirectTransport, Observer::new(1));
        let mut engine = OooEngine::new(&dhs);
        for (i, metrics) in ops.iter().enumerate() {
            engine.push_count(metrics, origin, seed ^ i as u64);
        }
        let mut sched = StdRng::seed_from_u64(perm_seed);
        let (outcomes, stats) = engine.run(&ring, &mut ooo_transport, &mut sched);

        prop_assert_eq!(outcomes.len(), baseline.len());
        let mut total_sends = 0u64;
        for ((outcome, (expected, expected_draws)), metrics) in
            outcomes.iter().zip(&baseline).zip(&ops)
        {
            prop_assert_eq!(outcome.results.len(), metrics.len());
            prop_assert_eq!(outcome.draws, *expected_draws);
            for (got, want) in outcome.results.iter().zip(expected) {
                prop_assert_eq!(got.metric, want.metric);
                prop_assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
                prop_assert_eq!(&got.registers, &want.registers);
            }
            total_sends += outcome.results[0].stats.lookups + outcome.results[0].stats.probes;
        }
        prop_assert_eq!(stats.completions, total_sends);
        // Same per-exchange and per-op recordings ⇒ same metric digest.
        prop_assert_eq!(
            ooo_transport.observer().metrics.digest(),
            base_transport.observer().metrics.digest()
        );
    }

    /// A windowed out-of-order store leaves ring state, success flags,
    /// and ledger totals identical to the sequential window-1 drive.
    #[test]
    fn ooo_store_matches_in_order(
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
        window in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_0008);
        let ring = Ring::build(24, RingConfig::default(), &mut rng);
        let cfg = DhsConfig { m: 16, ..DhsConfig::default() };
        let origin = ring.random_alive(&mut rng);
        // A grouped batch spanning several ranks (⇒ several owners).
        let groups: Vec<(u32, Vec<DhsTuple>)> = (0..6u32)
            .map(|i| {
                let rank = cfg.bit_shift + i;
                let tuples = (0..4u16)
                    .map(|v| DhsTuple { metric: 9, vector: v, bit: rank as u8 })
                    .collect();
                (rank, tuples)
            })
            .collect();

        let mut ring_a = ring.clone();
        let mut rng_a = CountingRng::new(StdRng::seed_from_u64(seed));
        let mut machine_a = StoreMachine::new(&cfg, groups.clone(), origin, 1, &ring_a, &mut rng_a);
        let mut ledger_a = CostLedger::new();
        drive_store_in_order(&mut machine_a, &mut ring_a, &mut DirectTransport, &mut ledger_a);

        let mut ring_b = ring.clone();
        let mut rng_b = CountingRng::new(StdRng::seed_from_u64(seed));
        let mut machine_b =
            StoreMachine::new(&cfg, groups, origin, window, &ring_b, &mut rng_b);
        let mut ledger_b = CostLedger::new();
        let mut sched = StdRng::seed_from_u64(perm_seed);
        drive_store_ooo(&mut machine_b, &mut ring_b, &mut DirectTransport, &mut ledger_b, &mut sched);

        prop_assert_eq!(rng_a.draws(), rng_b.draws());
        prop_assert_eq!(machine_a.into_ok(), machine_b.into_ok());
        prop_assert_eq!(ledger_a.bytes(), ledger_b.bytes());
        prop_assert_eq!(ledger_a.hops(), ledger_b.hops());
        prop_assert_eq!(ledger_a.messages(), ledger_b.messages());
        prop_assert_eq!(ledger_a.visits(), ledger_b.visits());

        // The stored tuples are identical: same-seed scans agree bitwise.
        let dhs = Dhs::new(cfg).expect("valid config");
        let mut scan_a = StdRng::seed_from_u64(seed ^ 1);
        let mut scan_b = StdRng::seed_from_u64(seed ^ 1);
        let est_a = dhs.count(&ring_a, 9, origin, &mut scan_a, &mut CostLedger::new());
        let est_b = dhs.count(&ring_b, 9, origin, &mut scan_b, &mut CostLedger::new());
        prop_assert_eq!(est_a.estimate.to_bits(), est_b.estimate.to_bits());
        prop_assert_eq!(est_a.registers, est_b.registers);
    }
}

/// The saturation workload for the threaded-driver tests.
fn small_workload() -> TenantWorkload {
    TenantWorkload {
        tenants: 4,
        metrics_per_tenant: 64,
        theta: 0.99,
        extra_updates: 4_000,
    }
}

#[test]
fn two_runs_at_dhs_threads_are_identical() {
    let threads: usize = std::env::var("DHS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let workload = small_workload();
    let run = || {
        let cfg = SatConfig::new(threads, 0xA11C_E5ED);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        dhs_par::run_saturation(&cfg, &workload, &mut rng).expect("driver runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.metrics_digest(), b.metrics_digest());
    assert_eq!(a.items, b.items);
    assert_eq!(a.keys, b.keys);
    assert_eq!(a.chunks, b.chunks);
    assert_eq!(a.serial_ticks, b.serial_ticks);
    assert_eq!(a.parallel_ticks, b.parallel_ticks);
    for (wa, wb) in a.workers.iter().zip(&b.workers) {
        assert_eq!(wa.items, wb.items);
        assert_eq!(wa.keys, wb.keys);
        assert_eq!(wa.busy_ticks, wb.busy_ticks);
    }
}

#[test]
fn digests_are_invariant_across_thread_counts() {
    let workload = small_workload();
    let run = |threads: usize| {
        let cfg = SatConfig::new(threads, 0xA11C_E5ED);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        dhs_par::run_saturation(&cfg, &workload, &mut rng).expect("driver runs")
    };
    let base = run(1);
    assert_eq!(base.threads, 1);
    // The 1-thread virtual critical path IS the serial path.
    assert!((base.speedup() - 1.0).abs() < f64::EPSILON);
    for threads in [2usize, 4, 8] {
        let report = run(threads);
        assert_eq!(report.state_digest, base.state_digest, "threads={threads}");
        assert_eq!(
            report.metrics_digest(),
            base.metrics_digest(),
            "threads={threads}"
        );
        assert_eq!(report.items, base.items);
        assert_eq!(report.keys, base.keys);
        assert!(report.speedup() >= 1.0, "threads={threads}");
    }
}

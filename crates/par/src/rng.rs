//! A draw-counting RNG wrapper.
//!
//! Determinism claims in this crate are stronger than "the estimates
//! came out equal": an out-of-order replay must consume *exactly* the
//! same random stream as the in-order drive, draw for draw. Wrapping
//! each operation's RNG in a [`CountingRng`] lets tests assert that —
//! equal estimates with unequal draw counts would mean two runs agreed
//! by coincidence, not by construction.

use rand::RngCore;

/// Wraps any [`RngCore`] and counts every primitive draw.
///
/// Each `next_u32`/`next_u64` call increments the counter by one, so
/// two generators that report equal [`draws`](Self::draws) after
/// producing equal outputs consumed identical streams.
#[derive(Debug, Clone)]
pub struct CountingRng<R: RngCore> {
    inner: R,
    draws: u64,
}

impl<R: RngCore> CountingRng<R> {
    /// Wrap `inner` with the counter at zero.
    pub fn new(inner: R) -> Self {
        CountingRng { inner, draws: 0 }
    }

    /// Number of primitive draws taken so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Unwrap the inner generator, discarding the counter.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn counts_match_draws_and_stream_is_transparent() {
        let mut plain = StdRng::seed_from_u64(7);
        let mut counted = CountingRng::new(StdRng::seed_from_u64(7));
        for _ in 0..100 {
            assert_eq!(plain.next_u64(), counted.next_u64());
        }
        assert_eq!(counted.draws(), 100);
        // Derived draws (gen_range) also tick the counter at least once.
        let before = counted.draws();
        let v: u64 = counted.gen_range(0..10);
        assert!(v < 10);
        assert!(counted.draws() > before);
    }
}

//! The multi-threaded sharded ingest driver.
//!
//! One OS worker thread per shard set (worker `w` owns every shard `s`
//! with `s % threads == w`), fed over bounded single-producer
//! single-consumer channels. The producer routes each update with the
//! same [`ShardRouter`] hash every worker's store uses, so a key's
//! whole update stream lands on exactly one worker — which is what
//! makes the fan-in deterministic:
//!
//! * each worker's recordings are per-item or per-key and commutative
//!   (counter adds, histogram merges), so absorbing worker registries
//!   yields the same [`MetricsRegistry`] digest under any partition;
//! * each *shard's* state digest is computed by its one owning worker
//!   over its full key set in key order, and shard digests fold in
//!   shard order — so the state digest is bit-identical at any thread
//!   count;
//! * each worker shuffles every received chunk with its own seeded RNG
//!   before applying it, deliberately stressing the register layer's
//!   order-insensitivity (max/bit-presence merges commute) the same
//!   way the out-of-order lab stresses the protocol layer's.
//!
//! Wall-clock speedup is *accounted*, not measured, in here: workers
//! tally virtual busy ticks (one per update applied, one per key
//! estimated), and the report derives serial/parallel critical paths
//! from them. That keeps this crate free of wall clocks (it replays
//! deterministically); the bench layer times the real run and combines
//! both views.

use dhs_obs::fnv::Fnv1a;
use dhs_obs::{names, MetricsRegistry, Observer};
use dhs_shard::{ShardConfig, ShardRouter, ShardedStore, SketchKey};
use dhs_sketch::hash::ItemHasher;
use dhs_sketch::SplitMix64;
use dhs_workload::TenantWorkload;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc;

/// Per-worker SPSC queue depth (chunks, not items).
const QUEUE_DEPTH: usize = 4;

/// Seed salt separating per-worker RNG streams from the workload's.
const WORKER_SALT: u64 = 0x5AAD_0006_D21A_7E01;

/// Configuration of one saturation run.
#[derive(Debug, Clone, Copy)]
pub struct SatConfig {
    /// Worker threads (≥ 1).
    pub threads: usize,
    /// Shards per store (each owned by exactly one worker).
    pub shards: usize,
    /// Registers per sketch.
    pub m: usize,
    /// Updates per SPSC chunk.
    pub chunk: usize,
    /// Base seed for the per-worker chunk-shuffle RNGs.
    pub seed: u64,
}

impl SatConfig {
    /// The standard N6 geometry: 8 shards of 64-register sketches,
    /// 1024-update chunks.
    pub fn new(threads: usize, seed: u64) -> Self {
        SatConfig {
            threads: threads.max(1),
            shards: 8,
            m: 64,
            chunk: 1024,
            seed,
        }
    }
}

/// One worker's contribution to the run.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Updates applied.
    pub items: u64,
    /// Distinct keys owned (and estimated in the digest pass).
    pub keys: u64,
    /// Chunks received over the SPSC queue.
    pub chunks: u64,
    /// Virtual busy ticks: one per update, one per key estimated.
    pub busy_ticks: u64,
}

/// The deterministic outcome of one saturation run.
#[derive(Debug, Clone)]
pub struct SatReport {
    /// Worker threads the run used.
    pub threads: usize,
    /// Total updates ingested.
    pub items: u64,
    /// Total distinct keys across all shards.
    pub keys: u64,
    /// Total chunks shipped over SPSC queues.
    pub chunks: u64,
    /// Shard-ordered fold of per-shard estimate digests. Bit-identical
    /// for the same seed at any thread count.
    pub state_digest: u64,
    /// Virtual ticks of the single-threaded fan-in merge.
    pub merge_ticks: u64,
    /// Virtual critical path of a 1-thread execution.
    pub serial_ticks: u64,
    /// Virtual critical path of this execution (slowest worker + merge).
    pub parallel_ticks: u64,
    /// Per-worker breakdown, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Fan-in merge of every worker's metric registry (plus `par.items`).
    pub registry: MetricsRegistry,
}

impl SatReport {
    /// Virtual speedup of this run over the 1-thread critical path.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ticks == 0 {
            return 1.0;
        }
        self.serial_ticks as f64 / self.parallel_ticks as f64
    }

    /// Per-thread efficiency in percent (`speedup / threads × 100`).
    pub fn efficiency_pct(&self) -> f64 {
        self.speedup() / self.threads as f64 * 100.0
    }

    /// Fan-in merge share of the parallel critical path, in percent.
    pub fn merge_overhead_pct(&self) -> f64 {
        if self.parallel_ticks == 0 {
            return 0.0;
        }
        self.merge_ticks as f64 / self.parallel_ticks as f64 * 100.0
    }

    /// Digest of the merged metric registry.
    pub fn metrics_digest(&self) -> u64 {
        self.registry.digest()
    }
}

/// What one worker thread returns at join time.
struct WorkerOut {
    stats: WorkerStats,
    /// `(shard, digest, keys)` per owned shard, ascending shard order.
    shard_digests: Vec<(usize, u64, u64)>,
    registry: MetricsRegistry,
}

/// Ingest `workload` into a sharded store using `cfg.threads` workers
/// and return the deterministic fan-in report. `rng` drives the
/// workload stream itself (item choice), exactly as in the
/// single-threaded shard experiments; per-worker shuffle RNGs are
/// seeded from `cfg.seed`.
pub fn run_saturation(
    cfg: &SatConfig,
    workload: &TenantWorkload,
    rng: &mut impl Rng,
) -> Result<SatReport, String> {
    let threads = cfg.threads.max(1);
    let router = ShardRouter::new(cfg.shards);
    let hasher = SplitMix64::default();
    let outs: Result<Vec<WorkerOut>, String> = std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let (tx, rx) = mpsc::sync_channel::<Vec<(SketchKey, u64)>>(QUEUE_DEPTH);
            senders.push(tx);
            let wcfg = *cfg;
            let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed ^ WORKER_SALT ^ worker as u64);
            handles.push(scope.spawn(move || worker_loop(worker, &wcfg, &rx, &mut shuffle_rng)));
        }
        let mut bufs: Vec<Vec<(SketchKey, u64)>> = (0..threads)
            .map(|_| Vec::with_capacity(cfg.chunk))
            .collect();
        let mut chunks = 0u64;
        workload.visit(rng, |u| {
            let key = SketchKey::new(u.tenant, u.metric);
            let worker = router.shard_of(key) % threads;
            bufs[worker].push((key, hasher.hash_u64(u.item)));
            if bufs[worker].len() >= cfg.chunk {
                chunks += 1;
                // A send only fails when the worker hung up; that
                // surfaces as the panic at join below.
                let _ = senders[worker].send(std::mem::take(&mut bufs[worker]));
            }
        });
        for (worker, buf) in bufs.into_iter().enumerate() {
            if !buf.is_empty() {
                chunks += 1;
                let _ = senders[worker].send(buf);
            }
        }
        drop(senders);
        let mut outs = Vec::with_capacity(threads);
        for handle in handles {
            let joined = handle
                .join()
                .map_err(|_| "saturation worker panicked".to_string())?;
            outs.push(joined?);
        }
        debug_assert_eq!(chunks, outs.iter().map(|o| o.stats.chunks).sum::<u64>());
        Ok(outs)
    });
    let outs = outs?;
    fan_in(cfg, threads, outs)
}

/// One worker: apply every received chunk (shuffled with the worker's
/// seeded RNG), then digest each owned shard in key order.
fn worker_loop(
    worker: usize,
    cfg: &SatConfig,
    rx: &mpsc::Receiver<Vec<(SketchKey, u64)>>,
    shuffle_rng: &mut impl Rng,
) -> Result<WorkerOut, String> {
    let mut store = ShardedStore::new(ShardConfig::new(cfg.shards, cfg.m))
        .map_err(|e| format!("worker {worker}: bad shard config: {e:?}"))?;
    let mut obs = Observer::new(1);
    let mut keys: BTreeMap<usize, BTreeSet<SketchKey>> = BTreeMap::new();
    let mut items = 0u64;
    let mut chunks = 0u64;
    loop {
        let received = rx.recv();
        let Ok(mut batch) = received else {
            break;
        };
        chunks += 1;
        // Apply the chunk in a seeded-random order: register merges
        // commute, so the final state must not depend on it.
        for i in (1..batch.len()).rev() {
            let j = shuffle_rng.gen_range(0..=i);
            batch.swap(i, j);
        }
        for (key, item_hash) in batch {
            let shard = store.router().shard_of(key);
            keys.entry(shard).or_default().insert(key);
            store.observe_item(key, item_hash, &mut obs);
            items += 1;
        }
    }
    let mut shard_digests = Vec::with_capacity(keys.len());
    let mut key_count = 0u64;
    for (&shard, set) in &keys {
        let mut h = Fnv1a::new();
        for &key in set {
            let estimate = store.estimate(key, &mut obs).unwrap_or(0.0);
            h.update(&key.packed().to_le_bytes());
            h.update(&estimate.to_bits().to_le_bytes());
            key_count += 1;
        }
        shard_digests.push((shard, h.finish(), set.len() as u64));
    }
    let busy_ticks = items + key_count;
    Ok(WorkerOut {
        stats: WorkerStats {
            worker,
            items,
            keys: key_count,
            chunks,
            busy_ticks,
        },
        shard_digests,
        registry: obs.metrics,
    })
}

/// Merge worker outputs deterministically: registries absorb in worker
/// order (commutative anyway), shard digests fold in shard order.
fn fan_in(cfg: &SatConfig, threads: usize, outs: Vec<WorkerOut>) -> Result<SatReport, String> {
    let mut registry = MetricsRegistry::new();
    let mut by_shard: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    let mut workers = Vec::with_capacity(outs.len());
    for out in outs {
        registry.absorb(&out.registry);
        for (shard, digest, shard_keys) in out.shard_digests {
            if by_shard.insert(shard, (digest, shard_keys)).is_some() {
                return Err(format!("shard {shard} digested by two workers"));
            }
        }
        workers.push(out.stats);
    }
    let mut state = Fnv1a::new();
    for (&shard, &(digest, _)) in &by_shard {
        state.update(&(shard as u64).to_le_bytes());
        state.update(&digest.to_le_bytes());
    }
    let items: u64 = workers.iter().map(|w| w.items).sum();
    let keys: u64 = workers.iter().map(|w| w.keys).sum();
    let chunks: u64 = workers.iter().map(|w| w.chunks).sum();
    let max_busy = workers.iter().map(|w| w.busy_ticks).max().unwrap_or(0);
    let merge_ticks = cfg.shards as u64 + threads as u64;
    let serial_ticks = items + keys + cfg.shards as u64 + 1;
    let parallel_ticks = max_busy + merge_ticks;
    registry.incr(names::PAR_ITEMS, items);
    Ok(SatReport {
        threads,
        items,
        keys,
        chunks,
        state_digest: state.finish(),
        merge_ticks,
        serial_ticks,
        parallel_ticks,
        workers,
        registry,
    })
}

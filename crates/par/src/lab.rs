//! Completion-based transport lab: submit / complete split with a
//! deterministic out-of-order scheduler.
//!
//! The synchronous [`Transport`] exchange is split in two halves: a
//! state machine *submits* a [`SendOp`] (tagged, effect-free), and the
//! [`CompletionLab`] later *completes* it — executing the wire exchange
//! via [`exec_send`] at completion time and feeding the result back into
//! the machine that issued it. Which pending send completes next is
//! drawn from a seeded scheduler RNG, so a test can replay *any*
//! permutation of completions reproducibly.
//!
//! Determinism envelope: every operation owns its RNG and
//! [`CostLedger`], scan machines keep one send outstanding at a time,
//! and store machines apply register writes that commute across owners
//! — so the permutation can change *interleaving* but never results.
//! [`OooEngine`] mirrors `count_multi_via`'s recorder events
//! (`op.count` counters, `count` spans) at the same per-operation
//! points, which makes metric digests comparable against the in-order
//! baseline; lab bookkeeping (completions delivered, reorder count) is
//! returned out-of-band in [`OooStats`] precisely because it *is*
//! permutation-dependent and must not contaminate the digest.

use crate::rng::CountingRng;
use dhs_core::machine::exec_send;
use dhs_core::transport::{end_span, start_span};
use dhs_core::{
    CountResult, Dhs, EstimatorKind, MetricId, ScanMachine, SendOp, Step, StoreMachine, Transport,
    TransportError,
};
use dhs_dht::cost::CostLedger;
use dhs_dht::overlay::Overlay;
use dhs_obs::names;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One submitted send awaiting completion.
#[derive(Debug)]
pub struct Submission {
    /// Index of the operation that issued the send.
    pub source: usize,
    /// The issuing machine's completion tag.
    pub tag: u32,
    /// The wire operation to execute at completion time.
    pub op: SendOp,
}

/// The deterministic completion scheduler.
///
/// Pending submissions sit in submission order;
/// [`pop_seeded`](Self::pop_seeded) removes one at a seeded-uniform
/// position, which over a whole run replays completions in an arbitrary
/// reproducible permutation. [`pop_fifo`](Self::pop_fifo) is the degenerate in-order
/// case.
#[derive(Debug, Default)]
pub struct CompletionLab {
    pending: Vec<Submission>,
    completions: u64,
    reordered: u64,
}

impl CompletionLab {
    /// An empty lab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue `op` from operation `source` under the machine tag `tag`.
    pub fn submit(&mut self, source: usize, tag: u32, op: SendOp) {
        self.pending.push(Submission { source, tag, op });
    }

    /// Number of sends awaiting completion.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no sends are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Complete the pending send at a seeded-uniform position.
    // dhs-flow: allow(rng-draw-parity) — the empty-queue early return
    // consumes no draw by design: emptiness is deterministic driver
    // state, and skipping the position draw when there is nothing to
    // pop keeps the scheduler stream aligned with the submission count.
    pub fn pop_seeded(&mut self, sched: &mut impl Rng) -> Option<Submission> {
        if self.pending.is_empty() {
            return None;
        }
        let idx = sched.gen_range(0..self.pending.len());
        if idx != 0 {
            self.reordered += 1;
        }
        self.completions += 1;
        Some(self.pending.remove(idx))
    }

    /// Complete the oldest pending send (strict submission order).
    pub fn pop_fifo(&mut self) -> Option<Submission> {
        if self.pending.is_empty() {
            return None;
        }
        self.completions += 1;
        Some(self.pending.remove(0))
    }

    /// Completions delivered so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Completions delivered out of submission order so far.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }
}

/// Lab bookkeeping for one out-of-order run. Permutation-dependent by
/// design, so it travels beside the results instead of inside the
/// metric registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooStats {
    /// Completions the lab delivered.
    pub completions: u64,
    /// Completions delivered out of submission order.
    pub reordered: u64,
}

/// One finished count operation: its per-metric results plus the exact
/// number of primitive RNG draws it consumed.
#[derive(Debug, Clone)]
pub struct CountOutcome {
    /// Per-metric results, in the order the metrics were queued.
    pub results: Vec<CountResult>,
    /// Primitive draws the operation's own RNG served.
    pub draws: u64,
}

/// One in-flight count with fully isolated effects: its own seeded
/// draw-counted RNG and its own ledger (the scan machine snapshots
/// ledger counters at construction, so sharing one would corrupt
/// per-op cost attribution under interleaving).
struct CountOp {
    machine: ScanMachine,
    rng: CountingRng<StdRng>,
    ledger: CostLedger,
    span: Option<u64>,
    metrics_len: u64,
}

/// Drives a batch of independent count operations with completions
/// delivered in an arbitrary seeded permutation.
///
/// Operations are queued with [`push_count`](Self::push_count) (each
/// with its own RNG seed), then [`run`](Self::run) starts every
/// machine, pools their outstanding sends in a [`CompletionLab`], and
/// completes them in scheduler order until all machines finish.
pub struct OooEngine<'a> {
    dhs: &'a Dhs,
    ops: Vec<CountOp>,
    lab: CompletionLab,
}

impl<'a> OooEngine<'a> {
    /// An engine over `dhs` with no queued operations.
    pub fn new(dhs: &'a Dhs) -> Self {
        OooEngine {
            dhs,
            ops: Vec::new(),
            lab: CompletionLab::new(),
        }
    }

    /// Queue a full (unhinted) multi-metric count from `origin`, its RNG
    /// seeded with `seed`. Returns the operation's index.
    pub fn push_count(&mut self, metrics: &[MetricId], origin: u64, seed: u64) -> usize {
        let ledger = CostLedger::new();
        let machine = match self.dhs.config().estimator {
            EstimatorKind::Pcsa => ScanMachine::pcsa(self.dhs, metrics, origin, &ledger),
            _ => ScanMachine::max_rank(self.dhs, metrics, origin, None, &ledger),
        };
        self.ops.push(CountOp {
            machine,
            rng: CountingRng::new(StdRng::seed_from_u64(seed)),
            ledger,
            span: None,
            metrics_len: metrics.len() as u64,
        });
        self.ops.len() - 1
    }

    /// Run every queued operation to completion, delivering completions
    /// in the permutation drawn from `sched`. Returns per-operation
    /// outcomes in queue order plus the lab's bookkeeping.
    pub fn run<O: Overlay, T: Transport>(
        self,
        ring: &O,
        transport: &mut T,
        sched: &mut impl Rng,
    ) -> (Vec<CountOutcome>, OooStats) {
        let OooEngine {
            mut ops, mut lab, ..
        } = self;
        // Start every machine; first steps issue the initial sends.
        for (idx, op) in ops.iter_mut().enumerate() {
            op.span = start_span(transport, names::SPAN_COUNT, op.metrics_len);
            step_op(idx, op, None, ring, transport, &mut lab);
        }
        // Complete in scheduler order; each completion may issue the
        // source machine's next send.
        loop {
            let popped = lab.pop_seeded(sched);
            let Some(sub) = popped else {
                break;
            };
            let op = &mut ops[sub.source];
            let result = exec_send(&sub.op, ring, transport, &mut op.ledger);
            step_op(
                sub.source,
                op,
                Some((sub.tag, result)),
                ring,
                transport,
                &mut lab,
            );
        }
        let stats = OooStats {
            completions: lab.completions(),
            reordered: lab.reordered(),
        };
        let outcomes = ops.into_iter().map(|op| finish_op(op, transport)).collect();
        (outcomes, stats)
    }
}

/// Advance one machine, pooling any sends it issues.
fn step_op<O: Overlay, T: Transport>(
    idx: usize,
    op: &mut CountOp,
    completion: Option<(u32, Result<(), TransportError>)>,
    ring: &O,
    transport: &mut T,
    lab: &mut CompletionLab,
) {
    match op
        .machine
        .step(completion, ring, transport, &mut op.rng, &mut op.ledger)
    {
        Step::Done => {}
        Step::Sends(sends) => {
            for (tag, send) in sends {
                lab.submit(idx, tag, send);
            }
        }
    }
}

/// Close out a finished operation, mirroring `count_multi_via`'s
/// recorder events so digests stay comparable with the in-order path.
fn finish_op<T: Transport>(op: CountOp, transport: &mut T) -> CountOutcome {
    let draws = op.rng.draws();
    let results = op.machine.finish(&op.ledger);
    if let Some(r) = transport.recorder() {
        let stats = results[0].stats;
        r.incr(names::OP_COUNT, 1);
        r.observe(names::OP_COUNT_BYTES, stats.bytes);
        r.observe(names::OP_COUNT_HOPS, stats.hops);
        r.observe(names::OP_COUNT_PROBES, stats.probes);
        if stats.intervals_skipped > 0 {
            r.incr(
                names::COUNT_HINT_SKIPPED,
                u64::from(stats.intervals_skipped),
            );
        }
    }
    end_span(transport, op.span);
    CountOutcome { results, draws }
}

/// Drive a [`StoreMachine`] with completions delivered in a seeded
/// permutation. With `window > 1` the machine keeps several owner
/// chains in flight, so the permutation genuinely interleaves primary
/// stores and replica legs across owners; chains write disjoint
/// `(holder, tuple)` cells, so any order stores the same state.
pub fn drive_store_ooo<O: Overlay, T: Transport>(
    machine: &mut StoreMachine,
    ring: &mut O,
    transport: &mut T,
    ledger: &mut CostLedger,
    sched: &mut impl Rng,
) -> OooStats {
    let mut lab = CompletionLab::new();
    match machine.step(None, ring, transport, ledger) {
        Step::Done => {
            return OooStats {
                completions: 0,
                reordered: 0,
            }
        }
        Step::Sends(sends) => {
            for (tag, op) in sends {
                lab.submit(0, tag, op);
            }
        }
    }
    loop {
        let popped = lab.pop_seeded(sched);
        let Some(sub) = popped else {
            break;
        };
        let result = exec_send(&sub.op, &*ring, transport, ledger);
        match machine.step(Some((sub.tag, result)), ring, transport, ledger) {
            Step::Done => break,
            Step::Sends(sends) => {
                for (tag, op) in sends {
                    lab.submit(0, tag, op);
                }
            }
        }
    }
    OooStats {
        completions: lab.completions(),
        reordered: lab.reordered(),
    }
}

//! # dhs-par — out-of-order completions and a deterministic threaded driver
//!
//! Two layers on top of the `dhs-core` request state machines:
//!
//! * [`lab`] (feature `ooo`, on by default) — a completion-based
//!   transport shim: sends are *submitted* to a [`lab::CompletionLab`]
//!   and *completed* later, in any seeded permutation. Because
//!   [`dhs_core::ScanMachine`] and [`dhs_core::StoreMachine`] keep all
//!   in-flight state explicit, replaying completions out of order
//!   cannot change an estimate: same seed ⇒ bit-identical registers,
//!   estimates, and RNG draw counts versus the strictly in-order
//!   [`dhs_core::DirectTransport`] drive.
//! * [`driver`] — a multi-threaded sharded ingest driver over
//!   `dhs-shard`'s [`dhs_shard::ShardRouter`]: one worker per shard
//!   set, bounded SPSC queues, seeded per-worker RNGs, and a
//!   deterministic fan-in merge of per-shard digests and per-worker
//!   metric registries, so two same-seed runs produce identical
//!   digests at *any* thread count.
//!
//! The point of both layers is the same honesty invariant the rest of
//! the repository enforces: going fast (threads, overlap, reordering)
//! must be observationally equivalent to the slow deterministic path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
#[cfg(feature = "ooo")]
pub mod lab;
pub mod rng;

pub use driver::{run_saturation, SatConfig, SatReport, WorkerStats};
#[cfg(feature = "ooo")]
pub use lab::{drive_store_ooo, CompletionLab, OooEngine, OooStats, Submission};
pub use rng::CountingRng;

//! KPI tolerances: in-plan bounds and baseline-comparison slack.
//!
//! A [`Tolerance`] plays two roles. At run time, `min`/`max` bound the
//! KPI value itself (the plan's sanity envelope — "message reduction must
//! stay above 90%"). At gate time, `abs`/`rel` bound the drift against
//! the registry baseline ("this PR may not move the KPI by more than
//! 0.1% relative or 1e-9 absolute"). NaN and infinite values are
//! rejected outright: a KPI that is not a finite number is a bug in the
//! runner, never a pass.

use std::fmt;

/// Default absolute comparison slack.
pub const DEFAULT_ABS: f64 = 1e-9;

/// Default relative comparison slack.
pub const DEFAULT_REL: f64 = 1e-3;

/// A non-finite value was offered to a tolerance check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFinite(pub f64);

impl fmt::Display for NonFinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "non-finite KPI value {}", self.0)
    }
}

/// Per-KPI thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Smallest acceptable value (bound on the value itself).
    pub min: Option<f64>,
    /// Largest acceptable value (bound on the value itself).
    pub max: Option<f64>,
    /// Absolute slack for baseline comparisons.
    pub abs: f64,
    /// Relative slack for baseline comparisons.
    pub rel: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            min: None,
            max: None,
            abs: DEFAULT_ABS,
            rel: DEFAULT_REL,
        }
    }
}

impl Tolerance {
    /// Set the lower bound.
    pub fn with_min(mut self, min: f64) -> Self {
        self.min = Some(min);
        self
    }

    /// Set the upper bound.
    pub fn with_max(mut self, max: f64) -> Self {
        self.max = Some(max);
        self
    }

    /// Set the absolute comparison slack.
    pub fn with_abs(mut self, abs: f64) -> Self {
        self.abs = abs;
        self
    }

    /// Set the relative comparison slack.
    pub fn with_rel(mut self, rel: f64) -> Self {
        self.rel = rel;
        self
    }

    /// Canonical form for plan hashing.
    pub fn canonical(&self) -> String {
        let b = |o: Option<f64>| match o {
            Some(v) => format!("{v}"),
            None => "-".to_string(),
        };
        format!(
            "min={},max={},abs={},rel={}",
            b(self.min),
            b(self.max),
            self.abs,
            self.rel
        )
    }

    /// Is `value` inside the declared `[min, max]` envelope? NaN and
    /// infinities are errors, never passes.
    pub fn bounds_ok(&self, value: f64) -> Result<bool, NonFinite> {
        if !value.is_finite() {
            return Err(NonFinite(value));
        }
        if let Some(min) = self.min {
            if value < min {
                return Ok(false);
            }
        }
        if let Some(max) = self.max {
            if value > max {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Is `value` within `abs` absolute **or** `rel` relative slack of
    /// `baseline`? Either slack suffices (the usual approx-eq contract),
    /// so `abs` keeps near-zero baselines comparable and `rel` scales
    /// with large ones.
    pub fn close_to(&self, value: f64, baseline: f64) -> Result<bool, NonFinite> {
        if !value.is_finite() {
            return Err(NonFinite(value));
        }
        if !baseline.is_finite() {
            return Err(NonFinite(baseline));
        }
        let diff = (value - baseline).abs();
        Ok(diff <= self.abs || diff <= self.rel * baseline.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_envelope() {
        let t = Tolerance::default().with_min(1.0).with_max(2.0);
        assert_eq!(t.bounds_ok(1.0), Ok(true));
        assert_eq!(t.bounds_ok(2.0), Ok(true));
        assert_eq!(t.bounds_ok(0.999), Ok(false));
        assert_eq!(t.bounds_ok(2.001), Ok(false));
        assert_eq!(Tolerance::default().bounds_ok(1e300), Ok(true));
    }

    #[test]
    fn abs_vs_rel_slack_are_independent() {
        // Pure absolute: rel 0 — a fixed window regardless of scale.
        let abs_only = Tolerance::default().with_abs(0.5).with_rel(0.0);
        assert_eq!(abs_only.close_to(100.4, 100.0), Ok(true));
        assert_eq!(abs_only.close_to(100.6, 100.0), Ok(false));
        assert_eq!(abs_only.close_to(0.4, 0.0), Ok(true));
        // Pure relative: abs 0 — scales with the baseline, so a zero
        // baseline admits only an exact match.
        let rel_only = Tolerance::default().with_abs(0.0).with_rel(0.01);
        assert_eq!(rel_only.close_to(100.9, 100.0), Ok(true));
        assert_eq!(rel_only.close_to(101.1, 100.0), Ok(false));
        assert_eq!(rel_only.close_to(0.0, 0.0), Ok(true));
        assert_eq!(rel_only.close_to(1e-12, 0.0), Ok(false));
    }

    #[test]
    fn exact_gate_when_both_slacks_zero() {
        let exact = Tolerance::default().with_abs(0.0).with_rel(0.0);
        assert_eq!(exact.close_to(42.0, 42.0), Ok(true));
        assert_eq!(exact.close_to(42.0 + 1e-12, 42.0), Ok(false));
    }

    #[test]
    fn non_finite_rejected_everywhere() {
        let t = Tolerance::default();
        assert!(t.bounds_ok(f64::NAN).is_err());
        assert!(t.bounds_ok(f64::INFINITY).is_err());
        assert!(t.close_to(f64::NAN, 1.0).is_err());
        assert!(t.close_to(1.0, f64::NEG_INFINITY).is_err());
    }
}

//! Ablation plans: ordered factor sweeps with declared KPIs.
//!
//! A plan is pure data — factor grids (or Latin-hypercube bounds) in a
//! `BTreeMap`, fixed parameters, and the KPI extraction/tolerance
//! declarations — so two processes holding the same plan expand the same
//! job list in the same order and agree on its [`plan_hash`]. Nothing in
//! here reads a clock or OS entropy: LHS sampling uses centered strata
//! permuted by a SplitMix64 stream seeded from the plan hash and the
//! caller's seed.
//!
//! [`plan_hash`]: AblationPlan::plan_hash

use std::collections::BTreeMap;
use std::fmt;

use dhs_obs::Fnv1a;

use crate::tolerance::Tolerance;

/// Hard cap on the number of jobs one plan may expand to; guards against
/// accidental cartesian blow-ups.
pub const MAX_JOBS: usize = 4096;

/// One factor (or fixed-parameter) value. Integers and floats render
/// differently in params strings and job reports, so the distinction is
/// kept rather than collapsing everything to `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FactorValue {
    /// An integer-valued parameter (m, k, nodes, shard count, …).
    Int(i64),
    /// A real-valued parameter (scale, loss rate, Zipf theta, …).
    Float(f64),
}

impl FactorValue {
    /// The value as an `f64` (exact for integers up to 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            FactorValue::Int(v) => v as f64,
            FactorValue::Float(v) => v,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            FactorValue::Int(v) => Some(v),
            FactorValue::Float(_) => None,
        }
    }
}

impl fmt::Display for FactorValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // `{}` on f64 is shortest-roundtrip and therefore stable.
            FactorValue::Int(v) => write!(f, "{v}"),
            FactorValue::Float(v) => write!(f, "{v}"),
        }
    }
}

/// How a plan turns its factors into jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Cartesian product of every factor's value list, expanded in
    /// factor-name order (the `BTreeMap` order — insertion order is
    /// irrelevant by construction).
    Grid,
    /// Centered Latin-hypercube sampling: each factor gives `[min, max]`
    /// bounds and each of `samples` jobs draws one stratum per factor,
    /// permuted deterministically.
    Lhs {
        /// Number of jobs (= strata per factor).
        samples: usize,
    },
}

/// Where one KPI's value comes from in a job's metric registry.
#[derive(Debug, Clone, PartialEq)]
pub enum KpiSource {
    /// A counter's value.
    Counter(String),
    /// A gauge's value.
    Gauge(String),
    /// A gauge (or counter) divided by `scale` — for fixed-point
    /// encodings of fractional measurements (e.g. milli-units).
    ScaledGauge {
        /// Metric name.
        name: String,
        /// Divisor applied to the raw value.
        scale: f64,
    },
    /// Mean of a histogram's recorded values.
    HistogramMean(String),
    /// `100 × (base − opt) / base` over two counters/gauges.
    ReductionPct {
        /// The baseline series.
        base: String,
        /// The optimized series.
        opt: String,
    },
    /// `num / den` over two counters/gauges.
    PerUnit {
        /// Numerator series.
        num: String,
        /// Denominator series.
        den: String,
    },
}

impl KpiSource {
    fn canonical(&self) -> String {
        match self {
            KpiSource::Counter(n) => format!("counter:{n}"),
            KpiSource::Gauge(n) => format!("gauge:{n}"),
            KpiSource::ScaledGauge { name, scale } => format!("scaled:{name}/{scale}"),
            KpiSource::HistogramMean(n) => format!("hist_mean:{n}"),
            KpiSource::ReductionPct { base, opt } => format!("reduction_pct:{base}:{opt}"),
            KpiSource::PerUnit { num, den } => format!("per_unit:{num}:{den}"),
        }
    }
}

/// One declared KPI: its extraction source and tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct KpiSpec {
    /// Where the value comes from.
    pub source: KpiSource,
    /// In-plan bounds plus baseline-comparison tolerances.
    pub tolerance: Tolerance,
}

/// Parameters of one expanded job: fixed parameters overlaid with this
/// job's factor assignment, in name order.
pub type JobParams = BTreeMap<String, FactorValue>;

/// Render job params as the canonical `k=v;k=v` string used in registry
/// rows and hashes.
pub fn params_string(params: &JobParams) -> String {
    let parts: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.join(";")
}

/// Why a plan failed validation or expansion.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The plan has no name.
    EmptyName,
    /// A factor has no values (grid) or not exactly two bounds (LHS).
    BadFactor(String),
    /// A factor or fixed value is NaN or infinite.
    NonFiniteValue(String),
    /// A name appears in both `factors` and `fixed`.
    Overlap(String),
    /// LHS mode with zero samples.
    NoSamples,
    /// Expansion would exceed [`MAX_JOBS`].
    TooManyJobs(usize),
    /// The plan declares no KPIs.
    NoKpis,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyName => write!(f, "plan name is empty"),
            PlanError::BadFactor(n) => write!(f, "factor {n:?} has an invalid value list"),
            PlanError::NonFiniteValue(n) => write!(f, "parameter {n:?} has a non-finite value"),
            PlanError::Overlap(n) => write!(f, "{n:?} is both a factor and a fixed parameter"),
            PlanError::NoSamples => write!(f, "lhs mode needs samples >= 1"),
            PlanError::TooManyJobs(n) => write!(f, "plan expands to {n} jobs (max {MAX_JOBS})"),
            PlanError::NoKpis => write!(f, "plan declares no KPIs"),
        }
    }
}

/// A deterministic ablation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPlan {
    /// Unique plan identifier (registry rows carry it).
    pub name: String,
    /// Grid or LHS execution.
    pub mode: Mode,
    /// Ordered factors to sweep: value lists (grid) or bounds (LHS).
    pub factors: BTreeMap<String, Vec<FactorValue>>,
    /// Parameters held constant across every job.
    pub fixed: BTreeMap<String, FactorValue>,
    /// Declared KPIs: extraction source + tolerance, by KPI name.
    pub kpis: BTreeMap<String, KpiSpec>,
}

impl AblationPlan {
    /// An empty grid plan named `name`.
    pub fn grid(name: &str) -> Self {
        AblationPlan {
            name: name.to_string(),
            mode: Mode::Grid,
            factors: BTreeMap::new(),
            fixed: BTreeMap::new(),
            kpis: BTreeMap::new(),
        }
    }

    /// An empty LHS plan named `name` drawing `samples` jobs.
    pub fn lhs(name: &str, samples: usize) -> Self {
        AblationPlan {
            mode: Mode::Lhs { samples },
            ..Self::grid(name)
        }
    }

    /// Add a factor with its value list (grid) or `[min, max]` (LHS).
    pub fn factor(mut self, name: &str, values: Vec<FactorValue>) -> Self {
        self.factors.insert(name.to_string(), values);
        self
    }

    /// Add a fixed parameter.
    pub fn fix(mut self, name: &str, value: FactorValue) -> Self {
        self.fixed.insert(name.to_string(), value);
        self
    }

    /// Declare a KPI.
    pub fn kpi(mut self, name: &str, source: KpiSource, tolerance: Tolerance) -> Self {
        self.kpis
            .insert(name.to_string(), KpiSpec { source, tolerance });
        self
    }

    /// Validate the plan's shape (names, value lists, finiteness).
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.name.is_empty() {
            return Err(PlanError::EmptyName);
        }
        if self.kpis.is_empty() {
            return Err(PlanError::NoKpis);
        }
        for (name, values) in &self.factors {
            if self.fixed.contains_key(name) {
                return Err(PlanError::Overlap(name.clone()));
            }
            let shape_ok = match self.mode {
                Mode::Grid => !values.is_empty(),
                Mode::Lhs { .. } => values.len() == 2,
            };
            if !shape_ok {
                return Err(PlanError::BadFactor(name.clone()));
            }
            for v in values {
                if !v.as_f64().is_finite() {
                    return Err(PlanError::NonFiniteValue(name.clone()));
                }
            }
        }
        for (name, v) in &self.fixed {
            if !v.as_f64().is_finite() {
                return Err(PlanError::NonFiniteValue(name.clone()));
            }
        }
        if let Mode::Lhs { samples } = self.mode {
            if samples == 0 {
                return Err(PlanError::NoSamples);
            }
        }
        Ok(())
    }

    /// Canonical textual form of the whole plan — the hash input, and a
    /// stable fingerprint for humans diffing two plans.
    pub fn canonical(&self) -> String {
        let mut s = format!("plan:{}\n", self.name);
        match self.mode {
            Mode::Grid => s.push_str("mode:grid\n"),
            Mode::Lhs { samples } => s.push_str(&format!("mode:lhs:{samples}\n")),
        }
        for (name, values) in &self.factors {
            let vs: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            s.push_str(&format!("factor:{name}=[{}]\n", vs.join(",")));
        }
        for (name, v) in &self.fixed {
            s.push_str(&format!("fixed:{name}={v}\n"));
        }
        for (name, spec) in &self.kpis {
            s.push_str(&format!(
                "kpi:{name}:{}:{}\n",
                spec.source.canonical(),
                spec.tolerance.canonical()
            ));
        }
        s
    }

    /// Stable FNV-1a hash of the canonical plan, as 16 hex digits.
    pub fn plan_hash(&self) -> String {
        let mut h = Fnv1a::new();
        h.update(self.canonical().as_bytes());
        format!("{:016x}", h.finish())
    }

    /// Expand the plan into its job list. Grid plans cartesian-expand in
    /// factor-name order (last factor varies fastest); LHS plans draw
    /// `samples` centered Latin-hypercube points with permutations seeded
    /// from the plan hash and `seed`.
    pub fn expand(&self, seed: u64) -> Result<Vec<JobParams>, PlanError> {
        self.validate()?;
        match self.mode {
            Mode::Grid => self.expand_grid(),
            Mode::Lhs { samples } => self.expand_lhs(samples, seed),
        }
    }

    fn expand_grid(&self) -> Result<Vec<JobParams>, PlanError> {
        let names: Vec<&String> = self.factors.keys().collect();
        let lists: Vec<&Vec<FactorValue>> = self.factors.values().collect();
        let mut total: usize = 1;
        for l in &lists {
            total = total.saturating_mul(l.len());
        }
        if total > MAX_JOBS {
            return Err(PlanError::TooManyJobs(total));
        }
        let mut jobs = Vec::with_capacity(total);
        let mut idx = vec![0usize; names.len()];
        loop {
            let mut params = self.fixed.clone();
            for (f, &i) in idx.iter().enumerate() {
                params.insert(names[f].clone(), lists[f][i]);
            }
            jobs.push(params);
            // Odometer increment, last factor fastest.
            let mut carry = true;
            for f in (0..idx.len()).rev() {
                idx[f] += 1;
                if idx[f] < lists[f].len() {
                    carry = false;
                    break;
                }
                idx[f] = 0;
            }
            if carry {
                break;
            }
        }
        Ok(jobs)
    }

    // Int-bound rounding: v is inside [lo, hi] ⊂ i64 by construction.
    #[allow(clippy::cast_possible_truncation)]
    fn expand_lhs(&self, samples: usize, seed: u64) -> Result<Vec<JobParams>, PlanError> {
        if samples > MAX_JOBS {
            return Err(PlanError::TooManyJobs(samples));
        }
        let mut h = Fnv1a::new();
        h.update(self.canonical().as_bytes());
        h.update(&seed.to_le_bytes());
        let base_state = h.finish();

        let mut jobs: Vec<JobParams> = vec![self.fixed.clone(); samples];
        for (name, bounds) in &self.factors {
            let (lo, hi) = (bounds[0], bounds[1]);
            let (lo_f, hi_f) = (lo.as_f64(), hi.as_f64());
            let perm = permutation(samples, base_state, name);
            for (job, &stratum) in jobs.iter_mut().zip(perm.iter()) {
                // Centered stratum: midpoint of slice `stratum` of
                // `samples` equal slices of [lo, hi].
                let t = (stratum as f64 + 0.5) / samples as f64;
                let v = lo_f + t * (hi_f - lo_f);
                let value = match (lo, hi) {
                    // Integer bounds produce integer samples.
                    (FactorValue::Int(_), FactorValue::Int(_)) => {
                        FactorValue::Int(v.round() as i64)
                    }
                    _ => FactorValue::Float(v),
                };
                job.insert(name.clone(), value);
            }
        }
        Ok(jobs)
    }
}

/// SplitMix64 step (Steele et al.) — the workspace's standard tiny PRNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates permutation of `0..n`, streamed from
/// `base_state` xored with the factor name's FNV.
#[allow(clippy::cast_possible_truncation)]
fn permutation(n: usize, base_state: u64, factor: &str) -> Vec<usize> {
    let mut h = Fnv1a::new();
    h.update(factor.as_bytes());
    let mut state = base_state ^ h.finish();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        // Modulo bias is irrelevant at these sizes.
        // dhs-lint: allow(lossy_cast) — value already reduced mod i+1 ≤ n.
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> AblationPlan {
        AblationPlan::grid("t")
            .factor("a", vec![FactorValue::Int(1), FactorValue::Int(2)])
            .factor("b", vec![FactorValue::Float(0.5)])
            .fix("c", FactorValue::Int(7))
            .kpi("k", KpiSource::Counter("x".into()), Tolerance::default())
    }

    #[test]
    fn grid_expands_in_name_order_last_factor_fastest() {
        let jobs = plan().expand(0).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(params_string(&jobs[0]), "a=1;b=0.5;c=7");
        assert_eq!(params_string(&jobs[1]), "a=2;b=0.5;c=7");
    }

    #[test]
    fn plan_hash_is_stable_and_sensitive() {
        let p = plan();
        assert_eq!(p.plan_hash(), p.clone().plan_hash());
        let q = plan().fix("d", FactorValue::Int(1));
        assert_ne!(p.plan_hash(), q.plan_hash());
    }

    #[test]
    #[allow(clippy::cast_possible_truncation)]
    fn lhs_covers_every_stratum_once_per_factor() {
        let p = AblationPlan::lhs("l", 8)
            .factor("x", vec![FactorValue::Float(0.0), FactorValue::Float(1.0)])
            .factor("n", vec![FactorValue::Int(0), FactorValue::Int(700)])
            .kpi("k", KpiSource::Counter("c".into()), Tolerance::default());
        let jobs = p.expand(42).unwrap();
        assert_eq!(jobs.len(), 8);
        // Every job's x lands in a distinct one of 8 strata of [0, 1].
        let mut strata: Vec<usize> = jobs
            .iter()
            .map(|j| (j["x"].as_f64() * 8.0).floor() as usize)
            .collect();
        strata.sort_unstable();
        assert_eq!(strata, (0..8).collect::<Vec<_>>());
        // Integer bounds produce integers.
        assert!(jobs.iter().all(|j| j["n"].as_i64().is_some()));
        // Same seed, same draw; different seed, different assignment.
        assert_eq!(jobs, p.expand(42).unwrap());
        assert_ne!(jobs, p.expand(43).unwrap());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let p = AblationPlan::grid("g").factor("a", vec![]).kpi(
            "k",
            KpiSource::Counter("c".into()),
            Tolerance::default(),
        );
        assert_eq!(p.validate(), Err(PlanError::BadFactor("a".into())));
        let p = AblationPlan::grid("g")
            .factor("a", vec![FactorValue::Float(f64::NAN)])
            .kpi("k", KpiSource::Counter("c".into()), Tolerance::default());
        assert_eq!(p.validate(), Err(PlanError::NonFiniteValue("a".into())));
        let p = AblationPlan::grid("g")
            .factor("a", vec![FactorValue::Int(1)])
            .fix("a", FactorValue::Int(2))
            .kpi("k", KpiSource::Counter("c".into()), Tolerance::default());
        assert_eq!(p.validate(), Err(PlanError::Overlap("a".into())));
        let p = AblationPlan::grid("g").factor("a", vec![FactorValue::Int(1)]);
        assert_eq!(p.validate(), Err(PlanError::NoKpis));
    }
}

//! dhs-traj: deterministic ablation harness + perf-trajectory registry.
//!
//! The experiments in this workspace (N1–N4) each print a table and emit
//! a BENCH JSON, but nothing connects *runs over time*: there was no way
//! to sweep a factor grid reproducibly, no declared tolerance on a KPI,
//! and no committed record that would catch a silent perf regression.
//! This crate closes that loop:
//!
//! - [`AblationPlan`] — pure-data factor sweeps (grid or centered
//!   Latin-hypercube) with fixed parameters and declared KPIs, expanded
//!   deterministically and fingerprinted by an FNV [`plan_hash`].
//! - [`run_ablation`] — executes a plan through a caller-supplied
//!   [`JobRunner`], extracts each KPI from the job's
//!   `dhs_obs::MetricsRegistry` ([`KpiSource`]), judges it against its
//!   [`Tolerance`] envelope, and stamps the report with [`Provenance`]
//!   (plan hash, seed, config digest, commit, tool — never a clock).
//! - [`Registry`] — the append-only CSV trajectory file. Reports append
//!   byte-identical rows across reruns; [`Registry::gate`] compares a
//!   fresh report against the latest committed baseline per
//!   `(plan, params, kpi)` and reports tolerance violations, which
//!   `scripts/check.sh` turns into a hard failure.
//! - [`registry_query`] — sorted, aligned trajectory tables for humans.
//!
//! Determinism discipline matches the rest of the workspace: `BTreeMap`
//! everywhere, no wall clocks or OS entropy (LHS permutation comes from
//! a SplitMix64 stream seeded by plan hash + master seed), and every job
//! shares one master seed (common random numbers) so KPI deltas measure
//! factors, not draws.
//!
//! [`plan_hash`]: AblationPlan::plan_hash
//! [`JobRunner`]: run::JobRunner

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod registry;
pub mod run;
pub mod tolerance;

pub use plan::{
    params_string, AblationPlan, FactorValue, JobParams, KpiSource, KpiSpec, Mode, PlanError,
    MAX_JOBS,
};
pub use registry::{registry_query, GateViolation, ParseError, Registry, Row, HEADER};
pub use run::{
    extract_kpi, run_ablation, AblationReport, JobReport, JobRunner, KpiResult, KpiVerdict,
    Provenance,
};
pub use tolerance::{NonFinite, Tolerance, DEFAULT_ABS, DEFAULT_REL};

//! Append-only perf-trajectory registry.
//!
//! The registry is a flat CSV file, one row per `(job, KPI)`, committed
//! to the repository. New reports only ever *append* rows — history is
//! never rewritten — so `git log` on the file is the performance
//! trajectory of the project, and the latest row for a
//! `(plan, params, kpi)` key is the baseline the KPI gate compares
//! against. Rendering is deterministic end to end: `BTreeMap` ordering,
//! `{}` float formatting (shortest roundtrip), and provenance stamped
//! from the plan hash rather than a clock, so two runs of the same
//! commit append byte-identical rows.

use std::collections::BTreeMap;
use std::fmt;

use crate::plan::{params_string, AblationPlan};
use crate::run::{AblationReport, KpiVerdict};

/// The CSV header line (without trailing newline).
pub const HEADER: &str =
    "plan,plan_hash,seed,commit,config_digest,tool,job,params,kpi,value,digest,verdict";

/// Number of comma-separated fields per row.
const FIELDS: usize = 12;

/// One registry row: a single KPI measurement with full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Plan name.
    pub plan: String,
    /// FNV hash of the canonical plan, 16 hex digits.
    pub plan_hash: String,
    /// Master seed of the run.
    pub seed: u64,
    /// VCS commit id the run was built from.
    pub commit: String,
    /// FNV digest of plan + seed.
    pub config_digest: String,
    /// Producing tool version.
    pub tool: String,
    /// Job index within the plan expansion.
    pub job: usize,
    /// Canonical `k=v;k=v` parameter string.
    pub params: String,
    /// KPI name.
    pub kpi: String,
    /// Measured value.
    pub value: f64,
    /// FNV digest of the job's metric snapshot, 16 hex digits.
    pub digest: String,
    /// `pass`, `out_of_bounds`, or `invalid`.
    pub verdict: String,
}

impl Row {
    fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            self.plan,
            self.plan_hash,
            self.seed,
            self.commit,
            self.config_digest,
            self.tool,
            self.job,
            self.params,
            self.kpi,
            self.value,
            self.digest,
            self.verdict
        )
    }
}

/// A parse failure: line number (1-based) and reason.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number in the CSV text.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "registry line {}: {}", self.line, self.reason)
    }
}

/// The in-memory registry: rows in file order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// All rows, oldest first.
    pub rows: Vec<Row>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse CSV text (with or without the header line).
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut rows = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            if line.is_empty() || line == HEADER {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != FIELDS {
                return Err(ParseError {
                    line: lineno,
                    reason: format!("expected {FIELDS} fields, got {}", f.len()),
                });
            }
            let num = |s: &str, what: &str| -> Result<f64, ParseError> {
                s.parse::<f64>().map_err(|_| ParseError {
                    line: lineno,
                    reason: format!("bad {what} {s:?}"),
                })
            };
            let seed = f[2].parse::<u64>().map_err(|_| ParseError {
                line: lineno,
                reason: format!("bad seed {:?}", f[2]),
            })?;
            let job = f[6].parse::<usize>().map_err(|_| ParseError {
                line: lineno,
                reason: format!("bad job index {:?}", f[6]),
            })?;
            rows.push(Row {
                plan: f[0].to_string(),
                plan_hash: f[1].to_string(),
                seed,
                commit: f[3].to_string(),
                config_digest: f[4].to_string(),
                tool: f[5].to_string(),
                job,
                params: f[7].to_string(),
                kpi: f[8].to_string(),
                value: num(f[9], "value")?,
                digest: f[10].to_string(),
                verdict: f[11].to_string(),
            });
        }
        Ok(Registry { rows })
    }

    /// Render the whole registry (header + every row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.to_csv());
            out.push('\n');
        }
        out
    }

    /// Turn a report into its registry rows, in job order then KPI name
    /// order. Jobs that never produced a metric registry (runner error)
    /// yield no rows — there is no measurement to record.
    pub fn rows_for(report: &AblationReport) -> Vec<Row> {
        let p = &report.provenance;
        let mut rows = Vec::new();
        for (job_idx, job) in report.jobs.iter().enumerate() {
            if job.error.is_some() {
                continue;
            }
            for (kpi, result) in &job.kpis {
                let verdict = match &result.verdict {
                    KpiVerdict::Pass => "pass",
                    KpiVerdict::OutOfBounds => "out_of_bounds",
                    KpiVerdict::Invalid(_) => "invalid",
                };
                rows.push(Row {
                    plan: report.plan.clone(),
                    plan_hash: p.plan_hash.clone(),
                    seed: p.seed,
                    commit: p.commit.clone(),
                    config_digest: p.config_digest.clone(),
                    tool: p.tool.clone(),
                    job: job_idx,
                    params: job
                        .params
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(";"),
                    kpi: kpi.clone(),
                    value: result.value,
                    digest: format!("{:016x}", job.digest),
                    verdict: verdict.to_string(),
                });
            }
        }
        rows
    }

    /// The CSV fragment a report appends (no header) — write this to the
    /// end of the committed file.
    pub fn append_csv(report: &AblationReport) -> String {
        let mut out = String::new();
        for row in Self::rows_for(report) {
            out.push_str(&row.to_csv());
            out.push('\n');
        }
        out
    }

    /// Append a report's rows to the in-memory registry.
    pub fn append_report(&mut self, report: &AblationReport) {
        self.rows.extend(Self::rows_for(report));
    }

    /// Latest row for `(plan, params, kpi)` — the gate baseline.
    pub fn latest(&self, plan: &str, params: &str, kpi: &str) -> Option<&Row> {
        self.rows
            .iter()
            .rev()
            .find(|r| r.plan == plan && r.params == params && r.kpi == kpi)
    }

    /// Compare a fresh report against this registry's baselines using the
    /// plan's declared tolerances. A `(plan, params, kpi)` key with no
    /// prior row is new data, not a violation.
    pub fn gate(&self, plan: &AblationPlan, report: &AblationReport) -> Vec<GateViolation> {
        let mut violations = Vec::new();
        for job in &report.jobs {
            let params = params_string(&job.params);
            for (kpi, result) in &job.kpis {
                // Invalid extractions are caught by the run-level verdict;
                // the gate only judges drift of measured values.
                if matches!(result.verdict, KpiVerdict::Invalid(_)) {
                    continue;
                }
                let Some(spec) = plan.kpis.get(kpi) else {
                    continue;
                };
                let Some(baseline) = self.latest(&report.plan, &params, kpi) else {
                    continue;
                };
                let ok = spec
                    .tolerance
                    .close_to(result.value, baseline.value)
                    .unwrap_or(false);
                if !ok {
                    violations.push(GateViolation {
                        plan: report.plan.clone(),
                        params: params.clone(),
                        kpi: kpi.clone(),
                        value: result.value,
                        baseline: baseline.value,
                        abs: spec.tolerance.abs,
                        rel: spec.tolerance.rel,
                    });
                }
            }
        }
        violations
    }
}

/// One KPI that drifted outside its declared tolerance vs the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateViolation {
    /// Plan name.
    pub plan: String,
    /// Job parameter string.
    pub params: String,
    /// KPI name.
    pub kpi: String,
    /// Fresh value.
    pub value: f64,
    /// Registry baseline value.
    pub baseline: f64,
    /// Declared absolute slack.
    pub abs: f64,
    /// Declared relative slack.
    pub rel: f64,
}

impl fmt::Display for GateViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {} vs baseline {} (tol abs {} / rel {})",
            self.plan, self.params, self.kpi, self.value, self.baseline, self.abs, self.rel
        )
    }
}

/// Render a sorted, aligned trajectory table. Rows are grouped by
/// `(plan, params, kpi)` and listed oldest-to-newest within a group, so
/// each group reads as that KPI's trajectory. `plan` / `kpi` filter by
/// exact plan name and KPI substring.
pub fn registry_query(reg: &Registry, plan: Option<&str>, kpi: Option<&str>) -> String {
    // Group while preserving file (= time) order inside each key.
    let mut groups: BTreeMap<(String, String, String), Vec<&Row>> = BTreeMap::new();
    for row in &reg.rows {
        if let Some(p) = plan {
            if row.plan != p {
                continue;
            }
        }
        if let Some(k) = kpi {
            if !row.kpi.contains(k) {
                continue;
            }
        }
        groups
            .entry((row.plan.clone(), row.params.clone(), row.kpi.clone()))
            .or_default()
            .push(row);
    }
    let headers = [
        "plan", "params", "kpi", "value", "seed", "commit", "verdict",
    ];
    let mut cells: Vec<[String; 7]> = Vec::new();
    for rows in groups.values() {
        for row in rows {
            cells.push([
                row.plan.clone(),
                row.params.clone(),
                row.kpi.clone(),
                format!("{}", row.value),
                format!("{}", row.seed),
                row.commit.clone(),
                row.verdict.clone(),
            ]);
        }
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let render = |cols: &[&str]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cols.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:<w$}"));
        }
        line.trim_end().to_string()
    };
    let mut out = render(&headers) + "\n";
    for row in &cells {
        let cols: Vec<&str> = row.iter().map(String::as_str).collect();
        out.push_str(&render(&cols));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FactorValue, JobParams, KpiSource};
    use crate::run::{run_ablation, JobRunner};
    use crate::tolerance::Tolerance;
    use dhs_obs::{names, MetricsRegistry, NoopRecorder};

    /// Runner whose counter scales with the factor and a bias knob.
    struct Biased(u64);

    impl JobRunner for Biased {
        fn run(&mut self, params: &JobParams, _seed: u64) -> Result<MetricsRegistry, String> {
            let n = params["n"].as_i64().unwrap() as u64;
            let mut m = MetricsRegistry::new();
            m.incr(names::ABL_ACCESSES, n * 10 + self.0);
            Ok(m)
        }
    }

    fn plan() -> AblationPlan {
        AblationPlan::grid("reg")
            .factor("n", vec![FactorValue::Int(1), FactorValue::Int(2)])
            .kpi(
                "accesses",
                KpiSource::Counter(names::ABL_ACCESSES.to_string()),
                Tolerance::default().with_abs(0.5).with_rel(0.0),
            )
    }

    fn report(bias: u64) -> AblationReport {
        run_ablation(
            &plan(),
            42,
            &mut Biased(bias),
            "abc",
            "t-0",
            &mut NoopRecorder,
        )
        .unwrap()
    }

    #[test]
    fn csv_roundtrips_and_appends() {
        let mut reg = Registry::new();
        reg.append_report(&report(0));
        let csv = reg.to_csv();
        assert!(csv.starts_with(HEADER));
        let parsed = Registry::parse(&csv).unwrap();
        assert_eq!(parsed.rows, reg.rows);
        // Append fragment has no header and stacks onto the file.
        let more = Registry::append_csv(&report(0));
        assert!(!more.contains("plan_hash,"));
        let combined = Registry::parse(&format!("{csv}{more}")).unwrap();
        assert_eq!(combined.rows.len(), 4);
        assert_eq!(
            combined.latest("reg", "n=2", "accesses").unwrap().value,
            20.0
        );
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        let err = Registry::parse("a,b,c\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("expected 12 fields"));
        let bad_seed = format!("{HEADER}\np,h,notanumber,c,d,t,0,n=1,k,1,dg,pass\n");
        assert!(Registry::parse(&bad_seed)
            .unwrap_err()
            .reason
            .contains("seed"));
    }

    #[test]
    fn gate_passes_in_tolerance_and_flags_drift() {
        let mut reg = Registry::new();
        reg.append_report(&report(0));
        // Same values: clean.
        assert!(reg.gate(&plan(), &report(0)).is_empty());
        // +2 on every job: outside abs 0.5.
        let violations = reg.gate(&plan(), &report(2));
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].kpi, "accesses");
        assert_eq!(violations[0].baseline, 10.0);
        assert_eq!(violations[0].value, 12.0);
        assert!(violations[0].to_string().contains("vs baseline 10"));
        // Unknown keys are not violations.
        assert!(Registry::new().gate(&plan(), &report(2)).is_empty());
    }

    #[test]
    fn gate_uses_latest_row_as_baseline() {
        let mut reg = Registry::new();
        reg.append_report(&report(0));
        reg.append_report(&report(2));
        // Against latest (bias 2) a bias-2 report is clean even though the
        // oldest row would reject it.
        assert!(reg.gate(&plan(), &report(2)).is_empty());
        assert_eq!(reg.gate(&plan(), &report(0)).len(), 2);
    }

    #[test]
    fn query_renders_sorted_aligned_trajectories() {
        let mut reg = Registry::new();
        reg.append_report(&report(0));
        reg.append_report(&report(2));
        let table = registry_query(&reg, Some("reg"), None);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("plan"));
        // Group (n=1) lists its trajectory oldest first, then group (n=2).
        assert!(lines[1].contains("n=1") && lines[1].contains("10"));
        assert!(lines[2].contains("n=1") && lines[2].contains("12"));
        assert!(lines[3].contains("n=2") && lines[3].contains("20"));
        // Columns align: every line has "  "-separated fields at the same
        // offsets, so the header's kpi column offset matches data rows.
        let kpi_off = lines[0].find("kpi").unwrap();
        assert_eq!(&lines[1][kpi_off..kpi_off + 8], "accesses");
        // Filters.
        assert_eq!(registry_query(&reg, Some("nope"), None).lines().count(), 1);
        assert_eq!(registry_query(&reg, None, Some("acc")).lines().count(), 5);
    }
}

//! Plan execution: run every job, extract KPIs, attach verdicts.
//!
//! The harness is deliberately ignorant of what a job *does* — callers
//! hand it a [`JobRunner`] that maps `(params, seed)` to a finished
//! [`MetricsRegistry`], and everything downstream (KPI extraction,
//! tolerance verdicts, registry rows) works off that registry and its
//! FNV digest. Every job receives the same master seed (common random
//! numbers), so KPI differences between jobs measure the factors, not
//! the draw.

use std::collections::BTreeMap;

use dhs_obs::{names, MetricsRegistry, Recorder};

use crate::plan::{params_string, AblationPlan, JobParams, KpiSource, PlanError};

/// Execute one ablation job: produce the metric registry the KPIs are
/// extracted from, or a textual error.
pub trait JobRunner {
    /// Run the job described by `params` with the master `seed`.
    fn run(&mut self, params: &JobParams, seed: u64) -> Result<MetricsRegistry, String>;
}

/// Outcome of one KPI check within one job.
#[derive(Debug, Clone, PartialEq)]
pub enum KpiVerdict {
    /// Value extracted and inside the plan's `[min, max]` envelope.
    Pass,
    /// Value extracted but outside the envelope.
    OutOfBounds,
    /// Extraction or comparison failed (missing metric, NaN, …).
    Invalid(String),
}

/// One KPI's extracted value and verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct KpiResult {
    /// Extracted value (0.0 when the verdict is `Invalid`).
    pub value: f64,
    /// Pass / out-of-bounds / invalid.
    pub verdict: KpiVerdict,
}

/// One executed job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's full parameter assignment (factors overlaid on fixed).
    pub params: JobParams,
    /// KPI results in name order.
    pub kpis: BTreeMap<String, KpiResult>,
    /// FNV digest of the job's metric snapshot — the job's provenance.
    pub digest: u64,
    /// Runner error, if the job never produced a registry.
    pub error: Option<String>,
}

impl JobReport {
    /// Did every KPI pass (and the runner succeed)?
    pub fn passed(&self) -> bool {
        self.error.is_none() && self.kpis.values().all(|k| k.verdict == KpiVerdict::Pass)
    }
}

/// Who/what produced a report — everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// FNV-1a hash of the canonical plan, 16 hex digits.
    pub plan_hash: String,
    /// Master seed shared by every job.
    pub seed: u64,
    /// FNV-1a digest of plan canonical + seed, 16 hex digits.
    pub config_digest: String,
    /// VCS commit id (callers usually read `DHS_COMMIT`), or `unknown`.
    pub commit: String,
    /// Version of the producing tool.
    pub tool: String,
}

impl Provenance {
    /// Provenance for `plan` run with `seed`, stamped with `commit` and
    /// `tool`. Empty strings collapse to `unknown`; commas and newlines
    /// are squashed so the fields embed safely in CSV rows.
    pub fn new(plan: &AblationPlan, seed: u64, commit: &str, tool: &str) -> Self {
        let clean = |s: &str| {
            let s: String = s
                .chars()
                .map(|c| {
                    if c == ',' || c == '\n' || c == '\r' {
                        '_'
                    } else {
                        c
                    }
                })
                .collect();
            if s.is_empty() {
                "unknown".to_string()
            } else {
                s
            }
        };
        let mut h = dhs_obs::Fnv1a::new();
        h.update(plan.canonical().as_bytes());
        h.update(&seed.to_le_bytes());
        Provenance {
            plan_hash: plan.plan_hash(),
            seed,
            config_digest: format!("{:016x}", h.finish()),
            commit: clean(commit),
            tool: clean(tool),
        }
    }
}

/// The full result of executing a plan.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Plan name.
    pub plan: String,
    /// Reproduction stamp.
    pub provenance: Provenance,
    /// One entry per expanded job, in expansion order.
    pub jobs: Vec<JobReport>,
}

impl AblationReport {
    /// Did every job pass every KPI?
    pub fn all_pass(&self) -> bool {
        self.jobs.iter().all(JobReport::passed)
    }

    /// Number of (job, KPI) pairs that passed.
    pub fn kpis_passed(&self) -> usize {
        self.jobs
            .iter()
            .flat_map(|j| j.kpis.values())
            .filter(|k| k.verdict == KpiVerdict::Pass)
            .count()
    }

    /// Number of (job, KPI) pairs that did not pass, plus failed jobs.
    pub fn failures(&self) -> usize {
        let kpi_fails = self
            .jobs
            .iter()
            .flat_map(|j| j.kpis.values())
            .filter(|k| k.verdict != KpiVerdict::Pass)
            .count();
        let job_fails = self.jobs.iter().filter(|j| j.error.is_some()).count();
        kpi_fails + job_fails
    }

    /// Deterministic JSON rendering (stable key order, `{}` floats).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"plan\": \"{}\",\n", self.plan));
        out.push_str(&format!(
            "  \"provenance\": {{\"plan_hash\": \"{}\", \"seed\": {}, \"config_digest\": \"{}\", \"commit\": \"{}\", \"tool\": \"{}\"}},\n",
            self.provenance.plan_hash,
            self.provenance.seed,
            self.provenance.config_digest,
            self.provenance.commit,
            self.provenance.tool
        ));
        out.push_str("  \"jobs\": [\n");
        for (i, job) in self.jobs.iter().enumerate() {
            let sep = if i + 1 == self.jobs.len() { "" } else { "," };
            let mut kpis = String::new();
            for (j, (name, k)) in job.kpis.iter().enumerate() {
                let ksep = if j + 1 == job.kpis.len() { "" } else { ", " };
                let verdict = match &k.verdict {
                    KpiVerdict::Pass => "pass".to_string(),
                    KpiVerdict::OutOfBounds => "out_of_bounds".to_string(),
                    KpiVerdict::Invalid(e) => format!("invalid: {e}"),
                };
                kpis.push_str(&format!(
                    "{{\"kpi\": \"{name}\", \"value\": {}, \"verdict\": \"{verdict}\"}}{ksep}",
                    k.value
                ));
            }
            match &job.error {
                Some(e) => out.push_str(&format!(
                    "    {{\"params\": \"{}\", \"error\": \"{e}\"}}{sep}\n",
                    params_string(&job.params)
                )),
                None => out.push_str(&format!(
                    "    {{\"params\": \"{}\", \"digest\": \"{:016x}\", \"kpis\": [{kpis}]}}{sep}\n",
                    params_string(&job.params),
                    job.digest
                )),
            }
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A named series: counter takes precedence, then gauge.
fn series(m: &MetricsRegistry, name: &str) -> Result<f64, String> {
    if let Some(&v) = m.counters().get(name) {
        return Ok(v as f64);
    }
    if let Some(v) = m.gauge(name) {
        return Ok(v as f64);
    }
    Err(format!("metric {name:?} not recorded"))
}

/// Extract one KPI value from a job's metric registry.
pub fn extract_kpi(m: &MetricsRegistry, source: &KpiSource) -> Result<f64, String> {
    match source {
        KpiSource::Counter(n) => m
            .counters()
            .get(n.as_str())
            .map(|&v| v as f64)
            .ok_or_else(|| format!("counter {n:?} not recorded")),
        KpiSource::Gauge(n) => m
            .gauge(n)
            .map(|v| v as f64)
            .ok_or_else(|| format!("gauge {n:?} not recorded")),
        KpiSource::ScaledGauge { name, scale } => {
            if *scale == 0.0 {
                return Err(format!("scaled gauge {name:?} has zero scale"));
            }
            Ok(series(m, name)? / scale)
        }
        KpiSource::HistogramMean(n) => m
            .histogram(n)
            .map(|h| h.mean())
            .ok_or_else(|| format!("histogram {n:?} not recorded")),
        KpiSource::ReductionPct { base, opt } => {
            let b = series(m, base)?;
            let o = series(m, opt)?;
            if b == 0.0 {
                return Err(format!("reduction baseline {base:?} is zero"));
            }
            Ok(100.0 * (b - o) / b)
        }
        KpiSource::PerUnit { num, den } => {
            let n = series(m, num)?;
            let d = series(m, den)?;
            if d == 0.0 {
                return Err(format!("per-unit denominator {den:?} is zero"));
            }
            Ok(n / d)
        }
    }
}

/// Execute `plan`: expand it, run every job through `runner` with the
/// shared master `seed`, extract and judge every declared KPI, and record
/// `traj.*` bookkeeping into `rec`.
///
/// A runner error fails that job but not the run; the report carries the
/// error text. `commit` and `tool` stamp the provenance (callers usually
/// pass `DHS_COMMIT` and their crate version).
// dhs-flow: allow(entropy-taint) — taint enters only through the
// caller-supplied JobRunner dispatch; determinism is the runner's
// contract, and the seed threading below is the replay mechanism
pub fn run_ablation(
    plan: &AblationPlan,
    seed: u64,
    runner: &mut dyn JobRunner,
    commit: &str,
    tool: &str,
    rec: &mut dyn Recorder,
) -> Result<AblationReport, PlanError> {
    let job_params = plan.expand(seed)?;
    let mut jobs = Vec::with_capacity(job_params.len());
    for params in job_params {
        rec.incr(names::TRAJ_JOB, 1);
        let mut job = JobReport {
            params,
            kpis: BTreeMap::new(),
            digest: 0,
            error: None,
        };
        match runner.run(&job.params, seed) {
            Err(e) => {
                rec.incr(names::TRAJ_JOB_FAILED, 1);
                job.error = Some(e);
            }
            Ok(metrics) => {
                job.digest = metrics.digest();
                for (name, spec) in &plan.kpis {
                    let result = match extract_kpi(&metrics, &spec.source) {
                        Err(e) => KpiResult {
                            value: 0.0,
                            verdict: KpiVerdict::Invalid(e),
                        },
                        Ok(value) => match spec.tolerance.bounds_ok(value) {
                            Err(e) => KpiResult {
                                value,
                                verdict: KpiVerdict::Invalid(e.to_string()),
                            },
                            Ok(true) => KpiResult {
                                value,
                                verdict: KpiVerdict::Pass,
                            },
                            Ok(false) => KpiResult {
                                value,
                                verdict: KpiVerdict::OutOfBounds,
                            },
                        },
                    };
                    let ok = result.verdict == KpiVerdict::Pass;
                    rec.incr(
                        if ok {
                            names::TRAJ_KPI_PASS
                        } else {
                            names::TRAJ_KPI_FAIL
                        },
                        1,
                    );
                    job.kpis.insert(name.clone(), result);
                }
            }
        }
        jobs.push(job);
    }
    Ok(AblationReport {
        plan: plan.name.clone(),
        provenance: Provenance::new(plan, seed, commit, tool),
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FactorValue;
    use crate::tolerance::Tolerance;
    use dhs_obs::NoopRecorder;

    /// Runner that records `n * 10` into a counter and `n * 500` into a
    /// milli-gauge, and fails when `n == 13`.
    struct Toy;

    impl JobRunner for Toy {
        fn run(&mut self, params: &JobParams, _seed: u64) -> Result<MetricsRegistry, String> {
            let n = params["n"].as_i64().unwrap() as u64;
            if n == 13 {
                return Err("unlucky".to_string());
            }
            let mut m = MetricsRegistry::new();
            m.incr(names::ABL_ACCESSES, n * 10);
            m.gauge_set(names::ABL_INTERVALS_HINTED, n * 500);
            m.incr(names::ABL_MESSAGES_BASELINE, 100);
            m.incr(names::ABL_MESSAGES_OPTIMIZED, 25);
            Ok(m)
        }
    }

    fn plan() -> AblationPlan {
        AblationPlan::grid("toy")
            .factor(
                "n",
                vec![
                    FactorValue::Int(1),
                    FactorValue::Int(2),
                    FactorValue::Int(13),
                ],
            )
            .kpi(
                "accesses",
                KpiSource::Counter(names::ABL_ACCESSES.to_string()),
                Tolerance::default().with_min(10.0).with_max(20.0),
            )
            .kpi(
                "intervals",
                KpiSource::ScaledGauge {
                    name: names::ABL_INTERVALS_HINTED.to_string(),
                    scale: 1000.0,
                },
                Tolerance::default(),
            )
            .kpi(
                "reduction",
                KpiSource::ReductionPct {
                    base: names::ABL_MESSAGES_BASELINE.to_string(),
                    opt: names::ABL_MESSAGES_OPTIMIZED.to_string(),
                },
                Tolerance::default(),
            )
    }

    #[test]
    fn runs_jobs_and_judges_kpis() {
        let mut rec = NoopRecorder;
        let report = run_ablation(&plan(), 42, &mut Toy, "c0ffee", "t-1", &mut rec).unwrap();
        assert_eq!(report.jobs.len(), 3);
        // n=1: accesses 10 in [10, 20] → pass; intervals 0.5; reduction 75%.
        let j0 = &report.jobs[0];
        assert!(j0.passed());
        assert_eq!(j0.kpis["accesses"].value, 10.0);
        assert_eq!(j0.kpis["intervals"].value, 0.5);
        assert_eq!(j0.kpis["reduction"].value, 75.0);
        assert_ne!(j0.digest, 0);
        // n=2: accesses 20 still in bounds.
        assert!(report.jobs[1].passed());
        // n=13: runner error recorded, no KPI entries.
        let j2 = &report.jobs[2];
        assert_eq!(j2.error.as_deref(), Some("unlucky"));
        assert!(!j2.passed());
        assert!(!report.all_pass());
        assert_eq!(report.kpis_passed(), 6);
        assert_eq!(report.failures(), 1);
        assert_eq!(report.provenance.commit, "c0ffee");
        assert_eq!(report.provenance.plan_hash, plan().plan_hash());
    }

    #[test]
    fn out_of_bounds_kpi_fails_but_carries_value() {
        let p = plan().factor("n", vec![FactorValue::Int(3)]);
        let report = run_ablation(&p, 42, &mut Toy, "", "", &mut NoopRecorder).unwrap();
        let j = &report.jobs[0];
        assert_eq!(j.kpis["accesses"].value, 30.0);
        assert_eq!(j.kpis["accesses"].verdict, KpiVerdict::OutOfBounds);
        assert!(!j.passed());
        // Empty provenance fields collapse to "unknown".
        assert_eq!(report.provenance.commit, "unknown");
    }

    #[test]
    fn missing_metric_is_invalid_not_zero() {
        let p = AblationPlan::grid("m")
            .factor("n", vec![FactorValue::Int(1)])
            .kpi(
                "ghost",
                KpiSource::Counter("no.such.metric".to_string()),
                Tolerance::default(),
            );
        let report = run_ablation(&p, 42, &mut Toy, "c", "t", &mut NoopRecorder).unwrap();
        match &report.jobs[0].kpis["ghost"].verdict {
            KpiVerdict::Invalid(e) => assert!(e.contains("no.such.metric")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn bookkeeping_lands_in_recorder() {
        let mut obs = dhs_obs::Observer::new(1);
        run_ablation(&plan(), 42, &mut Toy, "c", "t", &mut obs).unwrap();
        assert_eq!(obs.metrics.counter(names::TRAJ_JOB), 3);
        assert_eq!(obs.metrics.counter(names::TRAJ_JOB_FAILED), 1);
        assert_eq!(obs.metrics.counter(names::TRAJ_KPI_PASS), 6);
        assert_eq!(obs.metrics.counter(names::TRAJ_KPI_FAIL), 0);
    }

    #[test]
    fn json_rendering_is_deterministic() {
        let a = run_ablation(&plan(), 42, &mut Toy, "c", "t", &mut NoopRecorder).unwrap();
        let b = run_ablation(&plan(), 42, &mut Toy, "c", "t", &mut NoopRecorder).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"verdict\": \"pass\""));
        assert!(a.to_json().contains("\"error\": \"unlucky\""));
    }
}

//! End-to-end determinism: two independent executions of the same plan
//! produce byte-identical registry artifacts — the property the
//! committed trajectory CSV and the check.sh two-run `cmp` rely on.

use dhs_obs::{names, MetricsRegistry, NoopRecorder, Observer};
use dhs_traj::{
    registry_query, run_ablation, AblationPlan, FactorValue, JobParams, JobRunner, KpiSource,
    Registry, Tolerance,
};

/// A deterministic toy workload: counters and gauges derived from the
/// params and seed by pure arithmetic, including a fractional KPI via a
/// milli-unit gauge so float formatting is exercised.
struct Toy;

impl JobRunner for Toy {
    fn run(&mut self, params: &JobParams, seed: u64) -> Result<MetricsRegistry, String> {
        let m_factor = params["m"].as_i64().unwrap() as u64;
        let nodes = params["nodes"].as_i64().unwrap() as u64;
        let mut m = MetricsRegistry::new();
        m.incr(names::ABL_MESSAGES_BASELINE, m_factor * nodes + seed % 7);
        m.incr(names::ABL_MESSAGES_OPTIMIZED, m_factor + seed % 7);
        m.incr(names::ABL_ACCESSES, m_factor * 3);
        m.gauge_set(names::ABL_INTERVALS_HINTED, nodes * 1375);
        Ok(m)
    }
}

fn plan() -> AblationPlan {
    AblationPlan::grid("toy-grid")
        .factor("m", vec![FactorValue::Int(64), FactorValue::Int(512)])
        .factor("nodes", vec![FactorValue::Int(16), FactorValue::Int(256)])
        .fix("scale", FactorValue::Float(0.1))
        .kpi(
            "messages",
            KpiSource::Counter(names::ABL_MESSAGES_BASELINE.to_string()),
            Tolerance::default().with_min(1.0),
        )
        .kpi(
            "reduction_pct",
            KpiSource::ReductionPct {
                base: names::ABL_MESSAGES_BASELINE.to_string(),
                opt: names::ABL_MESSAGES_OPTIMIZED.to_string(),
            },
            Tolerance::default(),
        )
        .kpi(
            "intervals",
            KpiSource::ScaledGauge {
                name: names::ABL_INTERVALS_HINTED.to_string(),
                scale: 1000.0,
            },
            Tolerance::default(),
        )
}

/// One full execution: report JSON, append fragment, full CSV, query table.
fn run_once() -> (String, String, String, String) {
    let mut obs = Observer::new(1);
    let report =
        run_ablation(&plan(), 42, &mut Toy, "deadbeef", "traj-test-0.1", &mut obs).unwrap();
    assert!(report.all_pass());
    let append = Registry::append_csv(&report);
    let mut reg = Registry::new();
    reg.append_report(&report);
    reg.append_report(&report);
    let table = registry_query(&reg, Some("toy-grid"), None);
    (report.to_json(), append, reg.to_csv(), table)
}

#[test]
fn two_runs_are_byte_identical() {
    let (json_a, append_a, csv_a, table_a) = run_once();
    let (json_b, append_b, csv_b, table_b) = run_once();
    assert_eq!(json_a, json_b);
    assert_eq!(append_a, append_b);
    assert_eq!(csv_a, csv_b);
    assert_eq!(table_a, table_b);
    // The fragment really is an append: file + fragment reparses cleanly
    // and the parse→render roundtrip is byte-stable.
    let reparsed = Registry::parse(&csv_a).unwrap();
    assert_eq!(reparsed.to_csv(), csv_a);
    // Fractional KPI survives the CSV roundtrip exactly.
    assert!(csv_a.contains(",22,") || csv_a.contains(",22.")); // intervals 22 for nodes=16
    assert!(append_a.lines().all(|l| l.split(',').count() == 12));
}

#[test]
fn gate_detects_perturbation_against_committed_baseline() {
    // Build the committed baseline from one run...
    let report = run_ablation(&plan(), 42, &mut Toy, "deadbeef", "t", &mut NoopRecorder).unwrap();
    let mut reg = Registry::new();
    reg.append_report(&report);
    let csv = reg.to_csv();
    // ...then perturb one value the way a silent regression would and
    // check the gate catches it while the clean report passes.
    let committed = Registry::parse(&csv).unwrap();
    assert!(committed.gate(&plan(), &report).is_empty());
    let mut drifted = report.clone();
    if let Some(k) = drifted.jobs[0].kpis.get_mut("messages") {
        k.value *= 1.01; // 1% drift > rel 1e-3
    }
    let violations = committed.gate(&plan(), &drifted);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].kpi, "messages");
}

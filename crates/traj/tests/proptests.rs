//! Property tests for plan expansion stability.
//!
//! The central claim of `AblationPlan` is that expansion order and the
//! plan hash depend only on the plan's *content*, never on the order the
//! builder inserted factors — two call sites constructing "the same"
//! plan in different orders must agree on every job and on the hash that
//! keys registry provenance.

use dhs_traj::{AblationPlan, FactorValue, KpiSource, Tolerance};
use proptest::prelude::*;

const NAMES: [&str; 5] = ["k", "lim", "m", "nodes", "theta"];

/// SplitMix64 — local copy for deterministic test-side shuffles.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fisher–Yates on indices, seeded by the generated shuffle seed.
#[allow(clippy::cast_possible_truncation)]
fn shuffled(n: usize, mut state: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Split flat values into per-factor lists of 1–3 values.
fn factor_lists(values: &[i64]) -> Vec<(String, Vec<FactorValue>)> {
    values
        .chunks(3)
        .take(NAMES.len())
        .enumerate()
        .map(|(i, chunk)| {
            (
                NAMES[i].to_string(),
                chunk.iter().map(|&v| FactorValue::Int(v)).collect(),
            )
        })
        .collect()
}

fn with_factors(order: &[usize], factors: &[(String, Vec<FactorValue>)]) -> AblationPlan {
    let mut plan = AblationPlan::grid("prop")
        .fix("scale", FactorValue::Float(0.25))
        .kpi(
            "kpi",
            KpiSource::Counter("ablation.accesses".to_string()),
            Tolerance::default(),
        );
    for &i in order {
        let (name, values) = &factors[i];
        plan = plan.factor(name, values.clone());
    }
    plan
}

proptest! {
    /// Grid expansion and plan hash are invariant under factor insertion
    /// order: jobs come out in factor-name order with the last name
    /// varying fastest, no matter how the builder was driven.
    #[test]
    fn grid_expansion_stable_under_insertion_order(
        values in prop::collection::vec(-1000i64..1000, 1..13),
        shuffle_seed in any::<u64>(),
    ) {
        let factors = factor_lists(&values);
        let forward: Vec<usize> = (0..factors.len()).collect();
        let permuted = shuffled(factors.len(), shuffle_seed);

        let a = with_factors(&forward, &factors);
        let b = with_factors(&permuted, &factors);

        prop_assert_eq!(a.plan_hash(), b.plan_hash());
        prop_assert_eq!(a.canonical(), b.canonical());
        let jobs_a = a.expand(7).unwrap();
        let jobs_b = b.expand(7).unwrap();
        prop_assert_eq!(&jobs_a, &jobs_b);
        // Job count is the full cartesian product.
        let expected: usize = factors.iter().map(|(_, v)| v.len()).product();
        prop_assert_eq!(jobs_a.len(), expected);
    }

    /// LHS expansion is seed-deterministic and insertion-order invariant
    /// too: the permutation stream keys off plan hash + factor name.
    #[test]
    fn lhs_expansion_stable_under_insertion_order(
        bounds in prop::collection::vec(0i64..1000, 2..9),
        samples in 1usize..9,
        shuffle_seed in any::<u64>(),
    ) {
        let factors: Vec<(String, Vec<FactorValue>)> = bounds
            .chunks(2)
            .filter(|c| c.len() == 2)
            .take(NAMES.len())
            .enumerate()
            .map(|(i, c)| {
                let (lo, hi) = (c[0].min(c[1]), c[0].max(c[1]) + 1);
                (
                    NAMES[i].to_string(),
                    vec![FactorValue::Int(lo), FactorValue::Int(hi)],
                )
            })
            .collect();
        let forward: Vec<usize> = (0..factors.len()).collect();
        let permuted = shuffled(factors.len(), shuffle_seed);

        let lhs = |order: &[usize]| {
            let mut plan = AblationPlan::lhs("prop-lhs", samples).kpi(
                "kpi",
                KpiSource::Counter("ablation.accesses".to_string()),
                Tolerance::default(),
            );
            for &i in order {
                let (name, values) = &factors[i];
                plan = plan.factor(name, values.clone());
            }
            plan
        };

        let a = lhs(&forward);
        let b = lhs(&permuted);
        prop_assert_eq!(a.plan_hash(), b.plan_hash());
        prop_assert_eq!(a.expand(42).unwrap(), b.expand(42).unwrap());
        prop_assert_eq!(a.expand(42).unwrap(), a.expand(42).unwrap());
    }
}

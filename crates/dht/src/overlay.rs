//! The DHT abstraction DHS builds on.
//!
//! The paper: *"The proposed design is DHT-agnostic, in the sense that it
//! can be deployed over any peer-to-peer overlay conforming to the DHT
//! abstraction."* This trait is that abstraction: key ownership, routed
//! lookup, ID-space neighbor links, soft-state storage, and a logical
//! clock. [`crate::ring::Ring`] (Chord) and [`crate::kademlia::Kademlia`]
//! (XOR-metric) both implement it, and `dhs-core` is generic over it —
//! which makes the claim checkable instead of rhetorical.

use dhs_obs::{names, Recorder};
use rand::Rng;

use crate::cost::CostLedger;
use crate::storage::StoredRecord;

/// A structured overlay exposing the DHT abstraction.
///
/// Identifier space is `[0, 2^64)`. "Neighbors" are *numeric* ID-space
/// neighbors (the next/previous alive node by identifier) — every DHT
/// has them, because every DHT assigns numeric identifiers; geometries
/// differ in *ownership* and *routing*, which is exactly what this trait
/// leaves to the implementor.
pub trait Overlay {
    /// Number of alive nodes.
    fn node_count(&self) -> usize;

    /// Current logical time (drives TTL semantics).
    fn time(&self) -> u64;

    /// The alive node that owns `key` under this geometry's placement
    /// rule (Chord: successor; Kademlia: XOR-closest).
    fn owner_of(&self, key: u64) -> u64;

    /// Route a message from `from` to the owner of `key`, charging hops
    /// into the ledger. Returns the owner.
    fn route(&self, from: u64, key: u64, ledger: &mut CostLedger) -> u64;

    /// [`route`](Self::route), additionally reporting the hop count of
    /// this lookup into an observability [`Recorder`] (`route.hops`
    /// histogram). Identical ledger charges and return value.
    fn route_observed(
        &self,
        from: u64,
        key: u64,
        ledger: &mut CostLedger,
        obs: &mut dyn Recorder,
    ) -> u64 {
        let before = ledger.hops();
        let owner = self.route(from, key, ledger);
        obs.observe(names::ROUTE_HOPS, ledger.hops() - before);
        owner
    }

    /// The alive node with the next-larger identifier (wrapping).
    fn next_node(&self, node: u64) -> u64;

    /// The alive node with the next-smaller identifier (wrapping).
    fn prev_node(&self, node: u64) -> u64;

    /// Store a soft-state record at `node` (must be alive).
    fn put_at(&mut self, node: u64, app_key: u64, record: StoredRecord);

    /// Read a live record from `node` (`None` when absent, expired, or
    /// the node is failed).
    fn fetch_at(&self, node: u64, app_key: u64) -> Option<StoredRecord>;

    /// A uniformly random alive node (experiment origin selection).
    ///
    /// Takes the RNG as `&mut impl Rng` — the same shape every other
    /// randomized operation uses — so one seeded generator can drive a
    /// whole simulated scenario end-to-end. (This makes the trait
    /// non-object-safe; nothing uses `dyn Overlay`.)
    fn any_node(&self, rng: &mut impl Rng) -> u64;
}

/// Helper alias for [`Overlay::any_node`], kept for call-site symmetry
/// with the other free functions.
pub fn random_node<O: Overlay>(overlay: &O, rng: &mut impl Rng) -> u64 {
    overlay.any_node(rng)
}

//! Per-node soft-state storage.
//!
//! DHS deletion is *implicit* (paper §3.3): every stored tuple carries a
//! time-to-live; tuples not refreshed within their TTL age out. The store
//! is keyed by an opaque `u64` the layer above composes (DHS packs
//! `(metric, vector, bit)` into it) and tracks the encoded byte size of
//! each record so storage-load experiments can read real numbers.

use std::collections::BTreeMap;

/// A stored soft-state record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredRecord {
    /// Logical time at which the record expires (`u64::MAX` = never).
    pub expires_at: u64,
    /// Encoded (wire/storage) size in bytes, for accounting.
    pub size_bytes: u32,
    /// The overlay key this record was routed/stored under. Refreshes
    /// overwrite it; join handoff uses it to decide ownership.
    pub routing_key: u64,
}

/// A node's local key/value store with TTL semantics.
///
/// Reads at logical time `now` treat expired records as absent; expired
/// entries are compacted opportunistically by [`NodeStore::sweep`].
///
/// Keyed by a `BTreeMap` so that [`NodeStore::iter`] and
/// [`NodeStore::drain`] — the churn handoff path — walk records in key
/// order; hash-ordered handoff made replays depend on `HashMap` seed
/// state (caught by `dhs-lint`'s `determinism` rule).
#[derive(Debug, Clone, Default)]
pub struct NodeStore {
    records: BTreeMap<u64, StoredRecord>,
}

impl NodeStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or refresh a record. Re-insertion of an existing key only
    /// updates expiry/size (the paper's "update its timestamp field"):
    /// duplicate bits are deduplicated at the node.
    pub fn put(&mut self, key: u64, record: StoredRecord) {
        self.records.insert(key, record);
    }

    /// Read a live record at logical time `now`.
    pub fn get(&self, key: u64, now: u64) -> Option<&StoredRecord> {
        self.records.get(&key).filter(|r| r.expires_at > now)
    }

    /// Whether a live record exists for `key` at time `now`.
    pub fn contains(&self, key: u64, now: u64) -> bool {
        self.get(key, now).is_some()
    }

    /// Remove a record explicitly (used by graceful-leave handoff).
    pub fn remove(&mut self, key: u64) -> Option<StoredRecord> {
        self.records.remove(&key)
    }

    /// Drop every record that has expired by `now`; returns how many were
    /// dropped.
    pub fn sweep(&mut self, now: u64) -> usize {
        let before = self.records.len();
        self.records.retain(|_, r| r.expires_at > now);
        before - self.records.len()
    }

    /// Number of records currently held (including not-yet-swept expired
    /// ones; call [`sweep`](Self::sweep) first for live counts).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total stored bytes of *live* records at time `now`.
    pub fn live_bytes(&self, now: u64) -> u64 {
        self.records
            .values()
            .filter(|r| r.expires_at > now)
            .map(|r| u64::from(r.size_bytes))
            .sum()
    }

    /// Iterate over all (key, record) pairs, live or not (handoff path).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &StoredRecord)> {
        self.records.iter().map(|(&k, r)| (k, r))
    }

    /// Drain the whole store (graceful leave: hand every record to the
    /// successor), in key order.
    pub fn drain(&mut self) -> impl Iterator<Item = (u64, StoredRecord)> + '_ {
        std::mem::take(&mut self.records).into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(expires_at: u64, size: u32) -> StoredRecord {
        StoredRecord {
            expires_at,
            size_bytes: size,
            routing_key: 0,
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = NodeStore::new();
        s.put(42, rec(100, 8));
        assert!(s.contains(42, 0));
        assert!(s.contains(42, 99));
        assert_eq!(s.get(42, 0).unwrap().size_bytes, 8);
        assert!(!s.contains(7, 0));
    }

    #[test]
    fn ttl_expiry_is_exclusive() {
        let mut s = NodeStore::new();
        s.put(1, rec(10, 8));
        assert!(s.contains(1, 9));
        assert!(!s.contains(1, 10), "expires exactly at its deadline");
        assert!(!s.contains(1, 11));
    }

    #[test]
    fn reinsert_refreshes_expiry() {
        let mut s = NodeStore::new();
        s.put(1, rec(10, 8));
        s.put(1, rec(20, 8));
        assert!(s.contains(1, 15));
        assert_eq!(s.len(), 1, "refresh must not duplicate");
    }

    #[test]
    fn sweep_drops_only_expired() {
        let mut s = NodeStore::new();
        s.put(1, rec(10, 8));
        s.put(2, rec(30, 8));
        s.put(3, rec(u64::MAX, 8));
        assert_eq!(s.sweep(20), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.sweep(20), 0);
    }

    #[test]
    fn live_bytes_ignores_expired() {
        let mut s = NodeStore::new();
        s.put(1, rec(10, 100));
        s.put(2, rec(1000, 28));
        assert_eq!(s.live_bytes(5), 128);
        assert_eq!(s.live_bytes(500), 28);
    }

    #[test]
    fn drain_empties() {
        let mut s = NodeStore::new();
        s.put(1, rec(10, 8));
        s.put(2, rec(20, 8));
        let drained: Vec<_> = s.drain().collect();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
    }
}

//! Explicit Chord finger tables with stabilization.
//!
//! [`crate::ring::Ring::route`] models a *converged* overlay: every
//! routing step consults perfect (implicitly recomputed) fingers. Real
//! Chord nodes hold materialized finger tables and successor lists that
//! go **stale** under churn until the periodic `fix_fingers`/`stabilize`
//! protocol repairs them. This module materializes those tables so
//! experiments can measure what staleness costs:
//!
//! * [`FingerTables::build`] — converged tables for the current ring;
//! * [`FingerTables::route`] — greedy routing over the *stored* tables,
//!   pinging entries before use (a dead entry costs a hop and is
//!   skipped), falling back down the successor list;
//! * [`FingerTables::stabilize_node`] / [`FingerTables::stabilize_fraction`] — the
//!   repair protocol, chargeable per node.
//!
//! A lookup under stale tables can be *misdelivered*: it lands on the
//! node the stale view believes owns the key (e.g. when a recently
//! joined node took over part of the range). [`RouteOutcome`] reports
//! both the delivered node and whether it is the true current owner.

use std::collections::HashMap;

use rand::Rng;

use crate::cost::CostLedger;
use crate::id::cw_contains;
use crate::ring::Ring;

/// Number of successor-list entries each node maintains (Chord suggests
/// `O(log N)`; 8 is plenty for the overlay sizes simulated here).
pub const SUCCESSOR_LIST_LEN: usize = 8;

/// One node's materialized routing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFingers {
    /// `fingers[j] = successor(node + 2^j)` at build/stabilize time.
    pub fingers: Vec<u64>,
    /// The next `SUCCESSOR_LIST_LEN` nodes clockwise at build time.
    pub successors: Vec<u64>,
}

/// Outcome of routing over materialized tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Delivered to the true current owner of the key.
    Delivered(u64),
    /// Delivered to a node the stale view believes is the owner, but the
    /// real owner differs (e.g. a newer join took the range).
    Misdelivered {
        /// Where the lookup landed.
        landed: u64,
        /// The true current owner.
        owner: u64,
    },
    /// Routing got stuck (every known successor of some hop is dead).
    Failed,
}

impl RouteOutcome {
    /// Whether the lookup reached the true owner.
    pub fn is_correct(&self) -> bool {
        matches!(self, RouteOutcome::Delivered(_))
    }
}

/// Materialized finger tables for every node of a ring snapshot.
#[derive(Debug, Clone)]
pub struct FingerTables {
    tables: HashMap<u64, NodeFingers>,
}

impl FingerTables {
    /// Build converged tables for every currently alive node.
    pub fn build(ring: &Ring) -> Self {
        let mut tables = HashMap::with_capacity(ring.len_alive());
        for &node in ring.alive_ids() {
            tables.insert(node, Self::compute_node(ring, node));
        }
        FingerTables { tables }
    }

    /// The converged table of one node under the *current* ring.
    fn compute_node(ring: &Ring, node: u64) -> NodeFingers {
        let fingers = (0..64)
            .map(|j| ring.successor(node.wrapping_add(1u64 << j)))
            .collect();
        let mut successors = Vec::with_capacity(SUCCESSOR_LIST_LEN);
        let mut cur = node;
        for _ in 0..SUCCESSOR_LIST_LEN {
            cur = ring.succ_of(cur);
            successors.push(cur);
            if cur == node {
                break; // tiny ring
            }
        }
        NodeFingers {
            fingers,
            successors,
        }
    }

    /// The stored table of `node`, if any.
    pub fn table_of(&self, node: u64) -> Option<&NodeFingers> {
        self.tables.get(&node)
    }

    /// Re-run the stabilization protocol on one node: recompute its
    /// fingers and successor list from the current ring. Charges the
    /// `O(log N)` lookups the protocol performs (one per finger level
    /// that changed, at least one for the successor check).
    #[allow(clippy::cast_possible_truncation)]
    pub fn stabilize_node(&mut self, ring: &Ring, node: u64, ledger: &mut CostLedger) {
        let fresh = Self::compute_node(ring, node);
        let changed = match self.tables.get(&node) {
            Some(old) => {
                let finger_changes = old
                    .fingers
                    .iter()
                    .zip(&fresh.fingers)
                    .filter(|(a, b)| a != b)
                    .count() as u64;
                finger_changes.max(1)
            }
            None => 64,
        };
        // Each repaired entry costs one lookup's worth of hops.
        ledger.charge_hops(changed * (ring.len_alive().max(2) as f64).log2() as u64 / 2);
        ledger.charge_message(0);
        self.tables.insert(node, fresh);
    }

    /// Stabilize a random `fraction` of the alive nodes (one maintenance
    /// round). Returns how many nodes ran the protocol.
    pub fn stabilize_fraction(
        &mut self,
        ring: &Ring,
        fraction: f64,
        rng: &mut impl Rng,
        ledger: &mut CostLedger,
    ) -> usize {
        assert!((0.0..=1.0).contains(&fraction));
        let nodes: Vec<u64> = ring
            .alive_ids()
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(fraction))
            .collect();
        for &node in &nodes {
            self.stabilize_node(ring, node, ledger);
        }
        nodes.len()
    }

    /// Ensure every alive node has *some* table (new joiners bootstrap by
    /// stabilizing immediately; Chord join does this too).
    pub fn admit_joined(&mut self, ring: &Ring, ledger: &mut CostLedger) -> usize {
        let missing: Vec<u64> = ring
            .alive_ids()
            .iter()
            .copied()
            .filter(|n| !self.tables.contains_key(n))
            .collect();
        for &node in &missing {
            self.stabilize_node(ring, node, ledger);
        }
        missing.len()
    }

    /// Route from `from` to the believed owner of `key` using only the
    /// stored tables. Dead entries are detected on contact (one hop
    /// each) and skipped. Misdelivery and routing failure are reported,
    /// not panicked on.
    pub fn route(&self, ring: &Ring, from: u64, key: u64, ledger: &mut CostLedger) -> RouteOutcome {
        let true_owner = ring.successor(key);
        let mut cur = from;
        // Enough iterations for any monotone path plus dead-entry noise.
        for _ in 0..(4 * 64) {
            let Some(table) = self.tables.get(&cur) else {
                return RouteOutcome::Failed; // node has no table (never stabilized)
            };
            // First alive successor in the stored list.
            let mut alive_succ = None;
            for &s in &table.successors {
                if ring.is_alive(s) {
                    alive_succ = Some(s);
                    break;
                }
                // Pinging a dead successor costs a hop.
                ledger.charge_hops(ring.config().failed_contact_hops);
            }
            let Some(succ) = alive_succ else {
                return RouteOutcome::Failed;
            };
            // Believed delivery: the key falls between us and our (alive)
            // successor.
            if cw_contains(cur, succ, key) {
                ledger.charge_hops(1);
                ledger.record_visit(succ);
                return if succ == true_owner {
                    RouteOutcome::Delivered(succ)
                } else {
                    RouteOutcome::Misdelivered {
                        landed: succ,
                        owner: true_owner,
                    }
                };
            }
            // Closest preceding alive finger.
            let mut next = succ;
            for j in (0..64).rev() {
                let f = table.fingers[j];
                if f != cur && cw_contains(cur, key.wrapping_sub(1), f) {
                    if ring.is_alive(f) {
                        next = f;
                        break;
                    }
                    // Dead finger: detected on contact, try lower level.
                    ledger.charge_hops(ring.config().failed_contact_hops);
                }
            }
            ledger.charge_hops(1);
            ledger.record_visit(next);
            if next == cur {
                return RouteOutcome::Failed; // no progress possible
            }
            cur = next;
        }
        RouteOutcome::Failed
    }
}

/// A **read-only** overlay view that routes with (possibly stale)
/// materialized finger tables instead of the converged ring.
///
/// Lets read-side protocols — DHS counting in particular — run against a
/// churned-but-not-yet-stabilized overlay: lookups land wherever the
/// stale tables deliver them (possibly the wrong node, possibly nowhere),
/// while storage reads and ID-space neighbor links reflect the live ring.
///
/// Writes are not supported: [`Overlay::put_at`](crate::overlay::Overlay::put_at)
/// panics. Insert through
/// the [`Ring`] directly; wrap it in a `StaleView` only for querying.
#[derive(Debug, Clone, Copy)]
pub struct StaleView<'a> {
    ring: &'a Ring,
    tables: &'a FingerTables,
}

impl<'a> StaleView<'a> {
    /// Wrap a ring and a (possibly stale) table snapshot.
    pub fn new(ring: &'a Ring, tables: &'a FingerTables) -> Self {
        StaleView { ring, tables }
    }
}

impl crate::overlay::Overlay for StaleView<'_> {
    fn node_count(&self) -> usize {
        self.ring.len_alive()
    }

    fn time(&self) -> u64 {
        self.ring.now()
    }

    fn owner_of(&self, key: u64) -> u64 {
        self.ring.successor(key)
    }

    /// Route with the stale tables. A misdelivered lookup returns the node
    /// it *landed* on (the reader will simply not find data there); a
    /// failed lookup stays at `from`.
    fn route(&self, from: u64, key: u64, ledger: &mut CostLedger) -> u64 {
        match self.tables.route(self.ring, from, key, ledger) {
            RouteOutcome::Delivered(node) => node,
            RouteOutcome::Misdelivered { landed, .. } => landed,
            RouteOutcome::Failed => from,
        }
    }

    fn next_node(&self, node: u64) -> u64 {
        self.ring.succ_of(node)
    }

    fn prev_node(&self, node: u64) -> u64 {
        self.ring.pred_of(node)
    }

    fn put_at(&mut self, _node: u64, _app_key: u64, _record: crate::storage::StoredRecord) {
        unreachable!("StaleView is read-only: insert through the Ring, query through the view");
    }

    fn fetch_at(&self, node: u64, app_key: u64) -> Option<crate::storage::StoredRecord> {
        self.ring.get_at(node, app_key).copied()
    }

    fn any_node(&self, rng: &mut impl rand::Rng) -> u64 {
        self.ring.random_alive(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, seed: u64) -> (Ring, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = Ring::build(n, RingConfig::default(), &mut rng);
        (r, rng)
    }

    #[test]
    fn fresh_tables_route_like_the_ideal_ring() {
        let (r, mut rng) = ring(128, 1);
        let tables = FingerTables::build(&r);
        for _ in 0..100 {
            let from = r.random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut l1 = CostLedger::new();
            let mut l2 = CostLedger::new();
            let outcome = tables.route(&r, from, key, &mut l1);
            let ideal = r.route(from, key, &mut l2);
            assert_eq!(outcome, RouteOutcome::Delivered(ideal));
            // Hop counts agree on a converged overlay.
            assert_eq!(l1.hops(), l2.hops());
        }
    }

    #[test]
    fn routing_survives_failures_with_extra_hops() {
        let (mut r, mut rng) = ring(256, 2);
        let tables = FingerTables::build(&r);
        r.fail_random(0.2, &mut rng);
        let mut correct = 0;
        let mut failed = 0;
        let trials = 200;
        for _ in 0..trials {
            let from = r.random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut ledger = CostLedger::new();
            match tables.route(&r, from, key, &mut ledger) {
                RouteOutcome::Delivered(_) => correct += 1,
                RouteOutcome::Misdelivered { .. } => {}
                RouteOutcome::Failed => failed += 1,
            }
        }
        // Successor lists of length 8 make total failure very unlikely at
        // 20% churn; most lookups still reach the true owner.
        assert!(failed <= trials / 50, "failed {failed}/{trials}");
        assert!(correct >= trials * 8 / 10, "correct {correct}/{trials}");
    }

    #[test]
    fn joins_cause_misdelivery_until_stabilized() {
        let (mut r, mut rng) = ring(64, 3);
        let mut tables = FingerTables::build(&r);
        // Many new nodes join; old tables don't know them.
        for _ in 0..64 {
            loop {
                let id: u64 = rng.gen();
                if r.store_of(id).is_none() {
                    r.join(id);
                    break;
                }
            }
        }
        let mut ledger = CostLedger::new();
        tables.admit_joined(&r, &mut ledger);
        let mut mis = 0;
        let trials = 300;
        for _ in 0..trials {
            // Route from an *old* node so its stale view is exercised.
            let from = *tables
                .tables
                .keys()
                .find(|n| r.is_alive(**n))
                .expect("old node alive");
            let key: u64 = rng.gen();
            let mut l = CostLedger::new();
            if !tables.route(&r, from, key, &mut l).is_correct() {
                mis += 1;
            }
        }
        assert!(mis > 0, "doubling the ring must misdeliver sometimes");

        // Full stabilization repairs everything.
        let mut l = CostLedger::new();
        for &node in r.alive_ids().to_vec().iter() {
            tables.stabilize_node(&r, node, &mut l);
        }
        assert!(l.hops() > 0, "stabilization costs hops");
        for _ in 0..100 {
            let from = r.random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut l = CostLedger::new();
            assert!(tables.route(&r, from, key, &mut l).is_correct());
        }
    }

    #[test]
    fn stabilize_fraction_repairs_progressively() {
        let (mut r, mut rng) = ring(128, 4);
        let mut tables = FingerTables::build(&r);
        r.fail_random(0.3, &mut rng);
        let error_rate = |tables: &FingerTables, rng: &mut StdRng| {
            let trials = 200;
            let mut bad = 0;
            for _ in 0..trials {
                let from = r.random_alive(rng);
                let key: u64 = rng.gen();
                let mut l = CostLedger::new();
                if !tables.route(&r, from, key, &mut l).is_correct() {
                    bad += 1;
                }
            }
            bad
        };
        let before_hops = {
            let mut total = 0;
            for _ in 0..100 {
                let from = r.random_alive(&mut rng);
                let key: u64 = rng.gen();
                let mut l = CostLedger::new();
                let _ = tables.route(&r, from, key, &mut l);
                total += l.hops();
            }
            total
        };
        let bad_before = error_rate(&tables, &mut rng);
        let mut ledger = CostLedger::new();
        tables.stabilize_fraction(&r, 1.0, &mut rng, &mut ledger);
        let bad_after = error_rate(&tables, &mut rng);
        assert!(bad_after <= bad_before);
        // And routing gets cheaper after repair (no dead-entry pings).
        let after_hops = {
            let mut total = 0;
            for _ in 0..100 {
                let from = r.random_alive(&mut rng);
                let key: u64 = rng.gen();
                let mut l = CostLedger::new();
                let _ = tables.route(&r, from, key, &mut l);
                total += l.hops();
            }
            total
        };
        assert!(after_hops <= before_hops, "{after_hops} > {before_hops}");
    }

    #[test]
    fn single_node_ring_tables() {
        let (r, mut rng) = ring(1, 5);
        let tables = FingerTables::build(&r);
        let only = r.alive_ids()[0];
        let mut l = CostLedger::new();
        let key: u64 = rng.gen();
        assert_eq!(
            tables.route(&r, only, key, &mut l),
            RouteOutcome::Delivered(only)
        );
    }
}

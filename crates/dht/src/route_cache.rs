//! An LRU route cache over any [`Overlay`] (`dhs-fast` layer 2).
//!
//! Chord resolves a key in `O(log N)` hops, and DHS pays that price on
//! every insertion and every interval lookup. But ownership is coarse:
//! one lookup to owner `s` teaches the requester the whole ownership
//! range `(pred(s), s]` — Chord lookup replies carry the owner's
//! predecessor precisely so callers can cache it. [`CachedOverlay`]
//! exploits that: it remembers recent `(pred, owner]` resolutions and
//! answers later lookups that fall inside a cached range with a single
//! direct hop to the cached owner.
//!
//! Staleness is handled the way a real deployment handles it: the cached
//! owner is *contacted* (one hop) and either confirms it still owns the
//! key or the requester falls back to a full routed lookup. The
//! simulator models the confirm/redirect with an authoritative
//! [`Overlay::owner_of`] check, so a cached lookup can **never** return
//! a node that no longer owns the key — joins that split a cached range
//! and departures of a cached owner are both caught, the entry is
//! evicted, and the full route re-primes the cache. Explicit
//! [`CachedOverlay::invalidate_node`] / [`CachedOverlay::clear_cache`]
//! hooks let churn-aware callers drop entries eagerly instead of paying
//! the one-hop stale contact.
//!
//! Because `owner_of` stays authoritative (it never consults the cache),
//! everything *stored or fetched* through a `CachedOverlay` lands exactly
//! where it would on the bare overlay — the cache can only change hop
//! and message counts, never placement, which is what keeps DHS stored
//! state and estimates byte-identical with the cache on or off.

use std::cell::RefCell;

use rand::Rng;

use dhs_obs::{names, Recorder};

use crate::cost::CostLedger;
use crate::id::cw_contains;
use crate::overlay::Overlay;
use crate::storage::StoredRecord;

/// Hit/miss/eviction counters of a [`RouteCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered from a cached ownership range (one direct hop).
    pub hits: u64,
    /// Lookups that fell through to a full routed lookup.
    pub misses: u64,
    /// Cached entries dropped because the contacted owner no longer
    /// owned the key (departed, or a join split its range).
    pub stale_evictions: u64,
    /// Entries dropped through [`RouteCache::invalidate_node`] /
    /// [`RouteCache::clear`].
    pub invalidations: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Predecessor of `owner` at caching time: the cached claim is
    /// "`owner` owns `(pred, owner]`".
    pred: u64,
    owner: u64,
    last_used: u64,
}

/// A fixed-capacity LRU map from key ranges to their resolved owners.
///
/// Capacity is small (default 128) and lookups are a linear scan —
/// deterministic, allocation-free after construction, and far below the
/// cost of even one routing hop at these sizes.
#[derive(Debug, Clone)]
pub struct RouteCache {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
    stats: RouteCacheStats,
}

impl RouteCache {
    /// Default entry capacity.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// An empty cache holding at most `capacity` ownership ranges.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "route cache needs capacity ≥ 1");
        RouteCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: RouteCacheStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> RouteCacheStats {
        self.stats
    }

    /// Number of cached ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached owner whose range contains `key`, if any (refreshes its
    /// LRU position; does not count a hit — the caller decides whether
    /// the candidate validates).
    fn candidate(&mut self, key: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let hit = self
            .entries
            .iter_mut()
            .find(|e| cw_contains(e.pred, e.owner, key))?;
        hit.last_used = tick;
        Some(hit.owner)
    }

    /// Cache "`owner` owns `(pred, owner]`", evicting the least recently
    /// used entry when full. A stale entry for the same owner is replaced.
    fn insert(&mut self, pred: u64, owner: u64) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.owner == owner) {
            e.pred = pred;
            e.last_used = self.tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                // dhs-lint: allow(panic_hygiene) — invariant: capacity is validated nonzero at construction.
                .expect("capacity ≥ 1");
            self.entries.swap_remove(lru);
        }
        self.entries.push(Entry {
            pred,
            owner,
            last_used: self.tick,
        });
    }

    /// Drop the entry claiming `owner` as an owner, counting a stale
    /// eviction.
    fn evict_stale(&mut self, owner: u64) {
        if let Some(i) = self.entries.iter().position(|e| e.owner == owner) {
            self.entries.swap_remove(i);
            self.stats.stale_evictions += 1;
        }
    }

    /// Churn hook: drop every entry that names `node` as owner *or* as the
    /// range predecessor (a departed predecessor widens the successor's
    /// true range, so the cached range boundary is wrong too).
    pub fn invalidate_node(&mut self, node: u64) {
        let before = self.entries.len();
        self.entries.retain(|e| e.owner != node && e.pred != node);
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Drop everything (e.g. after a churn burst).
    pub fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }
}

impl Default for RouteCache {
    fn default() -> Self {
        RouteCache::new(Self::DEFAULT_CAPACITY)
    }
}

/// An [`Overlay`] wrapper that serves routed lookups from a [`RouteCache`]
/// when possible. See the module docs for the staleness contract.
#[derive(Debug)]
pub struct CachedOverlay<O> {
    inner: O,
    cache: RefCell<RouteCache>,
}

impl<O: Overlay> CachedOverlay<O> {
    /// Wrap `inner` with a default-capacity route cache.
    pub fn new(inner: O) -> Self {
        Self::with_cache(inner, RouteCache::default())
    }

    /// Wrap `inner` with an explicit cache.
    pub fn with_cache(inner: O, cache: RouteCache) -> Self {
        CachedOverlay {
            inner,
            cache: RefCell::new(cache),
        }
    }

    /// The wrapped overlay.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The wrapped overlay, mutably (churn operations go here; pair them
    /// with [`Self::invalidate_node`] or rely on the stale-contact
    /// fallback).
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Unwrap into the overlay and the cache.
    pub fn into_parts(self) -> (O, RouteCache) {
        (self.inner, self.cache.into_inner())
    }

    /// Cache counters so far.
    pub fn cache_stats(&self) -> RouteCacheStats {
        self.cache.borrow().stats()
    }

    /// Churn hook: forget every cached range involving `node`.
    pub fn invalidate_node(&self, node: u64) {
        self.cache.borrow_mut().invalidate_node(node);
    }

    /// Forget all cached ranges.
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }
}

impl<O: Overlay> Overlay for CachedOverlay<O> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn time(&self) -> u64 {
        self.inner.time()
    }

    /// Authoritative — never consults the cache, so placement decisions
    /// made through a `CachedOverlay` match the bare overlay exactly.
    fn owner_of(&self, key: u64) -> u64 {
        self.inner.owner_of(key)
    }

    fn route(&self, from: u64, key: u64, ledger: &mut CostLedger) -> u64 {
        let candidate = self.cache.borrow_mut().candidate(key);
        if let Some(owner) = candidate {
            if self.inner.owner_of(key) == owner {
                // Confirmed: one direct hop to the cached owner (free when
                // the requester is the owner, like a converged self-route).
                let mut cache = self.cache.borrow_mut();
                cache.stats.hits += 1;
                if owner != from {
                    ledger.charge_hops(1);
                    ledger.record_visit(owner);
                }
                return owner;
            }
            // Stale: the contact cost one hop and got a redirect (or a
            // timeout from a departed node); evict and fall through.
            ledger.charge_hops(1);
            self.cache.borrow_mut().evict_stale(owner);
        }
        let owner = self.inner.route(from, key, ledger);
        let pred = self.inner.prev_node(owner);
        {
            let mut cache = self.cache.borrow_mut();
            cache.stats.misses += 1;
            cache.insert(pred, owner);
        }
        owner
    }

    fn route_observed(
        &self,
        from: u64,
        key: u64,
        ledger: &mut CostLedger,
        obs: &mut dyn Recorder,
    ) -> u64 {
        let before = self.cache_stats();
        let hops_before = ledger.hops();
        let owner = self.route(from, key, ledger);
        obs.observe(names::ROUTE_HOPS, ledger.hops() - hops_before);
        let after = self.cache_stats();
        obs.incr(names::ROUTE_CACHE_HIT, after.hits - before.hits);
        obs.incr(names::ROUTE_CACHE_MISS, after.misses - before.misses);
        obs.incr(
            names::ROUTE_CACHE_STALE,
            after.stale_evictions - before.stale_evictions,
        );
        owner
    }

    fn next_node(&self, node: u64) -> u64 {
        self.inner.next_node(node)
    }

    fn prev_node(&self, node: u64) -> u64 {
        self.inner.prev_node(node)
    }

    fn put_at(&mut self, node: u64, app_key: u64, record: StoredRecord) {
        self.inner.put_at(node, app_key, record);
    }

    fn fetch_at(&self, node: u64, app_key: u64) -> Option<StoredRecord> {
        self.inner.fetch_at(node, app_key)
    }

    fn any_node(&self, rng: &mut impl Rng) -> u64 {
        self.inner.any_node(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{Ring, RingConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, seed: u64) -> Ring {
        let mut rng = StdRng::seed_from_u64(seed);
        Ring::build(n, RingConfig::default(), &mut rng)
    }

    #[test]
    fn repeat_lookups_hit_and_cost_one_hop() {
        let overlay = CachedOverlay::new(ring(256, 1));
        let from = overlay.inner().alive_ids()[0];
        let key = 0xDEAD_BEEF_CAFE_F00Du64;

        let mut ledger = CostLedger::new();
        let first = overlay.route(from, key, &mut ledger);
        assert_eq!(first, overlay.inner().successor(key));
        let cold_hops = ledger.hops();

        let mut ledger = CostLedger::new();
        let second = overlay.route(from, key, &mut ledger);
        assert_eq!(second, first);
        assert_eq!(ledger.hops(), 1, "warm lookup is one direct hop");
        assert!(cold_hops >= 1);
        let stats = overlay.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn nearby_keys_share_a_cached_range() {
        let overlay = CachedOverlay::new(ring(64, 2));
        let from = overlay.inner().alive_ids()[0];
        let owner_id = overlay.inner().alive_ids()[10];
        let mut ledger = CostLedger::new();
        // Prime with the owner's own id, then look up another key in the
        // same ownership range.
        overlay.route(from, owner_id, &mut ledger);
        let pred = overlay.inner().pred_of(owner_id);
        let inside = pred.wrapping_add(1 + (owner_id.wrapping_sub(pred)) / 2);
        let mut warm = CostLedger::new();
        assert_eq!(overlay.route(from, inside, &mut warm), owner_id);
        assert_eq!(warm.hops(), 1);
        assert_eq!(overlay.cache_stats().hits, 1);
    }

    #[test]
    fn routes_match_bare_overlay_everywhere() {
        let bare = ring(128, 3);
        let overlay = CachedOverlay::new(bare.clone());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let from = bare.random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut l1 = CostLedger::new();
            let mut l2 = CostLedger::new();
            assert_eq!(
                overlay.route(from, key, &mut l1),
                bare.route(from, key, &mut l2)
            );
        }
        let stats = overlay.cache_stats();
        assert!(stats.hits > 0, "a 500-draw workload must hit sometimes");
    }

    #[test]
    fn departed_owner_is_never_returned() {
        let mut overlay = CachedOverlay::new(ring(64, 4));
        let from = overlay.inner().alive_ids()[0];
        let victim = overlay.inner().alive_ids()[20];
        let mut ledger = CostLedger::new();
        // Cache the victim's range, then fail the victim.
        overlay.route(from, victim, &mut ledger);
        overlay.inner_mut().fail_node(victim);
        let got = overlay.route(from, victim, &mut ledger);
        assert_ne!(got, victim);
        assert_eq!(got, overlay.inner().successor(victim));
        assert_eq!(overlay.cache_stats().stale_evictions, 1);
    }

    #[test]
    fn join_splitting_a_range_is_caught() {
        let mut overlay = CachedOverlay::new(ring(32, 5));
        let from = overlay.inner().alive_ids()[0];
        let owner = overlay.inner().alive_ids()[7];
        let pred = overlay.inner().pred_of(owner);
        let mid = pred.wrapping_add((owner.wrapping_sub(pred)) / 2);
        let key = pred.wrapping_add(1);
        let mut ledger = CostLedger::new();
        assert_eq!(overlay.route(from, key, &mut ledger), owner);
        // A newcomer takes over (pred, mid]; the cached range is stale.
        overlay.inner_mut().join(mid);
        assert_eq!(overlay.route(from, key, &mut ledger), mid);
        assert_eq!(overlay.cache_stats().stale_evictions, 1);
    }

    #[test]
    fn invalidate_node_drops_owner_and_pred_entries() {
        let overlay = CachedOverlay::new(ring(32, 6));
        let from = overlay.inner().alive_ids()[0];
        let a = overlay.inner().alive_ids()[3];
        let b = overlay.inner().next_node(a);
        let mut ledger = CostLedger::new();
        overlay.route(from, a, &mut ledger); // entry (pred(a), a]
        overlay.route(from, b, &mut ledger); // entry (a, b]
        overlay.invalidate_node(a);
        let stats = overlay.cache_stats();
        assert_eq!(stats.invalidations, 2, "both entries name node a");
        let mut warm = CostLedger::new();
        overlay.route(from, b, &mut warm);
        assert!(warm.hops() > 0 || b == from, "entry was really gone");
    }

    #[test]
    fn lru_evicts_oldest_range() {
        let mut cache = RouteCache::new(2);
        cache.insert(0, 10);
        cache.insert(10, 20);
        assert!(cache.candidate(15).is_some()); // touches (10, 20]
        cache.insert(20, 30); // evicts (0, 10]
        assert_eq!(cache.len(), 2);
        assert!(cache.candidate(5).is_none(), "LRU entry evicted");
        assert!(cache.candidate(25).is_some());
    }

    #[test]
    fn single_node_ring_caches_full_circle() {
        let overlay = CachedOverlay::new(ring(1, 7));
        let only = overlay.inner().alive_ids()[0];
        let mut ledger = CostLedger::new();
        assert_eq!(overlay.route(only, 12345, &mut ledger), only);
        assert_eq!(overlay.route(only, 99999, &mut ledger), only);
        assert_eq!(ledger.hops(), 0, "self-routes stay free through the cache");
        assert_eq!(overlay.cache_stats().hits, 1);
    }
}

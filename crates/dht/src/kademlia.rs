//! A Kademlia-style XOR-metric overlay.
//!
//! Same node population machinery as the Chord [`Ring`] (it wraps one for
//! storage, liveness and the numeric neighbor links), but with Kademlia's
//! geometry:
//!
//! * **ownership**: the owner of a key is the alive node with minimal
//!   XOR distance to it;
//! * **routing**: greedy prefix refinement — each hop moves to a contact
//!   sharing at least one more leading bit with the target (the node a
//!   real Kademlia node would find in the corresponding k-bucket),
//!   `O(log N)` hops in expectation.
//!
//! Existing so that `dhs-core`, written against the [`Overlay`] trait,
//! can run *unchanged* over a second DHT geometry — the paper's
//! "DHT-agnostic" claim, made testable.

use rand::Rng;

use crate::cost::CostLedger;
use crate::overlay::Overlay;
use crate::ring::{Ring, RingConfig};
use crate::storage::StoredRecord;

/// The XOR-metric overlay.
#[derive(Debug, Clone)]
pub struct Kademlia {
    inner: Ring,
}

impl Kademlia {
    /// Build an overlay of `n` nodes with uniform identifiers.
    pub fn build(n: usize, cfg: RingConfig, rng: &mut impl Rng) -> Self {
        Kademlia {
            inner: Ring::build(n, cfg, rng),
        }
    }

    /// Wrap an existing node population (shares ids and stores).
    pub fn from_ring(inner: Ring) -> Self {
        Kademlia { inner }
    }

    /// The underlying node population (storage, churn, clock).
    pub fn ring(&self) -> &Ring {
        &self.inner
    }

    /// Mutable access to the underlying population.
    pub fn ring_mut(&mut self) -> &mut Ring {
        &mut self.inner
    }

    /// The alive node with minimal XOR distance to `key`.
    ///
    /// Implemented by descending the implicit binary trie over the sorted
    /// identifier array: at each bit, restrict to the half matching the
    /// key's bit when non-empty.
    pub fn xor_closest(&self, key: u64) -> u64 {
        let ids = self.inner.alive_ids();
        debug_assert!(!ids.is_empty());
        let (mut lo, mut hi) = (0usize, ids.len()); // candidate range
        for bit in (0..64).rev() {
            if hi - lo <= 1 {
                break;
            }
            // The candidates share all bits above `bit`; being sorted,
            // they split at the first id with `bit` set.
            let mask = 1u64 << bit;
            let split = ids[lo..hi].partition_point(|&id| id & mask == 0) + lo;
            let key_bit_set = key & mask != 0;
            if key_bit_set {
                if split < hi {
                    lo = split; // ids with the bit set exist: take them
                } // else keep the zero side (forced mismatch)
            } else if split > lo {
                hi = split;
            }
        }
        ids[lo]
    }

    /// Length of the common bit prefix of `a` and `b`.
    fn lcp(a: u64, b: u64) -> u32 {
        (a ^ b).leading_zeros()
    }

    /// Smallest alive id sharing the top `prefix_len` bits of `key`,
    /// if any ("the bucket head" a node would know for that block).
    fn block_head(&self, key: u64, prefix_len: u32) -> Option<u64> {
        debug_assert!(prefix_len <= 64);
        let ids = self.inner.alive_ids();
        if prefix_len == 0 {
            return ids.first().copied();
        }
        let shift = 64 - prefix_len;
        let lo = if shift == 64 {
            0
        } else {
            (key >> shift) << shift
        };
        let hi = if shift == 0 {
            lo
        } else {
            lo | ((1u64 << shift) - 1)
        };
        let start = ids.partition_point(|&id| id < lo);
        if start < ids.len() && ids[start] <= hi {
            Some(ids[start])
        } else {
            None
        }
    }
}

impl Overlay for Kademlia {
    fn node_count(&self) -> usize {
        self.inner.len_alive()
    }

    fn time(&self) -> u64 {
        self.inner.now()
    }

    fn owner_of(&self, key: u64) -> u64 {
        self.xor_closest(key)
    }

    fn route(&self, from: u64, key: u64, ledger: &mut CostLedger) -> u64 {
        let owner = self.xor_closest(key);
        let mut cur = from;
        for _ in 0..128 {
            if cur == owner {
                return cur;
            }
            let p = Self::lcp(cur, key);
            // The contact in cur's bucket for "differs at bit p": some
            // node sharing p+1 bits with the key. If none exists, cur's
            // block is the owner's block and cur can reach the owner
            // directly (it is in cur's own neighborhood bucket).
            let next = self.block_head(key, p + 1).unwrap_or(owner);
            ledger.charge_hops(1);
            ledger.record_visit(next);
            if next == cur {
                // cur is the block head itself; final hop to the owner.
                ledger.charge_hops(1);
                ledger.record_visit(owner);
                return owner;
            }
            cur = next;
        }
        unreachable!("XOR routing failed to converge");
    }

    fn next_node(&self, node: u64) -> u64 {
        self.inner.succ_of(node)
    }

    fn prev_node(&self, node: u64) -> u64 {
        self.inner.pred_of(node)
    }

    fn put_at(&mut self, node: u64, app_key: u64, record: StoredRecord) {
        self.inner.store_at(node, app_key, record);
    }

    fn fetch_at(&self, node: u64, app_key: u64) -> Option<StoredRecord> {
        self.inner.get_at(node, app_key).copied()
    }

    fn any_node(&self, rng: &mut impl rand::Rng) -> u64 {
        self.inner.random_alive(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn overlay(n: usize, seed: u64) -> (Kademlia, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = Kademlia::build(n, RingConfig::default(), &mut rng);
        (k, rng)
    }

    #[test]
    fn xor_closest_matches_linear_scan() {
        let (k, mut rng) = overlay(100, 1);
        for _ in 0..200 {
            let key: u64 = rng.gen();
            let got = k.xor_closest(key);
            let want = k
                .ring()
                .alive_ids()
                .iter()
                .copied()
                .min_by_key(|&id| id ^ key)
                .unwrap();
            assert_eq!(got, want, "key {key:#x}");
        }
    }

    #[test]
    fn routing_reaches_the_xor_owner() {
        let (k, mut rng) = overlay(256, 2);
        for _ in 0..100 {
            let from = k.ring().random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut ledger = CostLedger::new();
            let got = k.route(from, key, &mut ledger);
            assert_eq!(got, k.xor_closest(key));
        }
    }

    #[test]
    fn routing_hops_are_logarithmic() {
        let (k, mut rng) = overlay(1024, 3);
        let mut total = 0u64;
        let trials = 300;
        for _ in 0..trials {
            let from = k.ring().random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut ledger = CostLedger::new();
            k.route(from, key, &mut ledger);
            total += ledger.hops();
        }
        let avg = total as f64 / f64::from(trials);
        // Prefix-refinement: about one hop per resolved bit among the
        // log2(N) meaningful ones.
        assert!((3.0..15.0).contains(&avg), "avg hops {avg}");
    }

    #[test]
    fn ownership_partition_is_total() {
        // Every key has exactly one owner; owners are alive.
        let (mut k, mut rng) = overlay(64, 4);
        k.ring_mut().fail_random(0.3, &mut rng);
        for _ in 0..100 {
            let key: u64 = rng.gen();
            let owner = k.owner_of(key);
            assert!(k.ring().is_alive(owner));
        }
    }

    #[test]
    fn storage_round_trips_via_trait() {
        let (mut k, mut rng) = overlay(32, 5);
        let key: u64 = rng.gen();
        let owner = k.owner_of(key);
        k.put_at(
            owner,
            42,
            StoredRecord {
                expires_at: u64::MAX,
                size_bytes: 8,
                routing_key: key,
            },
        );
        assert!(k.fetch_at(owner, 42).is_some());
        assert!(k.fetch_at(k.next_node(owner), 42).is_none() || k.node_count() == 1);
    }

    #[test]
    fn numeric_neighbors_are_ring_neighbors() {
        let (k, _) = overlay(20, 6);
        for &id in k.ring().alive_ids() {
            assert_eq!(k.prev_node(k.next_node(id)), id);
        }
    }
}

//! The Chord-like overlay ring.
//!
//! Nodes live on the `u64` identifier circle; node `s` owns the keys in
//! `(pred(s), s]`. Routing simulates Chord's greedy
//! closest-preceding-finger rule over the *converged* overlay: the finger
//! of node `x` for level `j` is `successor(x + 2^j)`, computed on demand
//! from the sorted alive-node array. This is exactly the hop count of a
//! Chord network whose finger tables are up to date — the regime the
//! paper's evaluation assumes — without paying `O(N log N)` memory.
//!
//! A logical clock (`now`) drives the soft-state TTL semantics of the
//! per-node stores.

use std::collections::BTreeMap;

use rand::Rng;

use crate::cost::{CostLedger, LoadSummary};
use crate::id::cw_contains;
use crate::storage::{NodeStore, StoredRecord};

/// Ring construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Hops charged when an operation contacts a node that turns out to
    /// have failed (timeout + retry cost). Default 1.
    pub failed_contact_hops: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            failed_contact_hops: 1,
        }
    }
}

/// State of a single overlay node.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// False once the node has crashed (fail-stop); its store is then
    /// unreachable but retained, mirroring a machine that may later rejoin.
    pub alive: bool,
    /// The node's local soft-state store.
    pub store: NodeStore,
}

/// The simulated DHT overlay.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted identifiers of alive nodes.
    alive_ids: Vec<u64>,
    /// All nodes ever part of the overlay, alive or failed. Ordered map:
    /// `sweep_all` iterates it, and replayed runs must visit stores in
    /// identifier order, not `HashMap` seed order.
    nodes: BTreeMap<u64, NodeState>,
    /// Logical clock for TTL semantics.
    now: u64,
    cfg: RingConfig,
}

impl Ring {
    /// Build a ring of `n` nodes with identifiers drawn uniformly from the
    /// 64-bit space (the paper creates them by hashing node addresses with
    /// MD4; a seeded uniform draw is distributionally identical).
    ///
    /// Panics if `n == 0`.
    pub fn build(n: usize, cfg: RingConfig, rng: &mut impl Rng) -> Self {
        assert!(n > 0, "a ring needs at least one node");
        let mut ids = Vec::with_capacity(n);
        let mut nodes = BTreeMap::new();
        while ids.len() < n {
            let id: u64 = rng.gen();
            if nodes.contains_key(&id) {
                continue; // astronomically rare, but keep ids unique
            }
            nodes.insert(
                id,
                NodeState {
                    alive: true,
                    store: NodeStore::new(),
                },
            );
            ids.push(id);
        }
        ids.sort_unstable();
        Ring {
            alive_ids: ids,
            nodes,
            now: 0,
            cfg,
        }
    }

    /// Number of alive nodes.
    pub fn len_alive(&self) -> usize {
        self.alive_ids.len()
    }

    /// Total number of nodes ever seen (alive + failed).
    pub fn len_total(&self) -> usize {
        self.nodes.len()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance the logical clock by `dt`.
    pub fn advance_time(&mut self, dt: u64) {
        self.now += dt;
    }

    /// The ring configuration.
    pub fn config(&self) -> RingConfig {
        self.cfg
    }

    /// Sorted identifiers of the alive nodes.
    pub fn alive_ids(&self) -> &[u64] {
        &self.alive_ids
    }

    /// Whether `node` exists and is alive.
    pub fn is_alive(&self, node: u64) -> bool {
        self.nodes.get(&node).is_some_and(|n| n.alive)
    }

    /// The alive node owning `key`: the first alive identifier
    /// clockwise-≥ `key` (wrapping).
    pub fn successor(&self, key: u64) -> u64 {
        let ids = &self.alive_ids;
        debug_assert!(!ids.is_empty());
        match ids.binary_search(&key) {
            Ok(i) => ids[i],
            Err(i) if i == ids.len() => ids[0],
            Err(i) => ids[i],
        }
    }

    /// The alive node immediately clockwise of `node` (its successor link).
    pub fn succ_of(&self, node: u64) -> u64 {
        self.successor(node.wrapping_add(1))
    }

    /// The alive node immediately counter-clockwise of `node`.
    pub fn pred_of(&self, node: u64) -> u64 {
        let ids = &self.alive_ids;
        match ids.binary_search(&node) {
            // dhs-lint: allow(panic_hygiene) — invariant: ring construction
            // guarantees at least one node.
            Ok(0) | Err(0) => *ids.last().expect("non-empty ring"),
            Ok(i) => ids[i - 1],
            Err(i) => ids[i - 1],
        }
    }

    /// A uniformly random alive node.
    pub fn random_alive(&self, rng: &mut impl Rng) -> u64 {
        self.alive_ids[rng.gen_range(0..self.alive_ids.len())]
    }

    /// Route from node `from` to the owner of `key` with Chord greedy
    /// finger routing, charging one hop per routing step (and recording
    /// each intermediate delivery as a visit). Returns the owner.
    pub fn route(&self, from: u64, key: u64, ledger: &mut CostLedger) -> u64 {
        debug_assert!(self.is_alive(from), "routing must start at a live node");
        let owner = self.successor(key);
        let mut cur = from;
        // Safety valve: greedy Chord terminates in ≤ 64 finger jumps.
        for _ in 0..128 {
            if cur == owner {
                return cur;
            }
            // If the key falls between us and our successor, the successor
            // is the owner: final hop.
            let succ = self.succ_of(cur);
            if cw_contains(cur, succ, key) {
                ledger.charge_hops(1);
                ledger.record_visit(succ);
                return succ;
            }
            // Closest preceding finger: the largest j with
            // successor(cur + 2^j) still strictly between us and the key.
            let dist = key.wrapping_sub(cur);
            let mut next = succ; // fallback: always progresses
            let max_j = 63 - dist.leading_zeros().min(63);
            for j in (0..=max_j).rev() {
                let finger = self.successor(cur.wrapping_add(1u64 << j));
                if finger != cur && cw_contains(cur, key.wrapping_sub(1), finger) {
                    next = finger;
                    break;
                }
            }
            ledger.charge_hops(1);
            ledger.record_visit(next);
            cur = next;
        }
        unreachable!("greedy Chord routing failed to converge");
    }

    /// Store a record at `node` under the application key `app_key`.
    ///
    /// `node` must be alive. Re-storing an existing `app_key` refreshes
    /// the record in place (soft-state refresh).
    pub fn store_at(&mut self, node: u64, app_key: u64, record: StoredRecord) {
        // dhs-lint: allow(panic_hygiene) — invariant: callers pass ids owned
        // by this ring.
        let state = self.nodes.get_mut(&node).expect("unknown node");
        assert!(state.alive, "cannot store at a failed node");
        state.store.put(app_key, record);
    }

    /// Read a live (non-expired) record from `node`; `None` if the node is
    /// failed, unknown, or holds no live record for `app_key`.
    pub fn get_at(&self, node: u64, app_key: u64) -> Option<&StoredRecord> {
        let state = self.nodes.get(&node)?;
        if !state.alive {
            return None;
        }
        state.store.get(app_key, self.now)
    }

    /// Direct read-only access to a node's store (experiments and
    /// handoff); `None` for unknown nodes.
    pub fn store_of(&self, node: u64) -> Option<&NodeStore> {
        self.nodes.get(&node).map(|n| &n.store)
    }

    /// Mutable access to a node's state (crate-internal: churn handoff).
    pub(crate) fn node_mut(&mut self, node: u64) -> Option<&mut NodeState> {
        self.nodes.get_mut(&node)
    }

    /// Insert a brand-new node record (crate-internal: churn join).
    pub(crate) fn insert_node(&mut self, id: u64, state: NodeState) {
        let pos = self
            .alive_ids
            .binary_search(&id)
            .expect_err("node id already present");
        self.alive_ids.insert(pos, id);
        self.nodes.insert(id, state);
    }

    /// Re-insert an existing node id into the alive view at `pos`
    /// (crate-internal: churn revive).
    pub(crate) fn insert_alive(&mut self, pos: usize, id: u64) {
        self.alive_ids.insert(pos, id);
    }

    /// Remove `id` from the alive view (crate-internal: churn).
    pub(crate) fn remove_alive(&mut self, id: u64) {
        if let Ok(pos) = self.alive_ids.binary_search(&id) {
            self.alive_ids.remove(pos);
        }
    }

    /// Expire old records everywhere; returns the number dropped.
    pub fn sweep_all(&mut self) -> usize {
        let now = self.now;
        self.nodes.values_mut().map(|n| n.store.sweep(now)).sum()
    }

    /// Storage-load summary (live bytes per alive node).
    pub fn storage_summary(&self) -> LoadSummary {
        let now = self.now;
        LoadSummary::from_counts(
            self.alive_ids
                .iter()
                .map(|id| self.nodes[id].store.live_bytes(now)),
        )
    }

    /// Total live stored bytes across alive nodes.
    pub fn total_live_bytes(&self) -> u64 {
        let now = self.now;
        self.alive_ids
            .iter()
            .map(|id| self.nodes[id].store.live_bytes(now))
            .sum()
    }
}

impl crate::overlay::Overlay for Ring {
    fn node_count(&self) -> usize {
        self.len_alive()
    }

    fn time(&self) -> u64 {
        self.now()
    }

    fn owner_of(&self, key: u64) -> u64 {
        self.successor(key)
    }

    fn route(&self, from: u64, key: u64, ledger: &mut CostLedger) -> u64 {
        Ring::route(self, from, key, ledger)
    }

    fn next_node(&self, node: u64) -> u64 {
        self.succ_of(node)
    }

    fn prev_node(&self, node: u64) -> u64 {
        self.pred_of(node)
    }

    fn put_at(&mut self, node: u64, app_key: u64, record: StoredRecord) {
        self.store_at(node, app_key, record);
    }

    fn fetch_at(&self, node: u64, app_key: u64) -> Option<StoredRecord> {
        self.get_at(node, app_key).copied()
    }

    fn any_node(&self, rng: &mut impl rand::Rng) -> u64 {
        self.random_alive(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, seed: u64) -> Ring {
        let mut rng = StdRng::seed_from_u64(seed);
        Ring::build(n, RingConfig::default(), &mut rng)
    }

    #[test]
    fn build_is_deterministic() {
        let a = ring(64, 1);
        let b = ring(64, 1);
        assert_eq!(a.alive_ids(), b.alive_ids());
        assert_ne!(a.alive_ids(), ring(64, 2).alive_ids());
    }

    #[test]
    fn successor_wraps_and_matches_linear_scan() {
        let r = ring(50, 3);
        let ids = r.alive_ids().to_vec();
        for key in [0u64, 1, u64::MAX, ids[0], ids[10], ids[10] + 1] {
            let expected = ids.iter().copied().find(|&id| id >= key).unwrap_or(ids[0]);
            assert_eq!(r.successor(key), expected, "key {key}");
        }
    }

    #[test]
    fn succ_pred_are_inverse() {
        let r = ring(40, 4);
        for &id in r.alive_ids() {
            assert_eq!(r.pred_of(r.succ_of(id)), id);
            assert_eq!(r.succ_of(r.pred_of(id)), id);
        }
    }

    #[test]
    fn succ_of_last_wraps_to_first() {
        let r = ring(10, 5);
        let ids = r.alive_ids();
        assert_eq!(r.succ_of(*ids.last().unwrap()), ids[0]);
        assert_eq!(r.pred_of(ids[0]), *ids.last().unwrap());
    }

    #[test]
    fn route_reaches_owner_from_everywhere() {
        let r = ring(128, 6);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let from = r.random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut ledger = CostLedger::new();
            let got = r.route(from, key, &mut ledger);
            assert_eq!(got, r.successor(key));
        }
    }

    #[test]
    fn route_hops_are_logarithmic() {
        let r = ring(1024, 7);
        let mut rng = StdRng::seed_from_u64(10);
        let mut total = 0u64;
        let trials = 500;
        for _ in 0..trials {
            let from = r.random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut ledger = CostLedger::new();
            r.route(from, key, &mut ledger);
            total += ledger.hops();
        }
        let avg = total as f64 / f64::from(trials);
        // Chord expectation: ~0.5·log2(N) = 5 for N = 1024.
        assert!((3.0..8.0).contains(&avg), "avg hops {avg}");
    }

    #[test]
    fn route_to_own_key_is_free() {
        let r = ring(32, 8);
        let id = r.alive_ids()[0];
        let mut ledger = CostLedger::new();
        // The node owns its own identifier.
        assert_eq!(r.route(id, id, &mut ledger), id);
        assert_eq!(ledger.hops(), 0);
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let r = ring(1, 11);
        let id = r.alive_ids()[0];
        assert_eq!(r.successor(0), id);
        assert_eq!(r.successor(u64::MAX), id);
        assert_eq!(r.succ_of(id), id);
        assert_eq!(r.pred_of(id), id);
        let mut ledger = CostLedger::new();
        assert_eq!(r.route(id, 12345, &mut ledger), id);
        assert_eq!(ledger.hops(), 0);
    }

    #[test]
    fn storage_roundtrip_with_ttl() {
        let mut r = ring(8, 12);
        let node = r.alive_ids()[3];
        r.store_at(
            node,
            77,
            StoredRecord {
                expires_at: 100,
                size_bytes: 8,
                routing_key: 77,
            },
        );
        assert!(r.get_at(node, 77).is_some());
        r.advance_time(100);
        assert!(r.get_at(node, 77).is_none(), "expired at its deadline");
        assert_eq!(r.sweep_all(), 1);
    }

    #[test]
    fn storage_summary_counts_live_bytes() {
        let mut r = ring(4, 13);
        let ids = r.alive_ids().to_vec();
        for (i, &id) in ids.iter().enumerate() {
            r.store_at(
                id,
                i as u64,
                StoredRecord {
                    expires_at: u64::MAX,
                    size_bytes: 10,
                    routing_key: 0,
                },
            );
        }
        let s = r.storage_summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 10.0);
        assert_eq!(r.total_live_bytes(), 40);
    }

    #[test]
    fn node_ids_nearly_uniform_on_circle() {
        // Max gap between consecutive ids of a 4096-node ring should be
        // within ~a few times the mean gap times ln(n).
        let r = ring(4096, 14);
        let ids = r.alive_ids();
        let mut max_gap = u64::MAX - ids[ids.len() - 1] + ids[0] + 1;
        for w in ids.windows(2) {
            max_gap = max_gap.max(w[1] - w[0]);
        }
        let mean_gap = u64::MAX / 4096;
        assert!(
            max_gap < mean_gap.saturating_mul(20),
            "max gap {max_gap} vs mean {mean_gap}"
        );
    }
}

//! Cost accounting.
//!
//! Every quantity the paper's tables report — routing hops, nodes visited,
//! bandwidth, per-node access load — is charged into a [`CostLedger`] by
//! the operation that incurs it. Experiments read ledgers; nothing is ever
//! hand-computed, so the reported numbers are the simulated numbers by
//! construction.

use std::collections::BTreeMap;

/// Accumulates the cost of a (sequence of) distributed operation(s).
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    hops: u64,
    messages: u64,
    bytes: u64,
    /// Total virtual network latency of delivered messages, in transport
    /// ticks (0 under instantaneous delivery).
    latency_ticks: u64,
    /// Messages that never reached their destination (loss, crash,
    /// partition — charged by simulated transports).
    dropped_messages: u64,
    /// Distinct-node visit counts: node id → number of times a message
    /// was delivered to it. Ordered so that reports and snapshot digests
    /// built by iterating it are byte-stable across runs.
    visits: BTreeMap<u64, u64>,
}

impl CostLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total routing hops charged.
    pub fn hops(&self) -> u64 {
        self.hops
    }

    /// Total messages charged.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bytes charged.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total virtual network latency of delivered messages, in ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.latency_ticks
    }

    /// Messages charged as dropped (never delivered).
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_messages
    }

    /// Number of *distinct* nodes that received at least one message.
    pub fn nodes_visited(&self) -> usize {
        self.visits.len()
    }

    /// Visit count for a specific node (0 if never visited).
    pub fn visits_to(&self, node: u64) -> u64 {
        self.visits.get(&node).copied().unwrap_or(0)
    }

    /// All visit counts, in node-id order (deterministic iteration).
    pub fn visits(&self) -> &BTreeMap<u64, u64> {
        &self.visits
    }

    /// Charge `n` routing hops.
    pub fn charge_hops(&mut self, n: u64) {
        self.hops += n;
    }

    /// Charge one message of `size` bytes (does not imply a hop; routed
    /// messages charge hops separately per routing step).
    pub fn charge_message(&mut self, size_bytes: u64) {
        self.messages += 1;
        self.bytes += size_bytes;
    }

    /// Charge raw bytes (e.g. payload carried across several hops).
    pub fn charge_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Charge virtual latency for a delivered message.
    pub fn charge_latency(&mut self, ticks: u64) {
        self.latency_ticks += ticks;
    }

    /// Record a message that was sent but never delivered.
    pub fn record_drop(&mut self) {
        self.dropped_messages += 1;
    }

    /// Record a message delivery to `node`.
    pub fn record_visit(&mut self, node: u64) {
        *self.visits.entry(node).or_insert(0) += 1;
    }

    /// Fold another ledger into this one (for aggregating per-operation
    /// ledgers into an experiment total).
    pub fn absorb(&mut self, other: &CostLedger) {
        self.hops += other.hops;
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.latency_ticks += other.latency_ticks;
        self.dropped_messages += other.dropped_messages;
        for (&node, &count) in &other.visits {
            *self.visits.entry(node).or_insert(0) += count;
        }
    }

    /// Load-balance summary over the visit counts.
    pub fn load_summary(&self) -> LoadSummary {
        LoadSummary::from_counts(self.visits.values().copied())
    }
}

/// Summary statistics of a load distribution (visit or storage counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSummary {
    /// Number of loaded entities.
    pub count: usize,
    /// Smallest load.
    pub min: u64,
    /// Largest load.
    pub max: u64,
    /// Mean load.
    pub mean: f64,
    /// Gini coefficient in `[0, 1]`: 0 = perfectly balanced.
    pub gini: f64,
}

impl LoadSummary {
    /// Compute a summary from raw per-entity load counts.
    pub fn from_counts(counts: impl IntoIterator<Item = u64>) -> Self {
        let mut v: Vec<u64> = counts.into_iter().collect();
        if v.is_empty() {
            return LoadSummary {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                gini: 0.0,
            };
        }
        v.sort_unstable();
        let n = v.len() as f64;
        let total: u64 = v.iter().sum();
        let mean = total as f64 / n;
        // Gini via the sorted-rank formula:
        // G = (2·Σ i·x_i) / (n·Σ x_i) − (n+1)/n, with i starting at 1.
        let gini = if total == 0 {
            0.0
        } else {
            let weighted: f64 = v
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
                .sum();
            (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
        };
        LoadSummary {
            count: v.len(),
            min: v[0],
            // dhs-lint: allow(panic_hygiene) — invariant: guarded by the is_empty check above.
            max: *v.last().expect("non-empty"),
            mean,
            gini,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut ledger = CostLedger::new();
        ledger.charge_hops(3);
        ledger.charge_message(100);
        ledger.charge_message(28);
        ledger.charge_bytes(10);
        assert_eq!(ledger.hops(), 3);
        assert_eq!(ledger.messages(), 2);
        assert_eq!(ledger.bytes(), 138);
    }

    #[test]
    fn latency_and_drops_accumulate_and_absorb() {
        let mut a = CostLedger::new();
        a.charge_latency(25);
        a.record_drop();
        let mut b = CostLedger::new();
        b.charge_latency(5);
        b.record_drop();
        b.record_drop();
        a.absorb(&b);
        assert_eq!(a.latency_ticks(), 30);
        assert_eq!(a.dropped_messages(), 3);
    }

    #[test]
    fn visits_count_distinct_nodes() {
        let mut ledger = CostLedger::new();
        ledger.record_visit(1);
        ledger.record_visit(2);
        ledger.record_visit(1);
        assert_eq!(ledger.nodes_visited(), 2);
        assert_eq!(ledger.visits_to(1), 2);
        assert_eq!(ledger.visits_to(2), 1);
        assert_eq!(ledger.visits_to(99), 0);
    }

    #[test]
    fn absorb_merges() {
        let mut a = CostLedger::new();
        a.charge_hops(1);
        a.record_visit(7);
        let mut b = CostLedger::new();
        b.charge_hops(2);
        b.charge_message(5);
        b.record_visit(7);
        b.record_visit(8);
        a.absorb(&b);
        assert_eq!(a.hops(), 3);
        assert_eq!(a.messages(), 1);
        assert_eq!(a.bytes(), 5);
        assert_eq!(a.nodes_visited(), 2);
        assert_eq!(a.visits_to(7), 2);
    }

    #[test]
    fn gini_of_uniform_is_zero() {
        let s = LoadSummary::from_counts([5u64, 5, 5, 5]);
        assert!(s.gini.abs() < 1e-12);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn gini_of_concentrated_is_high() {
        // All load on one of many entities → G → (n−1)/n.
        let mut counts = vec![0u64; 99];
        counts.push(1000);
        let s = LoadSummary::from_counts(counts);
        assert!(s.gini > 0.98, "gini = {}", s.gini);
    }

    #[test]
    fn gini_handles_empty_and_zero() {
        assert_eq!(LoadSummary::from_counts(std::iter::empty()).gini, 0.0);
        assert_eq!(LoadSummary::from_counts([0u64, 0, 0]).gini, 0.0);
    }
}

//! Overlay dynamics: fail-stop crashes, graceful leaves, and joins.
//!
//! The paper's fault-tolerance analysis (§3.5) assumes fail-stop crashes
//! with probability `p_f` per node: a crashed node's stored bits become
//! unavailable (unless replicated on successors), while routing converges
//! around it. Graceful leave and join additionally hand records off along
//! the ownership rule, which is what keeps DHS data reachable under
//! *planned* churn.
//!
//! Records carry the routing key they were stored under (see
//! [`crate::storage::StoredRecord`]'s producer, the `dhs-core` crate, which
//! packs it into the application key space) — handoff here moves whole
//! stores (leave) or ownership-range slices (join).

use rand::Rng;

use crate::ring::{NodeState, Ring};
use crate::storage::NodeStore;

/// Outcome of a mass-failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureReport {
    /// Nodes that crashed.
    pub failed: usize,
    /// Records that became unreachable with them.
    pub records_lost: usize,
}

impl Ring {
    /// Crash `node` (fail-stop). Its store becomes unreachable but is kept,
    /// mirroring a machine that may later rejoin. No handoff happens —
    /// that is the point of the failure model.
    ///
    /// Panics if this would crash the last alive node.
    pub fn fail_node(&mut self, node: u64) {
        assert!(self.len_alive() > 1, "cannot fail the last alive node");
        // dhs-lint: allow(panic_hygiene) — invariant: node ids come from the alive set.
        let state = self.node_mut(node).expect("unknown node");
        assert!(state.alive, "node already failed");
        state.alive = false;
        self.remove_alive(node);
    }

    /// Crash each alive node independently with probability `p_f`
    /// (keeping at least one alive). Returns what was lost.
    pub fn fail_random(&mut self, p_f: f64, rng: &mut impl Rng) -> FailureReport {
        assert!((0.0..=1.0).contains(&p_f), "p_f must be a probability");
        let candidates: Vec<u64> = self
            .alive_ids()
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(p_f))
            .collect();
        let mut failed = 0;
        let mut records_lost = 0;
        for id in candidates {
            if self.len_alive() <= 1 {
                break;
            }
            records_lost += self.store_of(id).map_or(0, NodeStore::len);
            self.fail_node(id);
            failed += 1;
        }
        FailureReport {
            failed,
            records_lost,
        }
    }

    /// A previously failed node rejoins with its (stale) store intact.
    pub fn revive_node(&mut self, node: u64) {
        // dhs-lint: allow(panic_hygiene) — invariant: node ids come from the alive set.
        let state = self.node_mut(node).expect("unknown node");
        assert!(!state.alive, "node is not failed");
        state.alive = true;
        // Re-insert into the alive view.
        let pos = self
            .alive_ids_mut_position(node)
            .expect_err("revived node already in alive view");
        self.insert_alive_at(pos, node);
    }

    /// Graceful departure: hand every record to the successor, then leave.
    ///
    /// Panics if `node` is the last alive node.
    pub fn graceful_leave(&mut self, node: u64) {
        assert!(self.len_alive() > 1, "cannot leave an empty ring behind");
        let succ = self.succ_of(node);
        assert_ne!(succ, node);
        let records: Vec<_> = {
            // dhs-lint: allow(panic_hygiene) — invariant: node ids come from the alive set.
            let state = self.node_mut(node).expect("unknown node");
            assert!(state.alive, "failed nodes cannot leave gracefully");
            state.store.drain().collect()
        };
        {
            // dhs-lint: allow(panic_hygiene) — invariant: successor_of always returns an alive node.
            let succ_state = self.node_mut(succ).expect("successor exists");
            for (key, rec) in records {
                succ_state.store.put(key, rec);
            }
        }
        // dhs-lint: allow(panic_hygiene) — invariant: node ids come from the alive set.
        let state = self.node_mut(node).expect("unknown node");
        state.alive = false;
        self.remove_alive(node);
    }

    /// A new node with identifier `id` joins, taking over from its
    /// successor the records whose stored routing key now belongs to it
    /// (routing key ∈ `(pred(id), id]`).
    ///
    /// Panics if `id` is already present.
    pub fn join(&mut self, id: u64) {
        assert!(
            self.store_of(id).is_none(),
            "node id {id} already in overlay"
        );
        // Insert first so ownership math includes the newcomer.
        self.insert_node(
            id,
            NodeState {
                alive: true,
                store: NodeStore::new(),
            },
        );
        let succ = self.succ_of(id);
        if succ == id {
            return; // first node of the ring
        }
        let pred = self.pred_of(id);
        // Records at the successor whose routing key is now owned by `id`
        // (routing key ∈ (pred, id]) move over.
        let moving: Vec<u64> = self
            .store_of(succ)
            // dhs-lint: allow(panic_hygiene) — invariant: successor_of always returns an alive node.
            .expect("successor exists")
            .iter()
            .filter(|&(_, rec)| crate::id::cw_contains(pred, id, rec.routing_key))
            .map(|(app_key, _)| app_key)
            .collect();
        for app_key in moving {
            let rec = self
                .node_mut(succ)
                // dhs-lint: allow(panic_hygiene) — invariant: successor_of always returns an alive node.
                .expect("successor exists")
                .store
                .remove(app_key)
                // dhs-lint: allow(panic_hygiene) — invariant: key taken from the store's own iteration.
                .expect("record present");
            self.node_mut(id)
                // dhs-lint: allow(panic_hygiene) — invariant: the joining node was inserted just above.
                .expect("new node present")
                .store
                .put(app_key, rec);
        }
    }

    // Small private helpers over the alive view, kept here so churn logic
    // stays in one file.
    fn alive_ids_mut_position(&self, id: u64) -> Result<usize, usize> {
        self.alive_ids().binary_search(&id)
    }

    fn insert_alive_at(&mut self, pos: usize, id: u64) {
        self.insert_alive(pos, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostLedger;
    use crate::ring::RingConfig;
    use crate::storage::StoredRecord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, seed: u64) -> Ring {
        let mut rng = StdRng::seed_from_u64(seed);
        Ring::build(n, RingConfig::default(), &mut rng)
    }

    fn rec() -> StoredRecord {
        rec_at(0)
    }

    fn rec_at(routing_key: u64) -> StoredRecord {
        StoredRecord {
            expires_at: u64::MAX,
            size_bytes: 8,
            routing_key,
        }
    }

    #[test]
    fn fail_removes_from_alive_view() {
        let mut r = ring(16, 1);
        let victim = r.alive_ids()[5];
        r.fail_node(victim);
        assert_eq!(r.len_alive(), 15);
        assert!(!r.is_alive(victim));
        assert!(!r.alive_ids().contains(&victim));
        // Routing still works and never lands on the failed node.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let from = r.random_alive(&mut rng);
            let key: u64 = rng.gen();
            let mut ledger = CostLedger::new();
            let owner = r.route(from, key, &mut ledger);
            assert!(r.is_alive(owner));
        }
    }

    #[test]
    fn failed_node_data_unreachable() {
        let mut r = ring(8, 3);
        let victim = r.alive_ids()[2];
        r.store_at(victim, 42, rec());
        assert!(r.get_at(victim, 42).is_some());
        r.fail_node(victim);
        assert!(r.get_at(victim, 42).is_none());
    }

    #[test]
    fn revive_restores_data() {
        let mut r = ring(8, 4);
        let victim = r.alive_ids()[2];
        r.store_at(victim, 42, rec());
        r.fail_node(victim);
        r.revive_node(victim);
        assert!(r.is_alive(victim));
        assert!(r.get_at(victim, 42).is_some());
        assert_eq!(r.len_alive(), 8);
    }

    #[test]
    fn fail_random_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut r = ring(64, 5);
        let report = r.fail_random(0.0, &mut rng);
        assert_eq!(report.failed, 0);
        let report = r.fail_random(1.0, &mut rng);
        // Keeps one alive.
        assert_eq!(report.failed, 63);
        assert_eq!(r.len_alive(), 1);
    }

    #[test]
    fn fail_random_counts_lost_records() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut r = ring(32, 6);
        for (i, &id) in r.alive_ids().to_vec().iter().enumerate() {
            r.store_at(id, i as u64, rec());
        }
        let report = r.fail_random(0.5, &mut rng);
        assert_eq!(report.records_lost, report.failed);
    }

    #[test]
    fn graceful_leave_hands_off_to_successor() {
        let mut r = ring(8, 7);
        let leaver = r.alive_ids()[3];
        let succ = r.succ_of(leaver);
        r.store_at(leaver, 1, rec());
        r.store_at(leaver, 2, rec());
        r.graceful_leave(leaver);
        assert!(!r.is_alive(leaver));
        assert!(r.get_at(succ, 1).is_some());
        assert!(r.get_at(succ, 2).is_some());
    }

    #[test]
    fn join_takes_over_owned_range() {
        let mut r = ring(4, 8);
        let ids = r.alive_ids().to_vec();
        // Place records at ids[1] keyed by routing keys on both sides of a
        // midpoint between ids[0] and ids[1].
        let lo = ids[0];
        let hi = ids[1];
        let mid = lo + (hi - lo) / 2;
        let key_before_mid = lo.wrapping_add(1); // ≤ mid → newcomer owns
        let key_after_mid = mid.wrapping_add(1); // stays with old owner hi
        r.store_at(hi, 100, rec_at(key_before_mid));
        r.store_at(hi, 200, rec_at(key_after_mid));
        r.join(mid);
        assert_eq!(r.len_alive(), 5);
        assert!(r.get_at(mid, 100).is_some(), "newcomer owns keys ≤ mid");
        assert!(r.get_at(hi, 100).is_none());
        assert!(r.get_at(hi, 200).is_some(), "old owner keeps keys > mid");
        assert_eq!(r.successor(key_before_mid), mid);
        assert_eq!(r.successor(key_after_mid), hi);
    }

    #[test]
    #[should_panic(expected = "already in overlay")]
    fn join_duplicate_id_panics() {
        let mut r = ring(4, 9);
        let existing = r.alive_ids()[0];
        r.join(existing);
    }

    #[test]
    #[should_panic(expected = "last alive node")]
    fn cannot_fail_last_node() {
        let mut r = ring(1, 10);
        let only = r.alive_ids()[0];
        r.fail_node(only);
    }
}

//! Identifier-circle arithmetic.
//!
//! The overlay lives on the circle `[0, 2^64)`; all interval reasoning is
//! clockwise (increasing identifiers, wrapping at `2^64`). Chord's key
//! ownership rule is: the node with the smallest identifier clockwise-≥
//! the key owns it (`successor(key)`), i.e. node `s` owns the keys in the
//! clockwise-open interval `(pred(s), s]`.

/// Clockwise distance from `a` to `b` on the `u64` circle.
///
/// `cw_distance(a, a) == 0`; otherwise it is the number of steps walking
/// clockwise (wrapping) from `a` until reaching `b`.
///
/// ```
/// use dhs_dht::cw_distance;
/// assert_eq!(cw_distance(10, 15), 5);
/// assert_eq!(cw_distance(u64::MAX, 2), 3);
/// ```
#[inline]
pub fn cw_distance(a: u64, b: u64) -> u64 {
    b.wrapping_sub(a)
}

/// Whether `x` lies in the clockwise-open interval `(from, to]`.
///
/// This is Chord's ownership test: `successor(key) == s` iff
/// `cw_contains(pred(s), s, key)`.
///
/// ```
/// use dhs_dht::cw_contains;
/// assert!(cw_contains(10, 20, 15));
/// assert!(cw_contains(10, 20, 20));
/// assert!(!cw_contains(10, 20, 10));
/// assert!(cw_contains(u64::MAX - 5, 5, 2)); // wraps
/// ```
#[inline]
pub fn cw_contains(from: u64, to: u64, x: u64) -> bool {
    if from == to {
        // Degenerate full circle: a single node owns everything.
        true
    } else {
        cw_distance(from, x) <= cw_distance(from, to) && x != from
    }
}

/// Whether `x` lies in the half-open *linear* interval `[lo, hi)`.
///
/// DHS's bit-to-interval mapping (`I_r = [thr(r), thr(r-1))`) is linear,
/// not circular: intervals never wrap.
#[inline]
pub fn linear_contains(lo: u64, hi: u64, x: u64) -> bool {
    lo <= x && x < hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_wraps() {
        assert_eq!(cw_distance(0, 0), 0);
        assert_eq!(cw_distance(5, 5), 0);
        assert_eq!(cw_distance(0, u64::MAX), u64::MAX);
        assert_eq!(cw_distance(u64::MAX, 0), 1);
    }

    #[test]
    fn contains_excludes_from_includes_to() {
        assert!(!cw_contains(7, 9, 7));
        assert!(cw_contains(7, 9, 8));
        assert!(cw_contains(7, 9, 9));
        assert!(!cw_contains(7, 9, 10));
    }

    #[test]
    fn contains_wrapping_interval() {
        // (MAX-2, 3] wraps through zero.
        let from = u64::MAX - 2;
        assert!(cw_contains(from, 3, u64::MAX));
        assert!(cw_contains(from, 3, 0));
        assert!(cw_contains(from, 3, 3));
        assert!(!cw_contains(from, 3, 4));
        assert!(!cw_contains(from, 3, from));
    }

    #[test]
    fn degenerate_full_circle() {
        // from == to means "the whole ring belongs to this node".
        assert!(cw_contains(5, 5, 5));
        assert!(cw_contains(5, 5, 0));
        assert!(cw_contains(5, 5, u64::MAX));
    }

    #[test]
    fn linear_interval() {
        assert!(linear_contains(10, 20, 10));
        assert!(linear_contains(10, 20, 19));
        assert!(!linear_contains(10, 20, 20));
        assert!(!linear_contains(10, 20, 9));
    }
}

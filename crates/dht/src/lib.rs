//! # dhs-dht — a deterministic Chord-like DHT simulator
//!
//! The DHS paper runs its evaluation on a simulated 1024-node Chord
//! overlay with 64-bit identifiers. This crate is that substrate, built
//! for *exact cost accounting* rather than wire realism:
//!
//! * [`ring::Ring`] — the overlay: a sorted set of alive nodes on the
//!   `u64` identifier circle, each owning the keys in
//!   `(predecessor, self]`. Lookups use simulated Chord finger routing
//!   (greedy closest-preceding-finger over the converged overlay) and
//!   charge one hop per routing step into a [`cost::CostLedger`].
//! * [`storage::NodeStore`] — per-node soft-state key/value store with
//!   time-to-live expiry driven by the ring's logical clock, exactly the
//!   storage model DHS needs (§3.3 of the paper).
//! * [`cost::CostLedger`] — hops, messages and bytes, plus per-node access
//!   counters so experiments can report access-load balance (the paper's
//!   constraint (iii)).
//! * [`churn`] — fail-stop node failures (bits stored on failed nodes
//!   become unavailable; routing steps that hit a failed node cost a hop
//!   and move on) and graceful join/leave with key handoff.
//!
//! Beyond the Chord ring, the crate provides:
//!
//! * [`overlay::Overlay`] — the DHT abstraction `dhs-core` is generic
//!   over (ownership, routed lookup, ID-space neighbors, storage, clock);
//! * [`kademlia::Kademlia`] — a second geometry (XOR ownership, prefix
//!   routing) validating the paper's "DHT-agnostic" claim;
//! * [`fingers::FingerTables`] — explicit Chord finger tables with the
//!   stabilization protocol, for churn-staleness experiments.
//!
//! Everything is deterministic given a seed; experiments pass their own
//! `StdRng`.
//!
//! ```
//! use dhs_dht::ring::{Ring, RingConfig};
//! use dhs_dht::cost::CostLedger;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut ring = Ring::build(1024, RingConfig::default(), &mut rng);
//! let mut ledger = CostLedger::default();
//! let from = ring.random_alive(&mut rng);
//! let owner = ring.route(from, 0xDEAD_BEEF, &mut ledger);
//! assert!(ledger.hops() <= 64);
//! assert_eq!(owner, ring.successor(0xDEAD_BEEF));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod cost;
pub mod fingers;
pub mod id;
pub mod kademlia;
pub mod overlay;
pub mod ring;
pub mod route_cache;
pub mod storage;

pub use cost::CostLedger;
pub use fingers::{FingerTables, RouteOutcome, StaleView};
pub use id::{cw_contains, cw_distance};
pub use kademlia::Kademlia;
pub use overlay::Overlay;
pub use ring::{Ring, RingConfig};
pub use route_cache::{CachedOverlay, RouteCache, RouteCacheStats};
pub use storage::{NodeStore, StoredRecord};

//! Property-based tests for the DHT substrate.

use dhs_dht::cost::{CostLedger, LoadSummary};
use dhs_dht::ring::{Ring, RingConfig};
use dhs_dht::storage::StoredRecord;
use dhs_dht::{cw_contains, cw_distance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring(n: usize, seed: u64) -> Ring {
    let mut rng = StdRng::seed_from_u64(seed);
    Ring::build(n, RingConfig::default(), &mut rng)
}

proptest! {
    /// Clockwise distance composes: d(a,b) + d(b,c) ≡ d(a,c) mod 2^64.
    #[test]
    fn cw_distance_composes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(
            cw_distance(a, b).wrapping_add(cw_distance(b, c)),
            cw_distance(a, c)
        );
    }

    /// Exactly one node owns any key, and succ/pred tile the circle.
    #[test]
    fn ownership_partition(seed in any::<u64>(), key in any::<u64>(), n in 1usize..80) {
        let r = ring(n, seed);
        let owner = r.successor(key);
        let owners = r
            .alive_ids()
            .iter()
            .filter(|&&node| cw_contains(r.pred_of(node), node, key))
            .count();
        if n == 1 {
            prop_assert_eq!(owner, r.alive_ids()[0]);
        } else {
            prop_assert_eq!(owners, 1, "exactly one arc contains the key");
        }
    }

    /// Routing from any start reaches the owner within 2·log2-ish hops
    /// and the hop charge matches what the ledger saw.
    #[test]
    fn routing_terminates_and_charges(seed in any::<u64>(), key in any::<u64>(), n in 1usize..200) {
        let r = ring(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let from = r.random_alive(&mut rng);
        let mut ledger = CostLedger::new();
        let owner = r.route(from, key, &mut ledger);
        prop_assert_eq!(owner, r.successor(key));
        prop_assert!(ledger.hops() <= 64, "hops {}", ledger.hops());
    }

    /// Failing any (non-last) subset keeps succ/pred consistent over the
    /// survivors.
    #[test]
    fn churn_keeps_ring_consistent(seed in any::<u64>(), n in 3usize..40, kill_mask in any::<u64>()) {
        let mut r = ring(n, seed);
        let ids = r.alive_ids().to_vec();
        for (i, &id) in ids.iter().enumerate() {
            if r.len_alive() > 1 && (kill_mask >> (i % 64)) & 1 == 1 {
                r.fail_node(id);
            }
        }
        for &id in r.alive_ids() {
            prop_assert_eq!(r.pred_of(r.succ_of(id)), id);
        }
        // Ownership still covers arbitrary keys.
        let owner = r.successor(12345);
        prop_assert!(r.is_alive(owner));
    }

    /// Graceful leave loses no records: totals before == totals after.
    #[test]
    fn graceful_leave_conserves_records(seed in any::<u64>(), n in 3usize..30, leavers in 1usize..5) {
        let mut r = ring(n, seed);
        let ids = r.alive_ids().to_vec();
        for (i, &id) in ids.iter().enumerate() {
            r.store_at(id, i as u64, StoredRecord {
                expires_at: u64::MAX,
                size_bytes: 8,
                routing_key: id,
            });
        }
        let before = r.total_live_bytes();
        for &id in ids.iter().take(leavers.min(n - 1)) {
            r.graceful_leave(id);
        }
        prop_assert_eq!(r.total_live_bytes(), before);
    }

    /// Join conserves records and respects ownership of routing keys.
    #[test]
    fn join_conserves_and_rebalances(seed in any::<u64>(), n in 2usize..30, new_id in any::<u64>()) {
        let mut r = ring(n, seed);
        prop_assume!(r.store_of(new_id).is_none());
        // Store a record under every existing node keyed by its own id.
        for &id in r.alive_ids().to_vec().iter() {
            r.store_at(id, id, StoredRecord {
                expires_at: u64::MAX,
                size_bytes: 8,
                routing_key: id,
            });
        }
        let before = r.total_live_bytes();
        r.join(new_id);
        prop_assert_eq!(r.total_live_bytes(), before);
        // Every record sits at the owner of its routing key.
        for &node in r.alive_ids() {
            if let Some(store) = r.store_of(node) {
                for (_, rec) in store.iter() {
                    prop_assert_eq!(r.successor(rec.routing_key), node);
                }
            }
        }
    }

    /// The Gini coefficient is scale-invariant and bounded.
    #[test]
    fn gini_properties(counts in prop::collection::vec(0u64..1000, 1..100), factor in 1u64..10) {
        let s1 = LoadSummary::from_counts(counts.iter().copied());
        prop_assert!((0.0..=1.0).contains(&s1.gini));
        let s2 = LoadSummary::from_counts(counts.iter().map(|&c| c * factor));
        prop_assert!((s1.gini - s2.gini).abs() < 1e-9, "scale invariance");
    }

    /// TTL semantics: a record is visible strictly before its expiry and
    /// invisible from it on, regardless of sweeps.
    #[test]
    fn ttl_visibility(expires in 1u64..1000, probe in 0u64..1500, sweep in any::<bool>()) {
        let mut r = ring(4, 9);
        let node = r.alive_ids()[0];
        r.store_at(node, 7, StoredRecord {
            expires_at: expires,
            size_bytes: 8,
            routing_key: 0,
        });
        r.advance_time(probe);
        if sweep {
            r.sweep_all();
        }
        prop_assert_eq!(r.get_at(node, 7).is_some(), probe < expires);
    }
}

mod kademlia_props {
    use dhs_dht::cost::CostLedger;
    use dhs_dht::kademlia::Kademlia;
    use dhs_dht::overlay::Overlay;
    use dhs_dht::ring::RingConfig;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// XOR-closest matches a linear scan for arbitrary populations.
        #[test]
        fn xor_closest_is_global_minimum(seed in proptest::prelude::any::<u64>(), key in proptest::prelude::any::<u64>(), n in 1usize..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let k = Kademlia::build(n, RingConfig::default(), &mut rng);
            let got = k.owner_of(key);
            let best = k
                .ring()
                .alive_ids()
                .iter()
                .copied()
                .min_by_key(|&id| id ^ key)
                .unwrap();
            prop_assert_eq!(got, best);
        }

        /// Prefix routing always terminates at the XOR owner and never
        /// exceeds ~2 hops per meaningful bit.
        #[test]
        fn xor_routing_terminates(seed in proptest::prelude::any::<u64>(), key in proptest::prelude::any::<u64>(), n in 1usize..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let k = Kademlia::build(n, RingConfig::default(), &mut rng);
            let from = k.ring().random_alive(&mut rng);
            let mut ledger = CostLedger::new();
            let owner = k.route(from, key, &mut ledger);
            prop_assert_eq!(owner, k.owner_of(key));
            prop_assert!(ledger.hops() <= 130, "hops {}", ledger.hops());
        }

        /// Failing nodes never leaves a key without an alive owner, and
        /// the owner changes only when the previous owner died.
        #[test]
        fn xor_ownership_stable_under_failures(seed in proptest::prelude::any::<u64>(), key in proptest::prelude::any::<u64>(), kills in 1usize..10) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut k = Kademlia::build(20, RingConfig::default(), &mut rng);
            let before = k.owner_of(key);
            for _ in 0..kills {
                if k.ring().len_alive() <= 1 {
                    break;
                }
                let victim = k.ring().random_alive(&mut rng);
                k.ring_mut().fail_node(victim);
            }
            let after = k.owner_of(key);
            prop_assert!(k.ring().is_alive(after));
            if k.ring().is_alive(before) {
                prop_assert_eq!(after, before, "owner must not change while alive");
            }
        }
    }
}

//! Recorder calls with off-registry names: string literals at recorder
//! call sites must come from the canonical table (`dhs_obs::names`).
//! The test feeds a table containing only `op.insert` and
//! `latency.ticks`.

/// Minimal recorder stand-in (method names are what the rule keys on).
pub trait Rec {
    /// Count an event.
    fn incr(&mut self, name: &str);
    /// Record a histogram sample.
    fn observe(&mut self, name: &str, v: u64);
}

/// One canonical name, one typo'd name, one unregistered name.
pub fn record(r: &mut dyn Rec) {
    r.incr("op.insert");
    r.incr("op.inserted");
    r.observe("latency.millis", 3);
    r.observe("latency.ticks", 3);
}

/// Strings outside recorder calls are none of the lint's business.
pub fn label() -> &'static str {
    "not.a.metric"
}

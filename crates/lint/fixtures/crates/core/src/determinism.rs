//! Deliberately nondeterministic code: every construct here must be
//! flagged by the `determinism` rule (this fixture sits on the replay
//! path, `crates/core/src`).

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

/// Wall-clock reads: two findings.
pub fn wall_clock() -> bool {
    let a = Instant::now();
    let b = SystemTime::now();
    let _ = (a, b);
    true
}

/// Hash-ordered `for` iteration over a hash-typed parameter: one finding.
pub fn sum_values(scores: HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for pair in &scores {
        total += pair.1;
    }
    total
}

/// Hash-ordered method iteration through a `&mut` parameter: one finding.
pub fn drain_all(pending: &mut HashMap<u64, u64>) -> Vec<(u64, u64)> {
    pending.drain().collect()
}

/// Keyed access is fine — no finding on the `get`.
pub fn lookup(index: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    index.get(&key).copied()
}

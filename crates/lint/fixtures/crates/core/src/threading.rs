//! Deliberate ad-hoc threading on the replay path: every lock type and
//! bare `spawn(` here must be flagged by the `determinism` rule, except
//! where an allow directive vouches for it.

use std::sync::{Mutex, RwLock};

/// Bare thread spawn: one finding.
pub fn fire_and_forget() {
    let handle = std::thread::spawn(|| 1u64);
    let _ = handle.join();
}

/// Shared-state locks: one finding per lock type mention.
pub fn shared_counters() -> u64 {
    let counter = Mutex::new(0u64);
    let snapshot = RwLock::new(7u64);
    let a = *counter.lock().unwrap_or_else(|p| p.into_inner());
    let b = *snapshot.read().unwrap_or_else(|p| p.into_inner());
    a + b
}

/// A vouched-for cache lock: the directive suppresses the finding.
pub fn vouched_cache() -> u64 {
    let cache = Mutex::new(3u64); // dhs-lint: allow(determinism)
    *cache.lock().unwrap_or_else(|p| p.into_inner())
}

/// `spawn` as a plain identifier without a call is not flagged.
pub fn named_after_spawn() -> u64 {
    let spawn = 5u64;
    spawn
}

//! Fixture: flow-aware metric-name propagation. Const items, `concat!`
//! of literals, and single-assignment locals resolve to their string
//! values; a resolved non-canonical value is a violation the plain
//! literal scan cannot see. Poisoned bindings are skipped, not guessed.

/// Canonical, via a file-local const.
const OP_NAME: &str = "op.insert";
/// Non-canonical, via const `concat!` — never appears as a literal in
/// any recorder argument list.
const BAD_NAME: &str = concat!("op.", "inserted");

pub fn record(rec: &mut Recorder, v: u64) {
    rec.incr(OP_NAME, 1);
    rec.incr(BAD_NAME, 1);
    let lat = "latency.ticks";
    rec.observe(lat, v);
    let typo = "latency.tick";
    rec.observe(typo, v);
    let mut dynamic = "latency.ticks";
    dynamic = pick(v);
    rec.observe(dynamic, v);
}

fn pick(_v: u64) -> &'static str {
    "latency.ticks"
}

//! Narrowing `as` casts that must go through `dhs_core::checked_cast`:
//! each one is a `lossy_cast` finding.

/// Silent byte truncation: one finding.
pub fn pack_rank(rank: u64) -> u8 {
    rank as u8
}

/// The PR 3 bug class — `m > 65536` wraps a vector id: one finding.
pub fn vector_id(low: u64) -> u16 {
    low as u16
}

/// Narrowing to usize is also flagged (32-bit targets truncate): one
/// finding.
pub fn index_of(bit: u64) -> usize {
    bit as usize
}

/// Widening and float casts are not narrowing: no findings.
pub fn widen_and_scale(x: u16) -> f64 {
    (x as u64) as f64
}

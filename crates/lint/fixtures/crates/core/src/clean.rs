//! A well-behaved replay-path library file: ordered maps, checked casts,
//! no casual panics, no wall clocks. The lint must report nothing.

use std::collections::BTreeMap;

/// Sums the values of an ordered map (deterministic iteration).
pub fn sum(map: &BTreeMap<u64, u64>) -> u64 {
    map.values().sum()
}

/// Widening casts are always fine.
pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

/// `unwrap_or`-style combinators are not `unwrap()`.
pub fn first_or_zero(v: &[u64]) -> u64 {
    v.first().copied().unwrap_or(0)
}

//! Every violation in this file carries a `dhs-lint: allow(...)`
//! directive — the lint must report nothing.

/// A trailing directive covers its own line.
pub fn pack_rank(rank: u64) -> u8 {
    rank as u8 // dhs-lint: allow(lossy_cast) — rank < 256 by construction
}

/// A comment-only directive covers the next code line, even with
/// explanation lines in between — and the leading `*` deref below must
/// not be mistaken for a block-comment interior.
pub fn last(v: &[u64]) -> u64 {
    // dhs-lint: allow(panic_hygiene) — invariant: caller checks emptiness.
    // (Extra explanation line between directive and code.)
    *v.last().expect("non-empty")
}

/// One directive may carry several rules.
pub fn both(v: &[u64]) -> u8 {
    // dhs-lint: allow(panic_hygiene, lossy_cast)
    *v.first().unwrap() as u8
}

//! Casual panics in library code: flagged by `panic_hygiene` — except
//! inside `#[cfg(test)]`, which is always exempt.

/// `unwrap()` on an option: one finding.
pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

/// `expect()` without an allow: one finding.
pub fn last(v: &[u64]) -> u64 {
    *v.last().expect("non-empty")
}

/// `panic!` in library code: one finding.
pub fn boom() {
    panic!("kaboom");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}

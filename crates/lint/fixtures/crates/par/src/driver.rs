//! The one approved threading module: `crates/par/src/driver.rs` is on
//! the `THREADING_APPROVED` list, so spawns and locks here are clean.

use std::sync::Mutex;

/// Approved worker fan-out: no findings.
pub fn fan_out() -> u64 {
    let total = Mutex::new(0u64);
    std::thread::scope(|scope| {
        for add in 0..4u64 {
            scope.spawn(|| {
                *total.lock().unwrap_or_else(|p| p.into_inner()) += add;
            });
        }
    });
    let sum = *total.lock().unwrap_or_else(|p| p.into_inner());
    sum
}

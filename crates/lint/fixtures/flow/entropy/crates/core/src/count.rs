//! Fixture: an entry point transitively reaching a wall clock two
//! calls deep, across a crate boundary.

/// Entry point (matches the `count*` prefix). Taint flows in through
/// `pick_start`, which is defined in the sibling `dht` fixture crate.
pub fn count_interval(lo: u64, hi: u64) -> u64 {
    let start = pick_start(lo, hi);
    start.wrapping_add(hi - lo)
}

/// Clean entry point: the RNG is caller-supplied, nothing tainted.
pub fn count_seeded(rng: &mut impl Rng, lo: u64, hi: u64) -> u64 {
    lo + rng.gen_range(0..(hi - lo))
}

//! Fixture: the middle and bottom of the taint chain.

/// Looks innocent, but reaches the wall clock through `clock_ms`.
pub fn pick_start(lo: u64, hi: u64) -> u64 {
    lo + clock_ms() % (hi - lo)
}

fn clock_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64
}

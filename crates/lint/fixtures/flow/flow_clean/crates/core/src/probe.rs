//! Fixture: a file that satisfies every flow rule.

/// RNG threaded through parameters all the way down.
pub fn count_nodes(rng: &mut impl Rng, m: u64) -> u64 {
    (0..m).map(|_| draw_node(rng, m)).sum::<u64>() / m.max(1)
}

fn draw_node(rng: &mut impl Rng, m: u64) -> u64 {
    rng.gen_range(0..m)
}

/// Results are handled, never discarded.
pub fn send_all(dsts: &[u64]) -> Result<usize, ()> {
    let mut ok = 0;
    for &d in dsts {
        match send_one(d) {
            Ok(()) => ok += 1,
            Err(()) => return Err(()),
        }
    }
    Ok(ok)
}

fn send_one(_dst: u64) -> Result<(), ()> {
    Ok(())
}

// dhs-flow: cycle-ok(depth halves every call)
fn bisect(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 1 {
        lo
    } else {
        bisect(lo, (lo + hi) / 2)
    }
}

//! Fixture: recursion through routing code needs a `cycle-ok` note.

/// Violation: mutual recursion, no annotation on either participant.
pub fn route_left(hops: u64) -> u64 {
    if hops == 0 {
        0
    } else {
        route_right(hops - 1)
    }
}

pub fn route_right(hops: u64) -> u64 {
    route_left(hops)
}

// dhs-flow: cycle-ok(interval strictly shrinks each hop; see DESIGN.md)
pub fn route_bounded(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 1 {
        lo
    } else {
        route_bounded(lo, lo + (hi - lo) / 2)
    }
}

/// Not a cycle: `clear` calls the *field's* same-named method, and the
/// resolver must not read that as a self-loop.
pub struct RouteCache {
    entries: Vec<u64>,
}

impl RouteCache {
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

//! Fixture: `protocol-sync-exchange` — replay-path code outside the
//! approved modules calling the legacy synchronous surface directly
//! instead of going through the machines.

use dhs_core::transport::{with_retry, Transport};

/// Two violations: the direct `exchange` and the retry wrapper.
pub fn probe<T: Transport>(t: &mut T) -> u64 {
    let first = t.exchange(1);
    first + with_retry(2)
}

//! Machine executor stand-in: the one approved caller of the
//! synchronous surface outside the transport decorators.

use crate::transport::Transport;

/// Approved: `exec_send` lives in an exchange module.
pub fn exec_send<T: Transport>(t: &mut T, payload: u64) -> u64 {
    t.exchange(payload)
}

//! Legacy synchronous exchange surface stand-in (path matches
//! `protocol::EXCHANGE_MODULES`).

pub trait Transport {
    fn exchange(&mut self, payload: u64) -> u64;
}

/// Retry wrapper over the synchronous surface.
pub fn with_retry(payload: u64) -> u64 {
    payload
}

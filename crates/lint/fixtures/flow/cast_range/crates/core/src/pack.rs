//! Fixture: cast-range interval verdicts — masked/bounded casts prove
//! safe, a constant-propagated oversized operand is a seeded
//! violation, and unbounded operands stay untriaged.

/// Register payload width: 1 << 20 exceeds u16 on every run.
const OVERSIZED: u32 = 1 << 20;

/// Proven safe: mask, modulo, `min`, and a fact-bounded field.
pub fn pack(cfg: &Config, raw: u64) -> u64 {
    let masked = (raw & 0xFFFF) as u16;
    let wrapped = (raw % 256) as u8;
    let clamped = raw.min(200) as u8;
    let buckets = cfg.m as u32;
    u64::from(masked) + u64::from(wrapped) + u64::from(clamped) + u64::from(buckets)
}

/// VIOLATION: a const-propagated operand that cannot fit u16.
pub fn truncate_const() -> u16 {
    OVERSIZED as u16
}

/// VIOLATION: a let-bound literal above the target range.
pub fn truncate_let() -> u16 {
    let big = 70_000u32;
    big as u16
}

/// Untriaged: the operand is unbounded, so the pass stays silent
/// either way (the token-level `lossy_cast` rule owns this site).
pub fn passthrough(raw: u64) -> u32 {
    raw as u32
}

//! Fixture: discarded `Result`s from transport/store APIs.

/// A Result-returning API (all workspace fns of this name agree).
pub fn send_probe(dst: u64) -> Result<u64, ()> {
    Err(())
}

pub fn fan_out(dsts: &[u64]) {
    for &d in dsts {
        // Violation: bound to `_`, error silently dropped.
        let _ = send_probe(d);
    }
}

pub fn fire_and_forget(dst: u64) {
    // Violation: statement-position call, value (and error) discarded.
    send_probe(dst);
}

pub fn fan_out_checked(dsts: &[u64]) -> Result<u64, ()> {
    let mut last = 0;
    for &d in dsts {
        // Clean: the Result is propagated.
        last = send_probe(d)?;
    }
    Ok(last)
}

pub fn fan_out_counted(dsts: &[u64]) -> usize {
    // Clean: the Result is inspected.
    dsts.iter().filter(|&&d| send_probe(d).is_ok()).count()
}

pub fn best_effort(dst: u64) {
    // dhs-flow: allow(dropped-result) — fixture: documented fire-and-forget.
    let _ = send_probe(dst);
}

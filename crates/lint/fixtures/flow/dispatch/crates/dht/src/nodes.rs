//! Fixture: receiver-type dispatch. Two types share the method name
//! `advance`; type-aware resolution must send each call site to its own
//! impl, so only the clocked chain carries the entropy taint. The
//! `dyn Step` entry dispatches over every implementor and inherits the
//! taint through the clocked one.

pub trait Step {
    fn advance(&mut self) -> u64;
}

pub struct Seeded {
    state: u64,
}

impl Step for Seeded {
    fn advance(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(25214903917).wrapping_add(11);
        self.state
    }
}

pub struct Clocked {
    last: u64,
}

impl Step for Clocked {
    fn advance(&mut self) -> u64 {
        self.last = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(self.last);
        self.last
    }
}

pub struct Registry {
    seeded: Seeded,
}

impl Registry {
    /// Chained-call receiver: `reg.seeded().advance()` types through
    /// this return value.
    pub fn seeded(&mut self) -> &mut Seeded {
        &mut self.seeded
    }

    /// Inherent method sharing the trait-method name: `reg.advance()`
    /// must resolve here, not into the `Step` impls.
    pub fn advance(&mut self) -> u64 {
        self.seeded.advance()
    }
}

/// Clean: resolves to `<Seeded as Step>::advance`.
pub fn count_seeded(s: &mut Seeded) -> u64 {
    s.advance()
}

/// Tainted: resolves to `<Clocked as Step>::advance`.
pub fn count_clocked(c: &mut Clocked) -> u64 {
    c.advance()
}

/// Tainted: dispatch over all `Step` implementors includes `Clocked`.
pub fn count_any(n: &mut dyn Step) -> u64 {
    n.advance()
}

/// Clean: the chained receiver types to `Seeded`.
pub fn count_registry(reg: &mut Registry) -> u64 {
    reg.seeded().advance()
}

/// Clean: the inherent method wins over the same-name trait impls.
pub fn count_inherent(reg: &mut Registry) -> u64 {
    reg.advance()
}

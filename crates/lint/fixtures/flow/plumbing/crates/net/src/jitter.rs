//! Fixture: RNG-plumbing discipline — draws must come from a
//! caller-supplied generator.

/// Violation: constructs and draws from its own generator.
pub fn jitter_owned(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0..100)
}

/// Clean: the generator is a parameter (`impl Rng`).
pub fn jitter_param(rng: &mut impl Rng) -> u64 {
    rng.gen_range(0..100)
}

/// Clean: turbofish draw, generator still a parameter (`R: Rng`).
pub fn jitter_generic<R: Rng>(rng: &mut R) -> u64 {
    rng.gen::<u64>() % 100
}

/// A sampler whose impl block carries the Rng bound: methods inherit it.
pub struct Sampler<R: Rng> {
    rng: R,
}

impl<R: Rng> Sampler<R> {
    /// Clean: `R: Rng` comes from the impl generics.
    pub fn draw(&mut self) -> u64 {
        self.rng.gen()
    }
}

// dhs-flow: allow(rng-plumbing) — fixture: documented owned stream.
pub fn jitter_allowed(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}

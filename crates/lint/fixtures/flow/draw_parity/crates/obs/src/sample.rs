//! Fixture: the same divergent shape outside the machine-reachable
//! scope — the parity pass must not analyze or flag it.

/// Unflagged: not reachable from a machine module.
pub fn jitter(rng: &mut impl Rng, warm: bool) -> u64 {
    if warm {
        rng.gen::<u64>()
    } else {
        rng.gen::<u64>() ^ rng.gen::<u64>()
    }
}

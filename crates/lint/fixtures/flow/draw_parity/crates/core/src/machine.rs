//! Fixture: seeded rng-draw-parity violations in a machine module —
//! the hint-elision bug class where one branch of a scan consumes a
//! different number of RNG draws than its sibling.

/// VIOLATION: the hinted path draws once, the cold path twice.
pub fn step_hinted(rng: &mut impl Rng, hinted: bool) -> u64 {
    if hinted {
        rng.gen::<u64>()
    } else {
        rng.gen::<u64>() ^ rng.gen::<u64>()
    }
}

/// VIOLATION through the call graph: the refill arm reaches a callee
/// that draws, the fast arm draws nothing (1 vs 0).
pub fn refill_on_miss(rng: &mut impl Rng, miss: bool) -> u64 {
    if miss {
        draw_base(rng)
    } else {
        0
    }
}

fn draw_base(rng: &mut impl Rng) -> u64 {
    rng.gen_range(0..64)
}

/// Clean: both the skip arm and the fall-through consume exactly one
/// draw per iteration (the `continue` shape the dynamic harness
/// exercises).
pub fn scan_balanced(rng: &mut impl Rng, n: u64) -> u64 {
    let mut acc = 0;
    for i in 0..n {
        if i % 2 == 0 {
            acc ^= rng.gen::<u64>();
            continue;
        }
        acc ^= rng.gen::<u64>();
    }
    acc
}

/// Clean: equal constant draw counts through different callees.
pub fn either_way(rng: &mut impl Rng, flip: bool) -> u64 {
    if flip {
        draw_base(rng)
    } else {
        rng.gen::<u64>()
    }
}

/// Annotated: intentional divergence, silenced by the escape hatch.
// dhs-flow: allow(rng-draw-parity) — the probe path deliberately
// consumes no draw; divergence is covered by a replay test.
pub fn probe_or_draw(rng: &mut impl Rng, probe: bool) -> u64 {
    if probe {
        0
    } else {
        rng.gen::<u64>()
    }
}

//! Machine-module stand-in: the completion lab owns the submit/pop
//! protocol surface (path matches `protocol::MACHINE_MODULES`).

pub struct CompletionLab {
    pending: u64,
}

impl CompletionLab {
    pub fn submit(&mut self, tag: u32) {
        self.pending += u64::from(tag);
    }

    pub fn pop_seeded(&mut self) -> u64 {
        self.pending
    }

    pub fn pop_fifo(&mut self) -> u64 {
        self.pending
    }
}

//! Fixture: `protocol-submit-completion` — a typed submit whose
//! enclosing fn never reaches a completion pop leaks the in-flight
//! request.

use dhs_par::lab::CompletionLab;

/// Violation: submits and returns without any pop on any path.
pub fn fire_and_forget(lab: &mut CompletionLab, tag: u32) {
    lab.submit(tag);
}

/// Clean: the same fn drains its own submission.
pub fn fire_and_drain(lab: &mut CompletionLab, tag: u32) -> u64 {
    lab.submit(tag);
    lab.pop_fifo()
}

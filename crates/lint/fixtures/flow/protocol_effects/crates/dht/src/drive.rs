//! Fixture: `protocol-inflight-effects` — RNG draws and recorder calls
//! between a submit and the next completion pop observe the completion
//! schedule, which the machines' order-invariance proof says is
//! unobservable. Effects after the pop are fine.

use dhs_par::lab::CompletionLab;

/// Two violations in the in-flight window (a draw and a recorder
/// call); the post-pop `incr` is clean.
pub fn drive(lab: &mut CompletionLab, rng: &mut impl Rng, rec: &mut Recorder) -> u64 {
    lab.submit(1);
    let jitter = rng.gen_range(0..4);
    rec.incr("op.insert", jitter);
    let got = lab.pop_seeded();
    rec.incr("op.insert", 1);
    got + jitter
}

#![allow(clippy::cast_possible_truncation)] // shuffle indices fit usize
//! Property: per-site resolution outcomes are invariant under
//! top-level item declaration reordering. The type index is built in a
//! declaration-order-independent way (BTreeMaps keyed by name), so
//! shuffling structs, impls, traits, `use` lines, and free fns within
//! each file must not change how any call site classifies.

use dhs_lint::callgraph::CallGraph;
use dhs_lint::items::{parse_items, FileItems};
use proptest::prelude::*;

/// Top-level items of the machine-module file, one string each.
const LAB_ITEMS: &[&str] = &[
    "pub struct CompletionLab {\n    pending: u64,\n    tags: Vec<u32>,\n}",
    "impl CompletionLab {\n    pub fn submit(&mut self, tag: u32) {\n        self.tags.push(tag);\n    }\n    pub fn pop_fifo(&mut self) -> u64 {\n        self.pending\n    }\n}",
    "pub fn lab_len(lab: &CompletionLab) -> u64 {\n    lab.pending\n}",
];

/// Top-level items of the caller file: same-name methods on two types,
/// trait dispatch, a chained receiver, a container-typed local, and a
/// free call — every dispatch path the resolver implements.
const NODE_ITEMS: &[&str] = &[
    "use dhs_par::lab::CompletionLab;",
    "pub trait Step {\n    fn advance(&mut self) -> u64;\n}",
    "pub struct Seeded {\n    state: u64,\n}",
    "impl Step for Seeded {\n    fn advance(&mut self) -> u64 {\n        self.state += 1;\n        self.state\n    }\n}",
    "pub struct Clocked {\n    last: u64,\n}",
    "impl Step for Clocked {\n    fn advance(&mut self) -> u64 {\n        self.last\n    }\n}",
    "pub struct Registry {\n    seeded: Seeded,\n}",
    "impl Registry {\n    pub fn seeded(&mut self) -> &mut Seeded {\n        &mut self.seeded\n    }\n}",
    "pub fn count_seeded(s: &mut Seeded) -> u64 {\n    s.advance()\n}",
    "pub fn count_any(n: &mut dyn Step) -> u64 {\n    n.advance()\n}",
    "pub fn count_registry(reg: &mut Registry) -> u64 {\n    reg.seeded().advance()\n}",
    "pub fn count_all(labs: &mut Vec<CompletionLab>, lab: &mut CompletionLab) -> u64 {\n    lab.submit(1);\n    let head = labs.first_mut().unwrap();\n    head.submit(2);\n    lab.pop_fifo() + lab_len(lab)\n}",
];

/// splitmix64 step, for a deterministic in-test shuffle.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fisher–Yates with a seeded splitmix64 stream.
fn shuffled(items: &[&str], state: &mut u64) -> String {
    let mut idx: Vec<usize> = (0..items.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = (next(state) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let mut out = String::new();
    for i in idx {
        out.push_str(items[i]);
        out.push_str("\n\n");
    }
    out
}

/// The order-free signature of a resolved corpus: sorted
/// `(caller qual, callee name, kind)` triples.
fn outcomes(sources: &[(String, String)]) -> Vec<(String, String, String)> {
    let files: Vec<FileItems> = sources.iter().map(|(p, s)| parse_items(p, s)).collect();
    let g = CallGraph::build(&files);
    let mut out: Vec<(String, String, String)> = g
        .sites
        .iter()
        .map(|s| {
            let r = g.fns[s.caller];
            (
                files[r.file].fns[r.item].qual_name.clone(),
                s.name.clone(),
                format!("{:?}", s.kind),
            )
        })
        .collect();
    out.sort();
    out
}

fn corpus(seed: Option<u64>) -> Vec<(String, String)> {
    let mut state = seed.unwrap_or(0);
    let (lab, nodes) = match seed {
        Some(_) => (
            shuffled(LAB_ITEMS, &mut state),
            shuffled(NODE_ITEMS, &mut state),
        ),
        None => (
            LAB_ITEMS.join("\n\n") + "\n",
            NODE_ITEMS.join("\n\n") + "\n",
        ),
    };
    vec![
        ("crates/par/src/lab.rs".to_string(), lab),
        ("crates/dht/src/nodes.rs".to_string(), nodes),
    ]
}

#[test]
fn declaration_order_corpus_resolves_every_dispatch_shape() {
    let base = outcomes(&corpus(None));
    let has = |caller: &str, name: &str, kind: &str| {
        base.iter()
            .any(|(c, n, k)| c == caller && n == name && k == kind)
    };
    assert!(has("count_seeded", "advance", "Resolved"), "{base:#?}");
    assert!(has("count_any", "advance", "Dispatch"), "{base:#?}");
    assert!(has("count_registry", "advance", "Resolved"), "{base:#?}");
    assert!(has("count_all", "submit", "Resolved"), "{base:#?}");
    assert!(has("count_all", "lab_len", "Resolved"), "{base:#?}");
    assert!(
        !base.iter().any(|(_, _, k)| k == "Ambiguous"),
        "corpus should fully resolve: {base:#?}"
    );
}

proptest! {
    /// Shuffling top-level declarations never changes any site's
    /// classification.
    #[test]
    fn resolution_outcomes_survive_item_reordering(seed in any::<u64>()) {
        let base = outcomes(&corpus(None));
        let permuted = outcomes(&corpus(Some(seed)));
        prop_assert_eq!(permuted, base);
    }
}

#![allow(clippy::cast_possible_truncation)] // shuffle indices fit usize
//! Property: per-site resolution outcomes are invariant under
//! top-level item declaration reordering. The type index is built in a
//! declaration-order-independent way (BTreeMaps keyed by name), so
//! shuffling structs, impls, traits, `use` lines, and free fns within
//! each file must not change how any call site classifies.

use dhs_lint::callgraph::CallGraph;
use dhs_lint::items::{parse_items, FileItems};
use proptest::prelude::*;

/// Top-level items of the machine-module file, one string each.
const LAB_ITEMS: &[&str] = &[
    "pub struct CompletionLab {\n    pending: u64,\n    tags: Vec<u32>,\n}",
    "impl CompletionLab {\n    pub fn submit(&mut self, tag: u32) {\n        self.tags.push(tag);\n    }\n    pub fn pop_fifo(&mut self) -> u64 {\n        self.pending\n    }\n}",
    "pub fn lab_len(lab: &CompletionLab) -> u64 {\n    lab.pending\n}",
];

/// Top-level items of the caller file: same-name methods on two types,
/// trait dispatch, a chained receiver, a container-typed local, and a
/// free call — every dispatch path the resolver implements.
const NODE_ITEMS: &[&str] = &[
    "use dhs_par::lab::CompletionLab;",
    "pub trait Step {\n    fn advance(&mut self) -> u64;\n}",
    "pub struct Seeded {\n    state: u64,\n}",
    "impl Step for Seeded {\n    fn advance(&mut self) -> u64 {\n        self.state += 1;\n        self.state\n    }\n}",
    "pub struct Clocked {\n    last: u64,\n}",
    "impl Step for Clocked {\n    fn advance(&mut self) -> u64 {\n        self.last\n    }\n}",
    "pub struct Registry {\n    seeded: Seeded,\n}",
    "impl Registry {\n    pub fn seeded(&mut self) -> &mut Seeded {\n        &mut self.seeded\n    }\n}",
    "pub fn count_seeded(s: &mut Seeded) -> u64 {\n    s.advance()\n}",
    "pub fn count_any(n: &mut dyn Step) -> u64 {\n    n.advance()\n}",
    "pub fn count_registry(reg: &mut Registry) -> u64 {\n    reg.seeded().advance()\n}",
    "pub fn count_all(labs: &mut Vec<CompletionLab>, lab: &mut CompletionLab) -> u64 {\n    lab.submit(1);\n    let head = labs.first_mut().unwrap();\n    head.submit(2);\n    lab.pop_fifo() + lab_len(lab)\n}",
];

/// splitmix64 step, for a deterministic in-test shuffle.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fisher–Yates with a seeded splitmix64 stream.
fn shuffled(items: &[&str], state: &mut u64) -> String {
    let mut idx: Vec<usize> = (0..items.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = (next(state) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let mut out = String::new();
    for i in idx {
        out.push_str(items[i]);
        out.push_str("\n\n");
    }
    out
}

/// The order-free signature of a resolved corpus: sorted
/// `(caller qual, callee name, kind)` triples.
fn outcomes(sources: &[(String, String)]) -> Vec<(String, String, String)> {
    let files: Vec<FileItems> = sources.iter().map(|(p, s)| parse_items(p, s)).collect();
    let g = CallGraph::build(&files);
    let mut out: Vec<(String, String, String)> = g
        .sites
        .iter()
        .map(|s| {
            let r = g.fns[s.caller];
            (
                files[r.file].fns[r.item].qual_name.clone(),
                s.name.clone(),
                format!("{:?}", s.kind),
            )
        })
        .collect();
    out.sort();
    out
}

fn corpus(seed: Option<u64>) -> Vec<(String, String)> {
    let mut state = seed.unwrap_or(0);
    let (lab, nodes) = match seed {
        Some(_) => (
            shuffled(LAB_ITEMS, &mut state),
            shuffled(NODE_ITEMS, &mut state),
        ),
        None => (
            LAB_ITEMS.join("\n\n") + "\n",
            NODE_ITEMS.join("\n\n") + "\n",
        ),
    };
    vec![
        ("crates/par/src/lab.rs".to_string(), lab),
        ("crates/dht/src/nodes.rs".to_string(), nodes),
    ]
}

#[test]
fn declaration_order_corpus_resolves_every_dispatch_shape() {
    let base = outcomes(&corpus(None));
    let has = |caller: &str, name: &str, kind: &str| {
        base.iter()
            .any(|(c, n, k)| c == caller && n == name && k == kind)
    };
    assert!(has("count_seeded", "advance", "Resolved"), "{base:#?}");
    assert!(has("count_any", "advance", "Dispatch"), "{base:#?}");
    assert!(has("count_registry", "advance", "Resolved"), "{base:#?}");
    assert!(has("count_all", "submit", "Resolved"), "{base:#?}");
    assert!(has("count_all", "lab_len", "Resolved"), "{base:#?}");
    assert!(
        !base.iter().any(|(_, _, k)| k == "Ambiguous"),
        "corpus should fully resolve: {base:#?}"
    );
}

proptest! {
    /// Shuffling top-level declarations never changes any site's
    /// classification.
    #[test]
    fn resolution_outcomes_survive_item_reordering(seed in any::<u64>()) {
        let base = outcomes(&corpus(None));
        let permuted = outcomes(&corpus(Some(seed)));
        prop_assert_eq!(permuted, base);
    }
}

/// Top-level items of a machine-module file exercising the
/// draw-parity shapes: direct divergence, divergence through a callee
/// summary, and a continue-balanced loop that must stay clean.
const PARITY_ITEMS: &[&str] = &[
    "pub fn step_hinted(rng: &mut impl Rng, hinted: bool) -> u64 {\n    if hinted {\n        rng.gen::<u64>()\n    } else {\n        rng.gen::<u64>() ^ rng.gen::<u64>()\n    }\n}",
    "pub fn refill_on_miss(rng: &mut impl Rng, miss: bool) -> u64 {\n    if miss {\n        draw_base(rng)\n    } else {\n        0\n    }\n}",
    "fn draw_base(rng: &mut impl Rng) -> u64 {\n    rng.gen_range(0..64)\n}",
    "pub fn scan_balanced(rng: &mut impl Rng, n: u64) -> u64 {\n    let mut acc = 0;\n    for i in 0..n {\n        if i % 2 == 0 {\n            acc ^= rng.gen::<u64>();\n            continue;\n        }\n        acc ^= rng.gen::<u64>();\n    }\n    acc\n}",
    "pub fn either_way(rng: &mut impl Rng, flip: bool) -> u64 {\n    if flip {\n        draw_base(rng)\n    } else {\n        rng.gen::<u64>()\n    }\n}",
];

fn parity_corpus(seed: Option<u64>) -> Vec<(String, String)> {
    let mut state = seed.unwrap_or(0);
    let src = match seed {
        Some(_) => shuffled(PARITY_ITEMS, &mut state),
        None => PARITY_ITEMS.join("\n\n") + "\n",
    };
    vec![("crates/core/src/machine.rs".to_string(), src)]
}

/// The order-free signature of a draw-parity run: the analyzed-fn
/// count plus sorted line-independent finding snippets.
fn parity_verdicts(sources: &[(String, String)]) -> (usize, Vec<String>) {
    let files: Vec<FileItems> = sources.iter().map(|(p, s)| parse_items(p, s)).collect();
    let g = CallGraph::build(&files);
    let mut findings = Vec::new();
    let analyzed = dhs_lint::absint::draw_parity(&files, &g, &mut findings);
    let mut snippets: Vec<String> = findings.into_iter().map(|f| f.snippet).collect();
    snippets.sort();
    (analyzed, snippets)
}

/// The order-free CFG signature of every fn in the corpus: block
/// shapes with token offsets rebased to the body opener, keyed by
/// qualified fn name.
fn cfg_signatures(sources: &[(String, String)]) -> std::collections::BTreeMap<String, String> {
    use dhs_lint::cfg::Cfg;
    let mut out = std::collections::BTreeMap::new();
    for (p, s) in sources {
        let file = parse_items(p, s);
        for f in &file.fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            let cfg = Cfg::build(&file.tokens, open, close);
            let mut sig = String::new();
            for b in &cfg.blocks {
                let segs: Vec<(usize, usize, bool)> = b
                    .segs
                    .iter()
                    .map(|sg| (sg.lo - open, sg.hi - open, sg.closure))
                    .collect();
                let branch = b.branch.as_ref().map(|br| {
                    (
                        format!("{:?}", br.kind),
                        br.tok - open,
                        br.arms.clone(),
                        br.join,
                    )
                });
                sig.push_str(&format!(
                    "{segs:?} succs={:?} in_loop={} branch={branch:?};",
                    b.succs, b.in_loop
                ));
            }
            sig.push_str(&format!(" back={:?}", cfg.back_edges));
            out.insert(f.qual_name.clone(), sig);
        }
    }
    out
}

#[test]
fn parity_corpus_flags_exactly_the_divergent_fns() {
    let (analyzed, snippets) = parity_verdicts(&parity_corpus(None));
    assert_eq!(analyzed, 5, "{snippets:#?}");
    assert_eq!(snippets.len(), 2, "{snippets:#?}");
    assert!(snippets[0].starts_with("refill_on_miss:"), "{snippets:#?}");
    assert!(snippets[1].starts_with("step_hinted:"), "{snippets:#?}");
}

proptest! {
    /// Shuffling top-level declarations never changes which fns the
    /// draw-parity pass analyzes or flags.
    #[test]
    fn draw_parity_verdicts_survive_item_reordering(seed in any::<u64>()) {
        let base = parity_verdicts(&parity_corpus(None));
        let permuted = parity_verdicts(&parity_corpus(Some(seed)));
        prop_assert_eq!(permuted, base);
    }

    /// Shuffling top-level declarations never changes any fn's CFG
    /// once token offsets are rebased to its body opener.
    #[test]
    fn cfg_shapes_survive_item_reordering(seed in any::<u64>()) {
        let base = cfg_signatures(&parity_corpus(None));
        let permuted = cfg_signatures(&parity_corpus(Some(seed)));
        prop_assert_eq!(permuted, base);
    }
}

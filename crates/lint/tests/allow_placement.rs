//! Regression tests for the escape-hatch placement semantics: a
//! `// dhs-lint: allow(rule)` trailing on the finding's own line must
//! behave identically to a comment on the preceding line, and one
//! comment may carry several rules.

use dhs_lint::{flow_files, lint_source, NameSet};

fn lint(src: &str) -> Vec<&'static str> {
    lint_source("crates/core/src/a.rs", src, &NameSet::default())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn trailing_same_line_allow_suppresses() {
    let src = "pub fn f(x: u64) -> u8 {\n    \
               x as u8 // dhs-lint: allow(lossy_cast) — masked upstream\n}\n";
    assert!(lint(src).is_empty(), "{:?}", lint(src));
}

#[test]
fn preceding_line_allow_suppresses() {
    let src = "pub fn f(x: u64) -> u8 {\n    \
               // dhs-lint: allow(lossy_cast) — masked upstream\n    \
               x as u8\n}\n";
    assert!(lint(src).is_empty(), "{:?}", lint(src));
}

#[test]
fn both_placements_are_equivalent_for_every_finding_line() {
    // The same violation, allowed trailing vs. preceding, must yield
    // the same (empty) result; unallowed, both report the same rule.
    let bare = "pub fn f(x: u64) -> u8 {\n    x as u8\n}\n";
    assert_eq!(lint(bare), vec!["lossy_cast"]);
    let trailing = "pub fn f(x: u64) -> u8 {\n    x as u8 // dhs-lint: allow(lossy_cast)\n}\n";
    let preceding =
        "pub fn f(x: u64) -> u8 {\n    // dhs-lint: allow(lossy_cast)\n    x as u8\n}\n";
    assert_eq!(lint(trailing), lint(preceding));
    assert!(lint(trailing).is_empty());
}

#[test]
fn multiple_rules_in_one_comment() {
    // `as`-narrowing and a wall clock on one line, one combined allow.
    let src = "pub fn f(x: u64) -> u8 {\n    \
               let _t = SystemTime::now();\n    \
               x as u8\n}\n";
    let bare = lint(src);
    assert_eq!(bare, vec!["determinism", "lossy_cast"], "{bare:?}");
    let allowed = "pub fn f(x: u64) -> u8 {\n    \
                   // dhs-lint: allow(determinism, lossy_cast) — fixture\n    \
                   let _t = SystemTime::now();\n    \
                   // dhs-lint: allow(determinism, lossy_cast)\n    \
                   x as u8\n}\n";
    assert!(lint(allowed).is_empty(), "{:?}", lint(allowed));
}

#[test]
fn allow_only_covers_its_own_rule() {
    let src = "pub fn f(x: u64) -> u8 {\n    \
               x as u8 // dhs-lint: allow(determinism) — wrong rule\n}\n";
    assert_eq!(lint(src), vec!["lossy_cast"]);
}

#[test]
fn flow_allow_honors_both_placements_too() {
    let trailing = [(
        "crates/core/src/a.rs".to_string(),
        "fn send() -> Result<(), ()> { Ok(()) }\n\
         fn go() {\n    let _ = send(); // dhs-flow: allow(dropped-result)\n}\n"
            .to_string(),
    )];
    let (f1, _) = flow_files(&trailing);
    assert!(f1.is_empty(), "{f1:#?}");
    let preceding = [(
        "crates/core/src/a.rs".to_string(),
        "fn send() -> Result<(), ()> { Ok(()) }\n\
         fn go() {\n    // dhs-flow: allow(dropped-result)\n    let _ = send();\n}\n"
            .to_string(),
    )];
    let (f2, _) = flow_files(&preceding);
    assert!(f2.is_empty(), "{f2:#?}");
}

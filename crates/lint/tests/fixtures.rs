//! Fixture corpus tests: each fixture file under `fixtures/` (a mirror
//! of the real workspace layout) must produce byte-for-byte the JSONL
//! recorded in `fixtures/expected/<case>.jsonl`.
//!
//! Regenerate the expected files with
//! `cargo run -p dhs-lint --example gen_expected` after an intentional
//! rule change — and eyeball the diff.

use std::fs;
use std::path::{Path, PathBuf};

use dhs_lint::{classify, lint_source, render_jsonl, NameSet};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// The canonical-name table every fixture case is linted against.
fn names() -> NameSet {
    // Exercise the textual names.rs parser, not just `from_names`.
    NameSet::parse(
        r#"
        /// Canonical.
        pub const OP_INSERT: &str = "op.insert";
        /// Canonical.
        pub const LATENCY_TICKS: &str = "latency.ticks";
        "#,
    )
}

fn check(case: &str, rel: &str) {
    let root = fixture_root();
    let src = fs::read_to_string(root.join(rel)).unwrap();
    let findings = lint_source(&format!("fixtures/{rel}"), &src, &names());
    let got = render_jsonl(&findings, 1);
    let want = fs::read_to_string(root.join("expected").join(format!("{case}.jsonl"))).unwrap();
    assert_eq!(got, want, "fixture `{case}` JSONL drifted");
}

#[test]
fn clean_file_reports_nothing() {
    check("clean", "crates/core/src/clean.rs");
}

#[test]
fn determinism_violations_are_found() {
    check("determinism", "crates/core/src/determinism.rs");
}

#[test]
fn lossy_casts_are_found() {
    check("lossy_cast", "crates/core/src/lossy.rs");
}

#[test]
fn off_registry_metric_names_are_found() {
    check("metric_names", "crates/core/src/metrics.rs");
}

#[test]
fn propagated_const_and_local_metric_names_are_found() {
    check("metric_flow", "crates/core/src/metric_flow.rs");
    // Both findings come from constant propagation, not the literal
    // scan: the const concat and the single-assignment local resolve
    // to non-canonical values; the poisoned `mut` binding is skipped.
    let root = fixture_root();
    let src = fs::read_to_string(root.join("crates/core/src/metric_flow.rs")).unwrap();
    let findings = lint_source("fixtures/crates/core/src/metric_flow.rs", &src, &names());
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == "metric_names"));
    assert!(findings[0].snippet.contains("BAD_NAME"), "{findings:#?}");
    assert!(findings[1].snippet.contains("typo"), "{findings:#?}");
}

#[test]
fn casual_panics_are_found() {
    check("panic_hygiene", "crates/dht/src/panics.rs");
}

#[test]
fn allow_directives_suppress_everything() {
    check("allowed", "crates/core/src/allowed.rs");
}

#[test]
fn ad_hoc_threading_is_found_on_the_replay_path() {
    check("threading", "crates/core/src/threading.rs");
}

#[test]
fn approved_driver_module_may_spawn_and_lock() {
    check("threading_approved", "crates/par/src/driver.rs");
}

#[test]
fn fixture_paths_classify_like_workspace_paths() {
    let via_fixture = classify("fixtures/crates/core/src/determinism.rs");
    let direct = classify("crates/core/src/determinism.rs");
    assert_eq!(via_fixture, direct);
    assert!(via_fixture.is_library);
    assert_eq!(via_fixture.crate_name, "core");
}

#[test]
fn linting_is_deterministic_per_file() {
    let root = fixture_root();
    let rel = "crates/core/src/determinism.rs";
    let src = fs::read_to_string(root.join(rel)).unwrap();
    let names = names();
    let a = render_jsonl(&lint_source(rel, &src, &names), 1);
    let b = render_jsonl(&lint_source(rel, &src, &names), 1);
    assert_eq!(a, b, "same input must render byte-identical JSONL");
}

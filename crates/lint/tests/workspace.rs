//! The gate itself, as a test: the real workspace must lint clean, and
//! two full runs must render byte-identical JSONL.

use std::path::Path;

use dhs_lint::{flow_workspace, lint_workspace, render_flow_jsonl, render_jsonl};

fn workspace_root() -> &'static Path {
    // crates/lint/../.. — the directory holding the workspace Cargo.toml.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn real_workspace_has_zero_findings() {
    let (findings, scanned) = lint_workspace(workspace_root()).unwrap();
    assert!(scanned > 50, "suspiciously few files scanned: {scanned}");
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        render_jsonl(&findings, scanned)
    );
}

#[test]
fn two_runs_are_byte_identical() {
    let (f1, n1) = lint_workspace(workspace_root()).unwrap();
    let (f2, n2) = lint_workspace(workspace_root()).unwrap();
    assert_eq!(render_jsonl(&f1, n1), render_jsonl(&f2, n2));
}

#[test]
fn real_workspace_flow_has_zero_findings() {
    let (findings, stats) = flow_workspace(workspace_root()).unwrap();
    assert!(
        stats.files_scanned > 50,
        "suspiciously few library files: {}",
        stats.files_scanned
    );
    assert!(
        stats.functions > 300,
        "suspiciously small call graph: {} fns",
        stats.functions
    );
    assert!(
        findings.is_empty(),
        "workspace flow findings:\n{}",
        render_flow_jsonl(&findings, &stats)
    );
}

#[test]
fn opt_out_lists_stay_subsets_of_the_real_member_list() {
    // The scopes are *derived* from Cargo.toml members minus explicit
    // opt-outs; an opt-out naming a crate that no longer exists is a
    // stale entry this test forces someone to delete.
    let members = dhs_lint::workspace_members(workspace_root()).unwrap();
    assert!(members.len() >= 10, "member parse broke: {members:?}");
    for c in dhs_lint::rules::REPLAY_OPT_OUT {
        assert!(
            members.iter().any(|m| m == c),
            "stale REPLAY_OPT_OUT entry `{c}`"
        );
    }
    for c in dhs_lint::rules::METRIC_NAME_OPT_OUT {
        assert!(
            members.iter().any(|m| m == c),
            "stale METRIC_NAME_OPT_OUT entry `{c}`"
        );
    }
    // And the derived scopes are exactly members minus opt-outs.
    let replay = dhs_lint::walk::derived_replay_crates(workspace_root()).unwrap();
    assert!(replay.contains(&"core".to_string()) && !replay.contains(&"bench".to_string()));
    let metric = dhs_lint::walk::derived_metric_name_crates(workspace_root()).unwrap();
    assert!(metric.contains(&"bench".to_string()) && !metric.contains(&"sketch".to_string()));
}

#[test]
fn two_flow_runs_are_byte_identical() {
    let (f1, s1) = flow_workspace(workspace_root()).unwrap();
    let (f2, s2) = flow_workspace(workspace_root()).unwrap();
    assert_eq!(render_flow_jsonl(&f1, &s1), render_flow_jsonl(&f2, &s2));
}

//! The gate itself, as a test: the real workspace must lint clean, and
//! two full runs must render byte-identical JSONL.

use std::path::Path;

use dhs_lint::{lint_workspace, render_jsonl};

fn workspace_root() -> &'static Path {
    // crates/lint/../.. — the directory holding the workspace Cargo.toml.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn real_workspace_has_zero_findings() {
    let (findings, scanned) = lint_workspace(workspace_root()).unwrap();
    assert!(scanned > 50, "suspiciously few files scanned: {scanned}");
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        render_jsonl(&findings, scanned)
    );
}

#[test]
fn two_runs_are_byte_identical() {
    let (f1, n1) = lint_workspace(workspace_root()).unwrap();
    let (f2, n2) = lint_workspace(workspace_root()).unwrap();
    assert_eq!(render_jsonl(&f1, n1), render_jsonl(&f2, n2));
}

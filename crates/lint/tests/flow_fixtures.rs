//! Flow fixture corpus: each case under `fixtures/flow/<case>/` is a
//! mini-workspace; running the interprocedural analysis over it must
//! produce byte-for-byte the JSONL recorded in
//! `fixtures/flow/expected/<case>.jsonl`.
//!
//! Regenerate with `cargo run -p dhs-lint --example gen_expected`
//! after an intentional rule change — and eyeball the diff.

use std::fs;
use std::path::{Path, PathBuf};

use dhs_lint::{flow_files, render_flow_jsonl, rust_sources};

fn flow_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/flow")
}

fn run_case(case: &str) -> String {
    let case_root = flow_root().join(case);
    let mut inputs = Vec::new();
    for rel in rust_sources(&case_root).unwrap() {
        let src = fs::read_to_string(case_root.join(&rel)).unwrap();
        inputs.push((rel, src));
    }
    assert!(!inputs.is_empty(), "flow fixture `{case}` has no sources");
    let (findings, stats) = flow_files(&inputs);
    render_flow_jsonl(&findings, &stats)
}

fn check(case: &str) {
    let got = run_case(case);
    let want = fs::read_to_string(flow_root().join("expected").join(format!("{case}.jsonl")))
        .unwrap_or_else(|e| panic!("expected JSONL for `{case}`: {e}"));
    assert_eq!(got, want, "flow fixture `{case}` JSONL drifted");
}

#[test]
fn entropy_taint_crosses_crates_with_witness_chain() {
    check("entropy");
    let got = run_case("entropy");
    assert!(
        got.contains("count_interval -> pick_start -> clock_ms -> [SystemTime]"),
        "{got}"
    );
    assert!(!got.contains("count_seeded"), "rng-param entry is clean");
}

#[test]
fn owned_rng_is_flagged_and_every_plumbed_variant_is_clean() {
    check("plumbing");
    let got = run_case("plumbing");
    assert_eq!(got.matches("rng-plumbing").count(), 1, "{got}");
}

#[test]
fn dropped_results_flagged_in_let_underscore_and_statement_position() {
    check("dropped");
}

#[test]
fn unannotated_cycles_flagged_cycle_ok_and_field_methods_clean() {
    check("cycles");
    let got = run_case("cycles");
    assert!(!got.contains("route_bounded"), "cycle-ok silences: {got}");
    assert!(
        !got.contains("RouteCache"),
        "field method ≠ self-loop: {got}"
    );
}

#[test]
fn fully_plumbed_workspace_is_clean() {
    check("flow_clean");
}

#[test]
fn receiver_types_split_same_name_methods_and_dispatch_inherits_taint() {
    check("dispatch");
    let got = run_case("dispatch");
    // The typed resolution sends each `advance` call to its own impl:
    // only the clocked chain and the dyn dispatch are tainted.
    assert!(
        got.contains("count_clocked -> Clocked::advance -> [SystemTime]"),
        "{got}"
    );
    assert!(
        got.contains("count_any -> Clocked::advance -> [SystemTime]"),
        "{got}"
    );
    assert!(!got.contains("count_seeded"), "seeded impl is clean: {got}");
    assert!(
        !got.contains("count_registry"),
        "chained receiver types to Seeded: {got}"
    );
    assert!(got.contains("\"ambiguous_calls\":0"), "{got}");
}

#[test]
fn undraining_submit_is_a_leak_and_self_draining_fn_is_clean() {
    check("protocol_submit");
    let got = run_case("protocol_submit");
    assert_eq!(
        got.matches("protocol-submit-completion").count(),
        1,
        "{got}"
    );
    assert!(!got.contains("fire_and_drain"), "{got}");
}

#[test]
fn draws_and_recorder_calls_inside_the_inflight_window_are_flagged() {
    check("protocol_effects");
    let got = run_case("protocol_effects");
    assert_eq!(got.matches("protocol-inflight-effects").count(), 2, "{got}");
}

#[test]
fn direct_sync_exchange_outside_machine_modules_is_flagged() {
    check("protocol_exchange");
    let got = run_case("protocol_exchange");
    assert_eq!(got.matches("protocol-sync-exchange").count(), 2, "{got}");
    assert!(
        !got.contains("exec_send"),
        "approved module is clean: {got}"
    );
}

#[test]
fn unequal_branch_draws_flagged_direct_and_through_callees() {
    check("draw_parity");
    let got = run_case("draw_parity");
    assert_eq!(got.matches("rng-draw-parity").count(), 2, "{got}");
    assert!(got.contains("step_hinted"), "direct divergence: {got}");
    assert!(got.contains("refill_on_miss"), "callee summary: {got}");
    assert!(
        !got.contains("scan_balanced"),
        "per-iteration parity: {got}"
    );
    assert!(!got.contains("probe_or_draw"), "allow silences: {got}");
    assert!(
        !got.contains("jitter"),
        "out-of-scope fn not analyzed: {got}"
    );
}

#[test]
fn oversized_cast_operands_flagged_and_bounded_ones_prove() {
    check("cast_range");
    let got = run_case("cast_range");
    assert_eq!(got.matches("\"rule\":\"cast-range\"").count(), 2, "{got}");
    assert!(
        got.contains("truncate_const") || got.contains("OVERSIZED"),
        "{got}"
    );
    assert!(got.contains("checked_cast"), "remediation named: {got}");
    assert!(got.contains("\"casts_proven_safe\":4"), "{got}");
    assert!(
        !got.contains("passthrough"),
        "unbounded stays untriaged: {got}"
    );
}

#[test]
fn flow_analysis_is_deterministic_per_case() {
    for case in [
        "cast_range",
        "cycles",
        "dispatch",
        "draw_parity",
        "dropped",
        "entropy",
        "flow_clean",
        "plumbing",
        "protocol_effects",
        "protocol_exchange",
        "protocol_submit",
    ] {
        assert_eq!(run_case(case), run_case(case), "case `{case}`");
    }
}

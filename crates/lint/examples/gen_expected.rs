//! One-off generator for fixture expected JSONL (dev aid).
use std::fs;
use std::path::Path;

use dhs_lint::{lint_source, render_jsonl, NameSet};

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let names = NameSet::from_names(["op.insert".to_string(), "latency.ticks".to_string()]);
    let cases = [
        ("clean", "crates/core/src/clean.rs"),
        ("determinism", "crates/core/src/determinism.rs"),
        ("lossy_cast", "crates/core/src/lossy.rs"),
        ("metric_names", "crates/core/src/metrics.rs"),
        ("panic_hygiene", "crates/dht/src/panics.rs"),
        ("allowed", "crates/core/src/allowed.rs"),
    ];
    for (case, rel) in cases {
        let src = fs::read_to_string(root.join(rel)).unwrap();
        let findings = lint_source(&format!("fixtures/{rel}"), &src, &names);
        let out = render_jsonl(&findings, 1);
        fs::write(root.join("expected").join(format!("{case}.jsonl")), &out).unwrap();
        print!("--- {case}\n{out}");
    }
}

//! One-off generator for fixture expected JSONL (dev aid).
use std::fs;
use std::path::Path;

use dhs_lint::{flow_files, lint_source, render_flow_jsonl, render_jsonl, rust_sources, NameSet};

/// The flow fixture cases: each is a mini-workspace under
/// `fixtures/flow/<case>/`.
pub const FLOW_CASES: &[&str] = &[
    "cast_range",
    "cycles",
    "dispatch",
    "draw_parity",
    "dropped",
    "entropy",
    "flow_clean",
    "plumbing",
    "protocol_effects",
    "protocol_exchange",
    "protocol_submit",
];

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let names = NameSet::from_names(["op.insert".to_string(), "latency.ticks".to_string()]);
    let cases = [
        ("clean", "crates/core/src/clean.rs"),
        ("determinism", "crates/core/src/determinism.rs"),
        ("lossy_cast", "crates/core/src/lossy.rs"),
        ("metric_names", "crates/core/src/metrics.rs"),
        ("metric_flow", "crates/core/src/metric_flow.rs"),
        ("panic_hygiene", "crates/dht/src/panics.rs"),
        ("allowed", "crates/core/src/allowed.rs"),
        ("threading", "crates/core/src/threading.rs"),
        ("threading_approved", "crates/par/src/driver.rs"),
    ];
    for (case, rel) in cases {
        let src = fs::read_to_string(root.join(rel)).unwrap();
        let findings = lint_source(&format!("fixtures/{rel}"), &src, &names);
        let out = render_jsonl(&findings, 1);
        fs::write(root.join("expected").join(format!("{case}.jsonl")), &out).unwrap();
        print!("--- {case}\n{out}");
    }
    for case in FLOW_CASES {
        let case_root = root.join("flow").join(case);
        let mut inputs = Vec::new();
        for rel in rust_sources(&case_root).unwrap() {
            let src = fs::read_to_string(case_root.join(&rel)).unwrap();
            inputs.push((rel, src));
        }
        let (findings, stats) = flow_files(&inputs);
        let out = render_flow_jsonl(&findings, &stats);
        let dest = root.join("flow").join("expected");
        fs::create_dir_all(&dest).unwrap();
        fs::write(dest.join(format!("{case}.jsonl")), &out).unwrap();
        print!("--- flow/{case}\n{out}");
    }
}

//! Developer tool: list every narrowing `as` cast in flow-scope files
//! with the cast-range pass's verdict — proven / unknown / truncates —
//! grouped per file, so widening the interval transfer functions (or
//! the fact file) is data-driven. Run as:
//!
//! ```text
//! cargo run -p dhs-lint --example dump_casts [workspace-root]
//! ```

use std::path::PathBuf;

use dhs_lint::absint::{cast_verdicts, Verdict};
use dhs_lint::items::parse_items;
use dhs_lint::rules::flow_scope;
use dhs_lint::walk::rust_sources;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let sources = rust_sources(&root).expect("walk workspace");
    let files: Vec<_> = sources
        .iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(rel)).expect("read source");
            parse_items(rel, &src)
        })
        .filter(|f| flow_scope(&f.class))
        .collect();

    let verdicts = cast_verdicts(&files);
    let (mut proven, mut unknown, mut truncates) = (0usize, 0usize, 0usize);
    for v in &verdicts {
        match v.verdict {
            Verdict::Proven => proven += 1,
            Verdict::Unknown => unknown += 1,
            Verdict::Truncates => truncates += 1,
        }
    }
    println!(
        "{} narrowing casts: {proven} proven, {unknown} unknown, {truncates} truncating",
        verdicts.len()
    );
    let mut last_path = "";
    for v in &verdicts {
        if v.verdict == Verdict::Proven {
            continue;
        }
        if v.path != last_path {
            println!("{}", v.path);
            last_path = &v.path;
        }
        println!("  {:>5}  as {:<6} {:?}", v.line, v.target, v.verdict);
    }
}

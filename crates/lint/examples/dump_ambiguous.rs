//! Developer tool: list the call names that remain ambiguous after
//! type-aware resolution, most frequent first, with one example site
//! each. Run as:
//!
//! ```text
//! cargo run -p dhs-lint --example dump_ambiguous [workspace-root]
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

use dhs_lint::callgraph::CallGraph;
use dhs_lint::resolve::SiteKind;
use dhs_lint::rules::classify;
use dhs_lint::walk::rust_sources;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let files = rust_sources(&root).expect("walk workspace");
    let mut inputs = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel)).expect("read source");
        inputs.push((rel, source));
    }
    let parsed: Vec<dhs_lint::items::FileItems> = inputs
        .iter()
        .map(|(rel, source)| dhs_lint::items::parse_items(rel, source))
        .filter(|f| dhs_lint::rules::flow_scope(&classify(&f.path)))
        .collect();
    let graph = CallGraph::build(&parsed);
    let mut by_name: BTreeMap<&str, (usize, String)> = BTreeMap::new();
    for site in &graph.sites {
        if site.kind != SiteKind::Ambiguous {
            continue;
        }
        let e = by_name
            .entry(site.name.as_str())
            .or_insert_with(|| (0, String::new()));
        e.0 += 1;
        if e.1.is_empty() {
            let f = &graph.fns[site.caller];
            e.1 = format!(
                "{}:{} in {}",
                parsed[f.file].path,
                parsed[f.file].fns[f.item].line,
                parsed[f.file].fns[f.item].name
            );
        }
    }
    let mut rows: Vec<(usize, &str, String)> =
        by_name.into_iter().map(|(n, (c, ex))| (c, n, ex)).collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
    let total: usize = rows.iter().map(|r| r.0).sum();
    println!("total ambiguous sites: {total}");
    for (count, name, example) in rows {
        println!("{count:5}  {name:28} e.g. {example}");
    }
}

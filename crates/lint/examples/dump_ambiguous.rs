//! Developer tool: list the call names that remain ambiguous after
//! type-aware resolution, bucketed by cause so the next precision
//! target is data-driven, most frequent first, with one example site
//! each. Run as:
//!
//! ```text
//! cargo run -p dhs-lint --example dump_ambiguous [workspace-root]
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

use dhs_lint::callgraph::CallGraph;
use dhs_lint::items::FileItems;
use dhs_lint::lexer::Tok;
use dhs_lint::resolve::SiteKind;
use dhs_lint::rules::classify;
use dhs_lint::walk::rust_sources;

/// Why a site stayed ambiguous, by syntactic shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Cause {
    /// Method call whose receiver head is a closure parameter the
    /// element-typing pass could not bind.
    ClosureParam,
    /// Method call with a multi-candidate set on an untyped receiver:
    /// would resolve by dispatch if the receiver typed.
    Dispatch,
    /// Site inside a macro invocation's delimiters.
    Macro,
    /// Everything else (free-call fallbacks, path quirks).
    Other,
}

fn label(c: Cause) -> &'static str {
    match c {
        Cause::ClosureParam => "closure-param",
        Cause::Dispatch => "dispatch",
        Cause::Macro => "macro",
        Cause::Other => "other",
    }
}

/// Idents appearing in closure parameter lists anywhere in `[open, close)`.
fn closure_param_names(file: &FileItems, open: usize, close: usize) -> Vec<String> {
    let toks = &file.tokens;
    let mut names = Vec::new();
    let mut j = open + 1;
    while j < close {
        // A `|` opening a closure follows `(`, `,`, `=`, `{`, or `move`.
        let opens_closure = toks[j].kind == Tok::Punct('|')
            && j > 0
            && matches!(
                &toks[j - 1].kind,
                Tok::Punct('(') | Tok::Punct(',') | Tok::Punct('=') | Tok::Punct('{')
            )
            || matches!(&toks[j].kind, Tok::Ident(s) if s == "move");
        if !opens_closure {
            j += 1;
            continue;
        }
        let bar = if toks[j].kind == Tok::Punct('|') {
            j
        } else if toks.get(j + 1).map(|t| &t.kind) == Some(&Tok::Punct('|')) {
            j + 1
        } else {
            j += 1;
            continue;
        };
        let mut k = bar + 1;
        while k < close && toks[k].kind != Tok::Punct('|') {
            if let Tok::Ident(n) = &toks[k].kind {
                names.push(n.clone());
            }
            k += 1;
        }
        j = k + 1;
    }
    names
}

/// Is token `at` inside a macro invocation's delimiters?
fn inside_macro(file: &FileItems, open: usize, at: usize) -> bool {
    let toks = &file.tokens;
    let mut j = open;
    while j + 2 < at {
        if matches!(&toks[j].kind, Tok::Ident(_)) && toks[j + 1].kind == Tok::Punct('!') {
            if let Some(Tok::Punct(o @ ('(' | '[' | '{'))) = toks.get(j + 2).map(|t| &t.kind) {
                let close_ch = match o {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                };
                let mut depth = 0usize;
                let mut k = j + 2;
                while k < toks.len() {
                    if toks[k].kind == Tok::Punct(*o) {
                        depth += 1;
                    } else if toks[k].kind == Tok::Punct(close_ch) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                if at > j + 2 && at < k {
                    return true;
                }
                j = k;
                continue;
            }
        }
        j += 1;
    }
    false
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let files = rust_sources(&root).expect("walk workspace");
    let mut inputs = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel)).expect("read source");
        inputs.push((rel, source));
    }
    let parsed: Vec<FileItems> = inputs
        .iter()
        .map(|(rel, source)| dhs_lint::items::parse_items(rel, source))
        .filter(|f| dhs_lint::rules::flow_scope(&classify(&f.path)))
        .collect();
    let graph = CallGraph::build(&parsed);

    let mut buckets: BTreeMap<Cause, usize> = BTreeMap::new();
    let mut by_name: BTreeMap<(Cause, &str), (usize, String)> = BTreeMap::new();
    for site in &graph.sites {
        if site.kind != SiteKind::Ambiguous {
            continue;
        }
        let f = &graph.fns[site.caller];
        let file = &parsed[f.file];
        let item = &file.fns[f.item];
        let (open, close) = item.body.unwrap_or((site.tok, site.tok));
        let is_method = site.tok > 0 && file.tokens[site.tok - 1].kind == Tok::Punct('.');
        let head_is_closure_param = is_method && {
            let params = closure_param_names(file, open, close);
            match file.tokens.get(site.tok.wrapping_sub(2)).map(|t| &t.kind) {
                Some(Tok::Ident(h)) => params.iter().any(|p| p == h),
                _ => false,
            }
        };
        let cause = if head_is_closure_param {
            Cause::ClosureParam
        } else if inside_macro(file, open, site.tok) {
            Cause::Macro
        } else if is_method && site.candidates.len() > 1 {
            Cause::Dispatch
        } else {
            Cause::Other
        };
        *buckets.entry(cause).or_insert(0) += 1;
        let e = by_name
            .entry((cause, site.name.as_str()))
            .or_insert_with(|| (0, String::new()));
        e.0 += 1;
        if e.1.is_empty() {
            e.1 = format!(
                "{}:{} in {}",
                file.path, file.tokens[site.tok].line, item.name
            );
        }
    }

    let total: usize = buckets.values().sum();
    println!("total ambiguous sites: {total}");
    for (cause, count) in &buckets {
        println!("  {:14} {count}", label(*cause));
    }
    let mut rows: Vec<(usize, Cause, &str, String)> = by_name
        .into_iter()
        .map(|((c, n), (count, ex))| (count, c, n, ex))
        .collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(b.2)));
    for (count, cause, name, example) in rows {
        println!("{count:5}  {:14} {name:24} e.g. {example}", label(cause));
    }
}

//! A lightweight item parser on top of the [`crate::lexer`]: extracts
//! the `fn`/`impl`/`trait` structure the flow analysis needs, without
//! building an AST.
//!
//! Per function it records: the (possibly impl-qualified) name, the
//! source line, whether the signature plumbs an `Rng`-bounded
//! parameter, whether the return type is a `Result`, the token range of
//! the body, whether the item sits inside `#[cfg(test)]`, and any
//! `// dhs-flow: allow(<rule>)` / `// dhs-flow: cycle-ok(<reason>)`
//! annotations attached to it.
//!
//! Annotation placement for function-granularity rules: the directive
//! comment may trail the `fn` line, stand in the comment block
//! immediately above the signature, or appear anywhere inside the body.
//! (Line-granularity rules — `dropped-result` — keep the stricter
//! same-line/preceding-line semantics of `dhs-lint: allow`.)

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, Token};
use crate::rules::{cfg_test_lines, classify, directive_map, is_ident, FileClass};

/// The directive marker for flow-analysis annotations.
pub const FLOW_MARKER: &str = "dhs-flow:";

/// One parsed function (or trait-method declaration).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`route`).
    pub name: String,
    /// `Type::name` for impl/trait methods, else the bare name.
    pub qual_name: String,
    /// The impl/trait self-type this fn is a method of, if any.
    pub self_type: Option<String>,
    /// The trait being implemented when inside `impl Trait for Type`.
    pub trait_of: Option<String>,
    /// Declared inside a `trait X { … }` block (decl or default body).
    pub in_trait: bool,
    /// Token range `[fn_kw, body_open_or_semi]` of the signature, for
    /// the type layer ([`crate::types`]) to parse params/return/bounds.
    pub sig: (usize, usize),
    /// Token range `[kw, open_brace]` of the enclosing impl/trait
    /// header, if any — carries impl-level generic bounds.
    pub outer_header: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Signature receives a caller-supplied RNG: an `Rng` bound appears
    /// in the fn generics/params/where-clause or on the enclosing impl.
    pub has_rng_param: bool,
    /// Declared return type mentions `Result`.
    pub returns_result: bool,
    /// Inside a `#[cfg(test)]` extent.
    pub is_test: bool,
    /// Token-index range `(open_brace, close_brace)` of the body in the
    /// file's token stream; `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Line of the body's closing brace (= `line` for declarations).
    pub end_line: u32,
    /// Rules suppressed on this fn via `dhs-flow: allow(...)`.
    pub allowed: BTreeSet<String>,
    /// Carries a `dhs-flow: cycle-ok(reason)` annotation.
    pub cycle_ok: bool,
}

impl FnItem {
    /// Whether `rule` is suppressed on this fn.
    pub fn allows(&self, rule: &str) -> bool {
        self.allowed.contains(rule)
    }
}

/// One parsed source file: its class, token stream, raw lines, the
/// functions found, and the line-granular flow allow map.
#[derive(Debug)]
pub struct FileItems {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Classification of `path`.
    pub class: FileClass,
    /// Full token stream (bodies index into this).
    pub tokens: Vec<Token>,
    /// Raw source lines, for snippets.
    pub lines: Vec<String>,
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// `dhs-flow: allow` directives resolved to code lines (same
    /// placement semantics as `dhs-lint: allow`).
    pub flow_allows: BTreeMap<u32, BTreeSet<String>>,
}

/// Parse one file into its function items. The caller decides which
/// files to feed in (the flow analysis uses non-exempt library sources).
pub fn parse_items(path: &str, source: &str) -> FileItems {
    let class = classify(path);
    let lexed = lex(source);
    let toks = lexed.tokens;
    let test_ranges = cfg_test_lines(&toks);
    let flow_allows = directive_map(&lexed.comments, &toks, FLOW_MARKER);
    // cycle-ok placement resolves like allow: trailing comments cover
    // their own line, standalone comments the next code line.
    let cycle_lines = cycle_ok_lines(&lexed.comments, &toks);

    let mut fns = Vec::new();
    // Stack of enclosing impl/trait contexts.
    let mut ctx: Vec<ImplCtx> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while ctx.last().is_some_and(|c| c.depth > depth) {
                    ctx.pop();
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                let is_trait = kw == "trait";
                let (self_type, trait_of, rng, open) = parse_impl_header(&toks, i, is_trait);
                match open {
                    Some(open) => {
                        depth += 1;
                        ctx.push(ImplCtx {
                            depth,
                            self_type,
                            trait_of,
                            in_trait: is_trait,
                            rng,
                            header: (i, open),
                        });
                        i = open + 1;
                    }
                    None => i += 1, // `impl Trait` in type position etc.
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                let item = parse_fn(&toks, i, ctx.last());
                let (item, next) = match item {
                    Some(v) => v,
                    None => {
                        i += 1;
                        continue;
                    }
                };
                i = next;
                fns.push(item);
            }
            _ => i += 1,
        }
    }

    let lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
    for f in &mut fns {
        f.is_test = class.is_test_target
            || test_ranges
                .iter()
                .any(|&(lo, hi)| lo <= f.line && f.line <= hi);
        // Attach fn-level annotations: directives resolving to the fn
        // line, the two lines above it (comment block over `pub fn` /
        // attributes), or any line of the body.
        let lo = f.line.saturating_sub(2);
        for (&l, rules) in flow_allows.range(lo..=f.end_line) {
            let _ = l;
            f.allowed.extend(rules.iter().cloned());
        }
        f.cycle_ok = cycle_lines.range(lo..=f.end_line).next().is_some();
    }

    FileItems {
        path: path.to_string(),
        class,
        tokens: toks,
        lines,
        fns,
        flow_allows,
    }
}

/// Lines carrying a `dhs-flow: cycle-ok(...)` annotation, resolved to
/// code lines with the allow-map placement semantics.
fn cycle_ok_lines(comments: &[crate::lexer::Comment], toks: &[Token]) -> BTreeSet<u32> {
    let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let last_line = code_lines.iter().next_back().copied().unwrap_or(0);
    let mut out = BTreeSet::new();
    for c in comments {
        let Some(at) = c.text.find(FLOW_MARKER) else {
            continue;
        };
        if !c.text[at + FLOW_MARKER.len()..]
            .trim_start()
            .starts_with("cycle-ok(")
        {
            continue;
        }
        if code_lines.contains(&c.line) {
            out.insert(c.line);
        } else if let Some(&target) = code_lines.range(c.line + 1..=last_line.max(c.line)).next() {
            out.insert(target);
        }
    }
    out
}

/// One enclosing `impl`/`trait` context while scanning for fns.
#[derive(Debug, Clone)]
struct ImplCtx {
    /// Brace depth just inside the block.
    depth: usize,
    /// Self type (`impl Ring`, `impl Tr for Ring` → `Ring`; `trait X` →
    /// `X`).
    self_type: Option<String>,
    /// Trait name for `impl Trait for Type` blocks.
    trait_of: Option<String>,
    /// This is a `trait { … }` declaration block.
    in_trait: bool,
    /// Header mentions an `Rng` bound.
    rng: bool,
    /// Token range `[kw, open_brace]` of the header.
    header: (usize, usize),
}

/// Parse an `impl`/`trait` header starting at the keyword token.
/// Returns `(self_type, trait_of, has_rng_bound, index_of_open_brace)`;
/// `None` brace when the header never reaches a `{` (e.g. `impl Trait`
/// used in type position — the lexer stream makes these rare in
/// practice).
fn parse_impl_header(
    toks: &[Token],
    kw: usize,
    is_trait: bool,
) -> (Option<String>, Option<String>, bool, Option<usize>) {
    let mut i = kw + 1;
    let mut rng = false;
    // Generic parameter list on the impl/trait itself.
    if toks.get(i).map(|t| &t.kind) == Some(&Tok::Punct('<')) {
        let mut gd = 0usize;
        while i < toks.len() {
            match &toks[i].kind {
                Tok::Punct('<') => gd += 1,
                Tok::Punct('>') => {
                    gd -= 1;
                    if gd == 0 {
                        i += 1;
                        break;
                    }
                }
                Tok::Ident(s) if s == "Rng" => rng = true,
                _ => {}
            }
            i += 1;
        }
    }
    // Walk to the `{`, remembering the first ident after `for` (trait
    // impls) or the first ident of the type path (inherent impls /
    // traits). The where clause is scanned for Rng bounds.
    let mut first_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct('{') => {
                let (self_type, trait_of) = if is_trait {
                    (first_ident, None)
                } else if saw_for {
                    // `impl Trait for Type`: the first path is the trait.
                    (after_for, first_ident)
                } else {
                    (first_ident, None)
                };
                return (self_type, trait_of, rng, Some(i));
            }
            Tok::Punct(';') => return (None, None, rng, None),
            Tok::Ident(s) if s == "for" => saw_for = true,
            Tok::Ident(s) if s == "Rng" => rng = true,
            Tok::Ident(s) if s == "where" || s == "dyn" || s == "mut" => {}
            Tok::Ident(s) => {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(s.clone());
                    }
                } else if first_ident.is_none() {
                    first_ident = Some(s.clone());
                } else if !is_trait
                    && toks.get(i - 1).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                    && toks.get(i.wrapping_sub(2)).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                {
                    // `a::b::Type` paths: keep the last path segment as
                    // the type name. (Not for traits: `trait X: Super`
                    // must keep `X`.)
                    first_ident = Some(s.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (None, None, rng, None)
}

/// Parse one `fn` item starting at the `fn` keyword. Returns the item
/// plus the token index to resume scanning at (just past the signature,
/// so nested fns inside the body are still discovered).
fn parse_fn(toks: &[Token], kw: usize, ctx: Option<&ImplCtx>) -> Option<(FnItem, usize)> {
    let self_type = ctx.and_then(|c| c.self_type.clone());
    let name = match toks.get(kw + 1).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => s.clone(),
        _ => return None,
    };
    let mut i = kw + 2;
    let mut rng = ctx.is_some_and(|c| c.rng);
    // Fn generics.
    if toks.get(i).map(|t| &t.kind) == Some(&Tok::Punct('<')) {
        let mut gd = 0usize;
        while i < toks.len() {
            match &toks[i].kind {
                Tok::Punct('<') => gd += 1,
                Tok::Punct('>') => {
                    gd -= 1;
                    if gd == 0 {
                        i += 1;
                        break;
                    }
                }
                Tok::Ident(s) if s == "Rng" => rng = true,
                _ => {}
            }
            i += 1;
        }
    }
    // Parameter list.
    if toks.get(i).map(|t| &t.kind) != Some(&Tok::Punct('(')) {
        return None;
    }
    let mut pd = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct('(') => pd += 1,
            Tok::Punct(')') => {
                pd -= 1;
                if pd == 0 {
                    i += 1;
                    break;
                }
            }
            Tok::Ident(s) if s == "Rng" => rng = true,
            _ => {}
        }
        i += 1;
    }
    // Return type and where clause, up to the body or `;`.
    let mut returns_result = false;
    let sig_end;
    loop {
        match toks.get(i).map(|t| &t.kind) {
            Some(Tok::Punct('{')) => {
                sig_end = i;
                break;
            }
            Some(Tok::Punct(';')) => {
                let item = FnItem {
                    qual_name: qualify(&self_type, &name),
                    name,
                    self_type: self_type.clone(),
                    trait_of: ctx.and_then(|c| c.trait_of.clone()),
                    in_trait: ctx.is_some_and(|c| c.in_trait),
                    sig: (kw, i),
                    outer_header: ctx.map(|c| c.header),
                    line: toks[kw].line,
                    has_rng_param: rng,
                    returns_result,
                    is_test: false,
                    body: None,
                    end_line: toks[i].line,
                    allowed: BTreeSet::new(),
                    cycle_ok: false,
                };
                return Some((item, i + 1));
            }
            Some(Tok::Ident(s)) => {
                if s == "Result" {
                    returns_result = true;
                } else if s == "Rng" {
                    rng = true;
                }
                i += 1;
            }
            Some(_) => i += 1,
            None => return None,
        }
    }
    // Body extent: matching close brace.
    let mut bd = 0usize;
    let mut j = sig_end;
    let mut close = None;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct('{') => bd += 1,
            Tok::Punct('}') => {
                bd -= 1;
                if bd == 0 {
                    close = Some(j);
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let close = close.unwrap_or(toks.len() - 1);
    let item = FnItem {
        qual_name: qualify(&self_type, &name),
        name,
        self_type: self_type.clone(),
        trait_of: ctx.and_then(|c| c.trait_of.clone()),
        in_trait: ctx.is_some_and(|c| c.in_trait),
        sig: (kw, sig_end),
        outer_header: ctx.map(|c| c.header),
        line: toks[kw].line,
        has_rng_param: rng,
        returns_result,
        is_test: false,
        body: Some((sig_end, close)),
        end_line: toks[close].line,
        allowed: BTreeSet::new(),
        cycle_ok: false,
    };
    // Resume just past the open brace so nested fns are found; the
    // outer loop's depth tracking continues naturally.
    Some((item, sig_end))
}

fn qualify(self_type: &Option<String>, name: &str) -> String {
    match self_type {
        Some(t) => format!("{t}::{name}"),
        None => name.to_string(),
    }
}

/// True when the token is one of the identifiers that can look like a
/// call head but never is one (`if cond ( … )` cannot occur, but `match
/// x {` / `return (` / `for (` patterns can).
pub(crate) fn is_keyword(t: &Token) -> bool {
    const KW: &[&str] = &[
        "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "in", "move",
        "break", "continue", "as", "where", "impl", "trait", "pub", "use", "mod", "struct", "enum",
        "union", "const", "static", "type", "unsafe", "extern", "crate", "super", "self", "Self",
        "dyn", "ref", "mut",
    ];
    matches!(&t.kind, Tok::Ident(s) if KW.contains(&s.as_str()))
}

/// Convenience for rule code: is token `i` the head of a call
/// (`ident (`), excluding definitions and macros?
pub(crate) fn is_call_at(toks: &[Token], i: usize) -> bool {
    if is_keyword(&toks[i]) {
        return false;
    }
    if !matches!(&toks[i].kind, Tok::Ident(_)) {
        return false;
    }
    if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct('(')) {
        return false;
    }
    // `fn name(` is a definition, `name!(` a macro (lexes as ident + `!`
    // — the `(` check above already excludes it, kept for clarity).
    if i >= 1 && is_ident(&toks[i - 1], "fn") {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_items("crates/core/src/x.rs", src)
    }

    #[test]
    fn free_fn_and_signature_facts() {
        let f = parse(
            "pub fn probe(rng: &mut impl Rng) -> u64 { rng.gen() }\n\
             fn send() -> Result<(), E> { Ok(()) }\n",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].qual_name, "probe");
        assert!(f.fns[0].has_rng_param);
        assert!(!f.fns[0].returns_result);
        assert!(f.fns[1].returns_result);
        assert!(!f.fns[1].has_rng_param);
    }

    #[test]
    fn impl_methods_are_qualified() {
        let f = parse(
            "struct Ring;\n\
             impl Ring {\n    fn route(&self) {}\n}\n\
             impl Overlay for Ring {\n    fn owner_of(&self) {}\n}\n\
             trait Overlay {\n    fn owner_of(&self);\n}\n",
        );
        let names: Vec<&str> = f.fns.iter().map(|x| x.qual_name.as_str()).collect();
        assert_eq!(
            names,
            ["Ring::route", "Ring::owner_of", "Overlay::owner_of"]
        );
        assert!(f.fns[2].body.is_none(), "trait decl has no body");
    }

    #[test]
    fn generic_rng_bound_on_fn_and_impl() {
        let f = parse(
            "fn a<R: Rng>(rng: &mut R) {}\n\
             fn b<R>(rng: &mut R) where R: Rng {}\n\
             struct P<R>(R);\n\
             impl<O, R: Rng> P<R> {\n    fn c(&mut self) {}\n}\n",
        );
        assert!(f.fns.iter().all(|x| x.has_rng_param), "{:#?}", f.fns);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let f = parse(
            "fn lib() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        );
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
    }

    #[test]
    fn flow_annotations_attach_to_fns() {
        let f = parse(
            "// dhs-flow: allow(rng-plumbing) — owns its seeded stream\n\
             fn owns() { }\n\
             fn walk() { // dhs-flow: cycle-ok(strictly shrinking range)\n    walk()\n}\n\
             fn plain() {}\n",
        );
        assert!(f.fns[0].allows("rng-plumbing"));
        assert!(!f.fns[0].cycle_ok);
        assert!(f.fns[1].cycle_ok);
        assert!(!f.fns[2].cycle_ok);
        assert!(f.fns[2].allowed.is_empty());
    }

    #[test]
    fn nested_fns_are_found() {
        let f = parse("fn outer() {\n    fn inner() {}\n    inner();\n}\n");
        let names: Vec<&str> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }
}

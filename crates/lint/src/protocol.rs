//! The `protocol` rule pack: machine discipline for the PR 8
//! submit/completion transport split.
//!
//! Rule catalog (ids are what `// dhs-flow: allow(<rule>)` takes):
//!
//! | id                           | guards against                                |
//! |------------------------------|-----------------------------------------------|
//! | `protocol-submit-completion` | a `CompletionLab::submit` call whose enclosing|
//! |                              | fn never reaches a completion handler          |
//! |                              | (`pop_seeded`/`pop_fifo`) — in-flight requests|
//! |                              | silently dropped                               |
//! | `protocol-inflight-effects`  | RNG draws or recorder/span calls between a    |
//! |                              | submit and the next completion pop, outside   |
//! |                              | the machine modules — such effects observe    |
//! |                              | the completion *schedule* and break the        |
//! |                              | order-invariance proof                         |
//! | `protocol-sync-exchange`     | new replay-path code calling the legacy       |
//! |                              | synchronous `Transport::exchange` /            |
//! |                              | `routed_exchange` / `with_retry` surface      |
//! |                              | directly instead of going through             |
//! |                              | `exec_send`/the machines                       |
//!
//! The pack keys off the *typed* call graph: a submit/pop/exchange site
//! counts only when [`crate::resolve`] proves its candidates intersect
//! the real protocol surface (fns defined in the machine modules, or
//! the `Transport` family), so a fixture's unrelated `submit` method
//! does not trip it. Scope: replay-path library crates; paths are
//! compared with the `fixtures/` prefix stripped, like
//! [`crate::rules::classify`], so fixture corpora can seed violations
//! against their own stand-in machine modules.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, FnId};
use crate::items::FileItems;
use crate::lexer::{Tok, Token};
use crate::resolve::SiteKind;
use crate::rules::Finding;
use crate::types::matching_paren;

/// Modules that *are* the machine implementation: they may hold
/// in-flight effects and are where submit/pop live.
pub const MACHINE_MODULES: &[&str] = &["crates/core/src/machine.rs", "crates/par/src/lab.rs"];

/// Modules allowed to call the synchronous `Transport` surface
/// directly: the machine executor (`exec_send`) and the transport
/// decorators themselves.
pub const EXCHANGE_MODULES: &[&str] =
    &["crates/core/src/machine.rs", "crates/core/src/transport.rs"];

/// Completion-handler names on the machine surface.
const POP_METHODS: &[&str] = &["pop_seeded", "pop_fifo"];

/// The legacy synchronous exchange surface.
const SYNC_EXCHANGE: &[&str] = &["exchange", "routed_exchange"];

/// Strip any `fixtures/` routing prefix, like [`crate::rules::classify`].
pub(crate) fn strip(path: &str) -> &str {
    match path.rfind("fixtures/") {
        Some(i) => &path[i + "fixtures/".len()..],
        None => path,
    }
}

/// Run the protocol pack over the typed call graph.
pub fn check(files: &[FileItems], g: &CallGraph, out: &mut Vec<Finding>) {
    let in_machine: Vec<bool> = g
        .fns
        .iter()
        .map(|r| MACHINE_MODULES.contains(&strip(&files[r.file].path)))
        .collect();
    let in_exchange: Vec<bool> = g
        .fns
        .iter()
        .map(|r| EXCHANGE_MODULES.contains(&strip(&files[r.file].path)))
        .collect();
    let replay: Vec<bool> = g
        .fns
        .iter()
        .map(|r| crate::rules::replay_scope(&files[r.file].class.crate_name))
        .collect();

    // The protocol surface, identified by *definition site*: submit and
    // pop methods are only the ones the machine modules define.
    let mut submit_fns = BTreeSet::new();
    let mut pop_fns = BTreeSet::new();
    for (id, r) in g.fns.iter().enumerate() {
        let f = &files[r.file].fns[r.item];
        if in_machine[id] && f.name == "submit" {
            submit_fns.insert(id);
        }
        if in_machine[id] && POP_METHODS.contains(&f.name.as_str()) {
            pop_fns.insert(id);
        }
    }
    // The Transport family: the trait's own exchange decls plus every
    // implementor's, and the free retry wrapper.
    let transport_impls = g.types.impls_of.get("Transport");
    let mut exchange_fns = BTreeSet::new();
    let mut retry_fns = BTreeSet::new();
    for (id, r) in g.fns.iter().enumerate() {
        let f = &files[r.file].fns[r.item];
        if SYNC_EXCHANGE.contains(&f.name.as_str()) {
            let of_family = f.self_type.as_deref() == Some("Transport")
                || f.self_type
                    .as_deref()
                    .is_some_and(|t| transport_impls.is_some_and(|s| s.contains(t)));
            if of_family {
                exchange_fns.insert(id);
            }
        }
        if f.name == "with_retry" && in_exchange[id] {
            retry_fns.insert(id);
        }
    }

    if !submit_fns.is_empty() {
        submit_completion(files, g, &submit_fns, &pop_fns, &replay, out);
        inflight_effects(files, g, &submit_fns, &pop_fns, &in_machine, &replay, out);
    }
    if !exchange_fns.is_empty() || !retry_fns.is_empty() {
        sync_exchange(
            files,
            g,
            &exchange_fns,
            &retry_fns,
            &in_exchange,
            &replay,
            out,
        );
    }
}

/// Does this site provably (Resolved/Dispatch) call into `surface`?
fn typed_hit(site: &crate::resolve::CallSite, surface: &BTreeSet<FnId>) -> bool {
    matches!(site.kind, SiteKind::Resolved | SiteKind::Dispatch)
        && site.candidates.iter().any(|c| surface.contains(c))
}

/// Any-kind candidate intersection — the over-approximating direction,
/// used only where it *suppresses* findings (coverage, window ends).
fn loose_hit(site: &crate::resolve::CallSite, surface: &BTreeSet<FnId>) -> bool {
    site.candidates.iter().any(|c| surface.contains(c))
}

fn report(
    files: &[FileItems],
    g: &CallGraph,
    id: FnId,
    tok: usize,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let r = g.fns[id];
    let file = &files[r.file];
    let f = &file.fns[r.item];
    if f.allows(rule) {
        return;
    }
    let line = file.tokens[tok].line;
    if let Some(rules) = file.flow_allows.get(&line) {
        if rules.contains(rule) {
            return;
        }
    }
    let snippet = file
        .lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default();
    out.push(Finding {
        path: file.path.clone(),
        line,
        rule,
        snippet,
    });
}

// ---------------------------------------------------------------------
// protocol-submit-completion
// ---------------------------------------------------------------------

/// Every fn performing a typed submit must itself reach a completion
/// pop (directly or through calls), or be reachable from one that does
/// — otherwise the in-flight request leaks.
fn submit_completion(
    files: &[FileItems],
    g: &CallGraph,
    submit_fns: &BTreeSet<FnId>,
    pop_fns: &BTreeSet<FnId>,
    replay: &[bool],
    out: &mut Vec<Finding>,
) {
    let n = g.fns.len();
    // Fns with a direct pop site (any kind — over-approximation only
    // suppresses findings here).
    let mut reaches_pop = vec![false; n];
    for site in &g.sites {
        if loose_hit(site, pop_fns) {
            reaches_pop[site.caller] = true;
        }
    }
    // Backward: a caller of a pop-reaching fn reaches the pop too.
    let rev = g.reverse_over_approx();
    let mut work: Vec<FnId> = (0..n).filter(|&i| reaches_pop[i]).collect();
    while let Some(v) = work.pop() {
        for &caller in &rev[v] {
            if !reaches_pop[caller] {
                reaches_pop[caller] = true;
                work.push(caller);
            }
        }
    }
    // Forward: a fn invoked from a covered caller is covered — the
    // caller pops after it returns (`run` popping what `step_op`
    // submitted).
    let fwd = g.forward_over_approx();
    let mut covered = reaches_pop;
    let mut work: Vec<FnId> = (0..n).filter(|&i| covered[i]).collect();
    while let Some(v) = work.pop() {
        for &callee in &fwd[v] {
            if !covered[callee] {
                covered[callee] = true;
                work.push(callee);
            }
        }
    }

    for site in &g.sites {
        if !replay[site.caller] || !typed_hit(site, submit_fns) {
            continue;
        }
        if covered[site.caller] {
            continue;
        }
        report(
            files,
            g,
            site.caller,
            site.tok,
            "protocol-submit-completion",
            out,
        );
    }
}

// ---------------------------------------------------------------------
// protocol-inflight-effects
// ---------------------------------------------------------------------

/// Between a submit and the next completion pop in the same body,
/// non-machine code must not draw RNG or record metrics/spans: those
/// effects would observe the completion schedule, which the machines'
/// order-invariance proof says is unobservable.
fn inflight_effects(
    files: &[FileItems],
    g: &CallGraph,
    submit_fns: &BTreeSet<FnId>,
    pop_fns: &BTreeSet<FnId>,
    in_machine: &[bool],
    replay: &[bool],
    out: &mut Vec<Finding>,
) {
    // Group sites per caller once; sites are already in (fn, token)
    // order.
    for (id, r) in g.fns.iter().enumerate() {
        if in_machine[id] || !replay[id] {
            continue;
        }
        let file = &files[r.file];
        let f = &file.fns[r.item];
        let Some((_, close)) = f.body else { continue };
        let toks = &file.tokens;
        let submits: Vec<usize> = g
            .sites
            .iter()
            .filter(|s| s.caller == id && typed_hit(s, submit_fns))
            .map(|s| s.tok)
            .collect();
        if submits.is_empty() {
            continue;
        }
        let pops: Vec<usize> = g
            .sites
            .iter()
            .filter(|s| s.caller == id && loose_hit(s, pop_fns))
            .map(|s| s.tok)
            .collect();
        for &sub in &submits {
            let start = matching_paren(toks, sub + 1).unwrap_or(sub);
            let end = pops
                .iter()
                .copied()
                .filter(|&p| p > start)
                .min()
                .unwrap_or(close);
            for j in start + 1..end {
                if is_draw_at(toks, j) || is_recorder_at(toks, j) {
                    report(files, g, id, j, "protocol-inflight-effects", out);
                }
            }
        }
    }
}

/// `.gen(` / `.gen_range(` / `.gen::<T>(` … at token `j`.
fn is_draw_at(toks: &[Token], j: usize) -> bool {
    let Tok::Ident(m) = &toks[j].kind else {
        return false;
    };
    if !crate::flow::DRAW_METHODS.contains(&m.as_str()) {
        return false;
    }
    if j == 0 || toks[j - 1].kind != Tok::Punct('.') {
        return false;
    }
    match toks.get(j + 1).map(|t| &t.kind) {
        Some(Tok::Punct('(')) => true,
        Some(Tok::Punct(':')) => toks.get(j + 2).map(|t| &t.kind) == Some(&Tok::Punct(':')),
        _ => false,
    }
}

/// A recorder/span call at token `j` (`incr(`, `observe(`,
/// `start_span(`, `end_span(`, …).
fn is_recorder_at(toks: &[Token], j: usize) -> bool {
    let Tok::Ident(m) = &toks[j].kind else {
        return false;
    };
    (crate::rules::RECORDER_CALLS.contains(&m.as_str()) || m == "end_span")
        && toks.get(j + 1).map(|t| &t.kind) == Some(&Tok::Punct('('))
}

// ---------------------------------------------------------------------
// protocol-sync-exchange
// ---------------------------------------------------------------------

/// Replay-path code outside the approved modules must not call the
/// synchronous `Transport` surface directly — new protocol logic goes
/// through the machines (`exec_send`). Method sites count when their
/// name is on the legacy surface and the receiver is not proven
/// external; `with_retry` counts when it resolves to the workspace
/// wrapper.
fn sync_exchange(
    files: &[FileItems],
    g: &CallGraph,
    exchange_fns: &BTreeSet<FnId>,
    retry_fns: &BTreeSet<FnId>,
    in_exchange: &[bool],
    replay: &[bool],
    out: &mut Vec<Finding>,
) {
    for site in &g.sites {
        if in_exchange[site.caller] || !replay[site.caller] {
            continue;
        }
        let legacy = (SYNC_EXCHANGE.contains(&site.name.as_str())
            && site.kind != SiteKind::External
            && loose_hit(site, exchange_fns))
            || loose_hit(site, retry_fns);
        if legacy {
            report(
                files,
                g,
                site.caller,
                site.tok,
                "protocol-sync-exchange",
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::flow::flow_files;
    use crate::rules::Finding;

    /// A minimal machine-module stand-in: `CompletionLab` with
    /// submit/pop, in the lab path so the pack recognizes the surface.
    const LAB: &str = "pub struct CompletionLab { n: u64 }\n\
        impl CompletionLab {\n  \
        pub fn submit(&mut self, tag: u32) { self.n += tag as u64; }\n  \
        pub fn pop_seeded(&mut self) -> u64 { self.n }\n  \
        pub fn pop_fifo(&mut self) -> u64 { self.n }\n}\n";

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let (fs, _) = flow_files(&owned);
        fs.into_iter()
            .filter(|f| f.rule.starts_with("protocol-"))
            .collect()
    }

    #[test]
    fn submit_without_pop_anywhere_is_a_leak() {
        let fs = run(&[
            ("crates/par/src/lab.rs", LAB),
            (
                "crates/par/src/fire.rs",
                "use crate::CompletionLab;\n\
                 pub fn fire(lab: &mut CompletionLab) { lab.submit(1); }\n",
            ),
        ]);
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert_eq!(fs[0].rule, "protocol-submit-completion");
        assert_eq!(fs[0].path, "crates/par/src/fire.rs");
    }

    #[test]
    fn submit_popped_by_caller_is_covered() {
        let fs = run(&[
            ("crates/par/src/lab.rs", LAB),
            (
                "crates/par/src/drive.rs",
                "use crate::CompletionLab;\n\
                 fn step(lab: &mut CompletionLab) { lab.submit(1); }\n\
                 pub fn drive(lab: &mut CompletionLab) {\n  \
                 step(lab);\n  while lab.pop_fifo() > 0 {}\n}\n",
            ),
        ]);
        assert!(fs.is_empty(), "{fs:#?}");
    }

    #[test]
    fn effects_between_submit_and_pop_are_flagged() {
        let fs = run(&[
            ("crates/par/src/lab.rs", LAB),
            (
                "crates/par/src/drive.rs",
                "use crate::CompletionLab;\n\
                 pub fn drive(lab: &mut CompletionLab, rng: &mut impl Rng, m: &mut Recorder) {\n  \
                 lab.submit(1);\n  let jitter = rng.gen_range(0..4);\n  \
                 m.incr(\"x\", jitter);\n  lab.pop_seeded();\n  \
                 m.incr(\"x\", 1);\n}\n",
            ),
        ]);
        let rules: Vec<&str> = fs.iter().map(|f| f.rule).collect();
        // The draw and the recorder call inside the window fire; the
        // incr after the pop does not.
        assert_eq!(
            rules,
            vec!["protocol-inflight-effects", "protocol-inflight-effects"],
            "{fs:#?}"
        );
        assert_eq!(fs[0].line, 4);
        assert_eq!(fs[1].line, 5);
    }

    #[test]
    fn machine_modules_may_hold_inflight_effects() {
        let fs = run(&[(
            "crates/par/src/lab.rs",
            &format!(
                "{LAB}\
                 pub fn drive_store_ooo(lab: &mut CompletionLab, rng: &mut impl Rng) {{\n  \
                 lab.submit(1);\n  let j = rng.gen_range(0..4);\n  lab.pop_seeded();\n}}\n"
            ),
        )]);
        assert!(fs.is_empty(), "{fs:#?}");
    }

    #[test]
    fn sync_exchange_outside_approved_modules_is_flagged() {
        let fs = run(&[
            (
                "crates/core/src/transport.rs",
                "pub trait Transport {\n  fn exchange(&mut self, a: u64) -> u64;\n}\n\
                 pub fn with_retry(n: u64) -> u64 { n }\n",
            ),
            (
                "crates/dht/src/probe.rs",
                "pub fn probe<T: Transport>(t: &mut T) -> u64 {\n  \
                 let a = t.exchange(1);\n  a + with_retry(2)\n}\n",
            ),
            (
                "crates/core/src/machine.rs",
                "pub fn exec_send<T: Transport>(t: &mut T) -> u64 { t.exchange(7) }\n",
            ),
        ]);
        let lines: Vec<(String, u32)> = fs.iter().map(|f| (f.path.clone(), f.line)).collect();
        assert!(
            fs.iter().all(|f| f.rule == "protocol-sync-exchange"),
            "{fs:#?}"
        );
        // Both the direct exchange and the retry wrapper in dht fire;
        // exec_send in the approved module does not.
        assert_eq!(
            lines,
            vec![
                ("crates/dht/src/probe.rs".to_string(), 2),
                ("crates/dht/src/probe.rs".to_string(), 3)
            ]
        );
    }

    #[test]
    fn allow_directives_silence_protocol_rules() {
        let fs = run(&[
            ("crates/par/src/lab.rs", LAB),
            (
                "crates/par/src/fire.rs",
                "use crate::CompletionLab;\n\
                 // dhs-flow: allow(protocol-submit-completion) — drained by the bench harness\n\
                 pub fn fire(lab: &mut CompletionLab) { lab.submit(1); }\n",
            ),
        ]);
        assert!(fs.is_empty(), "{fs:#?}");
    }
}

//! Deterministic JSONL rendering of findings.
//!
//! One JSON object per finding, sorted by (path, line, rule), plus a
//! trailing summary object. Everything is rendered by hand (no JSON
//! dependency) with stable field order, so two runs over the same tree
//! are byte-identical — `scripts/check.sh` diffs them to prove it.

use crate::flow::FlowStats;
use crate::rules::Finding;

/// Render findings (plus a summary line) as JSONL.
///
/// The caller passes `files_scanned` so the summary reflects coverage
/// even when there are zero findings.
pub fn render_jsonl(findings: &[Finding], files_scanned: usize) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for f in sorted {
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"snippet\":{}}}\n",
            escape(&f.path),
            f.line,
            escape(f.rule),
            escape(&f.snippet),
        ));
    }
    out.push_str(&format!(
        "{{\"files_scanned\":{},\"findings\":{}}}\n",
        files_scanned,
        findings.len()
    ));
    out
}

/// Render flow findings plus the flow summary line as JSONL. Finding
/// lines share the token-rule shape; the summary additionally carries
/// call-graph statistics so coverage regressions are visible in diffs.
pub fn render_flow_jsonl(findings: &[Finding], stats: &FlowStats) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for f in sorted {
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"snippet\":{}}}\n",
            escape(&f.path),
            f.line,
            escape(f.rule),
            escape(&f.snippet),
        ));
    }
    out.push_str(&format!(
        "{{\"files_scanned\":{},\"functions\":{},\"resolved_edges\":{},\"dispatch_edges\":{},\
         \"sites_resolved\":{},\"sites_dispatch\":{},\"sites_external\":{},\"ambiguous_calls\":{},\
         \"closure_typed_sites\":{},\"draw_parity_fns\":{},\"casts_proven_safe\":{},\
         \"resolution_rate_bp\":{},\"findings\":{}}}\n",
        stats.files_scanned,
        stats.functions,
        stats.resolved_edges,
        stats.dispatch_edges,
        stats.sites_resolved,
        stats.sites_dispatch,
        stats.sites_external,
        stats.ambiguous_calls,
        stats.closure_typed_sites,
        stats.draw_parity_fns,
        stats.casts_proven_safe,
        stats.resolution_rate_bp(),
        findings.len()
    ));
    out
}

/// The resolution/analysis summary as sorted `(key, value)` pairs —
/// the single source of truth for both stats renderers, so the text
/// and JSON forms can never disagree on a counter.
fn stats_pairs(stats: &FlowStats) -> Vec<(&'static str, usize)> {
    vec![
        ("ambiguous_calls", stats.ambiguous_calls),
        ("casts_proven_safe", stats.casts_proven_safe),
        ("closure_typed_sites", stats.closure_typed_sites),
        ("dispatch_edges", stats.dispatch_edges),
        ("draw_parity_fns", stats.draw_parity_fns),
        ("files_scanned", stats.files_scanned),
        ("functions", stats.functions),
        ("resolution_rate_bp", stats.resolution_rate_bp()),
        ("resolved_edges", stats.resolved_edges),
        ("sites_dispatch", stats.sites_dispatch),
        ("sites_external", stats.sites_external),
        ("sites_resolved", stats.sites_resolved),
        ("sites_total", stats.sites_total()),
    ]
}

/// Render the sorted `key value` resolution summary for
/// `dhs-lint --stats` (human-oriented; the check.sh ratchet reads the
/// JSON form from [`render_stats_json`]).
pub fn render_stats(stats: &FlowStats) -> String {
    let mut out = String::new();
    for (k, v) in stats_pairs(stats) {
        out.push_str(&format!("{k} {v}\n"));
    }
    out
}

/// Render the resolution summary as a pretty JSON object with sorted
/// keys, one per line — the machine-readable form `dhs-lint
/// --stats-json` emits and `scripts/check.sh` ratchets against the
/// committed `crates/lint/baseline_resolution.txt`.
pub fn render_stats_json(stats: &FlowStats) -> String {
    let pairs = stats_pairs(stats);
    let mut out = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        out.push_str(&format!("  \"{k}\": {v}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            rule,
            snippet: format!("snippet {line}"),
        }
    }

    #[test]
    fn sorted_by_path_then_line() {
        let fs = vec![
            finding("b.rs", 1, "lossy_cast"),
            finding("a.rs", 9, "determinism"),
            finding("a.rs", 2, "panic_hygiene"),
        ];
        let out = render_jsonl(&fs, 3);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"a.rs\"") && lines[0].contains("\"line\":2"));
        assert!(lines[1].contains("\"a.rs\"") && lines[1].contains("\"line\":9"));
        assert!(lines[2].contains("\"b.rs\""));
        assert_eq!(lines[3], "{\"files_scanned\":3,\"findings\":3}");
    }

    #[test]
    fn escapes_quotes_and_control_chars() {
        let mut f = finding("a.rs", 1, "metric_names");
        f.snippet = "incr(\"x\")\t".to_string();
        let out = render_jsonl(&[f], 1);
        assert!(out.contains("incr(\\\"x\\\")\\t"), "{out}");
    }

    #[test]
    fn empty_findings_still_emit_summary() {
        let out = render_jsonl(&[], 42);
        assert_eq!(out, "{\"files_scanned\":42,\"findings\":0}\n");
    }

    #[test]
    fn escapes_backslashes_byte_exact() {
        let mut f = finding("a.rs", 1, "determinism");
        f.snippet = r#"let p = "C:\\tmp"; // say "hi""#.to_string();
        let out = render_jsonl(&[f], 1);
        assert_eq!(
            out.lines().next().unwrap(),
            "{\"path\":\"a.rs\",\"line\":1,\"rule\":\"determinism\",\
             \"snippet\":\"let p = \\\"C:\\\\\\\\tmp\\\"; // say \\\"hi\\\"\"}"
        );
    }

    #[test]
    fn non_ascii_passes_through_unescaped() {
        let mut f = finding("a.rs", 7, "metric_names");
        f.snippet = "θ0 = 0.7 → café ✓".to_string();
        let out = render_jsonl(&[f], 1);
        assert!(out.contains("\"snippet\":\"θ0 = 0.7 → café ✓\""), "{out}");
        // Two renders are byte-identical (determinism of the escaper).
        let f2 = {
            let mut f2 = finding("a.rs", 7, "metric_names");
            f2.snippet = "θ0 = 0.7 → café ✓".to_string();
            f2
        };
        assert_eq!(out, render_jsonl(&[f2], 1));
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        let mut f = finding("a.rs", 3, "panic_hygiene");
        f.snippet = "a\u{01}b\u{1f}c".to_string();
        let out = render_jsonl(&[f], 1);
        assert!(out.contains("a\\u0001b\\u001fc"), "{out}");
    }

    fn sample_stats() -> FlowStats {
        FlowStats {
            files_scanned: 5,
            functions: 12,
            resolved_edges: 9,
            dispatch_edges: 3,
            sites_resolved: 10,
            sites_dispatch: 4,
            sites_external: 4,
            ambiguous_calls: 2,
            closure_typed_sites: 6,
            draw_parity_fns: 7,
            casts_proven_safe: 8,
        }
    }

    #[test]
    fn flow_summary_carries_graph_stats() {
        let out = render_flow_jsonl(&[finding("a.rs", 1, "rng-plumbing")], &sample_stats());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[1],
            "{\"files_scanned\":5,\"functions\":12,\"resolved_edges\":9,\"dispatch_edges\":3,\
             \"sites_resolved\":10,\"sites_dispatch\":4,\"sites_external\":4,\"ambiguous_calls\":2,\
             \"closure_typed_sites\":6,\"draw_parity_fns\":7,\"casts_proven_safe\":8,\
             \"resolution_rate_bp\":9000,\"findings\":1}"
        );
    }

    #[test]
    fn stats_lines_are_sorted_key_value_pairs() {
        let stats = sample_stats();
        let out = render_stats(&stats);
        let lines: Vec<&str> = out.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(lines.contains(&"ambiguous_calls 2"));
        assert!(lines.contains(&"resolution_rate_bp 9000"));
        assert!(lines.contains(&"closure_typed_sites 6"));
        assert!(lines.contains(&"draw_parity_fns 7"));
        assert!(lines.contains(&"casts_proven_safe 8"));
        assert!(lines.contains(&"sites_total 20"));
        // Byte-identical across renders — check.sh cmp's two runs.
        assert_eq!(out, render_stats(&stats));
    }

    #[test]
    fn stats_json_is_sorted_and_parseable() {
        let stats = sample_stats();
        let out = render_stats_json(&stats);
        assert_eq!(
            out,
            "{\n  \"ambiguous_calls\": 2,\n  \"casts_proven_safe\": 8,\n  \
             \"closure_typed_sites\": 6,\n  \"dispatch_edges\": 3,\n  \
             \"draw_parity_fns\": 7,\n  \"files_scanned\": 5,\n  \"functions\": 12,\n  \
             \"resolution_rate_bp\": 9000,\n  \"resolved_edges\": 9,\n  \
             \"sites_dispatch\": 4,\n  \"sites_external\": 4,\n  \"sites_resolved\": 10,\n  \
             \"sites_total\": 20\n}\n"
        );
        // Text and JSON forms agree on every counter.
        for line in render_stats(&stats).lines() {
            let (k, v) = line.split_once(' ').expect("key value");
            assert!(out.contains(&format!("\"{k}\": {v}")), "{k} missing");
        }
    }
}

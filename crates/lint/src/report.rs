//! Deterministic JSONL rendering of findings.
//!
//! One JSON object per finding, sorted by (path, line, rule), plus a
//! trailing summary object. Everything is rendered by hand (no JSON
//! dependency) with stable field order, so two runs over the same tree
//! are byte-identical — `scripts/check.sh` diffs them to prove it.

use crate::flow::FlowStats;
use crate::rules::Finding;

/// Render findings (plus a summary line) as JSONL.
///
/// The caller passes `files_scanned` so the summary reflects coverage
/// even when there are zero findings.
pub fn render_jsonl(findings: &[Finding], files_scanned: usize) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for f in sorted {
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"snippet\":{}}}\n",
            escape(&f.path),
            f.line,
            escape(f.rule),
            escape(&f.snippet),
        ));
    }
    out.push_str(&format!(
        "{{\"files_scanned\":{},\"findings\":{}}}\n",
        files_scanned,
        findings.len()
    ));
    out
}

/// Render flow findings plus the flow summary line as JSONL. Finding
/// lines share the token-rule shape; the summary additionally carries
/// call-graph statistics so coverage regressions are visible in diffs.
pub fn render_flow_jsonl(findings: &[Finding], stats: &FlowStats) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for f in sorted {
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"snippet\":{}}}\n",
            escape(&f.path),
            f.line,
            escape(f.rule),
            escape(&f.snippet),
        ));
    }
    out.push_str(&format!(
        "{{\"files_scanned\":{},\"functions\":{},\"resolved_edges\":{},\"dispatch_edges\":{},\
         \"sites_resolved\":{},\"sites_dispatch\":{},\"sites_external\":{},\"ambiguous_calls\":{},\
         \"resolution_rate_bp\":{},\"findings\":{}}}\n",
        stats.files_scanned,
        stats.functions,
        stats.resolved_edges,
        stats.dispatch_edges,
        stats.sites_resolved,
        stats.sites_dispatch,
        stats.sites_external,
        stats.ambiguous_calls,
        stats.resolution_rate_bp(),
        findings.len()
    ));
    out
}

/// Render the sorted `key value` resolution summary for
/// `dhs-lint --stats` — the format `scripts/check.sh` ratchets against
/// the committed baseline.
pub fn render_stats(stats: &FlowStats) -> String {
    let mut lines = vec![
        format!("ambiguous_calls {}", stats.ambiguous_calls),
        format!("dispatch_edges {}", stats.dispatch_edges),
        format!("files_scanned {}", stats.files_scanned),
        format!("functions {}", stats.functions),
        format!("resolution_rate_bp {}", stats.resolution_rate_bp()),
        format!("resolved_edges {}", stats.resolved_edges),
        format!("sites_dispatch {}", stats.sites_dispatch),
        format!("sites_external {}", stats.sites_external),
        format!("sites_resolved {}", stats.sites_resolved),
        format!("sites_total {}", stats.sites_total()),
    ];
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            rule,
            snippet: format!("snippet {line}"),
        }
    }

    #[test]
    fn sorted_by_path_then_line() {
        let fs = vec![
            finding("b.rs", 1, "lossy_cast"),
            finding("a.rs", 9, "determinism"),
            finding("a.rs", 2, "panic_hygiene"),
        ];
        let out = render_jsonl(&fs, 3);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"a.rs\"") && lines[0].contains("\"line\":2"));
        assert!(lines[1].contains("\"a.rs\"") && lines[1].contains("\"line\":9"));
        assert!(lines[2].contains("\"b.rs\""));
        assert_eq!(lines[3], "{\"files_scanned\":3,\"findings\":3}");
    }

    #[test]
    fn escapes_quotes_and_control_chars() {
        let mut f = finding("a.rs", 1, "metric_names");
        f.snippet = "incr(\"x\")\t".to_string();
        let out = render_jsonl(&[f], 1);
        assert!(out.contains("incr(\\\"x\\\")\\t"), "{out}");
    }

    #[test]
    fn empty_findings_still_emit_summary() {
        let out = render_jsonl(&[], 42);
        assert_eq!(out, "{\"files_scanned\":42,\"findings\":0}\n");
    }

    #[test]
    fn escapes_backslashes_byte_exact() {
        let mut f = finding("a.rs", 1, "determinism");
        f.snippet = r#"let p = "C:\\tmp"; // say "hi""#.to_string();
        let out = render_jsonl(&[f], 1);
        assert_eq!(
            out.lines().next().unwrap(),
            "{\"path\":\"a.rs\",\"line\":1,\"rule\":\"determinism\",\
             \"snippet\":\"let p = \\\"C:\\\\\\\\tmp\\\"; // say \\\"hi\\\"\"}"
        );
    }

    #[test]
    fn non_ascii_passes_through_unescaped() {
        let mut f = finding("a.rs", 7, "metric_names");
        f.snippet = "θ0 = 0.7 → café ✓".to_string();
        let out = render_jsonl(&[f], 1);
        assert!(out.contains("\"snippet\":\"θ0 = 0.7 → café ✓\""), "{out}");
        // Two renders are byte-identical (determinism of the escaper).
        let f2 = {
            let mut f2 = finding("a.rs", 7, "metric_names");
            f2.snippet = "θ0 = 0.7 → café ✓".to_string();
            f2
        };
        assert_eq!(out, render_jsonl(&[f2], 1));
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        let mut f = finding("a.rs", 3, "panic_hygiene");
        f.snippet = "a\u{01}b\u{1f}c".to_string();
        let out = render_jsonl(&[f], 1);
        assert!(out.contains("a\\u0001b\\u001fc"), "{out}");
    }

    #[test]
    fn flow_summary_carries_graph_stats() {
        let stats = FlowStats {
            files_scanned: 5,
            functions: 12,
            resolved_edges: 9,
            dispatch_edges: 3,
            sites_resolved: 10,
            sites_dispatch: 4,
            sites_external: 4,
            ambiguous_calls: 2,
        };
        let out = render_flow_jsonl(&[finding("a.rs", 1, "rng-plumbing")], &stats);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[1],
            "{\"files_scanned\":5,\"functions\":12,\"resolved_edges\":9,\"dispatch_edges\":3,\
             \"sites_resolved\":10,\"sites_dispatch\":4,\"sites_external\":4,\"ambiguous_calls\":2,\
             \"resolution_rate_bp\":9000,\"findings\":1}"
        );
    }

    #[test]
    fn stats_lines_are_sorted_key_value_pairs() {
        let stats = FlowStats {
            files_scanned: 5,
            functions: 12,
            resolved_edges: 9,
            dispatch_edges: 3,
            sites_resolved: 10,
            sites_dispatch: 4,
            sites_external: 4,
            ambiguous_calls: 2,
        };
        let out = render_stats(&stats);
        let lines: Vec<&str> = out.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(lines.contains(&"ambiguous_calls 2"));
        assert!(lines.contains(&"resolution_rate_bp 9000"));
        assert!(lines.contains(&"sites_total 20"));
        // Byte-identical across renders — check.sh cmp's two runs.
        assert_eq!(out, render_stats(&stats));
    }
}

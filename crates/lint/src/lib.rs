//! # dhs-lint — static-analysis gate for the DHS workspace
//!
//! A zero-dependency lint binary that enforces the repo's three
//! hard-won invariants (see DESIGN.md, "dhs-lint" section):
//!
//! 1. **Determinism** — simulation crates must not reach for wall
//!    clocks, OS entropy, or hash-ordered iteration (`determinism`).
//! 2. **No silent truncation** — `as`-narrowing is banned in library
//!    code; use `dhs_core::checked_cast` / `try_cast` (`lossy_cast`).
//! 3. **Canonical metric names** — string literals at recorder call
//!    sites must come from `dhs_obs::names` (`metric_names`), and
//!    library code must not panic casually (`panic_hygiene`).
//!
//! The token pipeline is [`lexer`] (a small hand-rolled Rust lexer:
//! strings, char literals, raw strings, nested block comments) →
//! [`rules`] (a token-pattern rule engine with
//! `// dhs-lint: allow(<rule>)` escape hatches) → [`report`]
//! (deterministic JSONL, sorted by path/line/rule, byte-identical
//! across runs).
//!
//! On top of that sits **dhs-flow** (`dhs-lint --flow`), an
//! interprocedural layer: [`items`] parses `fn`/`impl` structure out
//! of the token stream, [`types`] indexes struct fields, trait
//! relations, and fn signatures into a head-only type model,
//! [`resolve`] classifies every call site with receiver-type dispatch
//! (resolved / dispatch / external / ambiguous), [`callgraph`]
//! assembles the workspace graph from those sites, and [`flow`] runs
//! fixpoint taint propagation plus whole-program rules:
//! `entropy-taint`, `rng-plumbing`, `dropped-result`,
//! `recursion-bound`, and the [`protocol`] pack
//! (`protocol-submit-completion`, `protocol-inflight-effects`,
//! `protocol-sync-exchange`) guarding the PR 8 submit/completion
//! machine discipline. Escape hatches: `// dhs-flow: allow(<rule>)`
//! and `// dhs-flow: cycle-ok(<reason>)`.
//!
//! Run it as `cargo run --release -p dhs-lint` from anywhere in the
//! workspace; it exits non-zero when any finding survives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod callgraph;
pub mod cfg;
pub mod flow;
pub mod items;
pub mod lexer;
pub mod protocol;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod types;
pub mod walk;

pub use flow::{flow_files, FlowStats};
pub use report::{render_flow_jsonl, render_jsonl, render_stats, render_stats_json};
pub use rules::{classify, lint_source, FileClass, Finding, NameSet};
pub use walk::{
    find_names_source, flow_workspace, lint_workspace, rust_sources, workspace_members,
};

//! Workspace traversal: find the `.rs` files to lint, in a stable
//! sorted order, and run the rules over all of them.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::flow::{flow_files, FlowStats};
use crate::rules::{lint_source, Finding, NameSet};

/// Directories scanned relative to the workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Collect every `.rs` file under the scan roots, as sorted
/// workspace-relative forward-slash paths. `target/` and the lint
/// crate's own `fixtures/` trees are skipped.
pub fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Locate the canonical name table (`crates/obs/src/names.rs`) under
/// `root`, if present.
pub fn find_names_source(root: &Path) -> Option<PathBuf> {
    let p = root.join("crates/obs/src/names.rs");
    p.is_file().then_some(p)
}

/// Lint every source file under `root`. Returns `(findings,
/// files_scanned)`.
pub fn lint_workspace(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let names = match find_names_source(root) {
        Some(p) => NameSet::parse(&fs::read_to_string(p)?),
        None => NameSet::default(),
    };
    let files = rust_sources(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(rel, &source, &names));
    }
    findings.sort();
    Ok((findings, files.len()))
}

/// Run the interprocedural flow analysis over every source file under
/// `root`. Scope filtering (library-only, exempt crates out) happens
/// inside [`flow_files`].
pub fn flow_workspace(root: &Path) -> io::Result<(Vec<Finding>, FlowStats)> {
    let files = rust_sources(root)?;
    let mut inputs = Vec::with_capacity(files.len());
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        inputs.push((rel, source));
    }
    Ok(flow_files(&inputs))
}

/// Walk upward from `start` to the directory containing the workspace
/// `Cargo.toml` (identified by a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

//! Workspace traversal: find the `.rs` files to lint, in a stable
//! sorted order, and run the rules over all of them.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::flow::{flow_files, FlowStats};
use crate::rules::{lint_source, Finding, NameSet};

/// Directories scanned relative to the workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Collect every `.rs` file under the scan roots, as sorted
/// workspace-relative forward-slash paths. `target/` and the lint
/// crate's own `fixtures/` trees are skipped.
pub fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Workspace member crate names parsed from the root `Cargo.toml`
/// `[workspace] members` globs, normalized to the directory name
/// directly under `crates/` (so `"crates/shims/*"` contributes
/// `"shims"`), plus `"(root)"` when the manifest also declares a
/// `[package]`. Sorted and deduplicated — the ground truth that
/// `tests/workspace.rs` checks the rule-scope opt-out lists against,
/// so they can never go stale the way the old hand-maintained
/// allowlists did.
pub fn workspace_members(root: &Path) -> io::Result<Vec<String>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let globs = toml_string_array(&manifest, "members");
    let excludes = toml_string_array(&manifest, "exclude");
    let mut out: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    if manifest.contains("[package]") {
        out.insert("(root)".to_string());
    }
    for g in &globs {
        let Some(rest) = g.strip_prefix("crates/") else {
            continue;
        };
        let head = rest.split('/').next().unwrap_or("");
        if head == "*" {
            let dir = root.join("crates");
            if !dir.is_dir() {
                continue;
            }
            let mut names: Vec<String> = fs::read_dir(&dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .filter(|e| e.path().join("Cargo.toml").is_file())
                .filter_map(|e| e.file_name().to_str().map(str::to_string))
                .collect();
            names.sort();
            for name in names {
                if !excludes.iter().any(|x| x == &format!("crates/{name}")) {
                    out.insert(name);
                }
            }
        } else {
            out.insert(head.to_string());
        }
    }
    Ok(out.into_iter().collect())
}

/// The crates the replay-path rules apply to: workspace members minus
/// [`crate::rules::REPLAY_OPT_OUT`].
pub fn derived_replay_crates(root: &Path) -> io::Result<Vec<String>> {
    Ok(workspace_members(root)?
        .into_iter()
        .filter(|c| crate::rules::replay_scope(c))
        .collect())
}

/// The crates the metric-name rule applies to: workspace members minus
/// [`crate::rules::METRIC_NAME_OPT_OUT`].
pub fn derived_metric_name_crates(root: &Path) -> io::Result<Vec<String>> {
    Ok(workspace_members(root)?
        .into_iter()
        .filter(|c| crate::rules::metric_name_scope(c))
        .collect())
}

/// The string elements of the first `key = [ … ]` array in `text`.
/// Good enough for the workspace manifest this tool owns; no TOML
/// dependency.
fn toml_string_array(text: &str, key: &str) -> Vec<String> {
    let Some(k) = text
        .find(&format!("{key} = ["))
        .or_else(|| text.find(&format!("{key}=[")))
    else {
        return Vec::new();
    };
    let rest = &text[k..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find(']') else {
        return Vec::new();
    };
    rest[open + 1..open + close]
        .split(',')
        .filter_map(|part| {
            let part = part.trim();
            part.strip_prefix('"')?
                .strip_suffix('"')
                .map(str::to_string)
        })
        .collect()
}

/// Locate the canonical name table (`crates/obs/src/names.rs`) under
/// `root`, if present.
pub fn find_names_source(root: &Path) -> Option<PathBuf> {
    let p = root.join("crates/obs/src/names.rs");
    p.is_file().then_some(p)
}

/// Lint every source file under `root`. Returns `(findings,
/// files_scanned)`.
pub fn lint_workspace(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let names = match find_names_source(root) {
        Some(p) => NameSet::parse(&fs::read_to_string(p)?),
        None => NameSet::default(),
    };
    let files = rust_sources(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(rel, &source, &names));
    }
    findings.sort();
    Ok((findings, files.len()))
}

/// Run the interprocedural flow analysis over every source file under
/// `root`. Scope filtering (library-only, exempt crates out) happens
/// inside [`flow_files`].
pub fn flow_workspace(root: &Path) -> io::Result<(Vec<Finding>, FlowStats)> {
    let files = rust_sources(root)?;
    let mut inputs = Vec::with_capacity(files.len());
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        inputs.push((rel, source));
    }
    Ok(flow_files(&inputs))
}

/// Walk upward from `start` to the directory containing the workspace
/// `Cargo.toml` (identified by a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

//! The rule engine: pattern-match the token stream of one file against
//! the repo's invariant rules.
//!
//! Rule catalog (ids are what `// dhs-lint: allow(<rule>)` takes):
//!
//! | id              | guards against                                            |
//! |-----------------|-----------------------------------------------------------|
//! | `determinism`   | wall-clock / entropy / hash-order on the replay path      |
//! | `lossy_cast`    | silent `as` narrowing (the PR 3 `m > 65536` bug class)    |
//! | `metric_names`  | metric/span name literals not in `dhs_obs::names`         |
//! | `panic_hygiene` | `unwrap()` / `expect()` / `panic!` in library code        |
//!
//! Scope gating is by path (see [`FileClass`]): `#[cfg(test)]` regions
//! are always exempt, as are the `shims` and `bench` crates and the lint
//! crate itself (whose sources and fixtures necessarily spell out the
//! forbidden patterns).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, Token};

/// Crates opted *out* of the deterministic-replay rules. Everything
/// else in the workspace (including crates added by future PRs and the
/// root facade crate) is on the replay path by default: two same-seed
/// runs must be byte-identical, so wall clocks, OS entropy, and
/// hash-iteration order are banned outright. The old allowlists
/// (`REPLAY_CRATES`/`METRIC_NAME_CRATES`) had to be hand-extended every
/// PR and went stale; `tests/workspace.rs` asserts these opt-outs stay
/// a subset of the actual `Cargo.toml` members.
pub const REPLAY_OPT_OUT: &[&str] = &[
    "baselines", // offline estimator references, not replayed
    "bench",     // measurement harness: wall clocks are the point
    "histogram", // plotting/report helper, no replay surface
    "lint",      // this tool (its sources spell out banned patterns)
    "shims",     // vendored stand-ins for external crates
    "workload",  // generator CLI, seeds its own streams
];

/// Crates opted *out* of the metric-name rule. `bench` is in scope
/// despite its replay opt-out: its KPI emitters feed the gated
/// trajectory registry. `sketch` is out: its `histogram(..)`
/// constructors collide with the recorder-call surface by name.
pub const METRIC_NAME_OPT_OUT: &[&str] = &[
    "baselines",
    "histogram",
    "lint",
    "shims",
    "sketch",
    "workload",
];

/// Is `crate_name` (a `crates/` directory name, or `"(root)"`) on the
/// deterministic-replay path?
pub fn replay_scope(crate_name: &str) -> bool {
    !REPLAY_OPT_OUT.contains(&crate_name)
}

/// Must `crate_name`'s recorder call sites use `dhs_obs::names`?
pub fn metric_name_scope(crate_name: &str) -> bool {
    !METRIC_NAME_OPT_OUT.contains(&crate_name)
}

/// Is this file in scope for the interprocedural flow analysis?
/// Library sources of every crate except the shims and the lint tool
/// itself — wider than [`replay_scope`] because `bench` library code
/// participates in the call graph (its KPI emitters call into replay
/// crates).
pub fn flow_scope(class: &FileClass) -> bool {
    class.is_library && !matches!(class.crate_name.as_str(), "shims" | "lint")
}

/// The only replay-path modules allowed to spawn threads or take locks:
/// dhs-par's sharded driver, whose fan-in merge is what *makes* threading
/// deterministic. Everywhere else on the replay path, `spawn`/`Mutex`/
/// `RwLock` (and unseeded per-thread RNGs, already covered by the
/// `thread_rng`/`from_entropy` checks) are determinism violations.
pub const THREADING_APPROVED: &[&str] = &["crates/par/src/driver.rs"];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`determinism`, `lossy_cast`, …).
    pub rule: &'static str,
    /// The trimmed source line, for humans reading the JSONL.
    pub snippet: String,
}

/// What kind of file a path denotes — decides which rules apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name under `crates/` (`"core"`, `"net"`, …);
    /// `"(root)"` for the workspace facade crate.
    pub crate_name: String,
    /// Library source (`src/` of a workspace crate or the root crate).
    pub is_library: bool,
    /// Test target (`tests/` directory at crate or workspace level).
    pub is_test_target: bool,
    /// Example target (workspace `examples/`).
    pub is_example: bool,
    /// Entirely exempt (shims, bench, the lint crate itself).
    pub exempt: bool,
}

/// Classify a workspace-relative path (forward slashes). Paths routed
/// through a `fixtures/` directory are classified by the part after it,
/// so fixture corpora can mirror real workspace layouts.
pub fn classify(path: &str) -> FileClass {
    let p = match path.rfind("fixtures/") {
        Some(i) => &path[i + "fixtures/".len()..],
        None => path,
    };
    let none = FileClass {
        crate_name: String::new(),
        is_library: false,
        is_test_target: false,
        is_example: false,
        exempt: true,
    };
    if !p.ends_with(".rs") {
        return none;
    }
    if let Some(rest) = p.strip_prefix("crates/") {
        let mut parts = rest.splitn(2, '/');
        let krate = parts.next().unwrap_or("");
        let tail = parts.next().unwrap_or("");
        let exempt = matches!(krate, "shims" | "bench" | "lint");
        return FileClass {
            crate_name: krate.to_string(),
            is_library: tail.starts_with("src/"),
            is_test_target: tail.starts_with("tests/"),
            is_example: tail.starts_with("examples/"),
            exempt,
        };
    }
    FileClass {
        crate_name: "(root)".to_string(),
        is_library: p.starts_with("src/"),
        is_test_target: p.starts_with("tests/"),
        is_example: p.starts_with("examples/"),
        exempt: false,
    }
}

/// The canonical metric/span name table (values of the `pub const`
/// string items in `dhs_obs::names`), plus the const-ident → value map
/// so call sites spelling `names::OP_COUNT` can be *verified* rather
/// than skipped.
#[derive(Debug, Default, Clone)]
pub struct NameSet {
    names: BTreeSet<String>,
    consts: BTreeMap<String, String>,
}

impl NameSet {
    /// Build from an iterator of canonical names.
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> Self {
        NameSet {
            names: names.into_iter().collect(),
            consts: BTreeMap::new(),
        }
    }

    /// Parse the canonical table out of `names.rs` source: every
    /// `const IDENT: &str = "…";` item contributes its value, keyed by
    /// ident for call-site constant propagation.
    pub fn parse(source: &str) -> Self {
        let toks = lex(source).tokens;
        let mut names = BTreeSet::new();
        let mut consts = BTreeMap::new();
        let mut i = 0;
        while i + 6 < toks.len() {
            if is_ident(&toks[i], "const")
                && matches!(toks[i + 1].kind, Tok::Ident(_))
                && toks[i + 2].kind == Tok::Punct(':')
                && toks[i + 3].kind == Tok::Punct('&')
                && is_ident(&toks[i + 4], "str")
                && toks[i + 5].kind == Tok::Punct('=')
            {
                if let Tok::Str(v) = &toks[i + 6].kind {
                    names.insert(v.clone());
                    if let Tok::Ident(ident) = &toks[i + 1].kind {
                        consts.insert(ident.clone(), v.clone());
                    }
                    i += 7;
                    continue;
                }
            }
            i += 1;
        }
        NameSet { names, consts }
    }

    /// Whether `name` is canonical.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// The canonical value of the `dhs_obs::names` const `ident`.
    pub fn value_of(&self, ident: &str) -> Option<&str> {
        self.consts.get(ident).map(String::as_str)
    }

    /// Number of canonical names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names were registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Lint one file's source. `path` must be workspace-relative with
/// forward slashes; it selects the rule set via [`classify`].
pub fn lint_source(path: &str, source: &str, names: &NameSet) -> Vec<Finding> {
    let class = classify(path);
    // The bench crate stays exempt from the determinism/cast/panic rules
    // (measurement code legitimately wants wall clocks and quick casts),
    // but since PR 7 its library sources emit the `ablation.*` KPI
    // metrics, so the metric-name rule alone still applies there.
    let bench_names_only = class.exempt && class.crate_name == "bench" && class.is_library;
    if (class.exempt && !bench_names_only) || class.is_test_target {
        return Vec::new();
    }
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let allows = allow_map(&lexed.comments, &lexed.tokens);
    let test_lines = cfg_test_lines(&lexed.tokens);

    let mut ctx = Ctx {
        path,
        lines: &lines,
        allows: &allows,
        test_lines: &test_lines,
        findings: Vec::new(),
    };

    let on_replay_path = replay_scope(&class.crate_name);
    if !bench_names_only {
        if (class.is_library && on_replay_path) || class.is_example {
            determinism(&mut ctx, &lexed.tokens);
        }
        if class.is_library {
            lossy_cast(&mut ctx, &lexed.tokens);
            panic_hygiene(&mut ctx, &lexed.tokens);
        }
    }
    if class.is_library && metric_name_scope(&class.crate_name) {
        metric_names(&mut ctx, &lexed.tokens, names);
    }

    ctx.findings.sort();
    ctx.findings.dedup();
    ctx.findings
}

struct Ctx<'a> {
    path: &'a str,
    lines: &'a [&'a str],
    allows: &'a BTreeMap<u32, BTreeSet<String>>,
    test_lines: &'a [(u32, u32)],
    findings: Vec<Finding>,
}

impl Ctx<'_> {
    fn report(&mut self, line: u32, rule: &'static str) {
        if self
            .test_lines
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
        {
            return;
        }
        if let Some(rules) = self.allows.get(&line) {
            if rules.contains(rule) {
                return;
            }
        }
        let snippet = self
            .lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        self.findings.push(Finding {
            path: self.path.to_string(),
            line,
            rule,
            snippet,
        });
    }
}

/// Map each source line to the set of rules allowed on it.
///
/// `// dhs-lint: allow(rule)` (optionally `allow(a, b)`) suppresses the
/// rule on its own line (trailing comment) or, when the comment stands on
/// its own line(s), on the next code line. Consecutive comment-only lines
/// accumulate, so a directive followed by explanation lines still covers
/// the code below. "Comment-only" is judged by the token stream (no token
/// lands on the line), so text tricks like a leading `*` deref cannot be
/// mistaken for a block-comment interior.
pub(crate) fn allow_map(
    comments: &[crate::lexer::Comment],
    toks: &[Token],
) -> BTreeMap<u32, BTreeSet<String>> {
    directive_map(comments, toks, "dhs-lint:")
}

/// [`allow_map`] generalized over the directive marker, so the flow
/// analysis can reuse the exact same placement semantics for
/// `// dhs-flow: allow(<rule>)`.
pub(crate) fn directive_map(
    comments: &[crate::lexer::Comment],
    toks: &[Token],
    marker: &str,
) -> BTreeMap<u32, BTreeSet<String>> {
    let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let last_line = code_lines.iter().next_back().copied().unwrap_or(0);
    let mut directives: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for c in comments {
        let rules = parse_allow(&c.text, marker);
        if !rules.is_empty() {
            directives.entry(c.line).or_default().extend(rules);
        }
    }
    let mut map: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (&line, rules) in &directives {
        if code_lines.contains(&line) {
            // Trailing comment: covers its own line.
            map.entry(line).or_default().extend(rules.iter().cloned());
            continue;
        }
        // Comment-only line: the directive covers the next line that
        // carries any token.
        if let Some(&target) = code_lines.range(line + 1..=last_line.max(line)).next() {
            map.entry(target).or_default().extend(rules.iter().cloned());
        }
    }
    map
}

/// Extract rule ids from one comment's `<marker> allow(…)` directive
/// (`marker` is `"dhs-lint:"` or `"dhs-flow:"`).
pub(crate) fn parse_allow(text: &str, marker: &str) -> Vec<String> {
    let Some(i) = text.find(marker) else {
        return Vec::new();
    };
    let rest = text[i + marker.len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect()
}

/// Line ranges covered by `#[cfg(test)]` items (almost always the
/// `mod tests { … }` block). The attribute may carry any args containing
/// the `test` ident (e.g. `cfg(all(test, feature = "x"))`).
pub(crate) fn cfg_test_lines(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == Tok::Punct('#')
            && matches(toks, i + 1, &[p('[')])
            && is_ident_at(toks, i + 2, "cfg")
            && matches(toks, i + 3, &[p('(')])
        {
            // Scan the cfg(...) argument list for the `test` ident.
            let mut j = i + 4;
            let mut depth = 1usize;
            let mut has_test = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => depth -= 1,
                    Tok::Ident(s) if s == "test" => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Expect the closing `]` of the attribute.
            if j < toks.len() && toks[j].kind == Tok::Punct(']') {
                j += 1;
            }
            if has_test {
                if let Some(range) = item_extent(toks, j) {
                    ranges.push(range);
                    i = j;
                    continue;
                }
            }
        }
        i += 1;
    }
    ranges
}

/// The line extent of the item starting at token index `start`: to the
/// matching close of its first brace block, or to the first `;` for
/// braceless items (`#[cfg(test)] use foo;`).
fn item_extent(toks: &[Token], start: usize) -> Option<(u32, u32)> {
    let mut j = start;
    while j < toks.len() {
        match toks[j].kind {
            Tok::Punct('{') => {
                let mut depth = 0usize;
                while j < toks.len() {
                    match toks[j].kind {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((toks[start].line, toks[j].line));
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return Some((toks[start].line, toks.last()?.line));
            }
            Tok::Punct(';') => return Some((toks[start].line, toks[j].line)),
            _ => j += 1,
        }
    }
    None
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn determinism(ctx: &mut Ctx<'_>, toks: &[Token]) {
    // Threading primitives are only legitimate in the approved driver
    // modules (compare with the `fixtures/` prefix stripped, like
    // `classify`, so fixture corpora can cover both sides).
    let stripped = match ctx.path.rfind("fixtures/") {
        Some(i) => &ctx.path[i + "fixtures/".len()..],
        None => ctx.path,
    };
    let threading_approved = THREADING_APPROVED.contains(&stripped);
    // Pass 1: identifiers declared with a HashMap/HashSet type.
    let mut hash_idents: BTreeSet<&str> = BTreeSet::new();
    for i in 0..toks.len() {
        if !is_hash_ty(&toks[i].kind) {
            continue;
        }
        // `name: [&[mut]] HashMap<…>` (struct field / param / let with
        // type) — skip reference/mut prefixes back to the `:`.
        let mut k = i;
        while k >= 1 && (toks[k - 1].kind == Tok::Punct('&') || is_ident(&toks[k - 1], "mut")) {
            k -= 1;
        }
        if k >= 2 && toks[k - 1].kind == Tok::Punct(':') {
            if let Tok::Ident(name) = &toks[k - 2].kind {
                hash_idents.insert(name);
            }
        }
        // `let [mut] name … = HashMap::…;` — scan back to the `let` of
        // the statement (bounded window keeps this O(1) per token).
        for back in 1..=8usize {
            let Some(j) = i.checked_sub(back) else { break };
            match &toks[j].kind {
                Tok::Ident(s) if s == "let" => {
                    let k = if is_ident_at(toks, j + 1, "mut") {
                        j + 2
                    } else {
                        j + 1
                    };
                    if let Some(Tok::Ident(name)) = toks.get(k).map(|t| &t.kind) {
                        hash_idents.insert(name);
                    }
                    break;
                }
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
                _ => {}
            }
        }
    }

    for i in 0..toks.len() {
        let line = toks[i].line;
        match &toks[i].kind {
            Tok::Ident(s) if s == "SystemTime" || s == "thread_rng" || s == "from_entropy" => {
                ctx.report(line, "determinism");
            }
            // Bare threading/locking outside the approved driver modules:
            // un-merged cross-thread effects are exactly the hash-order
            // bug class with extra steps.
            Tok::Ident(s) if !threading_approved && (s == "Mutex" || s == "RwLock") => {
                ctx.report(line, "determinism");
            }
            Tok::Ident(s)
                if !threading_approved
                    && s == "spawn"
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('(')) =>
            {
                ctx.report(line, "determinism");
            }
            Tok::Ident(s)
                if s == "Instant"
                    && matches(toks, i + 1, &[p(':'), p(':')])
                    && is_ident_at(toks, i + 3, "now") =>
            {
                ctx.report(line, "determinism");
            }
            // `map.iter()` / `self.map.drain()` on a hash-typed name.
            Tok::Ident(name) if hash_idents.contains(name.as_str()) => {
                if matches(toks, i + 1, &[p('.')]) {
                    if let Some(Tok::Ident(m)) = toks.get(i + 2).map(|t| &t.kind) {
                        if ITER_METHODS.contains(&m.as_str())
                            && toks.get(i + 3).map(|t| &t.kind) == Some(&Tok::Punct('('))
                        {
                            ctx.report(line, "determinism");
                        }
                    }
                }
                // `for x in &map {` / `for x in map {`.
                if is_for_in_target(toks, i) {
                    ctx.report(line, "determinism");
                }
            }
            _ => {}
        }
    }
}

fn is_hash_ty(kind: &Tok) -> bool {
    matches!(kind, Tok::Ident(s) if s == "HashMap" || s == "HashSet")
}

/// Is the identifier at `i` the final target of a `for … in [&[mut]] …`
/// header (i.e. directly followed by the loop body brace)?
fn is_for_in_target(toks: &[Token], i: usize) -> bool {
    if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct('{')) {
        return false;
    }
    // Walk back over a `self.`-style path and `&`/`mut` prefixes to find
    // the `in` keyword within a small window.
    let mut j = i;
    for _ in 0..6 {
        let Some(k) = j.checked_sub(1) else {
            return false;
        };
        match &toks[k].kind {
            Tok::Punct('.') | Tok::Punct('&') => j = k,
            Tok::Ident(s) if s == "self" || s == "mut" => j = k,
            Tok::Ident(s) if s == "in" => return true,
            _ => return false,
        }
    }
    false
}

// ---------------------------------------------------------------------
// lossy_cast
// ---------------------------------------------------------------------

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "usize"];

fn lossy_cast(ctx: &mut Ctx<'_>, toks: &[Token]) {
    for i in 0..toks.len().saturating_sub(1) {
        if is_ident(&toks[i], "as") {
            if let Tok::Ident(ty) = &toks[i + 1].kind {
                if NARROW_TARGETS.contains(&ty.as_str()) {
                    ctx.report(toks[i].line, "lossy_cast");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// metric_names
// ---------------------------------------------------------------------

pub(crate) const RECORDER_CALLS: &[&str] = &[
    "incr",
    "observe",
    "gauge_set",
    "span_start",
    "start_span",
    "counter",
    "histogram",
];

/// File-local constant propagation for metric-name arguments: resolves
/// `const` items, `concat!` of literals, `names::X` paths, and
/// single-assignment `let` locals to their string values.
struct NameEnv<'a> {
    names: &'a NameSet,
    /// File-level `const IDENT: &str = …;` values.
    consts: BTreeMap<String, String>,
    /// `let` bindings: ident → sorted (token position, value).
    lets: BTreeMap<String, Vec<(usize, Option<String>)>>,
    /// Idents that cannot be trusted: `mut` bindings, reassignments,
    /// or any `ident :` occurrence (a param/field of the same name
    /// could shadow the binding across fn boundaries, which this flat
    /// file-level model does not track).
    poisoned: BTreeSet<String>,
}

impl<'a> NameEnv<'a> {
    fn build(toks: &[Token], names: &'a NameSet) -> NameEnv<'a> {
        let mut env = NameEnv {
            names,
            consts: BTreeMap::new(),
            lets: BTreeMap::new(),
            poisoned: BTreeSet::new(),
        };
        // Pass 1: file-level string consts (forward, so a const may
        // reference an earlier one).
        let mut i = 0;
        while i + 6 < toks.len() {
            if is_ident(&toks[i], "const")
                && matches!(toks[i + 1].kind, Tok::Ident(_))
                && toks[i + 2].kind == Tok::Punct(':')
                && toks[i + 3].kind == Tok::Punct('&')
                && is_ident(&toks[i + 4], "str")
                && toks[i + 5].kind == Tok::Punct('=')
            {
                if let (Tok::Ident(ident), Some(v)) =
                    (&toks[i + 1].kind, env.eval_expr(toks, i + 6))
                {
                    env.consts.insert(ident.clone(), v);
                }
            }
            i += 1;
        }
        // Pass 2: poison marks and let bindings.
        for i in 0..toks.len() {
            let Tok::Ident(name) = &toks[i].kind else {
                continue;
            };
            // `name :` (single colon) — param, field, or ascription.
            // A `const`/`static` declaration's own type ascription is
            // not a shadow risk: those names live in the consts table.
            let is_item_decl =
                i >= 1 && (is_ident(&toks[i - 1], "const") || is_ident(&toks[i - 1], "static"));
            if toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                && toks.get(i + 2).map(|t| &t.kind) != Some(&Tok::Punct(':'))
                && (i == 0 || toks[i - 1].kind != Tok::Punct(':'))
                && !is_item_decl
            {
                env.poisoned.insert(name.clone());
            }
            let after_let = i >= 1 && is_ident(&toks[i - 1], "let");
            let after_let_mut =
                i >= 2 && is_ident(&toks[i - 1], "mut") && is_ident(&toks[i - 2], "let");
            if after_let_mut {
                env.poisoned.insert(name.clone());
                continue;
            }
            if toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('='))
                && toks.get(i + 2).map(|t| &t.kind) != Some(&Tok::Punct('='))
            {
                if after_let {
                    let value = env.eval_expr(toks, i + 2);
                    env.lets.entry(name.clone()).or_default().push((i, value));
                } else if !matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Punct('>'))) {
                    // Reassignment (`name = …`, not `name =>`).
                    env.poisoned.insert(name.clone());
                }
            }
        }
        env
    }

    /// Value of the string expression starting at `k`: a literal, a
    /// `concat!` of literals, a `names::X`-style path, or a const
    /// ident already in the table. `None` = not resolvable.
    fn eval_expr(&self, toks: &[Token], k: usize) -> Option<String> {
        match &toks.get(k)?.kind {
            Tok::Str(v) => Some(v.clone()),
            Tok::Ident(c)
                if c == "concat" && toks.get(k + 1).map(|t| &t.kind) == Some(&Tok::Punct('!')) =>
            {
                let mut out = String::new();
                let mut j = k + 3; // past `concat ! (`
                while let Some(t) = toks.get(j) {
                    match &t.kind {
                        Tok::Str(v) => out.push_str(v),
                        Tok::Punct(',') => {}
                        Tok::Punct(')') => return Some(out),
                        // A non-literal argument defeats resolution.
                        _ => return None,
                    }
                    j += 1;
                }
                None
            }
            Tok::Ident(_) => {
                // Walk a path `a::b::X`; resolve the final segment via
                // the canonical table (any path mentioning `names`) or
                // the file-local const table (bare ident).
                let mut j = k;
                let mut via_names = false;
                loop {
                    let Tok::Ident(seg) = &toks.get(j)?.kind else {
                        return None;
                    };
                    if seg == "names" {
                        via_names = true;
                    }
                    if toks.get(j + 1).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                        && toks.get(j + 2).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                    {
                        j += 3;
                        continue;
                    }
                    return if via_names && j != k {
                        self.names.value_of(seg).map(str::to_string)
                    } else if j == k {
                        self.consts
                            .get(seg)
                            .cloned()
                            .or_else(|| self.names.value_of(seg).map(str::to_string))
                    } else {
                        None
                    };
                }
            }
            _ => None,
        }
    }

    /// Resolve a bare ident used as a metric-name argument at token
    /// position `at`: the latest earlier `let` binding, else a const.
    fn resolve_ident(&self, name: &str, at: usize) -> Option<String> {
        if self.poisoned.contains(name) {
            return None;
        }
        if let Some(binds) = self.lets.get(name) {
            let latest = binds.iter().rev().find(|(pos, _)| *pos < at)?;
            return latest.1.clone();
        }
        self.consts
            .get(name)
            .cloned()
            .or_else(|| self.names.value_of(name).map(str::to_string))
    }
}

fn metric_names(ctx: &mut Ctx<'_>, toks: &[Token], names: &NameSet) {
    let env = NameEnv::build(toks, names);
    let mut i = 0;
    while i < toks.len() {
        let is_call = matches!(&toks[i].kind, Tok::Ident(s) if RECORDER_CALLS.contains(&s.as_str()))
            && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('('));
        if !is_call {
            i += 1;
            continue;
        }
        // Scan the argument list; every string literal inside must be a
        // canonical name.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut first_arg_end = None;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        first_arg_end.get_or_insert(j);
                    }
                }
                Tok::Punct(',') if depth == 1 => {
                    first_arg_end.get_or_insert(j);
                }
                Tok::Str(v) if !names.contains(v) => {
                    ctx.report(toks[j].line, "metric_names");
                }
                _ => {}
            }
            j += 1;
        }
        // Constant propagation over the first argument: a lone ident or
        // path that resolves to a non-canonical value is a violation
        // the literal scan above cannot see. Unresolvable arguments
        // (locals of unknown value, fn parameters) are skipped, never
        // guessed.
        if let Some(end) = first_arg_end {
            let value = match end.saturating_sub(i + 2) {
                1 => match &toks[i + 2].kind {
                    Tok::Ident(name) => env.resolve_ident(name, i + 2),
                    _ => None,
                },
                n if n >= 3 => match &toks[i + 2].kind {
                    Tok::Ident(_) => env.eval_expr(toks, i + 2),
                    _ => None,
                },
                _ => None,
            };
            if let Some(v) = value {
                if !names.contains(&v) {
                    ctx.report(toks[i + 2].line, "metric_names");
                }
            }
        }
        i = j;
    }
}

// ---------------------------------------------------------------------
// panic_hygiene
// ---------------------------------------------------------------------

fn panic_hygiene(ctx: &mut Ctx<'_>, toks: &[Token]) {
    for i in 0..toks.len() {
        match &toks[i].kind {
            // `.unwrap()` / `.expect(` — exact method names only
            // (`unwrap_or` is a different token and stays legal).
            Tok::Ident(s)
                if (s == "unwrap" || s == "expect")
                    && i >= 1
                    && toks[i - 1].kind == Tok::Punct('.')
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('(')) =>
            {
                ctx.report(toks[i].line, "panic_hygiene");
            }
            Tok::Ident(s)
                if (s == "panic" || s == "todo" || s == "unimplemented")
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('!')) =>
            {
                ctx.report(toks[i].line, "panic_hygiene");
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// token helpers
// ---------------------------------------------------------------------

pub(crate) fn p(c: char) -> Tok {
    Tok::Punct(c)
}

pub(crate) fn is_ident(t: &Token, name: &str) -> bool {
    matches!(&t.kind, Tok::Ident(s) if s == name)
}

pub(crate) fn is_ident_at(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i).map(|t| is_ident(t, name)).unwrap_or(false)
}

pub(crate) fn matches(toks: &[Token], start: usize, pattern: &[Tok]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, want)| toks.get(start + k).map(|t| &t.kind) == Some(want))
}

//! dhs-cfg: per-function control-flow graphs over the token stream.
//!
//! [`Cfg::build`] turns one fn body's token range (from
//! [`crate::items::FnItem::body`]) into basic blocks with explicit
//! successor edges, without building an AST. Recognized constructs:
//! `if`/`else if`/`else` (diamonds), `match` (one block per arm),
//! `loop`/`while`/`for` (header + body + after, with the body→header
//! back edge kept *out* of `succs` so forward traversals see a DAG),
//! `break`/`continue` (edges to the innermost loop's after/header),
//! early `return` and `?` (edges to the synthetic exit block).
//!
//! Closures are carved out as opaque [`Segment::closure`] ranges: the
//! fn-level CFG must not split on an `if` — or worse, take a `return`
//! edge — that belongs to a closure body which may run zero or many
//! times. Nested `fn` items are excluded entirely (they get their own
//! CFG when their [`crate::items::FnItem`] is analyzed).
//!
//! The builder is structured and deterministic: block ids are assigned
//! in source order, so two runs over the same token stream produce
//! byte-identical graphs — a requirement inherited by the draw-parity
//! verdicts in [`crate::absint`].
//!
//! Degradation policy matches the lexer's: on malformed shapes (no body
//! brace found, unmatched delimiters) the builder keeps the tokens in
//! the current block rather than panicking — `rustc` rejects such code
//! anyway, and the lint must stay total.

use crate::lexer::{Tok, Token};

/// A contiguous token range `[lo, hi)` owned by one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First token index (inclusive).
    pub lo: usize,
    /// One past the last token index.
    pub hi: usize,
    /// The range is a closure literal (params + body). Opaque to
    /// path-sensitive analyses: the closure may run zero or many times,
    /// so effects inside it cannot be attributed to this block's path.
    pub closure: bool,
}

/// What kind of construct terminates a block with a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// `if` / `else if` / `else` chain head.
    If,
    /// `match` with one arm block per `=>`.
    Match,
    /// `loop` / `while` / `for` header.
    Loop,
}

/// A structured branch recorded on the block it terminates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// The construct kind.
    pub kind: BranchKind,
    /// Token index of the introducing keyword (for report lines).
    pub tok: usize,
    /// Entry blocks of each arm: `[then]` or `[then, else]` for `If`
    /// (an `else if` nests inside the second arm), one block per match
    /// arm, `[body]` for `Loop`.
    pub arms: Vec<usize>,
    /// The block control rejoins at (for `Loop`: the after-loop block).
    /// An else-less `if` also has a direct edge branch-block → join —
    /// the fall-through path.
    pub join: usize,
}

/// One basic block: token segments, forward successor edges, the
/// branch that ends it (if any), and whether it sits inside a loop.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Token ranges owned by this block, in source order.
    pub segs: Vec<Segment>,
    /// Forward successor block ids (back edges live in
    /// [`Cfg::back_edges`] instead).
    pub succs: Vec<usize>,
    /// The structured branch terminating this block, if any.
    pub branch: Option<Branch>,
    /// Created while inside a loop body or header: any effect here may
    /// repeat, so per-path counting over it is unsound.
    pub in_loop: bool,
}

/// A per-function control-flow graph. `blocks[entry]` is the entry,
/// `blocks[exit]` the synthetic exit every `return` / `?` / normal
/// fall-off edges into.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks, ids in source order of creation.
    pub blocks: Vec<Block>,
    /// Entry block id (always 0).
    pub entry: usize,
    /// Synthetic exit block id (always 1, no successors).
    pub exit: usize,
    /// `(from, to)` loop back edges (`continue` / body-end → header),
    /// kept out of `succs` so forward traversals see a DAG.
    pub back_edges: Vec<(usize, usize)>,
}

/// The synthetic exit block's id.
const EXIT: usize = 1;

impl Cfg {
    /// Build the CFG for the body token range `(open, close)` — the
    /// brace indices recorded by [`crate::items::FnItem::body`].
    pub fn build(toks: &[Token], open: usize, close: usize) -> Cfg {
        let mut b = Builder {
            toks,
            blocks: Vec::new(),
            back_edges: Vec::new(),
            loops: Vec::new(),
        };
        let entry = b.new_block();
        let exit = b.new_block();
        let close = close.min(toks.len());
        if open + 1 < close {
            let last = b.seq(open + 1, close, entry);
            b.edge(last, exit);
        } else {
            b.edge(entry, exit);
        }
        Cfg {
            blocks: b.blocks,
            entry,
            exit,
            back_edges: b.back_edges,
        }
    }
}

/// Index of the `}` matching the `{` at `open`; `None` when `open` is
/// not a `{` or the stream ends first.
pub(crate) fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    if toks.get(open).map(|t| &t.kind) != Some(&Tok::Punct('{')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Closure extents `[lo, hi)` found inside a raw token range. Analyses
/// counting effects over a segment that was emitted without carving
/// (conditions, match patterns/guards) use this to tell which tokens
/// only run if a closure does.
pub fn closure_spans(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let b = Builder {
        toks,
        blocks: Vec::new(),
        back_edges: Vec::new(),
        loops: Vec::new(),
    };
    let mut spans = Vec::new();
    let mut i = lo;
    while i < hi {
        let opener = if matches!(&toks[i].kind, Tok::Ident(s) if s == "move")
            && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('|'))
        {
            Some(i + 1)
        } else if b.closure_opener(i) {
            Some(i)
        } else {
            None
        };
        match opener {
            Some(o) => {
                let end = b.closure_extent(o, hi);
                spans.push((i, end));
                i = end.max(i + 1);
            }
            None => i += 1,
        }
    }
    spans
}

struct Builder<'a> {
    toks: &'a [Token],
    blocks: Vec<Block>,
    back_edges: Vec<(usize, usize)>,
    /// Innermost-last stack of `(header, after)` for break/continue.
    loops: Vec<(usize, usize)>,
}

impl Builder<'_> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block {
            in_loop: !self.loops.is_empty(),
            ..Block::default()
        });
        self.blocks.len() - 1
    }

    fn emit(&mut self, b: usize, lo: usize, hi: usize, closure: bool) {
        if lo < hi {
            self.blocks[b].segs.push(Segment { lo, hi, closure });
        }
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Walk `[lo, hi)` appending to block `cur`, splitting on control
    /// constructs. Returns the block control flows out of at `hi`.
    fn seq(&mut self, lo: usize, hi: usize, mut cur: usize) -> usize {
        let mut seg_lo = lo;
        let mut i = lo;
        while i < hi {
            let after_dot = i > 0 && self.toks[i - 1].kind == Tok::Punct('.');
            match &self.toks[i].kind {
                Tok::Ident(s) if !after_dot && s == "if" => {
                    self.emit(cur, seg_lo, i, false);
                    let (next, join) = self.if_chain(i, hi, cur);
                    cur = join;
                    seg_lo = next;
                    i = next;
                }
                Tok::Ident(s) if !after_dot && s == "match" => {
                    self.emit(cur, seg_lo, i, false);
                    let (next, join) = self.match_stmt(i, hi, cur);
                    cur = join;
                    seg_lo = next;
                    i = next;
                }
                Tok::Ident(s) if !after_dot && (s == "loop" || s == "while" || s == "for") => {
                    self.emit(cur, seg_lo, i, false);
                    let (next, after) = self.loop_stmt(i, hi, cur);
                    cur = after;
                    seg_lo = next;
                    i = next;
                }
                Tok::Ident(s) if !after_dot && s == "return" => {
                    let end = self.stmt_end(i + 1, hi);
                    self.emit(cur, seg_lo, end, false);
                    self.edge(cur, EXIT);
                    cur = self.new_block();
                    seg_lo = end;
                    i = end;
                }
                Tok::Ident(s) if !after_dot && (s == "break" || s == "continue") => {
                    let is_break = s == "break";
                    let end = self.stmt_end(i + 1, hi);
                    self.emit(cur, seg_lo, end, false);
                    if let Some(&(header, after)) = self.loops.last() {
                        if is_break {
                            self.edge(cur, after);
                        } else {
                            self.back_edges.push((cur, header));
                        }
                    }
                    cur = self.new_block();
                    seg_lo = end;
                    i = end;
                }
                Tok::Ident(s) if !after_dot && s == "fn" => {
                    // Nested item: exclude its tokens from every block.
                    self.emit(cur, seg_lo, i, false);
                    let end = match self.find_body_brace(i + 1, hi) {
                        Some(open) => {
                            matching_brace(self.toks, open).map_or(hi, |c| (c + 1).min(hi))
                        }
                        None => self.stmt_end(i + 1, hi),
                    };
                    let end = end.max(i + 1);
                    seg_lo = end;
                    i = end;
                }
                Tok::Ident(s)
                    if s == "move"
                        && self.toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('|')) =>
                {
                    self.emit(cur, seg_lo, i, false);
                    let end = self.closure_extent(i + 1, hi).max(i + 1);
                    self.emit(cur, i, end, true);
                    seg_lo = end;
                    i = end;
                }
                Tok::Punct('|') if self.closure_opener(i) => {
                    self.emit(cur, seg_lo, i, false);
                    let end = self.closure_extent(i, hi).max(i + 1);
                    self.emit(cur, i, end, true);
                    seg_lo = end;
                    i = end;
                }
                Tok::Punct('?') => {
                    self.emit(cur, seg_lo, i + 1, false);
                    self.edge(cur, EXIT);
                    let cont = self.new_block();
                    self.edge(cur, cont);
                    cur = cont;
                    seg_lo = i + 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        self.emit(cur, seg_lo, hi, false);
        cur
    }

    /// An `if`/`else if`/`else` chain starting at the `if` keyword `i`.
    /// Returns `(index past the chain, join block)`.
    fn if_chain(&mut self, i: usize, hi: usize, cur: usize) -> (usize, usize) {
        let Some(open) = self.find_body_brace(i + 1, hi) else {
            return (i + 1, cur);
        };
        self.emit(cur, i, open, false); // `if` + condition
        let close = matching_brace(self.toks, open).map_or(hi, |c| c.min(hi));
        let then_entry = self.new_block();
        let then_exit = self.seq(open + 1, close, then_entry);
        let mut arms = vec![then_entry];
        let mut next = (close + 1).min(hi);
        let mut else_exit = None;
        if next < hi && matches!(&self.toks[next].kind, Tok::Ident(s) if s == "else") {
            match self.toks.get(next + 1).map(|t| &t.kind) {
                Some(Tok::Ident(s)) if s == "if" => {
                    let else_entry = self.new_block();
                    arms.push(else_entry);
                    let (n2, inner_join) = self.if_chain(next + 1, hi, else_entry);
                    else_exit = Some(inner_join);
                    next = n2;
                }
                Some(Tok::Punct('{')) => {
                    let eopen = next + 1;
                    let eclose = matching_brace(self.toks, eopen).map_or(hi, |c| c.min(hi));
                    let else_entry = self.new_block();
                    arms.push(else_entry);
                    else_exit = Some(self.seq(eopen + 1, eclose, else_entry));
                    next = (eclose + 1).min(hi);
                }
                _ => {}
            }
        }
        let join = self.new_block();
        self.blocks[cur].branch = Some(Branch {
            kind: BranchKind::If,
            tok: i,
            arms: arms.clone(),
            join,
        });
        for &a in &arms {
            self.edge(cur, a);
        }
        self.edge(then_exit, join);
        match else_exit {
            Some(e) => self.edge(e, join),
            None => self.edge(cur, join),
        }
        (next, join)
    }

    /// A `match` starting at keyword `i`: one block per arm (pattern +
    /// guard tokens stay in the arm's block), all arms rejoin.
    fn match_stmt(&mut self, i: usize, hi: usize, cur: usize) -> (usize, usize) {
        let Some(open) = self.find_body_brace(i + 1, hi) else {
            return (i + 1, cur);
        };
        self.emit(cur, i, open, false); // `match` + scrutinee
        let close = matching_brace(self.toks, open).map_or(hi, |c| c.min(hi));
        let mut arms = Vec::new();
        let mut exits = Vec::new();
        let mut j = open + 1;
        while j < close {
            // Pattern (+ guard): up to the `=>` at relative depth 0.
            let (mut pd, mut sd, mut bd) = (0i32, 0i32, 0i32);
            let mut arrow = None;
            let mut k = j;
            while k + 1 < close {
                match self.toks[k].kind {
                    Tok::Punct('(') => pd += 1,
                    Tok::Punct(')') => pd -= 1,
                    Tok::Punct('[') => sd += 1,
                    Tok::Punct(']') => sd -= 1,
                    Tok::Punct('{') => bd += 1,
                    Tok::Punct('}') => bd -= 1,
                    Tok::Punct('=')
                        if pd == 0
                            && sd == 0
                            && bd == 0
                            && self.toks[k + 1].kind == Tok::Punct('>') =>
                    {
                        arrow = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            let arm = self.new_block();
            self.emit(arm, j, arrow, false); // pattern and guard
            let body_lo = arrow + 2;
            if self.toks.get(body_lo).map(|t| &t.kind) == Some(&Tok::Punct('{')) {
                let bclose = matching_brace(self.toks, body_lo).map_or(close, |c| c.min(close));
                exits.push(self.seq(body_lo + 1, bclose, arm));
                j = bclose + 1;
                if self.toks.get(j).map(|t| &t.kind) == Some(&Tok::Punct(',')) {
                    j += 1;
                }
            } else {
                let end = self.stmt_end(body_lo, close);
                exits.push(self.seq(body_lo, end, arm));
                j = end.max(body_lo + 1);
            }
            arms.push(arm);
        }
        let join = self.new_block();
        self.blocks[cur].branch = Some(Branch {
            kind: BranchKind::Match,
            tok: i,
            arms: arms.clone(),
            join,
        });
        if arms.is_empty() {
            self.edge(cur, join);
        }
        for &a in &arms {
            self.edge(cur, a);
        }
        for &e in &exits {
            self.edge(e, join);
        }
        ((close + 1).min(hi), join)
    }

    /// `loop` / `while` / `for` at keyword `i`: header block (keyword +
    /// condition/iterator — re-evaluated per iteration), body entry,
    /// after block; body-end → header is a back edge.
    fn loop_stmt(&mut self, i: usize, hi: usize, cur: usize) -> (usize, usize) {
        let Some(open) = self.find_body_brace(i + 1, hi) else {
            return (i + 1, cur);
        };
        let close = matching_brace(self.toks, open).map_or(hi, |c| c.min(hi));
        let header = self.new_block();
        self.blocks[header].in_loop = true;
        self.emit(header, i, open, false);
        self.edge(cur, header);
        let after = self.new_block();
        self.loops.push((header, after));
        let body = self.new_block();
        self.edge(header, body);
        self.edge(header, after);
        let body_exit = self.seq(open + 1, close, body);
        self.loops.pop();
        self.back_edges.push((body_exit, header));
        self.blocks[header].branch = Some(Branch {
            kind: BranchKind::Loop,
            tok: i,
            arms: vec![body],
            join: after,
        });
        ((close + 1).min(hi), after)
    }

    /// End of the statement starting at `from`: one past the `;` / `,`
    /// at relative depth 0, or at an unmatched closing delimiter / `hi`.
    fn stmt_end(&self, from: usize, hi: usize) -> usize {
        let (mut pd, mut sd, mut bd) = (0i32, 0i32, 0i32);
        let mut j = from;
        while j < hi {
            match self.toks[j].kind {
                Tok::Punct('(') => pd += 1,
                Tok::Punct(')') => {
                    if pd == 0 {
                        return j;
                    }
                    pd -= 1;
                }
                Tok::Punct('[') => sd += 1,
                Tok::Punct(']') => {
                    if sd == 0 {
                        return j;
                    }
                    sd -= 1;
                }
                Tok::Punct('{') => bd += 1,
                Tok::Punct('}') => {
                    if bd == 0 {
                        return j;
                    }
                    bd -= 1;
                }
                Tok::Punct(';') | Tok::Punct(',') if pd == 0 && sd == 0 && bd == 0 => {
                    return j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// First `{` at zero paren/bracket depth in `[from, hi)` — the body
    /// brace of an `if`/`match`/loop header. `None` on a `;` first.
    fn find_body_brace(&self, from: usize, hi: usize) -> Option<usize> {
        let (mut pd, mut sd) = (0i32, 0i32);
        let mut j = from;
        while j < hi {
            match self.toks[j].kind {
                Tok::Punct('(') => pd += 1,
                Tok::Punct(')') => pd -= 1,
                Tok::Punct('[') => sd += 1,
                Tok::Punct(']') => sd -= 1,
                Tok::Punct('{') if pd == 0 && sd == 0 => return Some(j),
                Tok::Punct(';') if pd == 0 && sd == 0 => return None,
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Is the `|` at `i` a closure opener? Heuristic shared with the
    /// resolver: a closure's `|` follows `(`/`,`/`=`/`{`/`;`/`>` (the
    /// last for `=>` arm bodies); a bitwise-or follows a value token.
    fn closure_opener(&self, i: usize) -> bool {
        if self.toks.get(i).map(|t| &t.kind) != Some(&Tok::Punct('|')) || i == 0 {
            return false;
        }
        matches!(
            self.toks[i - 1].kind,
            Tok::Punct('(')
                | Tok::Punct(',')
                | Tok::Punct('=')
                | Tok::Punct('{')
                | Tok::Punct(';')
                | Tok::Punct('>')
        )
    }

    /// One past the end of the closure whose opening `|` is at
    /// `opener`: params to the matching `|`, optional `-> Type`, then a
    /// brace-matched block body or an expression to the first `,`/`;`
    /// or unmatched closing delimiter.
    fn closure_extent(&self, opener: usize, hi: usize) -> usize {
        let (mut pd, mut sd) = (0i32, 0i32);
        let mut k = opener + 1;
        while k < hi {
            match self.toks[k].kind {
                Tok::Punct('(') => pd += 1,
                Tok::Punct(')') => pd -= 1,
                Tok::Punct('[') => sd += 1,
                Tok::Punct(']') => sd -= 1,
                Tok::Punct('|') if pd == 0 && sd == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if k >= hi {
            return (opener + 1).min(hi);
        }
        let mut m = k + 1;
        if self.toks.get(m).map(|t| &t.kind) == Some(&Tok::Punct('-'))
            && self.toks.get(m + 1).map(|t| &t.kind) == Some(&Tok::Punct('>'))
        {
            while m < hi && self.toks[m].kind != Tok::Punct('{') {
                m += 1;
            }
        }
        if self.toks.get(m).map(|t| &t.kind) == Some(&Tok::Punct('{')) {
            return matching_brace(self.toks, m).map_or(hi, |c| (c + 1).min(hi));
        }
        let (mut pd, mut sd, mut bd) = (0i32, 0i32, 0i32);
        while m < hi {
            match self.toks[m].kind {
                Tok::Punct('(') => pd += 1,
                Tok::Punct(')') => {
                    if pd == 0 {
                        break;
                    }
                    pd -= 1;
                }
                Tok::Punct('[') => sd += 1,
                Tok::Punct(']') => {
                    if sd == 0 {
                        break;
                    }
                    sd -= 1;
                }
                Tok::Punct('{') => bd += 1,
                Tok::Punct('}') => {
                    if bd == 0 {
                        break;
                    }
                    bd -= 1;
                }
                Tok::Punct(',') | Tok::Punct(';') if pd == 0 && sd == 0 && bd == 0 => break,
                _ => {}
            }
            m += 1;
        }
        m.clamp(opener + 1, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;

    fn build(src: &str) -> (Vec<Token>, Cfg) {
        let f = parse_items("crates/core/src/a.rs", src);
        let (open, close) = f.fns[0].body.expect("fn body");
        let cfg = Cfg::build(&f.tokens, open, close);
        (f.tokens, cfg)
    }

    /// The block owning token index `t` (non-closure segments).
    fn owner(cfg: &Cfg, t: usize) -> Option<usize> {
        cfg.blocks
            .iter()
            .position(|b| b.segs.iter().any(|s| !s.closure && s.lo <= t && t < s.hi))
    }

    #[test]
    fn straight_line_is_entry_to_exit() {
        let (_, cfg) = build("fn f() { let x = 1; g(x); }\n");
        assert_eq!(cfg.blocks.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
        assert_eq!(cfg.blocks[cfg.entry].segs.len(), 1);
        assert!(cfg.back_edges.is_empty());
    }

    #[test]
    fn if_else_forms_diamond() {
        let (_, cfg) = build("fn f(c: bool) -> u64 { if c { a() } else { b() } }\n");
        let br = cfg.blocks[cfg.entry].branch.as_ref().expect("branch");
        assert_eq!(br.kind, BranchKind::If);
        assert_eq!(br.arms.len(), 2);
        for &a in &br.arms {
            assert!(cfg.blocks[cfg.entry].succs.contains(&a));
            assert_eq!(cfg.blocks[a].succs, vec![br.join]);
        }
        // The join falls off the end of the fn into exit.
        assert_eq!(cfg.blocks[br.join].succs, vec![cfg.exit]);
    }

    #[test]
    fn else_less_if_falls_through_to_join() {
        let (_, cfg) = build("fn f(c: bool) { if c { a(); } b(); }\n");
        let br = cfg.blocks[cfg.entry].branch.as_ref().expect("branch");
        assert_eq!(br.arms.len(), 1);
        assert!(cfg.blocks[cfg.entry].succs.contains(&br.join));
        assert!(cfg.blocks[cfg.entry].succs.contains(&br.arms[0]));
    }

    #[test]
    fn else_if_chain_nests_in_second_arm() {
        let (_, cfg) =
            build("fn f(x: u64) { if x == 0 { a(); } else if x == 1 { b(); } else { c(); } }\n");
        let br = cfg.blocks[cfg.entry].branch.as_ref().expect("outer");
        assert_eq!(br.arms.len(), 2);
        let inner = cfg.blocks[br.arms[1]].branch.as_ref().expect("inner if");
        assert_eq!(inner.kind, BranchKind::If);
        assert_eq!(inner.arms.len(), 2);
        // The inner chain's join rejoins the outer join.
        assert!(cfg.blocks[inner.join].succs.contains(&br.join));
    }

    #[test]
    fn match_gets_one_block_per_arm() {
        let (_, cfg) =
            build("fn f(x: u64) -> u64 { match x { 0 => 1, 1 => { two() } _ => fallback(x), } }\n");
        let br = cfg.blocks[cfg.entry].branch.as_ref().expect("branch");
        assert_eq!(br.kind, BranchKind::Match);
        assert_eq!(br.arms.len(), 3);
        for &a in &br.arms {
            assert!(cfg.blocks[cfg.entry].succs.contains(&a));
        }
    }

    #[test]
    fn loop_records_back_edge_and_in_loop() {
        let (toks, cfg) =
            build("fn f(n: u64) { let mut i = 0; while i < n { step(); i += 1; } done(); }\n");
        assert_eq!(cfg.back_edges.len(), 1);
        let (from, header) = cfg.back_edges[0];
        assert!(cfg.blocks[header].in_loop);
        assert!(cfg.blocks[from].in_loop);
        let br = cfg.blocks[header].branch.as_ref().expect("loop branch");
        assert_eq!(br.kind, BranchKind::Loop);
        // `done()` runs in the after block, outside the loop.
        let done = toks
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "done"))
            .unwrap();
        let after = owner(&cfg, done).unwrap();
        assert_eq!(after, br.join);
        assert!(!cfg.blocks[after].in_loop);
    }

    #[test]
    fn break_and_continue_edge_to_after_and_header() {
        let (toks, cfg) =
            build("fn f() { loop { if a() { break; } if b() { continue; } c(); } d(); }\n");
        let header = cfg
            .blocks
            .iter()
            .position(|b| matches!(&b.branch, Some(br) if br.kind == BranchKind::Loop))
            .unwrap();
        let after = cfg.blocks[header].branch.as_ref().unwrap().join;
        // Some block inside the loop edges forward to `after` (break).
        let breaks: Vec<usize> = (0..cfg.blocks.len())
            .filter(|&b| {
                b != header && cfg.blocks[b].in_loop && cfg.blocks[b].succs.contains(&after)
            })
            .collect();
        assert!(!breaks.is_empty(), "break edge missing");
        // A continue back edge targets the header alongside the body-end one.
        assert!(
            cfg.back_edges
                .iter()
                .filter(|(_, to)| *to == header)
                .count()
                >= 2
        );
        let d = toks
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "d"))
            .unwrap();
        assert_eq!(owner(&cfg, d).unwrap(), after);
    }

    #[test]
    fn early_return_edges_to_exit() {
        let (toks, cfg) = build("fn f(c: bool) -> u64 { if c { return 9; } tail() }\n");
        let ret = toks
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "return"))
            .unwrap();
        let b = owner(&cfg, ret).unwrap();
        assert!(cfg.blocks[b].succs.contains(&cfg.exit));
        // The then-arm's dead tail must NOT rejoin: its edge to join is
        // from an unreachable empty block, so the return path count is
        // exact. Reachability: entry → then-arm(b) → exit only.
        assert!(!cfg.blocks[b].succs.iter().any(|&s| s != cfg.exit));
    }

    #[test]
    fn question_mark_splits_with_exit_edge() {
        let (toks, cfg) = build("fn f() -> Result<u64, E> { let v = load()?; Ok(v + 1) }\n");
        let q = toks.iter().position(|t| t.kind == Tok::Punct('?')).unwrap();
        let b = owner(&cfg, q).unwrap();
        assert!(cfg.blocks[b].succs.contains(&cfg.exit));
        assert_eq!(cfg.blocks[b].succs.len(), 2);
    }

    #[test]
    fn closures_are_opaque_segments() {
        let (_, cfg) = build(
            "fn f(xs: &[u64]) -> u64 { xs.iter().map(|x| if *x > 0 { 1 } else { 0 }).sum() }\n",
        );
        // The `if` inside the closure must not split the fn CFG.
        assert!(cfg.blocks.iter().all(|b| b.branch.is_none()));
        let closure_segs: usize = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.segs)
            .filter(|s| s.closure)
            .count();
        assert_eq!(closure_segs, 1);
    }

    #[test]
    fn nested_fn_items_are_excluded() {
        let (toks, cfg) = build(
            "fn f() -> u64 { fn helper(x: u64) -> u64 { if x > 0 { x } else { 0 } } helper(3) }\n",
        );
        assert!(cfg.blocks.iter().all(|b| b.branch.is_none()));
        // No block segment may cover the helper's body tokens.
        let inner_if = toks
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "if"))
            .unwrap();
        assert_eq!(owner(&cfg, inner_if), None);
    }

    #[test]
    fn segments_never_overlap() {
        let (_, cfg) = build(
            "fn f(n: u64, c: bool) -> u64 {\n\
                 let mut acc = 0;\n\
                 for i in 0..n { if c { acc += i; } else { acc -= skip(i); } }\n\
                 match acc { 0 => zero(), v => v.min(9), }\n\
             }\n",
        );
        let mut segs: Vec<(usize, usize)> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.segs.iter().map(|s| (s.lo, s.hi)))
            .collect();
        segs.sort_unstable();
        for w in segs.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let src = "fn f(n: u64) -> u64 { let mut s = 0; for i in 0..n { if i % 2 == 0 { s += i; } } s }\n";
        let (_, a) = build(src);
        let (_, b) = build(src);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

//! `dhs-lint` CLI: lint the workspace (or explicit paths) and print
//! findings as deterministic JSONL on stdout.
//!
//! Usage:
//!
//! ```text
//! dhs-lint                   # token rules over the enclosing workspace
//! dhs-lint <dir>             # token rules over the workspace at <dir>
//! dhs-lint --flow [dir]      # interprocedural flow rules instead
//! dhs-lint --stats [dir]     # sorted call-resolution summary (text)
//! dhs-lint --stats-json [dir]# same counters as a sorted-key JSON
//!                            # object (the baseline scripts/check.sh
//!                            # ratchets)
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding survives, 2 on I/O
//! or usage errors. `--stats`/`--stats-json` always exit 0/2: the
//! ratchet comparison lives in check.sh against the committed baseline
//! file.

use std::path::PathBuf;
use std::process::ExitCode;

use dhs_lint::report::{render_stats, render_stats_json};
use dhs_lint::walk::find_workspace_root;
use dhs_lint::{flow_workspace, lint_workspace, render_flow_jsonl, render_jsonl};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flow = args.iter().any(|a| a == "--flow");
    let stats_json = args.iter().any(|a| a == "--stats-json");
    let stats_only = stats_json || args.iter().any(|a| a == "--stats");
    args.retain(|a| a != "--flow" && a != "--stats" && a != "--stats-json");
    let root = match args.as_slice() {
        [] => {
            // Prefer the manifest dir so `cargo run -p dhs-lint` works
            // from any subdirectory; fall back to the cwd.
            let start = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .or_else(|| std::env::current_dir().ok());
            match start.as_deref().and_then(find_workspace_root) {
                Some(root) => root,
                None => {
                    eprintln!("dhs-lint: no workspace Cargo.toml found above cwd");
                    return ExitCode::from(2);
                }
            }
        }
        [dir] => PathBuf::from(dir),
        _ => {
            eprintln!("usage: dhs-lint [--flow | --stats | --stats-json] [workspace-root]");
            return ExitCode::from(2);
        }
    };

    let rendered = if stats_only {
        flow_workspace(&root).map(|(_, stats)| {
            let out = if stats_json {
                render_stats_json(&stats)
            } else {
                render_stats(&stats)
            };
            (out, true)
        })
    } else if flow {
        flow_workspace(&root).map(|(findings, stats)| {
            let clean = findings.is_empty();
            (render_flow_jsonl(&findings, &stats), clean)
        })
    } else {
        lint_workspace(&root).map(|(findings, files_scanned)| {
            let clean = findings.is_empty();
            (render_jsonl(&findings, files_scanned), clean)
        })
    };
    match rendered {
        Ok((out, clean)) => {
            print!("{out}");
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("dhs-lint: {e}");
            ExitCode::from(2)
        }
    }
}

//! `dhs-lint` CLI: lint the workspace (or explicit paths) and print
//! findings as deterministic JSONL on stdout.
//!
//! Usage:
//!
//! ```text
//! dhs-lint             # lint the enclosing workspace
//! dhs-lint <dir>       # lint the workspace rooted at <dir>
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding survives, 2 on I/O
//! or usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use dhs_lint::walk::find_workspace_root;
use dhs_lint::{lint_workspace, render_jsonl};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => {
            // Prefer the manifest dir so `cargo run -p dhs-lint` works
            // from any subdirectory; fall back to the cwd.
            let start = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .or_else(|| std::env::current_dir().ok());
            match start.as_deref().and_then(find_workspace_root) {
                Some(root) => root,
                None => {
                    eprintln!("dhs-lint: no workspace Cargo.toml found above cwd");
                    return ExitCode::from(2);
                }
            }
        }
        [dir] => PathBuf::from(dir),
        _ => {
            eprintln!("usage: dhs-lint [workspace-root]");
            return ExitCode::from(2);
        }
    };

    match lint_workspace(&root) {
        Ok((findings, files_scanned)) => {
            print!("{}", render_jsonl(&findings, files_scanned));
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("dhs-lint: {e}");
            ExitCode::from(2)
        }
    }
}

//! dhs-absint: forward abstract interpretation over [`crate::cfg`]
//! graphs, powering two whole-program passes.
//!
//! **`rng-draw-parity`** — the static twin of the dynamic
//! `hinted_scan_consumes_identical_rng_draws` gate. For every fn
//! reachable from the scan/insert machine modules
//! ([`crate::protocol::MACHINE_MODULES`]) it computes, per control-flow
//! path, a symbolic RNG draw count: direct `.gen(`-style draws count 1
//! (`fill`/`shuffle` are unknown), call sites contribute their callee's
//! memoized summary through the typed graph (dispatch/ambiguous sets
//! contribute only when every candidate agrees on a constant). A
//! divergence finding fires when both sides of an `if` have a *known,
//! constant, unequal* draw count — the skipped-rank bug class from the
//! PR 3 elision cache, caught before any test runs. Draws under a loop
//! or inside a closure make the enclosing count unknown (they may
//! repeat), which silences rather than fabricates findings: the pass
//! over-approximates toward "don't know", never toward a false alarm.
//!
//! **`cast-range`** — interval analysis that discharges triaged
//! `lossy_cast` allows. Casts `expr as u8/u16/u32/usize` are evaluated
//! over unsigned intervals: literals are exact, arithmetic follows Rust
//! precedence, `.field`/`.method()` accesses take their bound from the
//! fact file `crates/lint/range_facts.txt` (config-validated
//! invariants like `m ≤ 2^16`), and simple single-assignment `let`
//! bindings propagate. A cast whose operand provably fits is counted
//! `casts_proven_safe`; one whose operand provably *cannot* fit
//! (interval entirely above the target max) is a `cast-range` finding
//! that needs `dhs_core::checked_cast`. Everything in between stays
//! behind its `lossy_cast` allow. `usize` is bounded as `u32::MAX` so
//! verdicts hold on 32-bit targets too.
//!
//! Both passes are deterministic: fns are visited in table order,
//! blocks in creation order, and every verdict derives from sorted
//! structures — two runs emit byte-identical findings.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnId};
use crate::cfg::{closure_spans, BranchKind, Cfg};
use crate::flow::DRAW_METHODS;
use crate::items::{FileItems, FnItem};
use crate::lexer::{Tok, Token};
use crate::protocol::{strip, MACHINE_MODULES};
use crate::resolve::{matching_delim, rmatching_delim, SiteKind};
use crate::rules::Finding;

// ---------------------------------------------------------------------
// rng-draw-parity
// ---------------------------------------------------------------------

/// A fn's symbolic RNG draw count per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Count {
    /// Exactly `n` draws on every path.
    Const(u64),
    /// Path-dependent, loop-repeated, closure-deferred, or unresolvable.
    Unknown,
}

/// Cap on distinct per-path totals tracked for one block before the
/// set widens to unknown.
const MAX_PATH_COUNTS: usize = 8;

/// Run the draw-parity pass. Returns the number of in-scope fns
/// analyzed (the `draw_parity_fns` ratchet counter).
pub fn draw_parity(files: &[FileItems], g: &CallGraph, out: &mut Vec<Finding>) -> usize {
    let mut a = DrawAnalysis::new(files, g);
    // Scope: everything reachable from fns defined in the machine
    // modules, over resolved + dispatch + ambiguous edges.
    let fwd = g.forward_over_approx();
    let mut in_scope = vec![false; g.fns.len()];
    let mut work: Vec<FnId> = (0..g.fns.len())
        .filter(|&id| MACHINE_MODULES.contains(&strip(&files[g.fns[id].file].path)))
        .collect();
    for &s in &work {
        in_scope[s] = true;
    }
    while let Some(v) = work.pop() {
        for &w in &fwd[v] {
            if !in_scope[w] {
                in_scope[w] = true;
                work.push(w);
            }
        }
    }

    let mut analyzed = 0usize;
    for (id, _) in in_scope.iter().enumerate().filter(|(_, s)| **s) {
        let r = g.fns[id];
        let file = &files[r.file];
        let f = &file.fns[r.item];
        let Some((open, close)) = f.body else {
            continue;
        };
        analyzed += 1;
        let cfg = Cfg::build(&file.tokens, open, close);
        let draws = a.block_draws(&cfg, id);
        let mut memo = vec![None; cfg.blocks.len()];
        for blk in &cfg.blocks {
            let Some(br) = &blk.branch else { continue };
            if br.kind != BranchKind::If {
                continue;
            }
            // Sibling comparison: then-arm vs else-arm, or vs the
            // fall-through join when there is no else. Totals run to
            // the exit / back-edge cut, so shared downstream draws
            // cancel and only the arm difference shows.
            let then = br.arms[0];
            let other = br.arms.get(1).copied().unwrap_or(br.join);
            let t = path_totals(&cfg, &draws, then, &mut memo);
            let o = path_totals(&cfg, &draws, other, &mut memo);
            let (Some(ts), Some(os)) = (t, o) else {
                continue;
            };
            if ts.len() != 1 || os.len() != 1 || ts == os {
                continue;
            }
            let line = file.tokens[br.tok].line;
            if f.allows("rng-draw-parity")
                || file
                    .flow_allows
                    .get(&line)
                    .is_some_and(|rules| rules.contains("rng-draw-parity"))
            {
                continue;
            }
            let (tc, oc) = (
                ts.first().expect("singleton"),
                os.first().expect("singleton"),
            );
            out.push(Finding {
                path: file.path.clone(),
                line,
                rule: "rng-draw-parity",
                snippet: format!(
                    "{}: branch RNG draw counts diverge: {tc} vs {oc}",
                    f.qual_name
                ),
            });
        }
    }
    analyzed
}

/// Per-path draw totals from block `b` to every path end (exit, dead
/// end, or back-edge cut — back edges contribute nothing, which is
/// sound because loop-repeated draws already widened the block to
/// unknown). `None` = unknown.
fn path_totals(
    cfg: &Cfg,
    draws: &[Option<u64>],
    b: usize,
    memo: &mut Vec<Option<Option<BTreeSet<u64>>>>,
) -> Option<BTreeSet<u64>> {
    if let Some(r) = &memo[b] {
        return r.clone();
    }
    // Mark in-progress to stay total even if a malformed stream ever
    // produced a forward cycle (real back edges are kept out of succs).
    memo[b] = Some(None);
    let r = (|| {
        let d = draws[b]?;
        if cfg.blocks[b].succs.is_empty() {
            return Some(BTreeSet::from([d]));
        }
        let mut set = BTreeSet::new();
        for &s in &cfg.blocks[b].succs {
            for v in path_totals(cfg, draws, s, memo)? {
                set.insert(d.saturating_add(v));
            }
        }
        (set.len() <= MAX_PATH_COUNTS).then_some(set)
    })();
    memo[b] = Some(r.clone());
    r
}

/// Memoized per-fn draw summaries over the typed call graph.
struct DrawAnalysis<'a> {
    files: &'a [FileItems],
    g: &'a CallGraph,
    memo: Vec<Option<Count>>,
    active: Vec<bool>,
    /// caller → indices into `g.sites`, ascending by token.
    by_caller: BTreeMap<FnId, Vec<usize>>,
}

impl<'a> DrawAnalysis<'a> {
    fn new(files: &'a [FileItems], g: &'a CallGraph) -> Self {
        let mut by_caller: BTreeMap<FnId, Vec<usize>> = BTreeMap::new();
        for (i, s) in g.sites.iter().enumerate() {
            by_caller.entry(s.caller).or_default().push(i);
        }
        for v in by_caller.values_mut() {
            v.sort_by_key(|&i| g.sites[i].tok);
        }
        DrawAnalysis {
            files,
            g,
            memo: vec![None; g.fns.len()],
            active: vec![false; g.fns.len()],
            by_caller,
        }
    }

    /// The fn's per-invocation draw count. Cycles resolve to unknown.
    fn summary(&mut self, id: FnId) -> Count {
        if let Some(c) = self.memo[id] {
            return c;
        }
        if self.active[id] {
            return Count::Unknown;
        }
        self.active[id] = true;
        let c = self.compute(id);
        self.active[id] = false;
        self.memo[id] = Some(c);
        c
    }

    fn compute(&mut self, id: FnId) -> Count {
        let r = self.g.fns[id];
        let file: &'a FileItems = &self.files[r.file];
        let Some((open, close)) = file.fns[r.item].body else {
            // Bodyless trait declaration: impls may draw.
            return Count::Unknown;
        };
        let cfg = Cfg::build(&file.tokens, open, close);
        let draws = self.block_draws(&cfg, id);
        // Any drawing (or unknown) block under a loop repeats an
        // unknown number of times.
        for (b, blk) in cfg.blocks.iter().enumerate() {
            if blk.in_loop && draws[b] != Some(0) {
                return Count::Unknown;
            }
        }
        let mut memo = vec![None; cfg.blocks.len()];
        match path_totals(&cfg, &draws, cfg.entry, &mut memo) {
            Some(s) if s.len() == 1 => Count::Const(*s.first().expect("singleton")),
            _ => Count::Unknown,
        }
    }

    /// Draw count of every block: direct draw tokens plus call-site
    /// summaries; `None` = unknown. Draws reached only through a
    /// closure poison their block (the closure may run 0..n times).
    fn block_draws(&mut self, cfg: &Cfg, id: FnId) -> Vec<Option<u64>> {
        let files = self.files;
        let g = self.g;
        let r = g.fns[id];
        let toks: &'a [Token] = &files[r.file].tokens;
        let site_ix: Vec<usize> = self.by_caller.get(&id).cloned().unwrap_or_default();
        let mut out = Vec::with_capacity(cfg.blocks.len());
        for blk in &cfg.blocks {
            let mut total: Option<u64> = Some(0);
            for seg in &blk.segs {
                let spans = if seg.closure {
                    vec![(seg.lo, seg.hi)]
                } else {
                    closure_spans(toks, seg.lo, seg.hi)
                };
                let deferred = |i: usize| spans.iter().any(|&(a, b)| a <= i && i < b);
                for i in seg.lo..seg.hi {
                    let Some(c) = draw_at(toks, i) else { continue };
                    total = match (total, c, deferred(i)) {
                        (Some(t), Count::Const(n), false) => Some(t + n),
                        // A draw the closure defers — or an unknown
                        // amount — widens the block.
                        _ => None,
                    };
                }
                for &six in &site_ix {
                    let s = &g.sites[six];
                    if s.tok < seg.lo || s.tok >= seg.hi {
                        continue;
                    }
                    let c = self.site_count(six);
                    total = match (total, c, deferred(s.tok)) {
                        (t, Count::Const(0), _) => t,
                        (Some(t), Count::Const(n), false) => Some(t + n),
                        _ => None,
                    };
                }
            }
            out.push(total);
        }
        out
    }

    /// Draw contribution of one call site: the callee summary when it
    /// is unique or all candidates agree on a constant.
    fn site_count(&mut self, six: usize) -> Count {
        let s = &self.g.sites[six];
        // Direct draw methods are counted by the token scan; external
        // calls cannot reach a workspace RNG.
        if DRAW_METHODS.contains(&s.name.as_str()) || s.kind == SiteKind::External {
            return Count::Const(0);
        }
        let candidates = s.candidates.clone();
        let mut agreed: Option<Count> = None;
        for id in candidates {
            let c = self.summary(id);
            match (agreed, c) {
                (_, Count::Unknown) => return Count::Unknown,
                (None, c) => agreed = Some(c),
                (Some(a), c) if a == c => {}
                _ => return Count::Unknown,
            }
        }
        agreed.unwrap_or(Count::Const(0))
    }
}

/// The draw contribution of the token at `i`: `.gen(`-style methods
/// count one; `.fill(` / `.shuffle(` consume an input-dependent amount.
fn draw_at(toks: &[Token], i: usize) -> Option<Count> {
    let Tok::Ident(m) = &toks[i].kind else {
        return None;
    };
    if !DRAW_METHODS.contains(&m.as_str()) || i == 0 || toks[i - 1].kind != Tok::Punct('.') {
        return None;
    }
    let called = match toks.get(i + 1).map(|t| &t.kind) {
        Some(Tok::Punct('(')) => true,
        // Turbofish: `.gen::<u64>()`.
        Some(Tok::Punct(':')) => toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct(':')),
        _ => false,
    };
    if !called {
        return None;
    }
    match m.as_str() {
        "fill" | "shuffle" => Some(Count::Unknown),
        _ => Some(Count::Const(1)),
    }
}

// ---------------------------------------------------------------------
// cast-range
// ---------------------------------------------------------------------

/// Curated upper bounds for `.name` / `.name()` accesses, provable
/// from `DhsConfig::validate`.
const FACTS: &str = include_str!("../range_facts.txt");

/// An unsigned interval `[lo, hi]`, in `u128` so 64-bit arithmetic
/// cannot overflow the analysis itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: u128,
    hi: u128,
}

/// The unconstrained interval.
const TOP: Iv = Iv {
    lo: 0,
    hi: u128::MAX,
};

impl Iv {
    fn exact(v: u128) -> Iv {
        Iv { lo: v, hi: v }
    }

    fn upto(hi: u128) -> Iv {
        Iv { lo: 0, hi }
    }
}

/// Inclusive max of each narrowing cast target the pass rules on.
/// `usize` is held to `u32::MAX` so a "safe" verdict also holds on
/// 32-bit targets.
fn cast_max(ty: &str) -> Option<u128> {
    match ty {
        "u8" => Some(u8::MAX as u128),
        "u16" => Some(u16::MAX as u128),
        "u32" | "usize" => Some(u32::MAX as u128),
        _ => None,
    }
}

/// Bit width of an unsigned type name, for `::MAX` / `::BITS`.
fn type_bits(ty: &str) -> Option<u32> {
    match ty {
        "u8" => Some(8),
        "u16" => Some(16),
        "u32" | "usize" => Some(32),
        "u64" => Some(64),
        "u128" => Some(128),
        _ => None,
    }
}

fn parse_facts() -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in FACTS.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        if let (Some(name), Some(v)) = (it.next(), it.next()) {
            if let Ok(v) = v.parse::<u64>() {
                let key = name.rsplit('.').next().unwrap_or(name);
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

/// Run the cast-range pass over every non-test fn body. Returns the
/// number of narrowing casts proven safe (the `casts_proven_safe`
/// counter); casts proven to *always* truncate become `cast-range`
/// findings.
pub fn cast_range(files: &[FileItems], out: &mut Vec<Finding>) -> usize {
    let facts = parse_facts();
    let mut proven = 0usize;
    for file in files {
        let consts = file_consts(&file.tokens, &facts);
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            proven += cast_range_fn(file, f, open, close, &consts, &facts, out);
        }
    }
    proven
}

/// How the interval analysis ruled on one narrowing cast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Operand interval fits the target: the cast cannot truncate.
    Proven,
    /// Interval too wide to rule either way; stays behind its
    /// `lossy_cast` triage.
    Unknown,
    /// Interval entirely above the target max: truncates on every run.
    Truncates,
}

/// One narrowing-cast site with its verdict, for the `dump_casts`
/// diagnostic example.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CastVerdict {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the `as` keyword.
    pub line: u32,
    /// Cast target type name (`u8`/`u16`/`u32`/`usize`).
    pub target: String,
    /// The analysis outcome.
    pub verdict: Verdict,
}

/// Every narrowing-cast verdict in the given files, sorted — the
/// data source for `cargo run -p dhs-lint --example dump_casts`.
pub fn cast_verdicts(files: &[FileItems]) -> Vec<CastVerdict> {
    let facts = parse_facts();
    let mut out = Vec::new();
    for file in files {
        let consts = file_consts(&file.tokens, &facts);
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            analyze_casts(
                file,
                f,
                open,
                close,
                &consts,
                &facts,
                |line, target, iv, max| {
                    let verdict = if iv.hi <= max {
                        Verdict::Proven
                    } else if iv.lo > max {
                        Verdict::Truncates
                    } else {
                        Verdict::Unknown
                    };
                    out.push(CastVerdict {
                        path: file.path.clone(),
                        line,
                        target: target.to_string(),
                        verdict,
                    });
                },
            );
        }
    }
    out.sort();
    out
}

/// Intervals of `const NAME: T = <expr>;` items anywhere in the file
/// (module level or associated), evaluated in token order so earlier
/// consts feed later initializers. A name defined twice with different
/// intervals is dropped — picking either would be unsound.
fn file_consts(toks: &[Token], facts: &BTreeMap<String, u64>) -> BTreeMap<String, Iv> {
    let mut env = BTreeMap::new();
    let mut dup: BTreeSet<String> = BTreeSet::new();
    let mut j = 0;
    while j + 3 < toks.len() {
        let is_const = matches!(&toks[j].kind, Tok::Ident(s) if s == "const");
        let name = match (&is_const, toks.get(j + 1).map(|t| &t.kind)) {
            (true, Some(Tok::Ident(n))) => n.clone(),
            _ => {
                j += 1;
                continue;
            }
        };
        if toks.get(j + 2).map(|t| &t.kind) != Some(&Tok::Punct(':')) {
            j += 1;
            continue;
        }
        let semi = stmt_semi(toks, j + 2, toks.len());
        let eq = (j + 3..semi).find(|&k| {
            toks[k].kind == Tok::Punct('=')
                && toks.get(k + 1).map(|t| &t.kind) != Some(&Tok::Punct('='))
        });
        if let Some(eq) = eq {
            let ev = Ev {
                toks,
                hi: semi,
                env: &env,
                facts,
            };
            let (iv, _) = ev.expr(eq + 1, 0);
            if iv != TOP && !dup.contains(&name) {
                match env.get(&name) {
                    Some(&old) if old != iv => {
                        env.remove(&name);
                        dup.insert(name);
                    }
                    _ => {
                        env.insert(name, iv);
                    }
                }
            } else if iv == TOP && env.remove(&name).is_some() {
                dup.insert(name);
            }
        }
        j = semi + 1;
    }
    env
}

/// Walk every `expr as uN` cast in one fn body and hand
/// `(line, target, operand_interval, target_max)` to the sink.
fn analyze_casts(
    file: &FileItems,
    f: &FnItem,
    open: usize,
    close: usize,
    consts: &BTreeMap<String, Iv>,
    facts: &BTreeMap<String, u64>,
    mut sink: impl FnMut(u32, &str, Iv, u128),
) {
    let toks = &file.tokens;
    let mut env = consts.clone();
    env.extend(param_env(toks, f.sig));
    build_env(toks, open, close, facts, &mut env);
    for i in open + 1..close {
        if !matches!(&toks[i].kind, Tok::Ident(s) if s == "as") {
            continue;
        }
        let Some(Tok::Ident(target)) = toks.get(i + 1).map(|t| &t.kind) else {
            continue;
        };
        let Some(max) = cast_max(target) else {
            continue;
        };
        let start = operand_start(toks, open + 1, i);
        if start >= i {
            continue;
        }
        // Evaluate strictly up to this `as`: the cast under judgment
        // must not clamp its own operand.
        let ev = Ev {
            toks,
            hi: i,
            env: &env,
            facts,
        };
        let (iv, _) = ev.expr(start, 0);
        sink(toks[i].line, target, iv, max);
    }
}

fn cast_range_fn(
    file: &FileItems,
    f: &FnItem,
    open: usize,
    close: usize,
    consts: &BTreeMap<String, Iv>,
    facts: &BTreeMap<String, u64>,
    out: &mut Vec<Finding>,
) -> usize {
    let mut proven = 0usize;
    analyze_casts(
        file,
        f,
        open,
        close,
        consts,
        facts,
        |line, target, iv, max| {
            if iv.hi <= max {
                proven += 1;
            } else if iv.lo > max {
                let allowed = f.allows("cast-range")
                    || file
                        .flow_allows
                        .get(&line)
                        .is_some_and(|rules| rules.contains("cast-range"));
                if !allowed {
                    let snippet = file
                        .lines
                        .get(line as usize - 1)
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default();
                    out.push(Finding {
                    path: file.path.clone(),
                    line,
                    rule: "cast-range",
                    snippet: format!(
                        "always truncates: operand ≥ {} exceeds {target}::MAX ({max}); use checked_cast — {snippet}",
                        iv.lo
                    ),
                });
                }
            }
        },
    );
    proven
}

/// Keywords that terminate a leftward operand walk.
fn is_expr_kw(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "else"
            | "fn"
            | "for"
            | "if"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "move"
            | "mut"
            | "ref"
            | "return"
            | "static"
            | "unsafe"
            | "where"
            | "while"
    )
}

/// Start of the postfix chain that is the operand of the `as` at `a`
/// (`as` binds tighter than every binary operator, so the operand is a
/// primary + postfix chain, not a full expression).
fn operand_start(toks: &[Token], lo: usize, a: usize) -> usize {
    let Some(mut k) = element_start(toks, lo, a) else {
        return a;
    };
    loop {
        let Some(p) = k.checked_sub(1).filter(|&p| p >= lo) else {
            return k;
        };
        let next = match &toks[p].kind {
            Tok::Punct('.') => element_start(toks, lo, p),
            Tok::Punct(':') if p >= 1 && toks[p - 1].kind == Tok::Punct(':') => {
                element_start(toks, lo, p - 1)
            }
            // `x as u64 as u32`: the inner cast chains on leftward.
            Tok::Ident(s) if s == "as" => element_start(toks, lo, p),
            _ => None,
        };
        match next {
            Some(s) => k = s,
            None => return k,
        }
    }
}

/// Start of the single chain element ending just before `end`: an
/// ident/literal, a delimited group, or a call/index with its base.
fn element_start(toks: &[Token], lo: usize, end: usize) -> Option<usize> {
    let p = end.checked_sub(1).filter(|&p| p >= lo)?;
    let mut s = match &toks[p].kind {
        Tok::Punct(')') => rmatching_delim(toks, p, ')')?,
        Tok::Punct(']') => rmatching_delim(toks, p, ']')?,
        Tok::Ident(x) if !is_expr_kw(x) => p,
        Tok::Num(_) => p,
        _ => return None,
    };
    while s > lo && matches!(toks[s].kind, Tok::Punct('(') | Tok::Punct('[')) {
        match &toks[s - 1].kind {
            Tok::Ident(x) if !is_expr_kw(x) => s -= 1,
            Tok::Punct(')') => s = rmatching_delim(toks, s - 1, ')')?,
            Tok::Punct(']') => s = rmatching_delim(toks, s - 1, ']')?,
            _ => break,
        }
    }
    (s >= lo).then_some(s)
}

/// Seed the environment with intervals of parameters declared with a
/// plain unsigned type (`x: u8` → `[0, 255]`), scanning the signature
/// token range for `name : [& mut 'a]* uN` shapes.
fn param_env(toks: &[Token], sig: (usize, usize)) -> BTreeMap<String, Iv> {
    let mut env = BTreeMap::new();
    let (lo, hi) = sig;
    let mut j = lo;
    while j + 2 < hi.min(toks.len()) {
        let (Tok::Ident(name), Tok::Punct(':')) = (&toks[j].kind, &toks[j + 1].kind) else {
            j += 1;
            continue;
        };
        // `::` paths are not param declarations.
        if toks.get(j + 2).map(|t| &t.kind) == Some(&Tok::Punct(':')) {
            j += 3;
            continue;
        }
        let mut k = j + 2;
        while k < hi {
            match &toks[k].kind {
                Tok::Punct('&') | Tok::Lifetime => k += 1,
                Tok::Ident(s) if s == "mut" => k += 1,
                _ => break,
            }
        }
        if let Some(Tok::Ident(ty)) = toks.get(k).map(|t| &t.kind) {
            if let Some(bits) = type_bits(ty) {
                if bits < 128 {
                    env.insert(name.clone(), Iv::upto((1u128 << bits) - 1));
                }
            }
        }
        j = k + 1;
    }
    env
}

/// Extend `env` with single-assignment `let` bindings: a name bound
/// once by `let name = <expr>;` and never reassigned carries its
/// initializer's interval; any reassignment (`=`, compound ops,
/// `&mut name`) or second `let` poisons the name to unconstrained —
/// including a seeded parameter interval it shadows.
fn build_env(
    toks: &[Token],
    open: usize,
    close: usize,
    facts: &BTreeMap<String, u64>,
    env: &mut BTreeMap<String, Iv>,
) {
    let mut lets: BTreeMap<String, usize> = BTreeMap::new();
    let mut poisoned: BTreeSet<String> = BTreeSet::new();
    let mut j = open + 1;
    while j < close {
        if let Tok::Ident(n) = &toks[j].kind {
            let after_let = j >= 1
                && (matches!(&toks[j - 1].kind, Tok::Ident(k) if k == "let")
                    || (j >= 2
                        && matches!(&toks[j - 1].kind, Tok::Ident(k) if k == "mut")
                        && matches!(&toks[j - 2].kind, Tok::Ident(k) if k == "let")));
            if after_let && toks.get(j + 1).map(|t| &t.kind) == Some(&Tok::Punct('=')) {
                if lets.insert(n.clone(), j + 2).is_some() {
                    poisoned.insert(n.clone());
                }
            } else if !after_let && is_reassigned_at(toks, j) {
                poisoned.insert(n.clone());
            }
        }
        j += 1;
    }
    for name in &poisoned {
        env.remove(name);
    }
    // A `let` shadowing a param invalidates the seeded interval for
    // the whole body (this analysis is flow-insensitive about names).
    for name in lets.keys() {
        env.remove(name);
    }
    // Evaluate initializers in name order with the partial env; a rhs
    // reading a not-yet-evaluated binding just sees it unconstrained —
    // which only loses precision, never soundness.
    for (name, rhs) in &lets {
        if poisoned.contains(name) {
            continue;
        }
        let end = stmt_semi(toks, *rhs, close);
        let ev = Ev {
            toks,
            hi: end,
            env,
            facts,
        };
        let (iv, _) = ev.expr(*rhs, 0);
        if iv != TOP {
            env.insert(name.clone(), iv);
        } else {
            // A `let` shadowing a seeded param with an unknown value.
            env.remove(name);
        }
    }
}

/// Is the ident at `j` the target of an assignment or `&mut` borrow?
fn is_reassigned_at(toks: &[Token], j: usize) -> bool {
    // `name = …` but not `==` (and not the rhs of a comparison).
    match toks.get(j + 1).map(|t| &t.kind) {
        Some(Tok::Punct('=')) if toks.get(j + 2).map(|t| &t.kind) != Some(&Tok::Punct('=')) => {
            return true;
        }
        // Compound: `name += …`, `name <<= …`, etc.
        Some(Tok::Punct(op @ ('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>'))) => {
            let shift = matches!(op, '<' | '>');
            let eq_at = if shift && toks.get(j + 2).map(|t| &t.kind) == Some(&Tok::Punct(*op)) {
                j + 3
            } else {
                j + 2
            };
            if toks.get(eq_at).map(|t| &t.kind) == Some(&Tok::Punct('='))
                && toks.get(eq_at + 1).map(|t| &t.kind) != Some(&Tok::Punct('='))
            {
                return true;
            }
        }
        _ => {}
    }
    // `&mut name`.
    j >= 2
        && matches!(&toks[j - 1].kind, Tok::Ident(k) if k == "mut")
        && toks[j - 2].kind == Tok::Punct('&')
}

/// One past the `;` ending the statement starting at `from`, at zero
/// relative delimiter depth.
fn stmt_semi(toks: &[Token], from: usize, close: usize) -> usize {
    let (mut pd, mut sd, mut bd) = (0i32, 0i32, 0i32);
    let mut j = from;
    while j < close {
        match toks[j].kind {
            Tok::Punct('(') => pd += 1,
            Tok::Punct(')') => pd -= 1,
            Tok::Punct('[') => sd += 1,
            Tok::Punct(']') => sd -= 1,
            Tok::Punct('{') => bd += 1,
            Tok::Punct('}') => bd -= 1,
            Tok::Punct(';') if pd == 0 && sd == 0 && bd == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    close
}

/// Interval evaluator over a token range, with Rust operator
/// precedence. Every unknown construct evaluates to [`TOP`]; verdicts
/// only ever come from chains the evaluator fully understands.
struct Ev<'a> {
    toks: &'a [Token],
    hi: usize,
    env: &'a BTreeMap<String, Iv>,
    facts: &'a BTreeMap<String, u64>,
}

/// Binary operators by precedence tier (higher binds tighter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Mul,
    Div,
    Rem,
    Add,
    Sub,
    Shl,
    Shr,
    BitAnd,
    BitXor,
    BitOr,
    Cmp,
    Bool,
}

impl Ev<'_> {
    /// Evaluate the expression at `i` with operators of precedence ≥
    /// `min_prec`; returns the interval and the index just past it.
    fn expr(&self, i: usize, min_prec: u8) -> (Iv, usize) {
        let (mut lhs, mut i) = self.unary(i);
        while let Some((op, prec, width)) = self.peek_binop(i) {
            if prec < min_prec {
                break;
            }
            let (rhs, next) = self.expr(i + width, prec + 1);
            lhs = apply(op, lhs, rhs);
            i = next;
        }
        (lhs, i)
    }

    /// The binary operator at `i`, with precedence and token width.
    fn peek_binop(&self, i: usize) -> Option<(Op, u8, usize)> {
        if i >= self.hi {
            return None;
        }
        let two = |c: char| self.toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct(c));
        match self.toks[i].kind {
            Tok::Punct('*') => Some((Op::Mul, 10, 1)),
            Tok::Punct('/') => Some((Op::Div, 10, 1)),
            Tok::Punct('%') => Some((Op::Rem, 10, 1)),
            Tok::Punct('+') => Some((Op::Add, 9, 1)),
            Tok::Punct('-') => Some((Op::Sub, 9, 1)),
            Tok::Punct('<') if two('<') => Some((Op::Shl, 8, 2)),
            Tok::Punct('>') if two('>') => Some((Op::Shr, 8, 2)),
            Tok::Punct('&') if two('&') => Some((Op::Bool, 3, 2)),
            Tok::Punct('|') if two('|') => Some((Op::Bool, 3, 2)),
            Tok::Punct('&') => Some((Op::BitAnd, 7, 1)),
            Tok::Punct('^') => Some((Op::BitXor, 6, 1)),
            Tok::Punct('|') => Some((Op::BitOr, 5, 1)),
            Tok::Punct('<') if two('=') => Some((Op::Cmp, 4, 2)),
            Tok::Punct('>') if two('=') => Some((Op::Cmp, 4, 2)),
            Tok::Punct('<') => Some((Op::Cmp, 4, 1)),
            Tok::Punct('>') => Some((Op::Cmp, 4, 1)),
            Tok::Punct('=') if two('=') => Some((Op::Cmp, 4, 2)),
            Tok::Punct('!') if two('=') => Some((Op::Cmp, 4, 2)),
            _ => None,
        }
    }

    fn unary(&self, i: usize) -> (Iv, usize) {
        if i >= self.hi {
            return (TOP, i);
        }
        match self.toks[i].kind {
            // Negation and bitwise-not leave the unsigned model.
            Tok::Punct('-') | Tok::Punct('!') => {
                let (_, next) = self.unary(i + 1);
                (TOP, next)
            }
            // References and derefs are transparent to the value range.
            Tok::Punct('&') | Tok::Punct('*') => self.unary(i + 1),
            _ => self.postfix(i),
        }
    }

    fn postfix(&self, i: usize) -> (Iv, usize) {
        let (mut iv, mut i) = self.primary(i);
        while i < self.hi {
            match &self.toks[i].kind {
                Tok::Punct('.') => {
                    let Some(Tok::Ident(name)) = self.toks.get(i + 1).map(|t| &t.kind) else {
                        // Tuple index or float-ish tail: unknown value.
                        return (TOP, i + 1);
                    };
                    if self.toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct('(')) {
                        let close = matching_delim(self.toks, i + 2, '(').unwrap_or(self.hi);
                        iv = self.method(iv, name, i + 3, close.min(self.hi));
                        i = (close + 1).min(self.hi);
                    } else {
                        // Field access: fact-bounded or unknown.
                        iv = match self.facts.get(name.as_str()) {
                            Some(&max) => Iv::upto(max as u128),
                            None => TOP,
                        };
                        i += 2;
                    }
                }
                Tok::Punct('[') => {
                    let close = matching_delim(self.toks, i, '[').unwrap_or(self.hi);
                    iv = TOP;
                    i = (close + 1).min(self.hi);
                }
                Tok::Punct('?') => i += 1,
                Tok::Ident(s) if s == "as" => {
                    let target = match self.toks.get(i + 1).map(|t| &t.kind) {
                        Some(Tok::Ident(t)) => t.as_str(),
                        _ => return (TOP, (i + 1).min(self.hi)),
                    };
                    iv = match cast_max(target) {
                        // Narrowing truncates: either the value fits
                        // and is preserved, or anything ≤ MAX results.
                        Some(max) if iv.hi <= max => iv,
                        Some(max) => Iv::upto(max),
                        None => match type_bits(target) {
                            // Widening unsigned casts preserve value.
                            Some(_) => iv,
                            // Floats / signed: out of model.
                            None => TOP,
                        },
                    };
                    i += 2;
                }
                _ => break,
            }
        }
        (iv, i)
    }

    fn primary(&self, i: usize) -> (Iv, usize) {
        if i >= self.hi {
            return (TOP, i);
        }
        match &self.toks[i].kind {
            Tok::Num(text) => (num_value(text).map_or(TOP, Iv::exact), i + 1),
            Tok::Punct('(') => {
                let close = matching_delim(self.toks, i, '(').unwrap_or(self.hi);
                let (iv, _) = self.expr(i + 1, 0);
                (iv, (close + 1).min(self.hi))
            }
            Tok::Ident(s) if s == "true" || s == "false" => (Iv::upto(1), i + 1),
            Tok::Ident(s) => {
                // `Type::MAX` / `Type::BITS` / `uN::from(x)` paths.
                if self.toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                    && self.toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                {
                    if let (Some(bits), Some(Tok::Ident(assoc))) =
                        (type_bits(s), self.toks.get(i + 3).map(|t| &t.kind))
                    {
                        match assoc.as_str() {
                            "MAX" => {
                                let max = if bits == 128 {
                                    u128::MAX
                                } else {
                                    (1u128 << bits) - 1
                                };
                                return (Iv::exact(max), i + 4);
                            }
                            "MIN" => return (Iv::exact(0), i + 4),
                            "BITS" => return (Iv::exact(bits as u128), i + 4),
                            "from"
                                if self.toks.get(i + 4).map(|t| &t.kind)
                                    == Some(&Tok::Punct('(')) =>
                            {
                                let close =
                                    matching_delim(self.toks, i + 4, '(').unwrap_or(self.hi);
                                let inner = Ev {
                                    toks: self.toks,
                                    hi: close.min(self.hi),
                                    env: self.env,
                                    facts: self.facts,
                                };
                                let (iv, _) = inner.expr(i + 5, 0);
                                return (iv, (close + 1).min(self.hi));
                            }
                            _ => {}
                        }
                    }
                    // Unknown path: consume the two colons and let the
                    // postfix loop see what follows.
                    let (_, next) = self.primary(i + 3);
                    return (TOP, next);
                }
                match self.env.get(s.as_str()) {
                    Some(&iv) => (iv, i + 1),
                    None => (TOP, i + 1),
                }
            }
            _ => (TOP, i + 1),
        }
    }

    /// Interval transfer of a method call `recv.name(args…)` with the
    /// argument range `[args, close)`.
    fn method(&self, recv: Iv, name: &str, args: usize, close: usize) -> Iv {
        // Fact-bounded accessor methods (`cfg.bucket_bits()`).
        if let Some(&max) = self.facts.get(name) {
            return Iv::upto(max as u128);
        }
        let arg = |n: usize| -> Iv {
            // n-th top-level argument interval.
            let mut start = args;
            let (mut pd, mut sd, mut bd) = (0i32, 0i32, 0i32);
            let mut seen = 0usize;
            let mut j = args;
            while j < close {
                match self.toks[j].kind {
                    Tok::Punct('(') => pd += 1,
                    Tok::Punct(')') => pd -= 1,
                    Tok::Punct('[') => sd += 1,
                    Tok::Punct(']') => sd -= 1,
                    Tok::Punct('{') => bd += 1,
                    Tok::Punct('}') => bd -= 1,
                    Tok::Punct(',') if pd == 0 && sd == 0 && bd == 0 => {
                        if seen == n {
                            break;
                        }
                        seen += 1;
                        start = j + 1;
                    }
                    _ => {}
                }
                j += 1;
            }
            if seen < n || start >= j {
                return TOP;
            }
            let inner = Ev {
                toks: self.toks,
                hi: j,
                env: self.env,
                facts: self.facts,
            };
            inner.expr(start, 0).0
        };
        match name {
            "min" => {
                let a = arg(0);
                Iv {
                    lo: recv.lo.min(a.lo),
                    hi: recv.hi.min(a.hi),
                }
            }
            "max" => {
                let a = arg(0);
                Iv {
                    lo: recv.lo.max(a.lo),
                    hi: recv.hi.max(a.hi),
                }
            }
            "clamp" => {
                let (a, b) = (arg(0), arg(1));
                Iv { lo: a.lo, hi: b.hi }
            }
            "leading_zeros" | "trailing_zeros" | "count_ones" | "count_zeros" => Iv::upto(128),
            "ilog2" => Iv::upto(127),
            "saturating_sub" => Iv::upto(recv.hi),
            "div_ceil" => {
                let a = arg(0);
                if a.lo >= 2 {
                    // ⌈x / d⌉ ≤ ⌈hi / 2⌉ for d ≥ 2.
                    Iv::upto(recv.hi.div_ceil(2))
                } else {
                    Iv::upto(recv.hi)
                }
            }
            "abs_diff" => {
                let a = arg(0);
                Iv::upto(recv.hi.max(a.hi))
            }
            "rem_euclid" => {
                let a = arg(0);
                if a.lo > 0 {
                    Iv::upto(a.hi - 1)
                } else {
                    TOP
                }
            }
            _ => TOP,
        }
    }
}

/// Interval transfer for a binary operator, conservative for unsigned
/// Rust semantics (release-mode wrapping is out of model: the bounds
/// assume no overflow, which `u128` headroom makes true for any honest
/// 64-bit workspace value).
fn apply(op: Op, a: Iv, b: Iv) -> Iv {
    match op {
        Op::Mul => Iv {
            lo: a.lo.saturating_mul(b.lo),
            hi: a.hi.saturating_mul(b.hi),
        },
        Op::Div => match (a.lo.checked_div(b.hi), a.hi.checked_div(b.lo)) {
            (Some(lo), Some(hi)) => Iv { lo, hi },
            _ => Iv::upto(a.hi),
        },
        Op::Rem => {
            if b.lo > 0 {
                Iv::upto(a.hi.min(b.hi - 1))
            } else {
                TOP
            }
        }
        Op::Add => Iv {
            lo: a.lo.saturating_add(b.lo),
            hi: a.hi.saturating_add(b.hi),
        },
        // Unsigned subtraction: panics (debug) or wraps (release) on
        // underflow; the in-range outcomes stay within [0, a.hi].
        Op::Sub => Iv::upto(a.hi),
        Op::Shl => Iv {
            lo: if b.lo >= 128 {
                0
            } else {
                a.lo.saturating_shl(u32::try_from(b.lo).unwrap_or(u32::MAX))
            },
            hi: if b.hi >= 128 {
                u128::MAX
            } else {
                a.hi.saturating_shl(u32::try_from(b.hi).unwrap_or(u32::MAX))
            },
        },
        Op::Shr => Iv {
            lo: if b.hi >= 128 { 0 } else { a.lo >> b.hi },
            hi: if b.lo >= 128 { 0 } else { a.hi >> b.lo },
        },
        Op::BitAnd => Iv::upto(a.hi.min(b.hi)),
        // `|`/`^` cannot exceed the next power of two covering both.
        Op::BitOr | Op::BitXor => {
            let m = a.hi.max(b.hi);
            Iv::upto(m.checked_next_power_of_two().map_or(u128::MAX, |p| {
                if p == m && m.count_ones() == 1 && m > 0 {
                    // m is a power of two: bits below it can still set.
                    (p << 1).wrapping_sub(1).max(m)
                } else {
                    p.wrapping_sub(1).max(m)
                }
            }))
        }
        Op::Cmp | Op::Bool => Iv::upto(1),
    }
}

/// Saturating shift-left helper (u128 has no `saturating_shl`).
trait SatShl {
    fn saturating_shl(self, by: u32) -> u128;
}

impl SatShl for u128 {
    fn saturating_shl(self, by: u32) -> u128 {
        if self == 0 {
            return 0;
        }
        if by >= 128 || self.leading_zeros() < by {
            return u128::MAX;
        }
        self << by
    }
}

/// The value of a numeric literal token (suffix and `_` tolerated);
/// `None` for floats and unparsable text.
fn num_value(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if t.contains('.') {
        return None;
    }
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (b, 2)
    } else if let Some(o) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (o, 8)
    } else {
        (t.as_str(), 10)
    };
    // Strip a type suffix: the tail from the first char that is not a
    // digit of the radix.
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;

    fn graph(sources: &[(&str, &str)]) -> (Vec<FileItems>, CallGraph) {
        let files: Vec<FileItems> = sources
            .iter()
            .map(|(p, s)| parse_items(p, s))
            .filter(|f| crate::rules::flow_scope(&f.class))
            .collect();
        let g = CallGraph::build(&files);
        (files, g)
    }

    fn parity(sources: &[(&str, &str)]) -> (Vec<Finding>, usize) {
        let (files, g) = graph(sources);
        let mut out = Vec::new();
        let n = draw_parity(&files, &g, &mut out);
        out.sort();
        (out, n)
    }

    fn casts(src: &str) -> (Vec<Finding>, usize) {
        let (files, _) = graph(&[("crates/core/src/a.rs", src)]);
        let mut out = Vec::new();
        let n = cast_range(&files, &mut out);
        out.sort();
        (out, n)
    }

    #[test]
    fn unequal_branch_draws_are_flagged() {
        let (fs, n) = parity(&[(
            "crates/core/src/machine.rs",
            "pub fn step(rng: &mut impl Rng, skip: bool) -> u64 {\n\
                 if skip { rng.gen::<u64>() } else { rng.gen::<u64>() ^ rng.gen::<u64>() }\n\
             }\n",
        )]);
        assert_eq!(n, 1);
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert_eq!(fs[0].rule, "rng-draw-parity");
        assert_eq!(fs[0].line, 2);
        assert!(fs[0].snippet.contains("1 vs 2"), "{}", fs[0].snippet);
    }

    #[test]
    fn equal_draws_and_else_less_parity_pass() {
        let (fs, _) = parity(&[(
            "crates/core/src/machine.rs",
            "pub fn step(rng: &mut impl Rng, skip: bool) -> u64 {\n\
                 if skip { rng.gen::<u64>() } else { rng.gen::<u64>() }\n\
             }\n\
             pub fn no_else(rng: &mut impl Rng, hot: bool) {\n\
                 if hot { observe(); }\n\
                 rng.gen::<u64>();\n\
             }\n\
             fn observe() {}\n",
        )]);
        assert!(fs.is_empty(), "{fs:#?}");
    }

    #[test]
    fn else_less_branch_that_draws_is_flagged() {
        let (fs, _) = parity(&[(
            "crates/core/src/machine.rs",
            "pub fn step(rng: &mut impl Rng, skip: bool) {\n\
                 if skip { rng.gen::<u64>(); }\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert!(fs[0].snippet.contains("1 vs 0"), "{}", fs[0].snippet);
    }

    #[test]
    fn callee_summaries_flow_through_the_graph() {
        let (fs, _) = parity(&[(
            "crates/core/src/machine.rs",
            "fn one(rng: &mut impl Rng) -> u64 { rng.gen() }\n\
             fn two(rng: &mut impl Rng) -> u64 { rng.gen::<u64>() ^ rng.gen::<u64>() }\n\
             pub fn step(rng: &mut impl Rng, skip: bool) -> u64 {\n\
                 if skip { one(rng) } else { two(rng) }\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn loops_and_closures_widen_to_unknown() {
        let (fs, _) = parity(&[(
            "crates/core/src/machine.rs",
            "pub fn noisy(rng: &mut impl Rng, n: u64, skip: bool) -> u64 {\n\
                 if skip {\n\
                     let mut acc = 0;\n\
                     for _ in 0..n { acc ^= rng.gen::<u64>(); }\n\
                     acc\n\
                 } else { (0..n).map(|_| rng.gen::<u64>()).sum() }\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "unknown counts must not fire: {fs:#?}");
    }

    #[test]
    fn continue_paths_balance_per_iteration_draws() {
        // The machine.rs skip-rank shape: the skip branch draws then
        // continues; the fall-through draws once later. Per-iteration
        // parity holds, so the pass stays quiet.
        let (fs, _) = parity(&[(
            "crates/core/src/machine.rs",
            "pub fn scan(rng: &mut impl Rng, n: u64) -> u64 {\n\
                 let mut acc = 0;\n\
                 for i in 0..n {\n\
                     if i % 2 == 0 { acc ^= rng.gen::<u64>(); continue; }\n\
                     acc ^= rng.gen::<u64>();\n\
                 }\n\
                 acc\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "{fs:#?}");
    }

    #[test]
    fn out_of_scope_fns_are_not_analyzed() {
        let (fs, n) = parity(&[(
            "crates/obs/src/metrics.rs",
            "pub fn unrelated(rng: &mut impl Rng, skip: bool) -> u64 {\n\
                 if skip { rng.gen::<u64>() } else { rng.gen::<u64>() ^ rng.gen::<u64>() }\n\
             }\n",
        )]);
        assert_eq!((fs.len(), n), (0, 0), "{fs:#?}");
    }

    #[test]
    fn allow_directive_silences_parity() {
        let (fs, _) = parity(&[(
            "crates/core/src/machine.rs",
            "// dhs-flow: allow(rng-draw-parity) — hint path intentionally skips\n\
             pub fn step(rng: &mut impl Rng, skip: bool) -> u64 {\n\
                 if skip { rng.gen::<u64>() } else { rng.gen::<u64>() ^ rng.gen::<u64>() }\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "{fs:#?}");
    }

    #[test]
    fn literal_and_masked_casts_prove_safe() {
        let (fs, proven) = casts(
            "pub fn pack(x: u64) -> u16 {\n\
                 let low = (x & 0xFFFF) as u16;\n\
                 let b = 255 as u8;\n\
                 low ^ b as u16\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:#?}");
        // `x & 0xFFFF`, `255u8`, and the widening-safe `b as u16`.
        assert_eq!(proven, 3);
    }

    #[test]
    fn fact_bounded_fields_prove_safe() {
        let (fs, proven) = casts(
            "pub fn buckets(cfg: &DhsConfig) -> u32 {\n\
                 let m = cfg.m as u32;\n\
                 m + cfg.bucket_bits() as u32\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:#?}");
        assert_eq!(proven, 2, "m ≤ 2^16 and bucket_bits ≤ 16 both fit u32");
    }

    #[test]
    fn always_truncating_cast_is_flagged() {
        let (fs, _) = casts(
            "pub fn bad() -> u16 {\n\
                 let big = 70_000u32;\n\
                 big as u16\n\
             }\n",
        );
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert_eq!(fs[0].rule, "cast-range");
        assert_eq!(fs[0].line, 3);
        assert!(fs[0].snippet.contains("checked_cast"), "{}", fs[0].snippet);
    }

    #[test]
    fn reassigned_bindings_and_unknowns_stay_untriaged() {
        let (fs, proven) = casts(
            "pub fn shifty(x: u64) -> u16 {\n\
                 let mut v = 70_000u32;\n\
                 v = 1;\n\
                 (v as u16) ^ (x as u16)\n\
             }\n",
        );
        assert!(fs.is_empty(), "poisoned binding must not flag: {fs:#?}");
        assert_eq!(proven, 0);
    }

    #[test]
    fn shift_and_minmax_transfers_are_sound() {
        let (fs, proven) = casts(
            "pub fn mix(cfg: &DhsConfig, raw: u64) -> u8 {\n\
                 let a = (raw % 256) as u8;\n\
                 let b = (cfg.m >> 9) as u8;\n\
                 let c = raw.min(200) as u8;\n\
                 let d = (1u32 << cfg.bucket_bits()) as u32;\n\
                 a ^ b ^ c ^ (d as u8)\n\
             }\n",
        );
        // a: [0,255] ok; b: 65536>>9=128 ok; c: min ≤ 200 ok; d: 1<<16
        // fits u32 ok; `d as u8` does NOT prove (hi 65536).
        assert!(fs.is_empty(), "{fs:#?}");
        assert_eq!(proven, 4, "{fs:#?}");
    }

    #[test]
    fn type_max_and_from_paths_evaluate() {
        let (fs, proven) = casts(
            "pub fn caps(x: u8) -> u32 {\n\
                 let m = u16::MAX as u32;\n\
                 m + u32::from(x) as u32 + u64::BITS as u32\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:#?}");
        assert_eq!(proven, 3);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let src = "pub fn f(cfg: &DhsConfig) -> u16 { let big = 70_000u32; (big as u16) ^ (cfg.m as u16) }\n";
        let (a, pa) = casts(src);
        let (b, pb) = casts(src);
        assert_eq!((a, pa), (b, pb));
    }
}

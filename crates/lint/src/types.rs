//! dhs-types: a lightweight type model over the token-item stream.
//!
//! [`TypeIndex`] indexes, workspace-wide: struct field types, trait
//! method declarations, `impl Trait for Type` relations, and every fn's
//! parsed signature (parameter and return type heads, with generic
//! parameters resolved to their first trait bound).
//! [`crate::resolve`] consumes it to type call receivers and collapse
//! the name-based ambiguous edge sets of the old call graph.
//!
//! The model is deliberately head-only: `&mut impl Rng` is
//! `Generic("Rng")`, a tuple is [`TypeRef::Unknown`]. Std containers
//! keep one extra hop of information — `Vec<Submission>` is
//! `Wraps("Submission")` — so a chain like `pending.first().unwrap()`
//! can surface the workspace element type while every direct container
//! method (`len`, `push`, `iter`) is provably external. That is exactly
//! enough to answer the one question dispatch needs — *which impl
//! blocks can this method call land in* — without building a real type
//! system.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{FnId, FnRef};
use crate::items::{FileItems, FnItem};
use crate::lexer::{Tok, Token};

/// The head of a type expression, as far as receiver dispatch needs it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TypeRef {
    /// A concrete nominal type head (`Ring`, `Vec`, `StdRng`).
    Named(String),
    /// A generic parameter or `impl`/`dyn` object, known only by its
    /// first trait bound (`T: Transport` → `Generic("Transport")`).
    Generic(String),
    /// A std container or wrapper (`Vec<T>`, `Option<T>`, maps, slices)
    /// holding elements whose type head is the payload (empty when the
    /// element type is itself unresolvable). Direct methods on the
    /// container are external; extraction methods (`unwrap`,
    /// `or_default`, …) surface the element type.
    Wraps(String),
    /// The enclosing impl's `Self`.
    SelfTy,
    /// Not inferable; resolution falls back to name-based candidates.
    #[default]
    Unknown,
}

/// One fn's parsed signature.
#[derive(Debug, Clone, Default)]
pub struct FnSig {
    /// `(binding name, type head)` for simple `name: Type` params
    /// (receivers and destructuring patterns are omitted).
    pub params: Vec<(String, TypeRef)>,
    /// Return type head; `Unknown` for `()` and unparsed shapes.
    pub ret: TypeRef,
    /// Generic vars in scope for this fn's body: var → first trait
    /// bound (`None` for unbounded vars). Includes impl-level generics.
    pub bounds: BTreeMap<String, Option<String>>,
}

/// The workspace type index, keyed by bare type/trait names. Name
/// collisions across crates merge honestly into multi-candidate sets —
/// dispatch reports them as such rather than guessing.
#[derive(Debug, Default)]
pub struct TypeIndex {
    /// struct name → field name → field type head.
    pub fields: BTreeMap<String, BTreeMap<String, TypeRef>>,
    /// Every struct/enum name defined in the scanned set.
    pub types: BTreeSet<String>,
    /// trait name → method names declared in the trait block.
    pub traits: BTreeMap<String, BTreeSet<String>>,
    /// trait name → types with an `impl Trait for Type` block.
    pub impls_of: BTreeMap<String, BTreeSet<String>>,
    /// `(self type or trait name, method name)` → global fn ids.
    pub methods: BTreeMap<(String, String), Vec<FnId>>,
    /// Parsed signatures, parallel to the global fn table.
    pub sigs: Vec<FnSig>,
}

impl TypeIndex {
    /// Build the index over the files and the global fn table the call
    /// graph is being constructed for.
    pub fn build(files: &[FileItems], fns: &[FnRef]) -> TypeIndex {
        let mut idx = TypeIndex::default();
        for file in files {
            scan_type_defs(&file.tokens, &mut idx);
        }
        for (id, r) in fns.iter().enumerate() {
            let f = &files[r.file].fns[r.item];
            if let Some(t) = &f.self_type {
                idx.methods
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
                if f.in_trait {
                    idx.traits
                        .entry(t.clone())
                        .or_default()
                        .insert(f.name.clone());
                }
            }
            if let (Some(tr), Some(t)) = (&f.trait_of, &f.self_type) {
                idx.impls_of
                    .entry(tr.clone())
                    .or_default()
                    .insert(t.clone());
            }
        }
        for r in fns {
            let file = &files[r.file];
            idx.sigs.push(parse_sig(&file.tokens, &file.fns[r.item]));
        }
        idx
    }

    /// The declared field type of `ty.field`, if the head is a known
    /// struct with that named field.
    pub fn field_type(&self, ty: &TypeRef, field: &str) -> TypeRef {
        match ty {
            TypeRef::Named(t) => self
                .fields
                .get(t)
                .and_then(|fs| fs.get(field))
                .cloned()
                .unwrap_or(TypeRef::Unknown),
            _ => TypeRef::Unknown,
        }
    }
}

/// Record `struct`/`enum` definitions: the type name, and for
/// brace-bodied structs the `field: Type` heads.
fn scan_type_defs(toks: &[Token], idx: &mut TypeIndex) {
    let mut i = 0usize;
    while i < toks.len() {
        let kw = match &toks[i].kind {
            Tok::Ident(s) if s == "struct" || s == "enum" => s.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) else {
            i += 1;
            continue;
        };
        let name = name.clone();
        idx.types.insert(name.clone());
        let mut j = i + 2;
        let mut bounds = BTreeMap::new();
        if toks.get(j).map(|t| &t.kind) == Some(&Tok::Punct('<')) {
            let close = matching_angle(toks, j).unwrap_or(j);
            collect_bounds(toks, j + 1, close, &mut bounds);
            j = close + 1;
        }
        // Skip a where clause up to the body.
        while j < toks.len()
            && !matches!(
                toks[j].kind,
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct(';')
            )
        {
            j += 1;
        }
        if kw == "struct" && toks.get(j).map(|t| &t.kind) == Some(&Tok::Punct('{')) {
            let fields = idx.fields.entry(name).or_default();
            let mut depth = 0usize;
            while j < toks.len() {
                match &toks[j].kind {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(f)
                        if depth == 1
                            && is_single_colon(toks, j + 1)
                            && !is_single_colon_before(toks, j) =>
                    {
                        let (mut ty, next) = parse_type_expr(toks, j + 2, &bounds);
                        if ty == TypeRef::Unknown {
                            // A field declared as a bare struct generic
                            // var keeps the var's name: the resolver
                            // remaps it through the enclosing impl's
                            // bounds (`observer: R`, `R: Recorder`).
                            if let Some(v) = bare_param_head(toks, j + 2, &bounds) {
                                ty = TypeRef::Named(v);
                            }
                        }
                        fields.insert(f.clone(), ty);
                        j = next;
                        continue;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        i = j.max(i + 1);
    }
}

/// The bare unbounded generic-var head of the type at `from`, if the
/// head (past `&`/`mut`/lifetimes) is a declared struct generic param.
fn bare_param_head(
    toks: &[Token],
    from: usize,
    bounds: &BTreeMap<String, Option<String>>,
) -> Option<String> {
    let mut i = from;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct('&') | Tok::Lifetime => i += 1,
            Tok::Ident(s) if s == "mut" => i += 1,
            _ => break,
        }
    }
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(v)) if bounds.get(v) == Some(&None) => Some(v.clone()),
        _ => None,
    }
}

/// Is the token at `i` a single `:` (not part of `::`)?
fn is_single_colon(toks: &[Token], i: usize) -> bool {
    toks.get(i).map(|t| &t.kind) == Some(&Tok::Punct(':'))
        && toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct(':'))
        && (i == 0 || toks[i - 1].kind != Tok::Punct(':'))
}

/// Is the token just before `i` a single `:`?
fn is_single_colon_before(toks: &[Token], i: usize) -> bool {
    i >= 1 && is_single_colon(toks, i - 1)
}

/// Index of the `>` matching the `<` at `open` (angle depth; `>>`
/// lexes as two tokens, so plain counting works).
fn matching_angle(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            // A `(` in a generic list would be an fn-pointer type; bail
            // rather than miscount.
            Tok::Punct(';') | Tok::Punct('{') => return None,
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Collect `(var, first bound)` pairs from a generic list or where
/// clause range: `A : Tr` records `A → Some(Tr)`, a bare var records
/// `A → None`. A `Some` bound upgrades an earlier `None`, never the
/// reverse — the first bound wins.
fn collect_bounds(
    toks: &[Token],
    lo: usize,
    hi: usize,
    out: &mut BTreeMap<String, Option<String>>,
) {
    let mut i = lo;
    while i < hi {
        let Tok::Ident(v) = &toks[i].kind else {
            i += 1;
            continue;
        };
        // A var name appears at the start of the range or right after a
        // separator; path segments (`a::b`) are skipped.
        let at_sep = i == lo
            || matches!(toks[i - 1].kind, Tok::Punct(',') | Tok::Punct('<'))
            || matches!(&toks[i - 1].kind, Tok::Ident(s) if s == "where");
        if !at_sep {
            i += 1;
            continue;
        }
        if is_single_colon(toks, i + 1) {
            // First bound: the first ident after the colon, skipping
            // lifetimes, `?`, and `dyn`.
            let mut k = i + 2;
            let mut bound = None;
            while k < hi {
                match &toks[k].kind {
                    Tok::Ident(s) if s != "dyn" => {
                        bound = Some(s.clone());
                        break;
                    }
                    Tok::Punct(',') | Tok::Punct('>') => break,
                    _ => {}
                }
                k += 1;
            }
            match out.get(v.as_str()) {
                Some(Some(_)) => {}
                _ => {
                    out.insert(v.clone(), bound);
                }
            }
        } else if matches!(
            toks.get(i + 1).map(|t| &t.kind),
            Some(Tok::Punct(',')) | Some(Tok::Punct('>')) | None
        ) {
            out.entry(v.clone()).or_insert(None);
        }
        i += 1;
    }
}

/// Parse a type expression starting at `from`; returns its head and the
/// index just past the type (the separating `,` / `}` / `)` / `;`).
fn parse_type_expr(
    toks: &[Token],
    from: usize,
    bounds: &BTreeMap<String, Option<String>>,
) -> (TypeRef, usize) {
    let head = parse_type_head(toks, from, bounds);
    // Skip to the end of the type: the first `,` / `}` / `)` / `;` at
    // zero relative angle/paren/bracket depth.
    let (mut ad, mut pd, mut sd) = (0i32, 0i32, 0i32);
    let mut j = from;
    while j < toks.len() {
        match toks[j].kind {
            Tok::Punct('<') => ad += 1,
            Tok::Punct('>') => ad -= 1,
            Tok::Punct('(') => pd += 1,
            Tok::Punct(')') if pd > 0 => pd -= 1,
            Tok::Punct('[') => sd += 1,
            Tok::Punct(']') => sd -= 1,
            Tok::Punct(',') | Tok::Punct(';') if ad <= 0 && pd == 0 && sd == 0 => break,
            Tok::Punct(')') | Tok::Punct('}') if pd == 0 => break,
            _ => {}
        }
        j += 1;
    }
    (head, j)
}

/// Std container/wrapper heads tracked as [`TypeRef::Wraps`]. Paired
/// with the zero-based index of the generic argument that carries the
/// element type (maps track the value, `Result` the `Ok` type).
pub(crate) const CONTAINER_HEADS: &[(&str, usize)] = &[
    ("Arc", 0),
    ("BTreeMap", 1),
    ("BTreeSet", 0),
    ("BinaryHeap", 0),
    ("Box", 0),
    ("Cell", 0),
    ("Cow", 0),
    ("HashMap", 1),
    ("HashSet", 0),
    ("Mutex", 0),
    ("Option", 0),
    ("Rc", 0),
    ("RefCell", 0),
    ("Result", 0),
    ("RwLock", 0),
    ("Vec", 0),
    ("VecDeque", 0),
];

/// The head of the type expression starting at `from`: skips
/// references/lifetimes/`mut`, resolves `impl`/`dyn` objects to their
/// trait, paths to their last segment, generic vars through `bounds`,
/// and std containers/slices to [`TypeRef::Wraps`] of their element
/// head.
pub(crate) fn parse_type_head(
    toks: &[Token],
    from: usize,
    bounds: &BTreeMap<String, Option<String>>,
) -> TypeRef {
    let mut i = from;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct('&') | Tok::Lifetime => i += 1,
            Tok::Ident(s) if s == "mut" => i += 1,
            _ => break,
        }
    }
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) if s == "impl" || s == "dyn" => match last_path_segment(toks, i + 1) {
            Some((seg, _)) => TypeRef::Generic(seg),
            None => TypeRef::Unknown,
        },
        Some(Tok::Ident(s)) if s == "Self" => TypeRef::SelfTy,
        Some(Tok::Ident(_)) => match last_path_segment(toks, i) {
            Some((seg, next)) => match bounds.get(&seg) {
                Some(Some(tr)) => TypeRef::Generic(tr.clone()),
                Some(None) => TypeRef::Unknown,
                None => match CONTAINER_HEADS.iter().find(|(h, _)| *h == seg) {
                    Some(&(_, arg)) => {
                        let elem = if toks.get(next).map(|t| &t.kind) == Some(&Tok::Punct('<')) {
                            nth_generic_arg(toks, next, arg)
                                .map(|a| elem_head(toks, a, bounds))
                                .unwrap_or_default()
                        } else {
                            String::new()
                        };
                        TypeRef::Wraps(elem)
                    }
                    None => TypeRef::Named(seg),
                },
            },
            None => TypeRef::Unknown,
        },
        // Slice / array: `[T]`, `[T; N]`.
        Some(Tok::Punct('[')) => TypeRef::Wraps(elem_head(toks, i + 1, bounds)),
        _ => TypeRef::Unknown,
    }
}

/// Start index of the `n`-th top-level generic argument inside the
/// angle list opening at `open`.
fn nth_generic_arg(toks: &[Token], open: usize, n: usize) -> Option<usize> {
    let close = matching_angle(toks, open)?;
    let mut arg = 0usize;
    let mut start = open + 1;
    let (mut ad, mut pd, mut sd) = (0i32, 0i32, 0i32);
    for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match t.kind {
            Tok::Punct('<') => ad += 1,
            Tok::Punct('>') => ad -= 1,
            Tok::Punct('(') => pd += 1,
            Tok::Punct(')') => pd -= 1,
            Tok::Punct('[') => sd += 1,
            Tok::Punct(']') => sd -= 1,
            Tok::Punct(',') if ad == 0 && pd == 0 && sd == 0 => {
                if arg == n {
                    break;
                }
                arg += 1;
                start = j + 1;
            }
            _ => {}
        }
    }
    (arg == n && start < close).then_some(start)
}

/// The raw head segment of the element type at `from` (for
/// [`TypeRef::Wraps`] payloads): nested containers keep their own head
/// name (`Vec<u64>` inside a map is `"Vec"` — still provably external),
/// generic vars and unparsable shapes are `""`.
fn elem_head(toks: &[Token], from: usize, bounds: &BTreeMap<String, Option<String>>) -> String {
    let mut i = from;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct('&') | Tok::Lifetime => i += 1,
            Tok::Ident(s) if s == "mut" => i += 1,
            _ => break,
        }
    }
    if toks.get(i).map(|t| &t.kind) == Some(&Tok::Punct('[')) {
        // `[[T; N]; M]` and friends: the inner element head.
        return elem_head(toks, i + 1, bounds);
    }
    if matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Ident(s)) if s == "dyn" || s == "impl") {
        // `Box<dyn Estimator>` / `Option<&mut dyn Recorder>`: the trait
        // name is the element head (extraction dispatches over it).
        return elem_head(toks, i + 1, bounds);
    }
    match last_path_segment(toks, i) {
        Some((seg, _)) if !bounds.contains_key(&seg) => seg,
        _ => String::new(),
    }
}

/// Walk a `a::b::C` path starting at `from`; returns the last segment
/// and the index just past it. `None` when `from` is not an ident.
fn last_path_segment(toks: &[Token], from: usize) -> Option<(String, usize)> {
    let mut i = from;
    let Some(Tok::Ident(mut seg)) = toks.get(i).map(|t| t.kind.clone()) else {
        return None;
    };
    while toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct(':'))
        && toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct(':'))
    {
        match toks.get(i + 3).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => {
                seg = s.clone();
                i += 3;
            }
            _ => break,
        }
    }
    Some((seg, i + 1))
}

/// Parse one fn's signature out of its recorded token range, merging
/// impl-level and fn-level generic bounds.
fn parse_sig(toks: &[Token], item: &FnItem) -> FnSig {
    let (lo, hi) = item.sig;
    let mut bounds: BTreeMap<String, Option<String>> = BTreeMap::new();
    if let Some((olo, ohi)) = item.outer_header {
        collect_header_bounds(toks, olo, ohi, &mut bounds);
    }
    collect_header_bounds(toks, lo, hi, &mut bounds);

    let mut sig = FnSig::default();
    // Find the param list: the first `(` after the name/generics.
    let mut i = lo + 2;
    if toks.get(i).map(|t| &t.kind) == Some(&Tok::Punct('<')) {
        i = matching_angle(toks, i).map_or(hi, |c| c + 1);
    }
    if toks.get(i).map(|t| &t.kind) != Some(&Tok::Punct('(')) {
        sig.bounds = bounds;
        return sig;
    }
    let popen = i;
    let pclose = matching_paren(toks, popen).unwrap_or(hi.min(toks.len().saturating_sub(1)));
    // Split params on top-level commas.
    let mut start = popen + 1;
    let (mut ad, mut pd, mut sd, mut bd) = (0i32, 0i32, 0i32, 0i32);
    let mut j = popen + 1;
    while j <= pclose {
        let boundary = j == pclose
            || (toks[j].kind == Tok::Punct(',') && ad <= 0 && pd == 0 && sd == 0 && bd == 0);
        if boundary {
            if start < j {
                if let Some((name, ty)) = parse_param(toks, start, j, &bounds) {
                    sig.params.push((name, ty));
                }
            }
            start = j + 1;
        } else {
            match toks[j].kind {
                Tok::Punct('<') => ad += 1,
                Tok::Punct('>') => ad -= 1,
                Tok::Punct('(') => pd += 1,
                Tok::Punct(')') => pd -= 1,
                Tok::Punct('[') => sd += 1,
                Tok::Punct(']') => sd -= 1,
                Tok::Punct('{') => bd += 1,
                Tok::Punct('}') => bd -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    // Return type: `-> Type` between the params and the body/where.
    let mut k = pclose + 1;
    while k + 1 < hi.min(toks.len()) {
        if toks[k].kind == Tok::Punct('-') && toks[k + 1].kind == Tok::Punct('>') {
            sig.ret = parse_type_head(toks, k + 2, &bounds);
            break;
        }
        if matches!(&toks[k].kind, Tok::Ident(s) if s == "where") {
            break;
        }
        k += 1;
    }
    sig.bounds = bounds;
    sig
}

/// Collect generic bounds from a header range: the `<…>` list right
/// after the introducing keyword's name and any `where` clause.
fn collect_header_bounds(
    toks: &[Token],
    lo: usize,
    hi: usize,
    out: &mut BTreeMap<String, Option<String>>,
) {
    let hi = hi.min(toks.len());
    // Generic list: first `<` before any `(`/`{`.
    let mut i = lo;
    while i < hi {
        match toks[i].kind {
            Tok::Punct('<') => {
                if let Some(close) = matching_angle(toks, i) {
                    collect_bounds(toks, i + 1, close.min(hi), out);
                }
                break;
            }
            Tok::Punct('(') | Tok::Punct('{') => break,
            _ => i += 1,
        }
    }
    // Where clause: from the `where` ident to the end of the range.
    for w in lo..hi {
        if matches!(&toks[w].kind, Tok::Ident(s) if s == "where") {
            collect_bounds(toks, w + 1, hi, out);
            break;
        }
    }
}

/// One `name: Type` parameter; receivers (`self` in any flavor) and
/// pattern params return `None`.
fn parse_param(
    toks: &[Token],
    lo: usize,
    hi: usize,
    bounds: &BTreeMap<String, Option<String>>,
) -> Option<(String, TypeRef)> {
    let mut i = lo;
    while i < hi {
        match &toks[i].kind {
            Tok::Punct('&') | Tok::Lifetime => i += 1,
            Tok::Ident(s) if s == "mut" => i += 1,
            _ => break,
        }
    }
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) if s == "self" => None,
        Some(Tok::Ident(name)) if is_single_colon(toks, i + 1) => {
            Some((name.clone(), parse_type_head(toks, i + 2, bounds)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::items::parse_items;

    fn index(src: &str) -> (Vec<FileItems>, TypeIndex) {
        let files = vec![parse_items("crates/core/src/a.rs", src)];
        let fns = CallGraph::fn_table(&files);
        let idx = TypeIndex::build(&files, &fns);
        (files, idx)
    }

    #[test]
    fn struct_fields_and_heads_indexed() {
        let (_, idx) = index(
            "pub struct Lab { pending: Vec<Submission>, ring: Ring, n: u64 }\n\
             struct Ring;\nenum Kind { A, B }\n",
        );
        assert!(
            idx.types.contains("Lab") && idx.types.contains("Ring") && idx.types.contains("Kind")
        );
        assert_eq!(
            idx.field_type(&TypeRef::Named("Lab".into()), "ring"),
            TypeRef::Named("Ring".into())
        );
        assert_eq!(
            idx.field_type(&TypeRef::Named("Lab".into()), "pending"),
            TypeRef::Wraps("Submission".into())
        );
    }

    #[test]
    fn containers_track_element_heads() {
        let (_, idx) = index(
            "struct S {\n\
                 a: Vec<Submission>,\n\
                 b: HashMap<u64, Vec<u64>>,\n\
                 c: Option<dhs_core::Config>,\n\
                 d: BTreeMap<String, Ring>,\n\
                 e: Vec<u64>,\n\
             }\n\
             fn f(xs: &[Ring], m: &mut HashMap<u64, Ring>) -> Option<Ring> { None }\n",
        );
        let s = TypeRef::Named("S".into());
        assert_eq!(idx.field_type(&s, "a"), TypeRef::Wraps("Submission".into()));
        // Maps track the value head; nested containers keep their own
        // head name (still provably external).
        assert_eq!(idx.field_type(&s, "b"), TypeRef::Wraps("Vec".into()));
        assert_eq!(idx.field_type(&s, "c"), TypeRef::Wraps("Config".into()));
        assert_eq!(idx.field_type(&s, "d"), TypeRef::Wraps("Ring".into()));
        assert_eq!(idx.field_type(&s, "e"), TypeRef::Wraps("u64".into()));
        let sig = &idx.sigs[0];
        assert_eq!(sig.params[0], ("xs".into(), TypeRef::Wraps("Ring".into())));
        assert_eq!(sig.params[1], ("m".into(), TypeRef::Wraps("Ring".into())));
        assert_eq!(sig.ret, TypeRef::Wraps("Ring".into()));
    }

    #[test]
    fn trait_decls_and_impls_indexed() {
        let (_, idx) = index(
            "trait Overlay {\n  fn owner_of(&self) -> u64;\n  fn size(&self) -> u64 { 0 }\n}\n\
             struct Ring;\nimpl Overlay for Ring {\n  fn owner_of(&self) -> u64 { 1 }\n}\n",
        );
        let methods = idx.traits.get("Overlay").unwrap();
        assert!(methods.contains("owner_of") && methods.contains("size"));
        assert!(idx.impls_of.get("Overlay").unwrap().contains("Ring"));
        assert_eq!(idx.methods[&("Ring".into(), "owner_of".into())].len(), 1);
    }

    #[test]
    fn signatures_parse_params_returns_and_bounds() {
        let (_, idx) = index(
            "struct Ring;\n\
             fn route<O: Overlay>(ring: &O, key: u64, r: &mut impl Rng) -> Ring { Ring }\n",
        );
        let sig = &idx.sigs[0];
        assert_eq!(
            sig.params[0],
            ("ring".into(), TypeRef::Generic("Overlay".into()))
        );
        assert_eq!(sig.params[1], ("key".into(), TypeRef::Named("u64".into())));
        assert_eq!(sig.params[2], ("r".into(), TypeRef::Generic("Rng".into())));
        assert_eq!(sig.ret, TypeRef::Named("Ring".into()));
    }

    #[test]
    fn impl_bounds_reach_method_sigs_and_self_ret() {
        let (_, idx) = index(
            "struct Engine;\n\
             impl<T: Transport> Engine {\n  fn with(t: &mut T) -> Self { Engine }\n}\n",
        );
        let sig = &idx.sigs[0];
        assert_eq!(
            sig.params[0],
            ("t".into(), TypeRef::Generic("Transport".into()))
        );
        assert_eq!(sig.ret, TypeRef::SelfTy);
    }

    #[test]
    fn where_clause_and_path_types() {
        let (_, idx) = index("fn run<O>(ring: &O, cfg: dhs_core::Config) where O: Overlay {}\n");
        let sig = &idx.sigs[0];
        assert_eq!(sig.params[0].1, TypeRef::Generic("Overlay".into()));
        assert_eq!(sig.params[1].1, TypeRef::Named("Config".into()));
    }

    #[test]
    fn unbounded_vars_and_tuples_stay_unknown() {
        let (_, idx) = index("fn f<T>(x: T, y: (u64, u64)) {}\n");
        let sig = &idx.sigs[0];
        assert_eq!(
            sig.params,
            vec![
                ("x".into(), TypeRef::Unknown),
                ("y".into(), TypeRef::Unknown),
            ]
        );
    }
}

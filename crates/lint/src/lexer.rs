//! A small hand-rolled Rust lexer — just enough syntax awareness for the
//! rule engine to be trustworthy.
//!
//! The point of lexing (rather than line-regexing) is that the rules must
//! not fire on forbidden tokens inside comments, doc comments, or string
//! literals, and must not miss tokens because of formatting. The lexer
//! handles:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, any hash depth);
//! * char literals vs. lifetimes (`'a'` vs `'a`);
//! * raw identifiers (`r#type` lexes as the identifier `type`);
//! * numeric literals with suffixes (`0xFFu64`, `1_000usize`) — a cast
//!   suffix is *not* an `as` cast and must not confuse the rules.
//!
//! It does not build an AST; rules pattern-match over the token stream.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers are normalized: `r#type` →
    /// `type`).
    Ident(String),
    /// String literal (cooked value, best-effort escape decoding).
    Str(String),
    /// Char literal (`'a'`, `'\n'`); content irrelevant to the rules.
    Char,
    /// Lifetime (`'a`); distinct from `Char` so rules never mix them up.
    Lifetime,
    /// Numeric literal, including any type suffix; carries the raw
    /// source text so range analyses can read the value.
    Num(String),
    /// Single punctuation character (`.`, `(`, `::` is two `:` tokens).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// A comment (line or block) with its starting line — kept out of the
/// token stream but retained for `// dhs-lint: allow(...)` directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw comment text, including the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated constructs (running off the end of the
/// file inside a string or comment) terminate the token quietly — the
/// lint must degrade gracefully on code that `rustc` would reject anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: Tok, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, false),
                'r' | 'b' => self.raw_or_ident(line),
                '\'' => self.char_or_lifetime(line),
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// `"…"` (or the tail of `b"…"`): cooked string with escapes.
    fn string(&mut self, line: u32, _byte: bool) {
        self.bump(); // opening quote
        let mut value = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    // Decode the common escapes; keep unknown ones raw so
                    // the value is still usable for set membership.
                    match self.bump() {
                        Some('n') => value.push('\n'),
                        Some('t') => value.push('\t'),
                        Some('r') => value.push('\r'),
                        Some('0') => value.push('\0'),
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('\'') => value.push('\''),
                        Some('\n') => { /* line-continuation: skip */ }
                        Some(other) => {
                            value.push('\\');
                            value.push(other);
                        }
                        None => break,
                    }
                }
                c => value.push(c),
            }
        }
        self.push(Tok::Str(value), line);
    }

    /// Disambiguate `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, `r#ident`,
    /// and plain identifiers starting with `r`/`b`.
    fn raw_or_ident(&mut self, line: u32) {
        let first = self.peek(0).unwrap_or('r');
        let mut ahead = 1;
        // `br` / `rb` prefix handling: at most one extra prefix char.
        if (first == 'b' && self.peek(1) == Some('r'))
            || (first == 'r' && self.peek(1) == Some('b'))
        {
            ahead = 2;
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(ahead + hashes) {
            Some('"') => {
                // Raw (or byte) string: consume prefix, hashes, quote.
                for _ in 0..(ahead + hashes + 1) {
                    self.bump();
                }
                let mut value = String::new();
                'outer: while let Some(c) = self.bump() {
                    if c == '"' {
                        // A closing quote must be followed by `hashes` #s.
                        for h in 0..hashes {
                            if self.peek(h) != Some('#') {
                                value.push('"');
                                continue 'outer;
                            }
                        }
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                    value.push(c);
                }
                self.push(Tok::Str(value), line);
            }
            Some('\'') if first == 'b' && hashes == 0 && ahead == 1 => {
                // Byte char b'x'.
                self.bump(); // b
                self.char_or_lifetime(line);
            }
            _ if first == 'r' && hashes == 1 && ahead == 1 => {
                // Raw identifier r#ident: normalize to the bare name.
                self.bump(); // r
                self.bump(); // #
                self.ident(line);
            }
            _ => self.ident(line),
        }
    }

    /// `'a'` / `'\n'` (char) vs `'a` / `'static` (lifetime).
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.peek(0) {
                    // \u{…} and similar: run to the closing quote.
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a / 'abc (lifetime).
                let mut len = 0;
                while self
                    .peek(len)
                    .map(|c| is_ident_start(c) || c.is_ascii_digit())
                    .unwrap_or(false)
                {
                    len += 1;
                }
                if self.peek(len) == Some('\'') {
                    for _ in 0..=len {
                        self.bump();
                    }
                    self.push(Tok::Char, line);
                } else {
                    for _ in 0..len {
                        self.bump();
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or '0'.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::Char, line);
            }
            None => {}
        }
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_start(c) || c.is_ascii_digit() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if name.is_empty() {
            // Defensive: avoid an infinite loop on unexpected input.
            self.bump();
            return;
        }
        self.push(Tok::Ident(name), line);
    }

    fn number(&mut self, line: u32) {
        // Digits, hex/bin/oct bodies, `_` separators, type suffixes; one
        // decimal point only when followed by a digit (so `0..8` stays a
        // range, not a float).
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let in_number = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false));
            if !in_number {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::Num(text), line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn strs(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Str(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // HashMap here\n/* also HashMap /* nested */ here */ let y = 2;");
        assert!(idents("// HashMap\nfoo").contains(&"foo".to_string()));
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(s) if s == "HashMap")));
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn nested_block_comment_terminates_correctly() {
        let l = lex("/* a /* b */ c */ after");
        assert_eq!(idents("/* a /* b */ c */ after"), vec!["after"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        assert_eq!(
            strs(r#"call("as u16 SystemTime")"#),
            vec!["as u16 SystemTime"]
        );
        assert!(!idents(r#"x("SystemTime")"#).contains(&"SystemTime".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        assert_eq!(strs(r##"r#"quote " inside"#"##), vec![r#"quote " inside"#]);
        assert_eq!(strs(r#"r"plain raw""#), vec!["plain raw"]);
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(strs(r#""a\nb\"c""#), vec!["a\nb\"c"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("let c = 'x'; fn f<'a>(v: &'a str) {} let n = '\\n';");
        let chars = l.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        let lifetimes = l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn raw_identifier_normalizes() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numeric_suffix_is_one_token() {
        let l = lex("let x = 0xFFu64 + 1_000usize; let r = 0..8;");
        // No `usize` identifier token may appear out of the suffix.
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(s) if s == "usize" || s == "u64")));
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\n  c");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}

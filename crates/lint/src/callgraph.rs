//! Workspace-wide call-graph construction over [`crate::items`].
//!
//! Resolution is heuristic but honest about it:
//!
//! * **Path-qualified calls** (`Type::name(...)`, `Self::name(...)`)
//!   resolve against the `(self_type, name)` table.
//! * **`self.name(...)` method calls** resolve to the method of the
//!   enclosing impl's self-type when it exists.
//! * **Free calls** resolve by bare name: exactly one workspace fn of
//!   that name → a *resolved* edge; several → an *ambiguous* edge set.
//! * **Other method calls** (`x.name(...)`, receiver not literally
//!   `self`) are *never* certain — the receiver's type is unknown, so
//!   even a unique same-named workspace method only yields ambiguous
//!   edges. (Otherwise `fn clear(&mut self) { self.entries.clear() }`
//!   would fabricate a self-loop.) Ambiguous edges are reported
//!   separately and used only where over-approximation is safe (taint
//!   propagation), never where it would fabricate findings (recursion
//!   cycles).
//!
//! Calls to names not defined in the scanned set (std, shims, …) are
//! external and ignored — except that the flow rules themselves scan
//! bodies for the specific external tokens they care about
//! (`thread_rng`, `.gen_range(`, …).

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{is_call_at, FileItems};
use crate::lexer::Tok;

/// A function's global id: index into [`CallGraph::fns`].
pub type FnId = usize;

/// Where a global fn lives: `(file index, fn index within the file)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
}

/// The workspace call graph: non-test library fns as nodes, resolved
/// and ambiguous call edges, plus resolution statistics.
#[derive(Debug)]
pub struct CallGraph {
    /// Global fn table, in (file, source) order — deterministic.
    pub fns: Vec<FnRef>,
    /// Resolved callees per fn (exactly one candidate matched).
    pub callees: Vec<BTreeSet<FnId>>,
    /// Ambiguous callee candidates per fn (several matched; the edge
    /// over-approximates).
    pub ambiguous: Vec<BTreeSet<FnId>>,
    /// Number of call *sites* that resolved ambiguously.
    pub ambiguous_sites: usize,
}

impl CallGraph {
    /// Build the graph over every non-test fn of the given files.
    pub fn build(files: &[FileItems]) -> CallGraph {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.fns.iter().enumerate() {
                if !f.is_test {
                    fns.push(FnRef { file: fi, item: ii });
                }
            }
        }
        // Name tables. Bare name → candidate ids; (self_type, name) →
        // candidate ids (an impl type can span several blocks/crates).
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        for (id, r) in fns.iter().enumerate() {
            let f = &files[r.file].fns[r.item];
            by_name.entry(&f.name).or_default().push(id);
            if let Some(t) = &f.self_type {
                by_qual.entry((t, &f.name)).or_default().push(id);
            }
        }

        let mut callees = vec![BTreeSet::new(); fns.len()];
        let mut ambiguous = vec![BTreeSet::new(); fns.len()];
        let mut ambiguous_sites = 0usize;
        for (id, r) in fns.iter().enumerate() {
            let file = &files[r.file];
            let f = &file.fns[r.item];
            let Some((open, close)) = f.body else {
                continue;
            };
            let toks = &file.tokens;
            for j in open + 1..close {
                if !is_call_at(toks, j) {
                    continue;
                }
                let Tok::Ident(name) = &toks[j].kind else {
                    continue;
                };
                let (candidates, certain) =
                    resolve(toks, j, name, f.self_type.as_deref(), &by_name, &by_qual);
                if candidates.is_empty() {
                    continue;
                }
                if certain && candidates.len() == 1 {
                    callees[id].insert(candidates[0]);
                } else {
                    ambiguous_sites += 1;
                    ambiguous[id].extend(candidates);
                }
            }
        }

        CallGraph {
            fns,
            callees,
            ambiguous,
            ambiguous_sites,
        }
    }

    /// Callers of each fn over the union of resolved and ambiguous
    /// edges (the safe direction for taint propagation).
    pub fn reverse_over_approx(&self) -> Vec<BTreeSet<FnId>> {
        let mut rev = vec![BTreeSet::new(); self.fns.len()];
        for (caller, outs) in self.callees.iter().enumerate() {
            for &c in outs {
                rev[c].insert(caller);
            }
        }
        for (caller, outs) in self.ambiguous.iter().enumerate() {
            for &c in outs {
                rev[c].insert(caller);
            }
        }
        rev
    }

    /// Strongly connected components over the *resolved* edges only
    /// (ambiguous edges would fabricate cycles). Returned in a
    /// deterministic order; singleton components are included only when
    /// they carry a self-loop.
    pub fn recursive_components(&self) -> Vec<Vec<FnId>> {
        // Iterative Tarjan.
        let n = self.fns.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<FnId> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<FnId>> = Vec::new();

        // Explicit DFS stack: (node, iterator position over callees).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut dfs: Vec<(FnId, Vec<FnId>, usize)> = Vec::new();
            let succ: Vec<FnId> = self.callees[start].iter().copied().collect();
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            dfs.push((start, succ, 0));
            while let Some((v, succs, pos)) = dfs.last_mut() {
                if *pos < succs.len() {
                    let w = succs[*pos];
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        let wsucc: Vec<FnId> = self.callees[w].iter().copied().collect();
                        dfs.push((w, wsucc, 0));
                    } else if on_stack[w] {
                        let v = *v;
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    let v = *v;
                    dfs.pop();
                    if let Some((parent, _, _)) = dfs.last() {
                        let p = *parent;
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        let is_cycle = comp.len() > 1
                            || (comp.len() == 1 && self.callees[comp[0]].contains(&comp[0]));
                        if is_cycle {
                            out.push(comp);
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }
}

/// Candidate callees for the call whose head ident sits at `j`, plus
/// whether the resolution is *certain* (may become a resolved edge) or
/// inherently uncertain (ambiguous edges only).
fn resolve(
    toks: &[crate::lexer::Token],
    j: usize,
    name: &str,
    self_type: Option<&str>,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    by_qual: &BTreeMap<(&str, &str), Vec<FnId>>,
) -> (Vec<FnId>, bool) {
    let prev = |k: usize| toks.get(j.wrapping_sub(k)).map(|t| &t.kind);
    // `Qual::name(...)`.
    if prev(1) == Some(&Tok::Punct(':')) && prev(2) == Some(&Tok::Punct(':')) {
        if let Some(Tok::Ident(q)) = prev(3) {
            let qual: &str = if q == "Self" {
                match self_type {
                    Some(t) => t,
                    None => return (Vec::new(), true),
                }
            } else {
                q
            };
            if let Some(c) = by_qual.get(&(qual, name)) {
                return (dedup(c), true);
            }
            // `module::free_fn(...)`: fall back to free fns by name.
            return (free_candidates(name, by_name), true);
        }
        return (Vec::new(), true);
    }
    // `recv.name(...)`.
    if prev(1) == Some(&Tok::Punct('.')) {
        // `self.name(...)`: the enclosing impl's own method, if any.
        if let (Some(Tok::Ident(r)), Some(t)) = (prev(2), self_type) {
            if r == "self" && prev(3) != Some(&Tok::Punct('.')) {
                if let Some(c) = by_qual.get(&(t, name)) {
                    return (dedup(c), true);
                }
            }
        }
        // Unknown receiver type: never certain.
        let c = by_name.get(name).map(|c| dedup(c)).unwrap_or_default();
        return (c, false);
    }
    // Free call.
    (free_candidates(name, by_name), true)
}

/// Free-call candidates: prefer fns without a self type; fall back to
/// methods of that name (associated fns brought into scope via `use`).
fn free_candidates(name: &str, by_name: &BTreeMap<&str, Vec<FnId>>) -> Vec<FnId> {
    by_name.get(name).map(|c| dedup(c)).unwrap_or_default()
}

fn dedup(ids: &[FnId]) -> Vec<FnId> {
    let set: BTreeSet<FnId> = ids.iter().copied().collect();
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;

    fn graph(files: &[(&str, &str)]) -> (Vec<FileItems>, CallGraph) {
        let parsed: Vec<FileItems> = files.iter().map(|(p, s)| parse_items(p, s)).collect();
        let g = CallGraph::build(&parsed);
        (parsed, g)
    }

    fn id_of(files: &[FileItems], g: &CallGraph, qual: &str) -> FnId {
        g.fns
            .iter()
            .position(|r| files[r.file].fns[r.item].qual_name == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn free_calls_resolve_uniquely() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "fn leaf() {}\nfn caller() { leaf(); }\n",
        )]);
        let caller = id_of(&files, &g, "caller");
        let leaf = id_of(&files, &g, "leaf");
        assert!(g.callees[caller].contains(&leaf));
        assert_eq!(g.ambiguous_sites, 0);
    }

    #[test]
    fn self_method_calls_resolve_to_own_impl() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct A;\nimpl A {\n  fn step(&self) {}\n  fn run(&self) { self.step() }\n}\n\
             struct B;\nimpl B {\n  fn step(&self) {}\n}\n",
        )]);
        let run = id_of(&files, &g, "A::run");
        let a_step = id_of(&files, &g, "A::step");
        assert_eq!(
            g.callees[run].iter().copied().collect::<Vec<_>>(),
            vec![a_step]
        );
    }

    #[test]
    fn foreign_method_calls_are_ambiguous() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct A;\nimpl A {\n  fn step(&self) {}\n}\n\
             struct B;\nimpl B {\n  fn step(&self) {}\n}\n\
             fn drive(x: &A) { x.step() }\n",
        )]);
        let drive = id_of(&files, &g, "drive");
        assert!(g.callees[drive].is_empty());
        assert_eq!(g.ambiguous[drive].len(), 2);
        assert_eq!(g.ambiguous_sites, 1);
    }

    #[test]
    fn field_method_of_same_name_is_not_a_self_loop() {
        // `self.entries.clear()` inside `Cache::clear` must not become
        // a resolved self-edge — the receiver is the field, not self.
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct Cache { entries: Vec<u8> }\nimpl Cache {\n  \
             fn clear(&mut self) { self.entries.clear() }\n}\n",
        )]);
        let clear = id_of(&files, &g, "Cache::clear");
        assert!(g.callees[clear].is_empty());
        assert!(g.recursive_components().is_empty());
        // It still counts as an uncertain site and an ambiguous edge.
        assert_eq!(g.ambiguous_sites, 1);
        assert!(g.ambiguous[clear].contains(&clear));
    }

    #[test]
    fn recursion_components_found() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "fn ping() { pong() }\nfn pong() { ping() }\nfn solo() { solo() }\nfn leaf() {}\n",
        )]);
        let comps = g.recursive_components();
        assert_eq!(comps.len(), 2);
        let ping = id_of(&files, &g, "ping");
        let pong = id_of(&files, &g, "pong");
        let solo = id_of(&files, &g, "solo");
        assert!(comps.contains(&vec![ping, pong]));
        assert!(comps.contains(&vec![solo]));
    }

    #[test]
    fn path_qualified_calls_resolve() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct Ring;\nimpl Ring {\n  fn build() {}\n}\n\
             fn setup() { Ring::build() }\n",
        )]);
        let setup = id_of(&files, &g, "setup");
        let build = id_of(&files, &g, "Ring::build");
        assert!(g.callees[setup].contains(&build));
    }
}

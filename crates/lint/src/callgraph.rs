//! Workspace-wide call-graph construction over [`crate::items`],
//! resolved with the receiver-type model of [`crate::types`] /
//! [`crate::resolve`].
//!
//! Every call site is classified (see [`SiteKind`]):
//!
//! * **Resolved** — a unique type-justified callee: free calls with one
//!   workspace match, `Type::name(...)`/`Self::name(...)` against the
//!   `(self_type, name)` table, and `recv.name(...)` where the
//!   receiver's type head is inferable (params, `self`, let bindings,
//!   field chains, call returns) and names exactly one impl.
//! * **Dispatch** — a type-justified *set*: a trait-bound receiver
//!   dispatching over the trait's workspace implementors, or a type
//!   name defined in several impl blocks.
//! * **External** — the receiver type is known and the method is not a
//!   workspace fn (`Vec::push`, foreign-trait methods like
//!   `Rng::gen_range`). Counted only when the bare name collides with
//!   workspace fns — i.e. where the old name-based graph would have
//!   fabricated ambiguous edges.
//! * **Ambiguous** — the receiver's type is not inferable; the old
//!   name-based candidate fallback, reported separately and used only
//!   where over-approximation is safe (taint propagation), never where
//!   it would fabricate findings (recursion cycles).
//!
//! Calls to names not defined in the scanned set (std, shims, …) with
//! no workspace collision are external and invisible — except that the
//! flow rules themselves scan bodies for the specific external tokens
//! they care about (`thread_rng`, `.gen_range(`, …).

use std::collections::BTreeSet;

use crate::items::FileItems;
use crate::resolve::{CallSite, ResolutionStats, Resolver, SiteKind};
use crate::types::TypeIndex;

/// A function's global id: index into [`CallGraph::fns`].
pub type FnId = usize;

/// Where a global fn lives: `(file index, fn index within the file)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
}

/// The workspace call graph: non-test library fns as nodes, typed
/// resolved/dispatch edges plus the name-based ambiguous remainder.
#[derive(Debug)]
pub struct CallGraph {
    /// Global fn table, in (file, source) order — deterministic.
    pub fns: Vec<FnRef>,
    /// Uniquely resolved callees per fn.
    pub callees: Vec<BTreeSet<FnId>>,
    /// Type-justified dispatch sets per fn (trait-bound receivers over
    /// their workspace implementors).
    pub dispatch: Vec<BTreeSet<FnId>>,
    /// Ambiguous callee candidates per fn (receiver type unknown; the
    /// edge over-approximates).
    pub ambiguous: Vec<BTreeSet<FnId>>,
    /// Every classified call site, in deterministic (fn, token) order.
    pub sites: Vec<CallSite>,
    /// Site counts per [`SiteKind`] — the resolution-rate ratchet.
    pub stats: ResolutionStats,
    /// Number of call *sites* that resolved ambiguously.
    pub ambiguous_sites: usize,
    /// The type index the graph was resolved against.
    pub types: TypeIndex,
}

impl CallGraph {
    /// The global fn table: every non-test fn of the given files, in
    /// (file, source) order.
    pub fn fn_table(files: &[FileItems]) -> Vec<FnRef> {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.fns.iter().enumerate() {
                if !f.is_test {
                    fns.push(FnRef { file: fi, item: ii });
                }
            }
        }
        fns
    }

    /// Build the graph over every non-test fn of the given files.
    pub fn build(files: &[FileItems]) -> CallGraph {
        let fns = Self::fn_table(files);
        let types = TypeIndex::build(files, &fns);
        let resolver = Resolver::new(files, &fns, &types);

        let mut callees = vec![BTreeSet::new(); fns.len()];
        let mut dispatch = vec![BTreeSet::new(); fns.len()];
        let mut ambiguous = vec![BTreeSet::new(); fns.len()];
        let mut sites = Vec::new();
        let mut stats = ResolutionStats::default();
        for id in 0..fns.len() {
            let (fn_sites, closure_typed) = resolver.resolve_fn(id);
            stats.closure_typed += closure_typed;
            for site in fn_sites {
                match site.kind {
                    SiteKind::Resolved => {
                        stats.resolved += 1;
                        callees[id].extend(site.candidates.iter().copied());
                    }
                    SiteKind::Dispatch => {
                        stats.dispatch += 1;
                        dispatch[id].extend(site.candidates.iter().copied());
                    }
                    SiteKind::External => stats.external += 1,
                    SiteKind::Ambiguous => {
                        stats.ambiguous += 1;
                        ambiguous[id].extend(site.candidates.iter().copied());
                    }
                }
                sites.push(site);
            }
        }

        CallGraph {
            fns,
            callees,
            dispatch,
            ambiguous,
            sites,
            ambiguous_sites: stats.ambiguous,
            stats,
            types,
        }
    }

    /// Callers of each fn over the union of resolved, dispatch, and
    /// ambiguous edges (the safe direction for taint propagation).
    pub fn reverse_over_approx(&self) -> Vec<BTreeSet<FnId>> {
        let mut rev = vec![BTreeSet::new(); self.fns.len()];
        for edges in [&self.callees, &self.dispatch, &self.ambiguous] {
            for (caller, outs) in edges.iter().enumerate() {
                for &c in outs {
                    rev[c].insert(caller);
                }
            }
        }
        rev
    }

    /// Forward edges of each fn over the union of resolved, dispatch,
    /// and ambiguous edges.
    pub fn forward_over_approx(&self) -> Vec<BTreeSet<FnId>> {
        let mut fwd = vec![BTreeSet::new(); self.fns.len()];
        for edges in [&self.callees, &self.dispatch, &self.ambiguous] {
            for (caller, outs) in edges.iter().enumerate() {
                fwd[caller].extend(outs.iter().copied());
            }
        }
        fwd
    }

    /// Strongly connected components over the *resolved* edges only
    /// (dispatch and ambiguous edges would fabricate cycles). Returned
    /// in a deterministic order; singleton components are included only
    /// when they carry a self-loop.
    pub fn recursive_components(&self) -> Vec<Vec<FnId>> {
        // Iterative Tarjan.
        let n = self.fns.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<FnId> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<FnId>> = Vec::new();

        // Explicit DFS stack: (node, iterator position over callees).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut dfs: Vec<(FnId, Vec<FnId>, usize)> = Vec::new();
            let succ: Vec<FnId> = self.callees[start].iter().copied().collect();
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            dfs.push((start, succ, 0));
            while let Some((v, succs, pos)) = dfs.last_mut() {
                if *pos < succs.len() {
                    let w = succs[*pos];
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        let wsucc: Vec<FnId> = self.callees[w].iter().copied().collect();
                        dfs.push((w, wsucc, 0));
                    } else if on_stack[w] {
                        let v = *v;
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    let v = *v;
                    dfs.pop();
                    if let Some((parent, _, _)) = dfs.last() {
                        let p = *parent;
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        let is_cycle = comp.len() > 1
                            || (comp.len() == 1 && self.callees[comp[0]].contains(&comp[0]));
                        if is_cycle {
                            out.push(comp);
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;

    fn graph(files: &[(&str, &str)]) -> (Vec<FileItems>, CallGraph) {
        let parsed: Vec<FileItems> = files.iter().map(|(p, s)| parse_items(p, s)).collect();
        let g = CallGraph::build(&parsed);
        (parsed, g)
    }

    fn id_of(files: &[FileItems], g: &CallGraph, qual: &str) -> FnId {
        g.fns
            .iter()
            .position(|r| files[r.file].fns[r.item].qual_name == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn free_calls_resolve_uniquely() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "fn leaf() {}\nfn caller() { leaf(); }\n",
        )]);
        let caller = id_of(&files, &g, "caller");
        let leaf = id_of(&files, &g, "leaf");
        assert!(g.callees[caller].contains(&leaf));
        assert_eq!(g.ambiguous_sites, 0);
    }

    #[test]
    fn self_method_calls_resolve_to_own_impl() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct A;\nimpl A {\n  fn step(&self) {}\n  fn run(&self) { self.step() }\n}\n\
             struct B;\nimpl B {\n  fn step(&self) {}\n}\n",
        )]);
        let run = id_of(&files, &g, "A::run");
        let a_step = id_of(&files, &g, "A::step");
        assert_eq!(
            g.callees[run].iter().copied().collect::<Vec<_>>(),
            vec![a_step]
        );
    }

    #[test]
    fn typed_param_receivers_resolve_uniquely() {
        // Pre-dhs-types this was the canonical ambiguous site: two
        // structs share a method name, but `x: &A` picks one.
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct A;\nimpl A {\n  fn step(&self) {}\n}\n\
             struct B;\nimpl B {\n  fn step(&self) {}\n}\n\
             fn drive(x: &A) { x.step() }\n",
        )]);
        let drive = id_of(&files, &g, "drive");
        let a_step = id_of(&files, &g, "A::step");
        assert_eq!(
            g.callees[drive].iter().copied().collect::<Vec<_>>(),
            vec![a_step]
        );
        assert!(g.ambiguous[drive].is_empty());
        assert_eq!(g.ambiguous_sites, 0);
        assert_eq!(g.stats.ambiguous, 0);
    }

    #[test]
    fn unknown_receivers_stay_ambiguous() {
        // A tuple-destructured binding has no inferable head: the site
        // falls back to the name-based candidate set.
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct A;\nimpl A {\n  fn step(&self) {}\n}\n\
             struct B;\nimpl B {\n  fn step(&self) {}\n}\n\
             fn drive(pair: (A, B)) { pair.0.step() }\n",
        )]);
        let drive = id_of(&files, &g, "drive");
        assert!(g.callees[drive].is_empty());
        assert_eq!(g.ambiguous[drive].len(), 2);
        assert_eq!(g.ambiguous_sites, 1);
    }

    #[test]
    fn field_method_of_same_name_is_not_a_self_loop() {
        // `self.entries.clear()` inside `Cache::clear` must not become
        // a resolved self-edge — the receiver is the Vec field, which
        // the type model now proves external.
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct Cache { entries: Vec<u8> }\nimpl Cache {\n  \
             fn clear(&mut self) { self.entries.clear() }\n}\n",
        )]);
        let clear = id_of(&files, &g, "Cache::clear");
        assert!(g.callees[clear].is_empty());
        assert!(g.ambiguous[clear].is_empty());
        assert!(g.recursive_components().is_empty());
        // The name collides with a workspace fn, so the proof that the
        // call leaves the workspace is counted as an External site.
        assert_eq!(g.stats.external, 1);
        assert_eq!(g.ambiguous_sites, 0);
    }

    #[test]
    fn trait_bound_receivers_dispatch_over_implementors() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "trait Overlay {\n  fn owner_of(&self) -> u64;\n}\n\
             struct Ring;\nimpl Overlay for Ring {\n  fn owner_of(&self) -> u64 { 1 }\n}\n\
             struct Star;\nimpl Overlay for Star {\n  fn owner_of(&self) -> u64 { 2 }\n}\n\
             fn route<O: Overlay>(o: &O) { o.owner_of(); }\n",
        )]);
        let route = id_of(&files, &g, "route");
        let ring = id_of(&files, &g, "Ring::owner_of");
        let star = id_of(&files, &g, "Star::owner_of");
        assert!(g.callees[route].is_empty());
        assert!(g.dispatch[route].contains(&ring) && g.dispatch[route].contains(&star));
        assert_eq!(g.stats.dispatch, 1);
        assert_eq!(g.ambiguous_sites, 0);
    }

    #[test]
    fn let_bindings_and_chained_calls_type_receivers() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct Lab;\nimpl Lab {\n  fn pop(&mut self) {}\n}\n\
             struct Engine { lab: Lab }\nimpl Engine {\n  fn lab(&mut self) -> Lab { Lab }\n}\n\
             struct Other;\nimpl Other {\n  fn pop(&mut self) {}\n}\n\
             fn run(e: &mut Engine) {\n  let l = e.lab();\n  l.pop();\n  e.lab().pop();\n}\n",
        )]);
        let run = id_of(&files, &g, "run");
        let lab_pop = id_of(&files, &g, "Lab::pop");
        let lab_fn = id_of(&files, &g, "Engine::lab");
        assert!(g.callees[run].contains(&lab_pop));
        assert!(g.callees[run].contains(&lab_fn));
        assert!(g.ambiguous[run].is_empty());
        assert_eq!(g.ambiguous_sites, 0);
    }

    #[test]
    fn recursion_components_found() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "fn ping() { pong() }\nfn pong() { ping() }\nfn solo() { solo() }\nfn leaf() {}\n",
        )]);
        let comps = g.recursive_components();
        assert_eq!(comps.len(), 2);
        let ping = id_of(&files, &g, "ping");
        let pong = id_of(&files, &g, "pong");
        let solo = id_of(&files, &g, "solo");
        assert!(comps.contains(&vec![ping, pong]));
        assert!(comps.contains(&vec![solo]));
    }

    #[test]
    fn path_qualified_calls_resolve() {
        let (files, g) = graph(&[(
            "crates/core/src/a.rs",
            "struct Ring;\nimpl Ring {\n  fn build() {}\n}\n\
             fn setup() { Ring::build() }\n",
        )]);
        let setup = id_of(&files, &g, "setup");
        let build = id_of(&files, &g, "Ring::build");
        assert!(g.callees[setup].contains(&build));
    }
}

//! Interprocedural flow rules over the [`crate::callgraph`].
//!
//! Rule catalog (ids are what `// dhs-flow: allow(<rule>)` takes):
//!
//! | id               | guards against                                          |
//! |------------------|---------------------------------------------------------|
//! | `entropy-taint`  | protocol entry points transitively reaching wall clocks |
//! |                  | or OS entropy (`thread_rng`, `from_entropy`, …)         |
//! | `rng-plumbing`   | library fns drawing from an RNG they own instead of a   |
//! |                  | caller-supplied `&mut impl Rng`                         |
//! | `dropped-result` | discarded `Result`s from `Transport`/store/retry APIs:  |
//! |                  | `let _ =`, statement-position calls, and bindings that  |
//! |                  | are never read again (bound-then-unused)                |
//! | `recursion-bound`| call-graph cycles without a `dhs-flow: cycle-ok(reason)`|
//! |                  | annotation on every participating fn                    |
//!
//! Scope: library sources of non-exempt crates; `#[cfg(test)]` extents
//! and test/example targets are out. Taint propagates over resolved
//! *and* ambiguous call edges (over-approximation is safe for taint);
//! recursion detection uses resolved edges only (over-approximation
//! would fabricate cycles).

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, FnId};
use crate::items::{parse_items, FileItems};
use crate::lexer::{Tok, Token};
use crate::rules::Finding;

/// Prefixes that mark a fn as a protocol/simulation entry point for
/// `entropy-taint` (paper Alg. 1 surfaces plus the sim drivers).
pub const ENTRY_PREFIXES: &[&str] = &[
    "insert", "count", "route", "refresh", "repair", "run", "exchange", "simulate",
];

/// RNG draw methods: a call to any of these is "drawing".
pub(crate) const DRAW_METHODS: &[&str] = &[
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "sample",
    "fill",
    "shuffle",
    "choose",
];

/// Result-returning APIs whose discard is always suspicious, even when
/// the workspace item table cannot see them (trait objects, generics).
const RESULT_APIS: &[&str] = &["exchange", "routed_exchange", "with_retry"];

/// Summary statistics of one flow run (rendered into the report's
/// trailing JSONL line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStats {
    /// Library files parsed.
    pub files_scanned: usize,
    /// Non-test fns in the call graph.
    pub functions: usize,
    /// Resolved call edges.
    pub resolved_edges: usize,
    /// Type-justified dispatch edges.
    pub dispatch_edges: usize,
    /// Call sites with a unique type-justified callee.
    pub sites_resolved: usize,
    /// Call sites with a type-justified dispatch set.
    pub sites_dispatch: usize,
    /// Call sites proven external despite workspace name collisions.
    pub sites_external: usize,
    /// Call sites that resolved ambiguously (name-based fallback).
    pub ambiguous_calls: usize,
    /// Closure parameters element-typed by the resolver's adapter and
    /// annotation passes.
    pub closure_typed_sites: usize,
    /// Fns reachable from the machine modules whose bodies the
    /// rng-draw-parity pass analyzed.
    pub draw_parity_fns: usize,
    /// Narrowing casts the cast-range interval pass proved in-range.
    pub casts_proven_safe: usize,
}

impl FlowStats {
    /// Total classified call sites.
    pub fn sites_total(&self) -> usize {
        self.sites_resolved + self.sites_dispatch + self.sites_external + self.ambiguous_calls
    }

    /// Share of sites with a type-justified outcome, in basis points
    /// (integer, so the stat is byte-stable in reports).
    pub fn resolution_rate_bp(&self) -> usize {
        let total = self.sites_total();
        if total == 0 {
            return 10_000;
        }
        (total - self.ambiguous_calls) * 10_000 / total
    }
}

/// Run the flow analysis over `(path, source)` pairs. Paths select
/// scope via [`crate::rules::classify`]; non-library and exempt files
/// are skipped. Returns sorted, deduplicated findings plus stats.
pub fn flow_files(inputs: &[(String, String)]) -> (Vec<Finding>, FlowStats) {
    let files: Vec<FileItems> = inputs
        .iter()
        .map(|(p, s)| parse_items(p, s))
        .filter(|f| crate::rules::flow_scope(&f.class))
        .collect();
    let graph = CallGraph::build(&files);

    let mut findings = Vec::new();
    entropy_taint(&files, &graph, &mut findings);
    rng_plumbing(&files, &graph, &mut findings);
    dropped_result(&files, &graph, &mut findings);
    recursion_bound(&files, &graph, &mut findings);
    crate::protocol::check(&files, &graph, &mut findings);
    let draw_parity_fns = crate::absint::draw_parity(&files, &graph, &mut findings);
    let casts_proven_safe = crate::absint::cast_range(&files, &mut findings);
    findings.sort();
    findings.dedup();

    let stats = FlowStats {
        files_scanned: files.len(),
        functions: graph.fns.len(),
        resolved_edges: graph.callees.iter().map(|c| c.len()).sum(),
        dispatch_edges: graph.dispatch.iter().map(|c| c.len()).sum(),
        sites_resolved: graph.stats.resolved,
        sites_dispatch: graph.stats.dispatch,
        sites_external: graph.stats.external,
        ambiguous_calls: graph.ambiguous_sites,
        closure_typed_sites: graph.stats.closure_typed,
        draw_parity_fns,
        casts_proven_safe,
    };
    (findings, stats)
}

fn qual<'a>(files: &'a [FileItems], g: &CallGraph, id: FnId) -> &'a str {
    let r = g.fns[id];
    &files[r.file].fns[r.item].qual_name
}

fn line_snippet(files: &[FileItems], g: &CallGraph, id: FnId) -> (String, u32, String) {
    let r = g.fns[id];
    let f = &files[r.file].fns[r.item];
    let snippet = files[r.file]
        .lines
        .get(f.line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default();
    (files[r.file].path.clone(), f.line, snippet)
}

// ---------------------------------------------------------------------
// entropy-taint
// ---------------------------------------------------------------------

/// The entropy/wall-clock source directly used by a fn body, if any.
fn direct_source(toks: &[Token], open: usize, close: usize) -> Option<&'static str> {
    for i in open + 1..close {
        match &toks[i].kind {
            Tok::Ident(s) if s == "thread_rng" => return Some("thread_rng"),
            Tok::Ident(s) if s == "from_entropy" => return Some("from_entropy"),
            Tok::Ident(s) if s == "SystemTime" => return Some("SystemTime"),
            Tok::Ident(s)
                if s == "Instant"
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                    && toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                    && crate::rules::is_ident_at(toks, i + 3, "now") =>
            {
                return Some("Instant::now");
            }
            _ => {}
        }
    }
    None
}

fn entropy_taint(files: &[FileItems], g: &CallGraph, out: &mut Vec<Finding>) {
    let n = g.fns.len();
    let mut source: Vec<Option<&'static str>> = vec![None; n];
    for (id, r) in g.fns.iter().enumerate() {
        let file = &files[r.file];
        if let Some((open, close)) = file.fns[r.item].body {
            source[id] = direct_source(&file.tokens, open, close);
        }
    }
    // Fixpoint over callers: a fn calling a tainted fn is tainted.
    let rev = g.reverse_over_approx();
    let mut tainted: Vec<bool> = source.iter().map(|s| s.is_some()).collect();
    let mut work: Vec<FnId> = (0..n).filter(|&i| tainted[i]).collect();
    while let Some(v) = work.pop() {
        for &caller in &rev[v] {
            if !tainted[caller] {
                tainted[caller] = true;
                work.push(caller);
            }
        }
    }

    for id in 0..n {
        if !tainted[id] {
            continue;
        }
        let r = g.fns[id];
        let f = &files[r.file].fns[r.item];
        if !ENTRY_PREFIXES.iter().any(|p| f.name.starts_with(p)) {
            continue;
        }
        if f.allows("entropy-taint") {
            continue;
        }
        let (path, line, _) = line_snippet(files, g, id);
        let chain = witness_chain(files, g, id, &source, &tainted);
        out.push(Finding {
            path,
            line,
            rule: "entropy-taint",
            snippet: chain,
        });
    }
}

/// Deterministic witness: a shortest path (BFS, ids ascending) from
/// `entry` to some fn with a direct entropy source.
fn witness_chain(
    files: &[FileItems],
    g: &CallGraph,
    entry: FnId,
    source: &[Option<&'static str>],
    tainted: &[bool],
) -> String {
    let mut prev: Vec<Option<FnId>> = vec![None; g.fns.len()];
    let mut seen = vec![false; g.fns.len()];
    let mut queue = std::collections::VecDeque::new();
    seen[entry] = true;
    queue.push_back(entry);
    let mut hit = None;
    'bfs: while let Some(v) = queue.pop_front() {
        if let Some(label) = source[v] {
            hit = Some((v, label));
            break 'bfs;
        }
        let nexts: BTreeSet<FnId> = g.callees[v]
            .iter()
            .chain(g.dispatch[v].iter())
            .chain(g.ambiguous[v].iter())
            .copied()
            .filter(|&w| tainted[w])
            .collect();
        for w in nexts {
            if !seen[w] {
                seen[w] = true;
                prev[w] = Some(v);
                queue.push_back(w);
            }
        }
    }
    let Some((end, label)) = hit else {
        return format!("entropy reachable from {}", qual(files, g, entry));
    };
    let mut chain = vec![end];
    while let Some(p) = prev[*chain.last().expect("nonempty")] {
        chain.push(p);
    }
    chain.reverse();
    let names: Vec<&str> = chain.iter().map(|&v| qual(files, g, v)).collect();
    format!("entropy: {} -> [{label}]", names.join(" -> "))
}

// ---------------------------------------------------------------------
// rng-plumbing
// ---------------------------------------------------------------------

/// Does the body draw from an RNG (`.gen(`, `.gen_range(`,
/// `.gen::<T>(`, …)?
fn draws(toks: &[Token], open: usize, close: usize) -> bool {
    for i in open + 1..close {
        let Tok::Ident(m) = &toks[i].kind else {
            continue;
        };
        if !DRAW_METHODS.contains(&m.as_str()) {
            continue;
        }
        if i == 0 || toks[i - 1].kind != Tok::Punct('.') {
            continue;
        }
        match toks.get(i + 1).map(|t| &t.kind) {
            Some(Tok::Punct('(')) => return true,
            // Turbofish: `.gen::<u64>()`.
            Some(Tok::Punct(':')) if toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct(':')) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

fn rng_plumbing(files: &[FileItems], g: &CallGraph, out: &mut Vec<Finding>) {
    for (id, r) in g.fns.iter().enumerate() {
        let file = &files[r.file];
        let f = &file.fns[r.item];
        let Some((open, close)) = f.body else {
            continue;
        };
        if f.has_rng_param || f.allows("rng-plumbing") {
            continue;
        }
        if !draws(&file.tokens, open, close) {
            continue;
        }
        let (path, line, snippet) = line_snippet(files, g, id);
        out.push(Finding {
            path,
            line,
            rule: "rng-plumbing",
            snippet,
        });
    }
}

// ---------------------------------------------------------------------
// dropped-result
// ---------------------------------------------------------------------

/// Names whose call results must not be discarded: the hardcoded
/// Transport/retry surface plus every workspace fn name whose parsed
/// candidates all return `Result`.
fn flagged_names(files: &[FileItems], g: &CallGraph) -> BTreeSet<String> {
    let mut yes: BTreeSet<String> = RESULT_APIS.iter().map(|s| s.to_string()).collect();
    let mut no: BTreeSet<String> = BTreeSet::new();
    for r in &g.fns {
        let f = &files[r.file].fns[r.item];
        if f.returns_result {
            yes.insert(f.name.clone());
        } else {
            no.insert(f.name.clone());
        }
    }
    // Mixed-return names are dropped (cannot tell at a call site), but
    // the hardcoded API surface always stays.
    yes.retain(|n| RESULT_APIS.contains(&n.as_str()) || !no.contains(n));
    yes
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn dropped_result(files: &[FileItems], g: &CallGraph, out: &mut Vec<Finding>) {
    let flagged = flagged_names(files, g);
    for r in &g.fns {
        let file = &files[r.file];
        let f = &file.fns[r.item];
        let Some((open, close)) = f.body else {
            continue;
        };
        if f.allows("dropped-result") {
            continue;
        }
        let toks = &file.tokens;
        let mut j = open + 1;
        while j < close {
            // `let [mut] <ident> [: Type] = <expr with a flagged call> ;`
            // A `_` binding is a discard outright; a named binding is a
            // drop when the name never occurs again before the body ends
            // (bound-then-unused — the silent variant `let _ =` hides
            // behind). Re-occurrence anywhere later is accepted as a use:
            // that over-approximates uses under shadowing, which can only
            // suppress findings, never fabricate them.
            if crate::rules::is_ident(&toks[j], "let") {
                // `if let` / `while let` are pattern matches — the
                // result IS being inspected, not dropped.
                let conditional = j >= 1
                    && matches!(&toks[j - 1].kind,
                        Tok::Ident(k) if k == "if" || k == "while");
                let mut p = j + 1;
                if crate::rules::is_ident_at(toks, p, "mut") {
                    p += 1;
                }
                // A binding ident directly followed by `(` or `::` is a
                // tuple-struct/enum pattern (`let Ok(x) = …`), not a
                // name that could silently swallow the value.
                let pattern = toks.get(p + 1).map(|t| &t.kind) == Some(&Tok::Punct('('))
                    || (toks.get(p + 1).map(|t| &t.kind) == Some(&Tok::Punct(':'))
                        && toks.get(p + 2).map(|t| &t.kind) == Some(&Tok::Punct(':')));
                let simple_binding = match toks.get(p).map(|t| &t.kind) {
                    Some(Tok::Ident(n)) if !conditional && !pattern => Some(n.clone()),
                    _ => None,
                };
                // Find the initializer's `=`, skipping an optional type
                // annotation; `;` or `{` first means this isn't a simple
                // initialized binding.
                let eq = simple_binding.as_ref().and_then(|_| {
                    let mut q = p + 1;
                    while q < close {
                        match &toks[q].kind {
                            Tok::Punct('=') => return Some(q),
                            Tok::Punct(';') | Tok::Punct('{') => return None,
                            _ => {}
                        }
                        q += 1;
                    }
                    None
                });
                if let (Some(name), Some(eq)) = (simple_binding, eq) {
                    let mut k = eq + 1;
                    let mut depth = 0usize;
                    let mut culprit = None;
                    while k < close {
                        match &toks[k].kind {
                            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                                depth = depth.saturating_sub(1)
                            }
                            Tok::Punct(';') if depth == 0 => break,
                            Tok::Ident(n)
                                if flagged.contains(n.as_str())
                                    && toks.get(k + 1).map(|t| &t.kind)
                                        == Some(&Tok::Punct('(')) =>
                            {
                                culprit.get_or_insert(k);
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(c) = culprit {
                        let used_later = name != "_"
                            && toks[k..close]
                                .iter()
                                .any(|t| matches!(&t.kind, Tok::Ident(n) if *n == name));
                        if !used_later {
                            report_drop(file, toks, j, c, out);
                        }
                    }
                    j = k;
                    continue;
                }
            }
            // Statement-position call: `;|{|}  [recv . | Path ::] name ( … ) ;`
            if let Tok::Ident(n) = &toks[j].kind {
                if flagged.contains(n.as_str()) && crate::items::is_call_at(toks, j) {
                    // Walk the receiver/path chain back to the start of
                    // the expression.
                    let mut k = j;
                    loop {
                        if k >= 2
                            && toks[k - 1].kind == Tok::Punct('.')
                            && matches!(&toks[k - 2].kind, Tok::Ident(_))
                        {
                            k -= 2;
                            continue;
                        }
                        if k >= 3
                            && toks[k - 1].kind == Tok::Punct(':')
                            && toks[k - 2].kind == Tok::Punct(':')
                            && matches!(&toks[k - 3].kind, Tok::Ident(_))
                        {
                            k -= 3;
                            continue;
                        }
                        break;
                    }
                    let at_stmt_start = k == 0
                        || matches!(
                            toks[k - 1].kind,
                            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}')
                        );
                    if at_stmt_start {
                        if let Some(cp) = matching_paren(toks, j + 1) {
                            if toks.get(cp + 1).map(|t| &t.kind) == Some(&Tok::Punct(';')) {
                                report_drop(file, toks, j, j, out);
                            }
                        }
                    }
                }
            }
            j += 1;
        }
    }
}

fn report_drop(file: &FileItems, toks: &[Token], stmt: usize, call: usize, out: &mut Vec<Finding>) {
    let line = toks[stmt].line;
    let _ = call;
    if let Some(rules) = file.flow_allows.get(&line) {
        if rules.contains("dropped-result") {
            return;
        }
    }
    let snippet = file
        .lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default();
    out.push(Finding {
        path: file.path.clone(),
        line,
        rule: "dropped-result",
        snippet,
    });
}

// ---------------------------------------------------------------------
// recursion-bound
// ---------------------------------------------------------------------

fn recursion_bound(files: &[FileItems], g: &CallGraph, out: &mut Vec<Finding>) {
    for comp in g.recursive_components() {
        let names: Vec<&str> = comp.iter().map(|&v| qual(files, g, v)).collect();
        let cycle = names.join(" -> ");
        for &id in &comp {
            let r = g.fns[id];
            let f = &files[r.file].fns[r.item];
            if f.cycle_ok || f.allows("recursion-bound") {
                continue;
            }
            let (path, line, _) = line_snippet(files, g, id);
            out.push(Finding {
                path,
                line,
                rule: "recursion-bound",
                snippet: format!("recursion cycle without cycle-ok: {cycle}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> (Vec<Finding>, FlowStats) {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        flow_files(&owned)
    }

    #[test]
    fn transitive_entropy_is_found_with_chain() {
        let (fs, _) = run(&[(
            "crates/core/src/a.rs",
            "pub fn count_all() -> f64 { helper() }\n\
             fn helper() -> f64 { now_ms() as f64 }\n\
             fn now_ms() -> u64 { SystemTime::now() }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert_eq!(fs[0].rule, "entropy-taint");
        assert_eq!(fs[0].line, 1);
        assert!(
            fs[0].snippet.contains("count_all -> helper -> now_ms"),
            "{}",
            fs[0].snippet
        );
    }

    #[test]
    fn clean_rng_plumbing_passes_and_owned_rng_fails() {
        let (fs, _) = run(&[(
            "crates/core/src/a.rs",
            "pub fn insert_one(rng: &mut impl Rng) { rng.gen::<u64>(); }\n\
             fn owned() -> u64 { let mut r = StdRng::seed_from_u64(1); r.gen() }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert_eq!(fs[0].rule, "rng-plumbing");
        assert_eq!(fs[0].line, 2);
    }

    #[test]
    fn dropped_results_found_in_both_positions() {
        let (fs, _) = run(&[(
            "crates/core/src/a.rs",
            "fn send() -> Result<(), ()> { Ok(()) }\n\
             fn a() { let _ = send(); }\n\
             fn b() { send(); }\n\
             fn c() -> Result<(), ()> { send() }\n\
             fn d() { send().unwrap_or(()); }\n",
        )]);
        let lines: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert!(fs.iter().all(|f| f.rule == "dropped-result"));
        assert_eq!(lines, vec![2, 3], "{fs:#?}");
    }

    #[test]
    fn bound_then_unused_results_are_drops() {
        let (fs, _) = run(&[(
            "crates/core/src/a.rs",
            "fn send() -> Result<(), ()> { Ok(()) }\n\
             fn a() { let r = send(); }\n\
             fn b() { let _status = send(); }\n\
             fn c() { let mut r: Result<(), ()> = send(); r = Ok(()); r.unwrap_or(()); }\n\
             fn d() -> Result<(), ()> { let r = send(); r }\n\
             fn e() { let ok = send(); assert!(ok.is_ok()); }\n",
        )]);
        assert!(fs.iter().all(|f| f.rule == "dropped-result"));
        let lines: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3], "{fs:#?}");
    }

    #[test]
    fn destructuring_and_uninitialized_lets_are_not_flagged() {
        let (fs, _) = run(&[(
            "crates/core/src/a.rs",
            "fn send() -> Result<(), ()> { Ok(()) }\n\
             fn a() { let (x, y) = (send(), 1); x.unwrap_or(()); let _ = y; }\n\
             fn b() { let r; r = send(); r.unwrap_or(()); }\n",
        )]);
        assert!(fs.is_empty(), "{fs:#?}");
    }

    #[test]
    fn unannotated_cycles_are_findings_and_cycle_ok_silences() {
        let (fs, _) = run(&[(
            "crates/dht/src/a.rs",
            "fn ping() { pong() }\n\
             fn pong() { ping() }\n\
             // dhs-flow: cycle-ok(strictly shrinking interval)\n\
             fn walk(n: u64) { if n > 0 { walk(n - 1) } }\n",
        )]);
        assert_eq!(fs.len(), 2, "{fs:#?}");
        assert!(fs.iter().all(|f| f.rule == "recursion-bound"));
        assert!(fs[0].snippet.contains("ping -> pong"));
    }

    #[test]
    fn test_code_and_tooling_crates_are_out_of_scope() {
        let (fs, stats) = run(&[
            (
                "crates/core/src/a.rs",
                "#[cfg(test)]\nmod tests {\n  fn t() { let mut r = X::new(); r.gen::<u8>(); }\n}\n",
            ),
            (
                "crates/lint/src/b.rs",
                "fn owned() { let mut r = X::new(); r.gen::<u8>(); }\n",
            ),
        ]);
        assert!(fs.is_empty(), "{fs:#?}");
        assert_eq!(
            stats.files_scanned, 1,
            "the lint crate is out of flow scope"
        );
        assert_eq!(stats.functions, 0, "cfg(test) fns are out");
    }

    #[test]
    fn bench_crate_is_in_flow_scope() {
        // Bench was exempt before the dhs-types upgrade; its KPI
        // emitters feed the gated trajectory, so flow rules apply now.
        let (fs, stats) = run(&[(
            "crates/bench/src/b.rs",
            "fn owned() { let mut r = X::new(); r.gen::<u8>(); }\n",
        )]);
        assert_eq!(stats.files_scanned, 1);
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert_eq!(fs[0].rule, "rng-plumbing");
    }

    #[test]
    fn allow_directive_silences_each_rule() {
        let (fs, _) = run(&[(
            "crates/core/src/a.rs",
            "// dhs-flow: allow(rng-plumbing) — calibration owns its seeded stream\n\
             fn calibrate() -> u64 { let mut r = StdRng::seed_from_u64(1); r.gen() }\n\
             fn send() -> Result<(), ()> { Ok(()) }\n\
             fn f() {\n    // dhs-flow: allow(dropped-result) — fire and forget\n    let _ = send();\n}\n",
        )]);
        assert!(fs.is_empty(), "{fs:#?}");
    }

    #[test]
    fn typed_receivers_cut_false_taint_pairings() {
        // Pre-dhs-types both entries were flagged: `tick` resolved by
        // name to {A::tick, B::tick} and the taint over-approximated.
        let (fs, stats) = run(&[(
            "crates/net/src/a.rs",
            "struct A;\nimpl A {\n  fn tick(&self) -> u64 { SystemTime::now() }\n}\n\
             struct B;\nimpl B {\n  fn tick(&self) -> u64 { 0 }\n}\n\
             pub fn run_clock(a: &A) -> u64 { a.tick() }\n\
             pub fn run_quiet(b: &B) -> u64 { b.tick() }\n",
        )]);
        assert_eq!(stats.ambiguous_calls, 0);
        assert_eq!(stats.sites_resolved, 2);
        assert_eq!(fs.len(), 1, "{fs:#?}");
        assert_eq!(fs[0].rule, "entropy-taint");
        assert_eq!(fs[0].line, 9);
    }
}
